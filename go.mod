module osprey

go 1.22
