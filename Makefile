# Convenience targets for the OSPREY reproduction. Everything is pure Go;
# no external dependencies are needed.

GO ?= go

.PHONY: all build test test-short race bench figures figures-quick cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -all -out out

figures-quick:
	$(GO) run ./cmd/figures -quick -all -out out

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf out
