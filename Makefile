# Convenience targets for the OSPREY reproduction. Everything is pure Go;
# no external dependencies are needed.

GO ?= go

.PHONY: all build vet fmt-check ci test test-short race race-all bench bench-smoke bench-json fuzz-smoke figures figures-quick cover clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:"; \
		echo "$$unformatted"; \
		gofmt -d .; \
		exit 1; \
	fi

# Mirrors .github/workflows/ci.yml step for step, so a green `make ci`
# locally means a green pipeline.
ci: vet fmt-check build
	$(GO) test ./...
	GOMAXPROCS=1 $(GO) test ./internal/gp/ ./internal/music/ ./internal/sobolidx/ ./internal/rt/ ./internal/parallel/
	$(GO) test -race ./internal/emews/... ./internal/scheduler/... ./internal/wal/... ./internal/aero/... ./internal/parallel/...
	$(GO) test -race -run 'SerialParallel|Parallel|Incremental|MeanCache|Predictor|Concurrent' ./internal/gp/ ./internal/music/ ./internal/sobolidx/ ./internal/rt/ ./internal/core/

# The default test path runs the race detector over the distributed task
# lifecycle (emews), the scheduler, and the durability layer (WAL +
# store recovery), so the fixed races stay fixed.
test: race
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/emews/... ./internal/scheduler/... ./internal/wal/... ./internal/aero/... ./internal/parallel/...
	$(GO) test -race -run 'SerialParallel|Parallel|Incremental|MeanCache|Predictor|Concurrent' ./internal/gp/ ./internal/music/ ./internal/sobolidx/ ./internal/rt/ ./internal/core/

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: the nightly workflow's smoke pass.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# Committed benchmark snapshot: the root-package paper benchmarks converted
# to JSON for before/after comparison (see BENCH_baseline.json).
bench-json:
	$(GO) test -bench=. -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%F).json

# Short coverage-guided fuzz of the WAL record decoder (nightly job).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseRecord -fuzztime=30s ./internal/wal/

# Regenerate every paper table/figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -all -out out

figures-quick:
	$(GO) run ./cmd/figures -quick -all -out out

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf out
