# Convenience targets for the OSPREY reproduction. Everything is pure Go;
# no external dependencies are needed.

GO ?= go

.PHONY: all build test test-short race race-all bench figures figures-quick cover clean

all: build test

build:
	$(GO) build ./...

# The default test path runs the race detector over the distributed task
# lifecycle (emews) and the scheduler, so the fixed races stay fixed.
test: race
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/emews/... ./internal/scheduler/...

race-all:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -all -out out

figures-quick:
	$(GO) run ./cmd/figures -quick -all -out out

cover:
	$(GO) test -cover ./internal/...

clean:
	rm -rf out
