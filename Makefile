# Convenience targets for the OSPREY reproduction. Everything is pure Go;
# no external dependencies are needed.

GO ?= go

# Coverage floor for cover-check (percent of statements in internal/...).
COVER_FLOOR ?= 60

.PHONY: all build vet fmt-check ci check-ci-mirror test test-go test-short test-shuffle test-single-core race race-lifecycle race-numerics race-all smoke-ctl soak soak-shard soak-tenant staticcheck bench bench-smoke bench-json bench-compare fuzz-smoke figures figures-quick cover cover-check clean

all: build test

# CI_STEPS is the single source of truth for the per-push CI pipeline.
# `make ci` runs the steps in order; the `test` job in
# .github/workflows/ci.yml runs `make <step>` once per step in the same
# order; scripts/check_ci_mirror.sh (itself the first step) fails the
# build when the two lists diverge. To change the pipeline, edit this
# variable and mirror the step list in ci.yml — see DESIGN.md,
# "Load & chaos testing", for the mirror rule.
CI_STEPS := check-ci-mirror vet fmt-check build test-go test-shuffle test-single-core race-lifecycle race-numerics smoke-ctl

# CI_JOBS maps each dedicated (non-`test`) ci.yml job to the make target
# it must run, as job:target pairs. scripts/check_ci_mirror.sh verifies
# every pair has a matching `run: make <target>` line inside that job, so
# the dedicated jobs obey the same edit-both-files rule as CI_STEPS.
CI_JOBS := coverage:cover-check soak:soak soak-shard:soak-shard soak-tenant:soak-tenant staticcheck:staticcheck

ci: $(CI_STEPS)

check-ci-mirror:
	./scripts/check_ci_mirror.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:"; \
		echo "$$unformatted"; \
		gofmt -d .; \
		exit 1; \
	fi

test-go:
	$(GO) test ./...

# Shuffled test order: catches inter-test state leaks (shared registries,
# leftover files) that a fixed order hides.
test-shuffle:
	$(GO) test -shuffle=on ./...

test-single-core:
	GOMAXPROCS=1 $(GO) test ./internal/gp/ ./internal/music/ ./internal/sobolidx/ ./internal/rt/ ./internal/parallel/ ./internal/linalg/

# Race detector over the distributed task lifecycle (emews), the
# scheduler, the durability layer (WAL + store recovery), and the load
# harness with its chaos proxy.
race-lifecycle:
	$(GO) test -race ./internal/emews/... ./internal/scheduler/... ./internal/wal/... ./internal/aero/... ./internal/parallel/... ./internal/chaos/... ./internal/loadgen/...

race-numerics:
	$(GO) test -race -run 'SerialParallel|Parallel|Incremental|MeanCache|Predictor|Concurrent' ./internal/gp/ ./internal/music/ ./internal/sobolidx/ ./internal/rt/ ./internal/core/ ./internal/linalg/

# End-to-end CLI smoke: a daemon on a temp -data-dir driven through real
# ospreyctl subcommands (exit codes + JSON shapes), plus the daemon's own
# SIGKILL/recover round trip.
smoke-ctl:
	$(GO) test -run 'TestOspreyctlSmoke|TestDurabilityRoundTrip' -count=1 ./cmd/ospreyctl/ ./cmd/osprey-daemon/

# The default test path runs the race detector over the lifecycle
# packages so the fixed races stay fixed.
test: race
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race: race-lifecycle race-numerics

race-all:
	$(GO) test -race ./...

# Deterministic load + chaos soak (the CI soak job): two same-seed runs
# through the full fault schedule — connection kills, refuse windows,
# latency injection, worker-pool crash, daemon crash, torn-WAL crash —
# asserting the ledger/WAL invariants and identical workload digests.
# The JSON run report lands in SOAK_report.json.
soak:
	$(GO) run ./cmd/osprey-loadgen -seed 42 -duration 30s -rate 150 -workers 8 -faults default -runs 2 -out SOAK_report.json

# Sharded soak (the CI soak-shard job): two same-seed runs over a 3-shard
# replicated group through the shard-failover schedule — two primary kills
# with follower promotion, plus the network and pool faults — asserting
# the same 11 invariants, the cross-shard WAL audit, and identical
# workload digests. The JSON run report lands in SOAK_shard_report.json;
# a digest mismatch or invariant violation exits non-zero.
soak-shard:
	$(GO) run ./cmd/osprey-loadgen -seed 73 -duration 30s -rate 150 -workers 8 -shards 3 -faults shard-failover -runs 2 -out SOAK_shard_report.json

# Multi-tenant soak (the CI soak-tenant job): two same-seed runs with
# three tenants — bearer-token auth, per-tenant quotas with a noisy
# neighbor, private streams, live cross-tenant isolation probes, and a
# streaming watch subscription per tenant — through the tenant fault
# schedule (kills, refuse windows, latency, pool crash; no daemon crashes,
# so watches stay connected). Asserts the four tenant invariants (zero
# cross-tenant reads, quota conformance, per-tenant ledger balance,
# no-dup watch delivery with drops accounted) on top of the base set,
# plus identical workload digests. The report lands in
# SOAK_tenant_report.json.
soak-tenant:
	$(GO) run ./cmd/osprey-loadgen -seed 91 -duration 30s -rate 150 -workers 8 -tenants 3 -faults tenant -runs 2 -out SOAK_tenant_report.json

# Staticcheck over the whole module (the CI staticcheck job). The binary
# is not vendored; install the pinned version once with
#   go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
STATICCHECK_VERSION := 2024.1.1
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not found; install with:"; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
		exit 1; }
	staticcheck ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration per benchmark: the nightly workflow's smoke pass.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x ./...

# Committed benchmark snapshot: the root-package paper benchmarks converted
# to JSON for before/after comparison (see BENCH_baseline.json).
bench-json:
	$(GO) test -bench=. -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$$(date +%F).json

# Fresh snapshot vs the committed baseline; fails on a >15% ns/op
# regression (the nightly bench-regression job). The per-benchmark diff
# lands in bench-diff.json.
bench-compare:
	$(GO) test -bench=. -benchmem -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_fresh.json
	$(GO) run ./cmd/benchjson -compare BENCH_baseline.json BENCH_fresh.json -tolerance 0.15 -diff-out bench-diff.json

# Short coverage-guided fuzz of the WAL record decoder and the emews
# binary wire-frame decoder (nightly job).
fuzz-smoke:
	$(GO) test -fuzz=FuzzParseRecord -fuzztime=30s ./internal/wal/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/emews/

# Regenerate every paper table/figure into out/ (see EXPERIMENTS.md).
figures:
	$(GO) run ./cmd/figures -all -out out

figures-quick:
	$(GO) run ./cmd/figures -quick -all -out out

cover:
	$(GO) test -cover ./internal/...

# Coverage profile over internal/..., HTML report, and a floor check:
# total statement coverage below $(COVER_FLOOR)% fails (the CI coverage
# job uploads cover.html as an artifact).
cover-check:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total statement coverage: $$total% (floor: $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

clean:
	rm -rf out cover.out cover.html BENCH_fresh.json bench-diff.json SOAK_report.json SOAK_shard_report.json SOAK_tenant_report.json
