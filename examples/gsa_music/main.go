// Use case 2 (§3, Figures 4-5, Table 1): surrogate-assisted global
// sensitivity analysis of the MetaRVM stochastic metapopulation model.
//
// The program runs the MUSIC active-learning GSA (GP surrogate + EIGF
// acquisition) against the five Table 1 parameters at a fixed model seed,
// fits the one-shot degree-3 PCE baseline on nested LHS designs for
// comparison, and then repeats MUSIC across stochastic replicates to
// separate aleatoric from epistemic uncertainty.
//
//	go run ./examples/gsa_music [-budget 120] [-replicates 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"osprey"
	"osprey/internal/metarvm"
	"osprey/internal/music"
)

func main() {
	log.SetFlags(0)
	budget := flag.Int("budget", 120, "MUSIC evaluation budget per instance")
	replicates := flag.Int("replicates", 5, "stochastic replicates for the Figure 5 study")
	flag.Parse()

	space := osprey.GSAParameterSpace()
	fmt.Println("Table 1 parameter space:")
	for _, p := range space.Params {
		fmt.Printf("  %-4s %-34s (%g, %g)\n", p.Name, p.Description, p.Lo, p.Hi)
	}

	// --- Figure 4: MUSIC vs PCE at a fixed seed -------------------------
	const modelSeed = 11
	fmt.Printf("\nMUSIC (budget %d, fixed seed %d):\n", *budget, modelSeed)
	alg, err := music.New(music.Options{
		Space: space, InitialDesign: 25, Budget: *budget, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := music.RunSequential(alg, func(x []float64) (float64, error) {
		return metarvm.EvaluateGSA(x, modelSeed)
	}); err != nil {
		log.Fatal(err)
	}
	musicIdx, err := alg.Indices()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  done in %v (%d model runs)\n", time.Since(start).Round(time.Millisecond), alg.N())

	var sizes []int
	for _, n := range []int{60, 80, 100, 150, 200, 300} {
		if n <= *budget {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != *budget {
		sizes = append(sizes, *budget)
	}
	pceCmp, err := osprey.RunPCEComparison(space, 1, modelSeed, sizes, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-5s %-22s %s\n", "param", "MUSIC S1 (final)", "PCE S1 by design size")
	for j, name := range space.Names() {
		row := fmt.Sprintf("%-5s %-22.3f", name, musicIdx[j])
		for k := range pceCmp.Sizes {
			row += fmt.Sprintf(" n=%d:%.3f", pceCmp.Sizes[k], clamp01(pceCmp.Indices[k][j]))
		}
		fmt.Println(row)
	}

	// Convergence sketch: how far each MUSIC estimate moved over the last
	// third of the budget (small = stabilized, the Figure 4 claim).
	fmt.Println("\nMUSIC stabilization (max index change over the final third of samples):")
	hist := alg.History()
	tail := hist[len(hist)*2/3:]
	for j, name := range space.Names() {
		lo, hi := 1.0, 0.0
		for _, snap := range tail {
			v := snap.Indices[j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("  %-4s drift %.3f\n", name, hi-lo)
	}

	// --- Figure 5: replicate study over an EMEWS pool -------------------
	fmt.Printf("\nReplicate study: %d MUSIC instances interleaved over one worker pool\n", *replicates)
	p, err := osprey.New(osprey.Config{Identity: "gsa", Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()
	cfg := osprey.GSAConfig{Replicates: *replicates, Seed: 9}
	cfg.Music.InitialDesign = 25
	cfg.Music.Budget = *budget
	res, err := osprey.RunGSA(p, cfg, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool utilization %.1f%%, makespan %v, %d evaluations\n\n",
		res.Pool.UtilizationPct, res.Elapsed.Round(time.Millisecond), res.Evaluations)
	fmt.Printf("%-9s", "replicate")
	for _, name := range space.Names() {
		fmt.Printf(" %8s", name)
	}
	fmt.Println()
	for r, idx := range res.FinalIndices {
		fmt.Printf("%-9d", r)
		for _, v := range idx {
			fmt.Printf(" %8.3f", v)
		}
		fmt.Println()
	}
	fmt.Println("\nconsistent ranking across replicates = epistemic signal;")
	fmt.Println("spread within a column = aleatoric (simulator randomness) contribution")
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
