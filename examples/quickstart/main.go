// Quickstart: the smallest complete OSPREY program.
//
// It assembles a platform, registers one AERO ingestion flow against a
// local HTTP data source, chains one analysis flow off the ingested data,
// and runs one EMEWS task round-trip through a scheduler-launched worker
// pool — one touch of every subsystem.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync/atomic"

	"osprey"
	"osprey/internal/aero"
	"osprey/internal/emews"
)

func main() {
	log.SetFlags(0)

	// 1. A platform: storage endpoint, login + batch compute tiers, a
	// simulated cluster, AERO metadata, an EMEWS task DB.
	p, err := osprey.New(osprey.Config{Identity: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()

	// 2. A toy data source: an HTTP endpoint whose content we control.
	var version atomic.Int32
	version.Store(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "observation,%d\n", version.Load())
	})}
	go srv.Serve(ln)
	defer srv.Close()

	// 3. An ingestion flow: poll the source, validate/transform on the
	// login tier, store and version the product.
	transformID, err := p.LoginCompute.RegisterFunction(p.Token.ID, "upper",
		func(ctx context.Context, body []byte) ([]byte, error) {
			return []byte(strings.ToUpper(string(body))), nil
		})
	if err != nil {
		log.Fatal(err)
	}
	ingest, err := p.AERO.RegisterIngestion(aero.IngestionSpec{
		Name:        "toy-feed",
		URL:         "http://" + ln.Addr().String(),
		Compute:     p.LoginCompute,
		TransformID: transformID,
		Storage:     p.StorageTarget(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. An analysis flow triggered whenever the ingested data updates.
	analyzeID, err := p.LoginCompute.RegisterFunction(p.Token.ID, "count",
		func(ctx context.Context, payload []byte) ([]byte, error) {
			var req aero.AnalysisRequest
			if err := jsonUnmarshal(payload, &req); err != nil {
				return nil, err
			}
			n := len(req.Inputs[0].Data)
			return aero.EncodeOutputs(map[string][]byte{
				"report": []byte(fmt.Sprintf("input is %d bytes", n)),
			})
		})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := p.AERO.RegisterAnalysis(aero.AnalysisSpec{
		Name:        "toy-analysis",
		InputUUIDs:  []string{ingest.OutputUUID},
		Policy:      aero.TriggerAny,
		Compute:     p.LoginCompute,
		AnalyzeID:   analyzeID,
		OutputNames: []string{"report"},
		Storage:     p.StorageTarget(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Drive two "daily" cycles: poll, data changes, analyses trigger.
	for day := 1; day <= 2; day++ {
		updated, err := ingest.Poll()
		if err != nil {
			log.Fatal(err)
		}
		p.AERO.WaitIdle()
		report, _, err := p.AERO.FetchLatest(analysis.OutputUUIDs[0], p.Storage)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: updated=%v analysisRuns=%d report=%q\n",
			day, updated, analysis.Runs(), report)
		version.Add(1) // tomorrow's data differs
	}

	// 6. One EMEWS round-trip: start a worker pool via the scheduler,
	// submit a task, read its Future.
	pool, err := emews.StartScheduledPool(p.Cluster, 1, 2, p.TaskDB, "demo",
		func(ctx context.Context, payload string) (string, error) {
			return "echo:" + payload, nil
		}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Stop()
	future, err := p.TaskDB.Submit("demo", 0, "hello-emews")
	if err != nil {
		log.Fatal(err)
	}
	result, err := future.Result(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emews task result: %s\n", result)

	// 7. Everything that happened is in the metadata service.
	flows, _ := p.Meta.ListFlows()
	fmt.Printf("metadata service now tracks %d flows\n", len(flows))
}

func jsonUnmarshal(b []byte, v any) error {
	return json.Unmarshal(b, v)
}
