// Use case 1 (§2, Figures 1-2): the automated multi-source wastewater R(t)
// estimation workflow.
//
// Four simulated Chicago-area water reclamation plant feeds are served over
// local HTTP. AERO ingestion flows poll them daily, validate and transform
// updates on the login tier, and version every artifact. Each update
// triggers a Goldstein-method semi-parametric Bayesian R(t) estimation on
// the batch tier (queued through the simulated PBS scheduler), and once all
// four estimates are fresh, the population-weighted ensemble aggregation
// runs. Because the data are synthetic, the program scores every estimate
// against the known ground-truth R(t).
//
//	go run ./examples/wastewater_rt [-days 5] [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"osprey"
)

func main() {
	log.SetFlags(0)
	days := flag.Int("days", 3, "number of simulated daily polling cycles")
	full := flag.Bool("full", false, "publication-scale MCMC settings (slower)")
	flag.Parse()

	gopt := osprey.GoldsteinOptions{Iterations: 300, BurnIn: 500, Thin: 2}
	if *full {
		gopt = osprey.GoldsteinOptions{} // package defaults: 1500/2000
	}

	p, err := osprey.New(osprey.Config{Identity: "epi-team", Nodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Shutdown()

	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
		ScenarioDays: 120,
		StartDay:     120 - *days - 1,
		Goldstein:    gopt,
		Seed:         2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer wp.Close()

	fmt.Println("Automated multi-source wastewater R(t) workflow")
	fmt.Printf("plants: %v\n\n", wp.PlantNames())

	truth := wp.TruthRt()
	for day := 1; day <= *days; day++ {
		start := time.Now()
		updates, err := wp.PollAll()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: %d feed updates, aggregate runs so far: %d (%v)\n",
			day, updates, wp.Aggregate.Runs(), time.Since(start).Round(time.Millisecond))
		wp.Advance(1) // tomorrow's samples arrive
	}

	fmt.Println("\nLatest estimates vs ground truth (days 14..end-7):")
	fmt.Printf("%-18s %-12s %-8s %s\n", "source", "coverage95", "MAE", "band width")
	for _, name := range wp.PlantNames() {
		est, err := wp.LatestEstimate(name)
		if err != nil {
			log.Fatal(err)
		}
		end := len(est.Median) - 7
		fmt.Printf("%-18s %-12.2f %-8.3f %.3f\n", name,
			est.Coverage(truth, 14, end), est.MeanAbsError(truth, 14, end), est.BandWidth(14, end))
	}
	ens, err := wp.LatestEnsemble()
	if err != nil {
		log.Fatal(err)
	}
	end := len(ens.Median) - 7
	fmt.Printf("%-18s %-12.2f %-8.3f %.3f\n", "ensemble",
		ens.Coverage(truth, 14, end), ens.MeanAbsError(truth, 14, end), ens.BandWidth(14, end))

	plots, err := wp.LatestPlots()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + plots["ensemble"])

	fmt.Println("Provenance is queryable: every output traces back to the raw feed.")
	fmt.Printf("cluster: %d batch jobs completed (the expensive R(t) analyses)\n",
		p.Cluster.Stats().Completed)
}
