// Scenario planning: closing the loop between OSPREY's two use cases.
//
// A MetaRVM metapopulation simulation (use case 2's model) drives the
// wastewater observation model whose inversion is use case 1's analysis:
// we simulate a baseline epidemic and an intervention scenario (an NPI
// window plus a vaccination surge), generate the noisy plant concentration
// data each would produce, and check that the Goldstein R(t) estimator —
// fed only the wastewater signal — detects the intervention's transmission
// reduction. This is the paper's future-work loop of "epidemiological
// analyses that can be directly integrated via OSPREY-enabled automation
// into [public health] business processes".
//
//	go run ./examples/scenario_planning
package main

import (
	"fmt"
	"log"

	"osprey/internal/metarvm"
	"osprey/internal/rng"
	"osprey/internal/rt"
	"osprey/internal/wastewater"
)

func main() {
	log.SetFlags(0)

	cfg := metarvm.DefaultConfig()
	cfg.Days = 120
	cfg.Params.TS = 0.35 // moderate epidemic so the NPI lands mid-growth
	cfg.Seed = 7

	interventions := []metarvm.Intervention{
		{Name: "stay-at-home", FromDay: 30, ToDay: 75, TransmissionScale: 0.45},
		{Name: "vaccine-surge", FromDay: 30, ToDay: 90, VaccRateAdd: 0.01},
	}

	baseline, err := metarvm.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := metarvm.RunWithInterventions(cfg, interventions)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MetaRVM scenario comparison (120 days):")
	fmt.Printf("%-22s %12s %12s %12s\n", "scenario", "infections", "hospitalized", "deaths")
	fmt.Printf("%-22s %12d %12d %12d\n", "baseline",
		baseline.CumInfections, baseline.CumHospitalizations, baseline.CumDeaths)
	fmt.Printf("%-22s %12d %12d %12d\n", "NPI + vaccine surge",
		scenario.CumInfections, scenario.CumHospitalizations, scenario.CumDeaths)
	averted := baseline.CumHospitalizations - scenario.CumHospitalizations
	fmt.Printf("hospitalizations averted: %d (%.0f%%)\n\n", averted,
		100*float64(averted)/float64(baseline.CumHospitalizations))

	// Feed both incidence curves through the wastewater observation model
	// and invert with the Goldstein estimator.
	plant := wastewater.ChicagoPlants()[0]
	estimate := func(name string, res *metarvm.Result, seed uint64) *rt.Estimate {
		series, err := wastewater.GenerateFromIncidence(plant, res.DailyIncidence(),
			wastewater.Scenario{}, rng.New(seed))
		if err != nil {
			log.Fatal(err)
		}
		est, err := rt.EstimateGoldstein(series.Observations, plant, cfg.Days+1,
			rt.GoldsteinOptions{Iterations: 400, BurnIn: 600, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return est
	}
	baseEst := estimate("baseline", baseline, 101)
	scenEst := estimate("scenario", scenario, 102)

	// Compare each scenario's estimated R(t) drop across the NPI start.
	// The window is chosen to dodge the confound of susceptible
	// depletion: both runs are identical before day 30, so the extra
	// drop in the scenario run is the intervention's signature.
	window := func(e *rt.Estimate, from, to int) float64 {
		s, n := 0.0, 0
		for d := from; d <= to; d++ {
			s += e.Median[d]
			n++
		}
		return s / float64(n)
	}
	fmt.Println("Wastewater-only R(t) around the NPI start (day 30):")
	fmt.Printf("%-10s %18s %18s %8s\n", "scenario", "pre-NPI (d18-28)", "NPI (d38-60)", "drop")
	bPre, bNPI := window(baseEst, 18, 28), window(baseEst, 38, 60)
	sPre, sNPI := window(scenEst, 18, 28), window(scenEst, 38, 60)
	fmt.Printf("%-10s %18.2f %18.2f %8.2f\n", "baseline", bPre, bNPI, bPre-bNPI)
	fmt.Printf("%-10s %18.2f %18.2f %8.2f\n", "NPI", sPre, sNPI, sPre-sNPI)
	if sPre-sNPI > bPre-bNPI {
		fmt.Println("\nThe estimator sees the intervention in the sewage: the scenario's R(t)")
		fmt.Println("falls further across the NPI start, using nothing but noisy concentrations.")
	} else {
		fmt.Println("\nwarning: estimator did not separate the scenarios at these settings")
	}
}
