// The §3.2 Shared Development Environment utilization study: why the paper
// interleaves its MUSIC instances.
//
// A MUSIC run starts with a batch of initial-design evaluations that can
// fill a worker pool, but every subsequent iteration submits a single
// parameter set. Run sequentially, the pool sits mostly idle during the
// long one-at-a-time refinement phase. Interleaving N instances keeps up to
// N tasks in flight, recovering utilization and shrinking the makespan —
// with bit-identical results, because each instance owns its random
// stream.
//
//	go run ./examples/interleaved_pool [-instances 6] [-delay 5ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"osprey"
)

func main() {
	log.SetFlags(0)
	instances := flag.Int("instances", 6, "number of MUSIC instances")
	delay := flag.Duration("delay", 5*time.Millisecond, "artificial per-evaluation model cost")
	flag.Parse()

	run := func(interleaved bool) *osprey.GSAResult {
		p, err := osprey.New(osprey.Config{Identity: "sde", Nodes: 8})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Shutdown()
		cfg := osprey.GSAConfig{
			Replicates: *instances,
			Nodes:      4, WorkersPerNode: 2,
			ModelDelay: *delay,
			Seed:       3,
		}
		cfg.Music.InitialDesign = 16
		cfg.Music.Budget = 40
		res, err := osprey.RunGSA(p, cfg, interleaved)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%d MUSIC instances, 8-worker pool, %v per model evaluation\n\n", *instances, *delay)
	seq := run(false)
	fmt.Printf("sequential:  makespan %8v  utilization %5.1f%%  (%d evaluations)\n",
		seq.Elapsed.Round(time.Millisecond), seq.Pool.UtilizationPct, seq.Evaluations)
	inter := run(true)
	fmt.Printf("interleaved: makespan %8v  utilization %5.1f%%  (%d evaluations)\n",
		inter.Elapsed.Round(time.Millisecond), inter.Pool.UtilizationPct, inter.Evaluations)

	speedup := float64(seq.Elapsed) / float64(inter.Elapsed)
	fmt.Printf("\nspeedup %.2fx, utilization gain %.1f points\n",
		speedup, inter.Pool.UtilizationPct-seq.Pool.UtilizationPct)

	// The decoupled design guarantee: scheduling does not change science.
	maxDiff := 0.0
	for r := range seq.FinalIndices {
		for j := range seq.FinalIndices[r] {
			d := math.Abs(seq.FinalIndices[r][j] - inter.FinalIndices[r][j])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("max index difference between modes: %g (identical results)\n", maxDiff)
}
