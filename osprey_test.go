package osprey_test

import (
	"fmt"
	"testing"

	"osprey"
	"osprey/internal/metarvm"
)

func TestPublicAPIPlatformLifecycle(t *testing.T) {
	p, err := osprey.New(osprey.Config{Identity: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	if p.Identity != "api-test" {
		t.Fatal("identity not propagated")
	}
	if p.Storage == nil || p.LoginCompute == nil || p.BatchCompute == nil || p.TaskDB == nil {
		t.Fatal("platform subsystems missing")
	}
}

func TestPublicAPIChicagoPlants(t *testing.T) {
	plants := osprey.ChicagoPlants()
	if len(plants) != 4 {
		t.Fatalf("want 4 plants, got %d", len(plants))
	}
	total := 0
	for _, p := range plants {
		total += p.Population
	}
	// The MWRD plants together serve several million people.
	if total < 3_000_000 || total > 10_000_000 {
		t.Fatalf("total served population %d implausible", total)
	}
}

func TestPublicAPIMetaRVM(t *testing.T) {
	cfg := osprey.DefaultMetaRVMConfig()
	if cfg.Days != 90 {
		t.Fatalf("paper horizon is 90 days, config says %d", cfg.Days)
	}
	res, err := osprey.RunMetaRVM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CumHospitalizations <= 0 {
		t.Fatal("nominal run produced no hospitalizations")
	}
}

func TestPublicAPIGSAParameterSpace(t *testing.T) {
	space := osprey.GSAParameterSpace()
	if space.Dim() != 5 {
		t.Fatalf("Table 1 has 5 parameters, got %d", space.Dim())
	}
	if space.Index("ts") != 0 || space.Index("phd") != 4 {
		t.Fatal("parameter ordering changed")
	}
}

func TestPublicAPIWastewaterPipelineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, err := osprey.New(osprey.Config{Identity: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	wp, err := osprey.NewWastewaterPipeline(p, osprey.WastewaterConfig{
		ScenarioDays: 90, StartDay: 70,
		Goldstein: osprey.GoldsteinOptions{Iterations: 100, BurnIn: 150},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer wp.Close()
	updates, err := wp.PollAll()
	if err != nil {
		t.Fatal(err)
	}
	if updates != 4 {
		t.Fatalf("updates = %d", updates)
	}
	if _, err := wp.LatestEnsemble(); err != nil {
		t.Fatalf("no ensemble produced: %v", err)
	}
}

func TestPublicAPIGSASmall(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, err := osprey.New(osprey.Config{Identity: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	cfg := osprey.GSAConfig{Replicates: 2, Seed: 1}
	cfg.Music.InitialDesign = 12
	cfg.Music.Budget = 20
	cfg.Music.IndexSamples = 128
	res, err := osprey.RunGSA(p, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalIndices) != 2 {
		t.Fatalf("replicates = %d", len(res.FinalIndices))
	}
}

func TestPublicAPIPCEComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cmp, err := osprey.RunPCEComparison(nil, 1, 2, []int{60, 80}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Sizes) != 2 || len(cmp.Indices[0]) != 5 {
		t.Fatalf("comparison malformed: %+v", cmp.Sizes)
	}
}

func TestMetaRVMTypeAliasInterop(t *testing.T) {
	// Public aliases and internal types are interchangeable inside the
	// module: the facade adds no conversion layer.
	var cfg osprey.MetaRVMConfig = metarvm.DefaultConfig()
	cfg.Days = 10
	res, err := metarvm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Days) != 11 {
		t.Fatalf("want 11 day records, got %d", len(res.Days))
	}
}

func TestPublicAPIABM(t *testing.T) {
	cfg := osprey.ABMConfig{Agents: 2000, InitialInfected: 10, Days: 30,
		Params: metarvm.NominalParams(), Seed: 1}
	res, err := osprey.RunABM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CumInfections <= 0 {
		t.Fatal("ABM produced no infections at nominal parameters")
	}
}

func ExampleChicagoPlants() {
	for _, p := range osprey.ChicagoPlants() {
		fmt.Println(p.Name)
	}
	// Output:
	// O'Brien
	// Calumet
	// Stickney South
	// Stickney North
}
