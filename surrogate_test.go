// Acceptance tests for the scalable surrogate layer: approximation quality
// on the Figure-4 MUSIC workload and the sub-cubic fit-time contract.
package osprey_test

import (
	"math"
	"testing"
	"time"

	"osprey/internal/design"
	"osprey/internal/gp"
	"osprey/internal/metarvm"
	"osprey/internal/rng"
)

// figure4Data evaluates the fixed-seed MetaRVM GSA response (the Figure 4
// workload) on a unit-cube LHS design.
func figure4Data(t *testing.T, n int, seed uint64) ([][]float64, []float64) {
	t.Helper()
	space := metarvm.GSAParameterSpace()
	x := design.LatinHypercube(rng.New(seed), n, space.Dim())
	y := make([]float64, n)
	for i, u := range x {
		v, err := metarvm.EvaluateGSA(space.Scale(u), 11)
		if err != nil {
			t.Fatal(err)
		}
		y[i] = v
	}
	return x, y
}

// TestFigure4SparseDenseRMSE pins the documented approximation tolerance:
// on the Figure-4 MetaRVM workload, the sparse surrogate's held-out
// normalized RMSE stays within 0.05 (5% of the response's standard
// deviation) of the dense GP's.
func TestFigure4SparseDenseRMSE(t *testing.T) {
	opts := gp.Options{MaxIter: 60, Restarts: 0}
	x, y := figure4Data(t, 300, 4)
	tx, ty := figure4Data(t, 150, 5)

	dense, err := gp.Fit(x, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := gp.FitSparse(x, y, 64, opts)
	if err != nil {
		t.Fatal(err)
	}

	var mean, sd float64
	for _, v := range ty {
		mean += v
	}
	mean /= float64(len(ty))
	for _, v := range ty {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(ty)))

	rmse := func(s gp.Surrogate) float64 {
		var sum float64
		for i, u := range tx {
			m := s.PredictMean(u)
			sum += (m - ty[i]) * (m - ty[i])
		}
		return math.Sqrt(sum/float64(len(tx))) / sd
	}
	nd, ns := rmse(dense), rmse(sparse)
	t.Logf("normalized RMSE: dense %.4f, sparse %.4f", nd, ns)
	if ns > nd+0.05 {
		t.Fatalf("sparse normalized RMSE %.4f exceeds dense %.4f by more than the documented 0.05 tolerance", ns, nd)
	}
}

// TestSparseFitsTenKFasterThanDenseOneK is the scalability acceptance
// criterion: the sparse surrogate must fit a 10k-point design in less time
// than the dense path needs at 1k points.
func TestSparseFitsTenKFasterThanDenseOneK(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	opts := gp.Options{MaxIter: 30, Restarts: 0}
	const dim = 5
	synth := func(n int, seed uint64) ([][]float64, []float64) {
		x := design.LatinHypercube(rng.New(seed), n, dim)
		y := make([]float64, n)
		for i, u := range x {
			y[i] = math.Sin(3*u[0]) + 2*u[1]*u[1] - u[2] + 0.5*u[3]*u[4]
		}
		return x, y
	}

	xd, yd := synth(1000, 1)
	start := time.Now()
	if _, err := gp.Fit(xd, yd, opts); err != nil {
		t.Fatal(err)
	}
	denseElapsed := time.Since(start)

	xs, ys := synth(10000, 2)
	start = time.Now()
	sp, err := gp.FitSparse(xs, ys, 256, opts)
	if err != nil {
		t.Fatal(err)
	}
	sparseElapsed := time.Since(start)

	t.Logf("dense fit @1k: %v, sparse fit @10k (m=%d): %v", denseElapsed, sp.M(), sparseElapsed)
	if sparseElapsed >= denseElapsed {
		t.Fatalf("sparse 10k fit (%v) not faster than dense 1k fit (%v)", sparseElapsed, denseElapsed)
	}
}
