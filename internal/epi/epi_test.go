package epi

import (
	"math"
	"testing"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

func TestDiscretizedGammaIsPMF(t *testing.T) {
	w := DiscretizedGamma(5.2, 1.7, 14)
	if w[0] != 0 {
		t.Fatal("same-day transmission weight must be zero")
	}
	sum := 0.0
	for _, v := range w {
		if v < 0 {
			t.Fatal("negative pmf entry")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pmf sums to %v", sum)
	}
	// Mass should peak near the mean.
	peak := 0
	for s := 1; s < len(w); s++ {
		if w[s] > w[peak] {
			peak = s
		}
	}
	if peak < 4 || peak > 7 {
		t.Fatalf("generation interval peak at day %d, want near 5", peak)
	}
}

func TestInfectiousnessConvolution(t *testing.T) {
	inc := []float64{10, 0, 0, 0}
	w := []float64{0, 0.5, 0.3, 0.2}
	lam := Infectiousness(inc, w)
	want := []float64{0, 5, 3, 2}
	for i := range want {
		if math.Abs(lam[i]-want[i]) > 1e-12 {
			t.Fatalf("lambda[%d] = %v, want %v", i, lam[i], want[i])
		}
	}
}

func TestRenewalDeterministicGrowth(t *testing.T) {
	// Constant R > 1 must grow; constant R < 1 must shrink.
	w := DiscretizedGamma(5, 2, 14)
	days := 80
	seed := []float64{50, 50, 50, 50, 50}
	grow := make([]float64, days)
	shrink := make([]float64, days)
	for i := range grow {
		grow[i], shrink[i] = 1.5, 0.7
	}
	incG := RenewalSimulate(grow, seed, w, nil)
	incS := RenewalSimulate(shrink, seed, w, nil)
	if incG[days-1] <= incG[20] {
		t.Fatal("R=1.5 did not grow")
	}
	if incS[days-1] >= incS[20] {
		t.Fatal("R=0.7 did not shrink")
	}
}

func TestRenewalStochasticMatchesMean(t *testing.T) {
	w := DiscretizedGamma(5, 2, 14)
	days := 60
	rt := make([]float64, days)
	for i := range rt {
		rt[i] = 1.2
	}
	seed := []float64{100, 100, 100}
	det := RenewalSimulate(rt, seed, w, nil)
	// Average many stochastic runs; should track the deterministic path.
	nRep := 200
	avg := make([]float64, days)
	root := rng.New(42)
	for rep := 0; rep < nRep; rep++ {
		inc := RenewalSimulate(rt, seed, w, root.Split("rep").Split(string(rune(rep))))
		for i, v := range inc {
			avg[i] += v / float64(nRep)
		}
	}
	rel := math.Abs(avg[days-1]-det[days-1]) / det[days-1]
	if rel > 0.1 {
		t.Fatalf("stochastic mean deviates %v from deterministic", rel)
	}
}

func TestCoriRecoversConstantR(t *testing.T) {
	w := DiscretizedGamma(5, 2, 14)
	days := 100
	rt := make([]float64, days)
	for i := range rt {
		rt[i] = 1.3
	}
	seed := []float64{200, 200, 200, 200, 200}
	inc := RenewalSimulate(rt, seed, w, nil)
	res, err := CoriEstimate(inc, w, 7, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// After burn-in the estimate should sit on the truth.
	for d := 40; d < days; d++ {
		if math.Abs(res.Mean[d]-1.3) > 0.05 {
			t.Fatalf("Cori mean at day %d = %v, want 1.3", d, res.Mean[d])
		}
		if res.Lower[d] > 1.3 || res.Upper[d] < 1.3 {
			t.Fatalf("Cori 95%% CI at day %d (%v,%v) excludes truth", d, res.Lower[d], res.Upper[d])
		}
		if res.Lower[d] >= res.Upper[d] {
			t.Fatal("CI bounds out of order")
		}
	}
}

func TestCoriTracksStepChange(t *testing.T) {
	w := DiscretizedGamma(5, 2, 14)
	days := 140
	rt := make([]float64, days)
	for i := range rt {
		if i < 70 {
			rt[i] = 1.5
		} else {
			rt[i] = 0.8
		}
	}
	seed := []float64{100, 100, 100}
	inc := RenewalSimulate(rt, seed, w, nil)
	res, err := CoriEstimate(inc, w, 7, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean[60] < 1.3 {
		t.Fatalf("pre-change estimate %v too low", res.Mean[60])
	}
	if res.Mean[120] > 0.95 {
		t.Fatalf("post-change estimate %v too high", res.Mean[120])
	}
}

func TestCoriEarlyDaysNaN(t *testing.T) {
	w := DiscretizedGamma(5, 2, 10)
	inc := []float64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	res, err := CoriEstimate(inc, w, 7, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 7; d++ {
		if !math.IsNaN(res.Mean[d]) {
			t.Fatalf("day %d before window fill should be NaN", d)
		}
	}
}

func TestCoriValidation(t *testing.T) {
	w := DiscretizedGamma(5, 2, 10)
	if _, err := CoriEstimate([]float64{1}, w, 0, 1, 0.2); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := CoriEstimate([]float64{1}, w, 7, 0, 0.2); err == nil {
		t.Fatal("zero prior shape accepted")
	}
}

func TestSEIRConservation(t *testing.T) {
	p := SEIRParams{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 1e6}
	init := SEIRState{S: 1e6 - 100, E: 0, I: 100, R: 0}
	traj := SEIRSimulate(p, init, 200)
	for d, st := range traj {
		tot := st.S + st.E + st.I + st.R
		if math.Abs(tot-1e6) > 1 {
			t.Fatalf("day %d population %v != 1e6", d, tot)
		}
		if st.S < 0 || st.E < 0 || st.I < 0 || st.R < 0 {
			t.Fatalf("negative compartment at day %d: %+v", d, st)
		}
	}
}

func TestSEIREpidemicShape(t *testing.T) {
	p := SEIRParams{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 1e6}
	if math.Abs(p.R0()-2.5) > 1e-12 {
		t.Fatalf("R0 = %v, want 2.5", p.R0())
	}
	init := SEIRState{S: 1e6 - 100, I: 100}
	traj := SEIRSimulate(p, init, 300)
	// Epidemic must rise then fall; final size must be large for R0=2.5.
	peak, peakDay := 0.0, 0
	for d, st := range traj {
		if st.I > peak {
			peak, peakDay = st.I, d
		}
	}
	if peakDay < 10 || peakDay > 200 {
		t.Fatalf("peak at day %d implausible", peakDay)
	}
	if traj[300].I > peak/10 {
		t.Fatal("epidemic did not decline after peak")
	}
	attack := traj[300].R / 1e6
	// Final-size equation for R0=2.5 gives ~0.89.
	if math.Abs(attack-0.89) > 0.05 {
		t.Fatalf("attack rate %v, want ~0.89", attack)
	}
}

func TestSEIRSubcriticalDiesOut(t *testing.T) {
	p := SEIRParams{Beta: 0.1, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 1e6}
	init := SEIRState{S: 1e6 - 1000, I: 1000}
	traj := SEIRSimulate(p, init, 200)
	if traj[200].I > 10 {
		t.Fatalf("subcritical epidemic persisted: I=%v", traj[200].I)
	}
}

func TestRenewalVsSEIRIncidenceCorrelation(t *testing.T) {
	// A renewal process with R(t) = R0 * S(t)/N from the SEIR run should
	// produce an incidence curve correlated with the SEIR incidence.
	p := SEIRParams{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 1e6}
	traj := SEIRSimulate(p, SEIRState{S: 1e6 - 200, I: 200}, 150)
	rt := make([]float64, len(traj))
	seirInc := make([]float64, len(traj))
	for d, st := range traj {
		rt[d] = p.R0() * st.S / p.N
		seirInc[d] = st.NewInfections
	}
	w := DiscretizedGamma(8, 3, 20) // SEIR generation time ~ 1/sigma + 1/gamma
	renewal := RenewalSimulate(rt, seirInc[:5], w, nil)
	c := stats.Correlation(renewal[10:], seirInc[10:])
	if c < 0.9 {
		t.Fatalf("renewal and SEIR incidence correlation %v < 0.9", c)
	}
}

func BenchmarkRenewalSimulate(b *testing.B) {
	w := DiscretizedGamma(5, 2, 14)
	rt := make([]float64, 365)
	for i := range rt {
		rt[i] = 1.1
	}
	seed := []float64{100, 100, 100}
	for i := 0; i < b.N; i++ {
		RenewalSimulate(rt, seed, w, nil)
	}
}

func BenchmarkCoriEstimate(b *testing.B) {
	w := DiscretizedGamma(5, 2, 14)
	rt := make([]float64, 365)
	for i := range rt {
		rt[i] = 1.1
	}
	inc := RenewalSimulate(rt, []float64{100, 100, 100}, w, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoriEstimate(inc, w, 7, 1, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStochasticSEIRConservation(t *testing.T) {
	p := SEIRParams{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 10000}
	init := SEIRState{S: 9900, I: 100}
	res, err := SEIRSimulateStochastic(p, init, 150, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for d, st := range res.Days {
		tot := st.S + st.E + st.I + st.R
		if tot != 10000 {
			t.Fatalf("day %d population %v", d, tot)
		}
		if st.S < 0 || st.E < 0 || st.I < 0 || st.R < 0 {
			t.Fatalf("negative compartment on day %d", d)
		}
	}
}

func TestStochasticSEIRMatchesODEOnAverage(t *testing.T) {
	p := SEIRParams{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 100000}
	init := SEIRState{S: 99000, I: 1000}
	det := SEIRSimulate(p, init, 100)
	root := rng.New(2)
	nRep := 40
	avgR := 0.0
	for rep := 0; rep < nRep; rep++ {
		res, err := SEIRSimulateStochastic(p, init, 100, root.Split(string(rune('a'+rep))))
		if err != nil {
			t.Fatal(err)
		}
		avgR += res.Days[100].R / float64(nRep)
	}
	rel := math.Abs(avgR-det[100].R) / det[100].R
	if rel > 0.1 {
		t.Fatalf("stochastic mean final R deviates %.1f%% from ODE", rel*100)
	}
}

func TestStochasticSEIRValidation(t *testing.T) {
	p := SEIRParams{Beta: 0.4, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 100}
	if _, err := SEIRSimulateStochastic(p, SEIRState{S: 90, I: 10}, 10, nil); err == nil {
		t.Fatal("nil stream accepted")
	}
	if _, err := SEIRSimulateStochastic(p, SEIRState{S: -5, I: 10}, 10, rng.New(1)); err == nil {
		t.Fatal("negative init accepted")
	}
	bad := p
	bad.Gamma = 0
	if _, err := SEIRSimulateStochastic(bad, SEIRState{S: 90, I: 10}, 10, rng.New(1)); err == nil {
		t.Fatal("zero gamma accepted")
	}
}

func TestExtinctionProbabilityNearTheory(t *testing.T) {
	// R0 = 2 from a single seed: extinction probability ~ 1/R0 = 0.5.
	p := SEIRParams{Beta: 0.4, Sigma: 1.0 / 2, Gamma: 1.0 / 5, N: 1e6}
	init := SEIRState{S: 1e6 - 1, I: 1}
	got, err := ExtinctionProbability(p, init, 200, 400, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.12 {
		t.Fatalf("extinction probability %v, want ~0.5 for R0=2", got)
	}
}

func TestExtinctionNeverForBigSeed(t *testing.T) {
	p := SEIRParams{Beta: 0.5, Sigma: 1.0 / 3, Gamma: 1.0 / 5, N: 1e6}
	init := SEIRState{S: 1e6 - 500, I: 500}
	got, err := ExtinctionProbability(p, init, 100, 50, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.02 {
		t.Fatalf("large seed extinction probability %v", got)
	}
}
