package epi

import (
	"errors"
	"math"

	"osprey/internal/rng"
)

// StochasticSEIRResult holds one realization of the discrete-time binomial
// SEIR chain.
type StochasticSEIRResult struct {
	Days []SEIRState
	// Extinct reports whether the epidemic died out (I+E reached zero
	// while susceptibles remained).
	Extinct bool
	// CumInfections is the total S->E flow.
	CumInfections int
}

// SEIRSimulateStochastic runs the discrete-time stochastic SEIR chain with
// exact binomial transition draws (the single-population counterpart of
// MetaRVM's engine, kept here as a reference model and for calibrating
// expectations about demographic noise).
func SEIRSimulateStochastic(p SEIRParams, init SEIRState, days int, r *rng.Stream) (*StochasticSEIRResult, error) {
	if r == nil {
		return nil, errors.New("epi: stochastic SEIR needs a random stream")
	}
	if p.N <= 0 || p.Beta < 0 || p.Sigma <= 0 || p.Gamma <= 0 {
		return nil, errors.New("epi: invalid SEIR parameters")
	}
	s := int(math.Round(init.S))
	e := int(math.Round(init.E))
	i := int(math.Round(init.I))
	rec := int(math.Round(init.R))
	if s < 0 || e < 0 || i < 0 || rec < 0 {
		return nil, errors.New("epi: negative initial compartment")
	}

	res := &StochasticSEIRResult{}
	record := func(newInf int) {
		res.Days = append(res.Days, SEIRState{
			S: float64(s), E: float64(e), I: float64(i), R: float64(rec),
			NewInfections: float64(newInf),
		})
	}
	record(0)
	pExitE := 1 - math.Exp(-p.Sigma)
	pExitI := 1 - math.Exp(-p.Gamma)
	for d := 1; d <= days; d++ {
		foi := p.Beta * float64(i) / p.N
		pInf := 1 - math.Exp(-foi)
		newInf := r.Binomial(s, pInf)
		newInfectious := r.Binomial(e, pExitE)
		newRecovered := r.Binomial(i, pExitI)
		s -= newInf
		e += newInf - newInfectious
		i += newInfectious - newRecovered
		rec += newRecovered
		res.CumInfections += newInf
		record(newInf)
	}
	res.Extinct = e == 0 && i == 0 && s > 0
	return res, nil
}

// ExtinctionProbability estimates the chance a seeded epidemic dies out by
// the horizon, over nRep stochastic replicates. For a supercritical branch
// starting from k infectious individuals, theory predicts roughly
// (1/R0)^k — a useful validation target.
func ExtinctionProbability(p SEIRParams, init SEIRState, days, nRep int, root *rng.Stream) (float64, error) {
	if nRep <= 0 {
		return 0, errors.New("epi: nRep must be positive")
	}
	extinct := 0
	for rep := 0; rep < nRep; rep++ {
		res, err := SEIRSimulateStochastic(p, init, days, root.Split("rep").Split(string(rune(rep))))
		if err != nil {
			return 0, err
		}
		if res.Extinct {
			extinct++
		}
	}
	return float64(extinct) / float64(nRep), nil
}
