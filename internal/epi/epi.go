// Package epi provides the epidemic process primitives shared by the
// wastewater R(t) use case: discretized generation-interval distributions,
// renewal-equation epidemic simulation (the infection process underlying
// the Goldstein estimator), the Cori et al. (2013) sliding-window R(t)
// estimator that the paper cites as the "more standard" baseline, and a
// reference SEIR model.
package epi

import (
	"errors"
	"math"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

// DiscretizedGamma returns a probability mass function w[1..maxLag] obtained
// by discretizing a Gamma(shape, rate) distribution onto integer days
// 1..maxLag and renormalizing. w[0] is zero by construction (no same-day
// transmission), matching standard serial-interval handling.
func DiscretizedGamma(meanDays, sdDays float64, maxLag int) []float64 {
	if meanDays <= 0 || sdDays <= 0 || maxLag < 1 {
		panic("epi: DiscretizedGamma requires positive mean, sd and maxLag >= 1")
	}
	shape := meanDays * meanDays / (sdDays * sdDays)
	rate := meanDays / (sdDays * sdDays)
	w := make([]float64, maxLag+1)
	total := 0.0
	for s := 1; s <= maxLag; s++ {
		p := stats.GammaCDF(float64(s), shape, rate) - stats.GammaCDF(float64(s-1), shape, rate)
		w[s] = p
		total += p
	}
	if total <= 0 {
		panic("epi: degenerate generation interval")
	}
	for s := range w {
		w[s] /= total
	}
	return w
}

// Infectiousness computes the total infectiousness Λ_t = Σ_s I_{t-s} w_s for
// each day t given incidence and generation-interval pmf w (with w[0]=0).
func Infectiousness(incidence []float64, w []float64) []float64 {
	out := make([]float64, len(incidence))
	for t := range incidence {
		s := 0.0
		for lag := 1; lag < len(w) && lag <= t; lag++ {
			s += incidence[t-lag] * w[lag]
		}
		out[t] = s
	}
	return out
}

// RenewalSimulate generates an incidence trajectory from a day-indexed R(t)
// series via the stochastic renewal equation I_t ~ Poisson(R_t Λ_t). The
// first len(seed) days are fixed to the seed values. A nil stream gives the
// deterministic mean trajectory.
func RenewalSimulate(rt []float64, seed []float64, w []float64, r *rng.Stream) []float64 {
	n := len(rt)
	inc := make([]float64, n)
	for t := 0; t < n; t++ {
		if t < len(seed) {
			inc[t] = seed[t]
			continue
		}
		lambda := 0.0
		for lag := 1; lag < len(w) && lag <= t; lag++ {
			lambda += inc[t-lag] * w[lag]
		}
		mean := rt[t] * lambda
		if r == nil {
			inc[t] = mean
		} else {
			inc[t] = float64(r.Poisson(mean))
		}
	}
	return inc
}

// CoriResult holds the sliding-window posterior summary of R(t).
type CoriResult struct {
	// Mean, Lower and Upper are day-indexed posterior mean and 95%
	// credible bounds; entries before the window fills are NaN.
	Mean, Lower, Upper []float64
	Window             int
}

// CoriEstimate implements the Cori et al. (2013) estimator: with a
// Gamma(a, b) prior on R and a window of tau days ending at t, the
// posterior is Gamma(a + Σ I, b + Σ Λ). This is the computationally cheap
// baseline the paper contrasts with the Goldstein method.
func CoriEstimate(incidence []float64, w []float64, window int, priorShape, priorRate float64) (*CoriResult, error) {
	if window < 1 {
		return nil, errors.New("epi: window must be >= 1")
	}
	if priorShape <= 0 || priorRate <= 0 {
		return nil, errors.New("epi: prior parameters must be positive")
	}
	n := len(incidence)
	lambda := Infectiousness(incidence, w)
	res := &CoriResult{
		Mean:   make([]float64, n),
		Lower:  make([]float64, n),
		Upper:  make([]float64, n),
		Window: window,
	}
	for t := 0; t < n; t++ {
		if t < window {
			res.Mean[t], res.Lower[t], res.Upper[t] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		var sumI, sumL float64
		for s := t - window + 1; s <= t; s++ {
			sumI += incidence[s]
			sumL += lambda[s]
		}
		shape := priorShape + sumI
		rate := priorRate + sumL
		if rate <= 0 {
			res.Mean[t], res.Lower[t], res.Upper[t] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		res.Mean[t] = shape / rate
		res.Lower[t] = stats.GammaQuantile(0.025, shape, rate)
		res.Upper[t] = stats.GammaQuantile(0.975, shape, rate)
	}
	return res, nil
}

// SEIRParams parameterizes the reference SEIR model.
type SEIRParams struct {
	Beta  float64 // transmission rate per day
	Sigma float64 // 1/latent period
	Gamma float64 // 1/infectious period
	N     float64 // population size
}

// SEIRState is one day's compartment occupancy.
type SEIRState struct {
	S, E, I, R float64
	// NewInfections is the incidence (S->E flow) during the step.
	NewInfections float64
}

// SEIRSimulate integrates the deterministic SEIR ODE with an RK4 step per
// day for `days` days from the given initial state.
func SEIRSimulate(p SEIRParams, init SEIRState, days int) []SEIRState {
	out := make([]SEIRState, days+1)
	out[0] = init
	st := init
	deriv := func(s SEIRState) (dS, dE, dI, dR float64) {
		inf := p.Beta * s.S * s.I / p.N
		return -inf, inf - p.Sigma*s.E, p.Sigma*s.E - p.Gamma*s.I, p.Gamma * s.I
	}
	for d := 1; d <= days; d++ {
		// RK4 with h=1 day, substepped 4x for accuracy.
		const sub = 4
		h := 1.0 / sub
		newInf := 0.0
		for k := 0; k < sub; k++ {
			s1S, s1E, s1I, s1R := deriv(st)
			mid := SEIRState{S: st.S + h/2*s1S, E: st.E + h/2*s1E, I: st.I + h/2*s1I, R: st.R + h/2*s1R}
			s2S, s2E, s2I, s2R := deriv(mid)
			mid2 := SEIRState{S: st.S + h/2*s2S, E: st.E + h/2*s2E, I: st.I + h/2*s2I, R: st.R + h/2*s2R}
			s3S, s3E, s3I, s3R := deriv(mid2)
			end := SEIRState{S: st.S + h*s3S, E: st.E + h*s3E, I: st.I + h*s3I, R: st.R + h*s3R}
			s4S, s4E, s4I, s4R := deriv(end)
			dS := h / 6 * (s1S + 2*s2S + 2*s3S + s4S)
			st.S += dS
			st.E += h / 6 * (s1E + 2*s2E + 2*s3E + s4E)
			st.I += h / 6 * (s1I + 2*s2I + 2*s3I + s4I)
			st.R += h / 6 * (s1R + 2*s2R + 2*s3R + s4R)
			newInf += -dS
		}
		st.NewInfections = newInf
		out[d] = st
	}
	return out
}

// R0 returns the basic reproduction number of the SEIR parameterization.
func (p SEIRParams) R0() float64 { return p.Beta / p.Gamma }
