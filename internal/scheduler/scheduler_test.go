package scheduler

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimpleJobCompletes(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	var ran atomic.Bool
	j, err := c.Submit(JobSpec{Name: "hello", Run: func(ctx context.Context, a Allocation) error {
		ran.Store(true)
		if len(a.Nodes) != 1 {
			t.Errorf("want 1 node, got %d", len(a.Nodes))
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("job body did not run")
	}
	if j.State() != Completed {
		t.Fatalf("state = %v", j.State())
	}
}

func TestFailurePropagates(t *testing.T) {
	c, _ := NewCluster(1)
	defer c.Shutdown()
	boom := errors.New("boom")
	j, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return boom }})
	if err := j.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if j.State() != Failed {
		t.Fatalf("state = %v", j.State())
	}
}

func TestWalltimeKill(t *testing.T) {
	c, _ := NewCluster(1)
	defer c.Shutdown()
	j, _ := c.Submit(JobSpec{
		Walltime: 30 * time.Millisecond,
		Run: func(ctx context.Context, a Allocation) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	if err := j.Wait(); err == nil {
		t.Fatal("walltime overrun not reported")
	}
	if j.State() != Killed {
		t.Fatalf("state = %v, want Killed", j.State())
	}
}

func TestQueueingWhenFull(t *testing.T) {
	c, _ := NewCluster(1)
	defer c.Shutdown()
	release := make(chan struct{})
	j1, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error {
		<-release
		return nil
	}})
	j2, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return nil }})
	time.Sleep(20 * time.Millisecond)
	if j2.State() != Queued {
		t.Fatalf("second job should queue, state = %v", j2.State())
	}
	close(release)
	if err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestBackfillSmallJobJumpsBlockedLarge(t *testing.T) {
	c, _ := NewCluster(2)
	defer c.Shutdown()
	release := make(chan struct{})
	// Occupies 1 node indefinitely.
	hold, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error {
		<-release
		return nil
	}})
	// Needs 2 nodes: blocked.
	big, _ := c.Submit(JobSpec{Nodes: 2, Run: func(ctx context.Context, a Allocation) error { return nil }})
	// Needs 1 node: backfills immediately.
	small, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return nil }})
	if err := small.Wait(); err != nil {
		t.Fatal(err)
	}
	if big.State() != Queued {
		t.Fatalf("big job state = %v, want still Queued", big.State())
	}
	close(release)
	hold.Wait()
	if err := big.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsOversizedJob(t *testing.T) {
	c, _ := NewCluster(2)
	defer c.Shutdown()
	if _, err := c.Submit(JobSpec{Nodes: 3, Run: func(ctx context.Context, a Allocation) error { return nil }}); err == nil {
		t.Fatal("oversized job accepted")
	}
}

func TestRejectsNilRun(t *testing.T) {
	c, _ := NewCluster(1)
	defer c.Shutdown()
	if _, err := c.Submit(JobSpec{}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

func TestShutdownKillsQueuedAndRunning(t *testing.T) {
	c, _ := NewCluster(1)
	j1, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	j2, _ := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return nil }})
	time.Sleep(10 * time.Millisecond)
	c.Shutdown()
	j1.Wait()
	j2.Wait()
	if j2.State() != Killed {
		t.Fatalf("queued job state after shutdown = %v", j2.State())
	}
	if _, err := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return nil }}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown submit err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, _ := NewCluster(4)
	defer c.Shutdown()
	jobs := make([]*Job, 8)
	for i := range jobs {
		j, err := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error {
			time.Sleep(10 * time.Millisecond)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Submitted != 8 || st.Completed != 8 || st.Failed != 0 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if st.BusyNodeSecs <= 0 {
		t.Fatal("no busy time recorded")
	}
	if st.UtilizationPct <= 0 || st.UtilizationPct > 100.01 {
		t.Fatalf("utilization %v out of range", st.UtilizationPct)
	}
}

func TestMultiNodeAllocation(t *testing.T) {
	c, _ := NewCluster(4)
	defer c.Shutdown()
	j, _ := c.Submit(JobSpec{Nodes: 3, Run: func(ctx context.Context, a Allocation) error {
		if len(a.Nodes) != 3 {
			t.Errorf("allocation has %d nodes", len(a.Nodes))
		}
		seen := map[int]bool{}
		for _, n := range a.Nodes {
			if seen[n] {
				t.Error("duplicate node in allocation")
			}
			seen[n] = true
		}
		return nil
	}})
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.FreeNodes() != 4 {
		t.Fatalf("nodes not released: %d free", c.FreeNodes())
	}
}

func TestManyConcurrentJobs(t *testing.T) {
	c, _ := NewCluster(8)
	defer c.Shutdown()
	var count atomic.Int64
	jobs := make([]*Job, 100)
	for i := range jobs {
		j, err := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error {
			count.Add(1)
			return nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100 jobs", count.Load())
	}
}

func TestHeterogeneousPartitions(t *testing.T) {
	c, err := NewHeterogeneousCluster(map[string]int{"cpu": 2, "gpu": 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if c.Partitions()["gpu"] != 1 || c.Partitions()["cpu"] != 2 {
		t.Fatalf("partitions = %v", c.Partitions())
	}

	release := make(chan struct{})
	gpuJob, err := c.Submit(JobSpec{NodeKind: "gpu", Run: func(ctx context.Context, a Allocation) error {
		<-release
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// A second GPU job must queue even though CPU nodes are idle:
	// partitions do not substitute for each other.
	gpuJob2, err := c.Submit(JobSpec{NodeKind: "gpu", Run: func(ctx context.Context, a Allocation) error {
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// A CPU job runs immediately alongside.
	cpuJob, err := c.Submit(JobSpec{NodeKind: "cpu", Run: func(ctx context.Context, a Allocation) error {
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cpuJob.Wait(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if gpuJob2.State() != Queued {
		t.Fatalf("second GPU job state = %v, want Queued behind the busy partition", gpuJob2.State())
	}
	close(release)
	if err := gpuJob.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := gpuJob2.Wait(); err != nil {
		t.Fatal(err)
	}
	if c.FreeNodesOf("gpu") != 1 || c.FreeNodesOf("cpu") != 2 {
		t.Fatal("partition nodes not returned")
	}
}

func TestUnknownPartitionRejected(t *testing.T) {
	c, _ := NewCluster(2)
	defer c.Shutdown()
	if _, err := c.Submit(JobSpec{NodeKind: "tpu", Run: func(ctx context.Context, a Allocation) error {
		return nil
	}}); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestDefaultKindBackCompat(t *testing.T) {
	c, _ := NewCluster(2)
	defer c.Shutdown()
	j, err := c.Submit(JobSpec{Run: func(ctx context.Context, a Allocation) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	if j.Spec.NodeKind != DefaultKind {
		t.Fatalf("kind defaulted to %q", j.Spec.NodeKind)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	if _, err := NewHeterogeneousCluster(map[string]int{"": 2}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := NewHeterogeneousCluster(map[string]int{"cpu": 0}); err == nil {
		t.Fatal("empty partition accepted")
	}
	if _, err := NewHeterogeneousCluster(nil); err == nil {
		t.Fatal("no partitions accepted")
	}
}
