// Package scheduler simulates an HPC batch scheduler (PBS/SLURM in the
// paper): a fixed pool of nodes, a submission queue with first-fit backfill,
// walltime enforcement, and utilization accounting. The paper's workflows
// depend on this substrate twice: Globus Compute queues the R(t) analysis
// "on Bebop's PBS scheduler to run the function on one node" (§2.2), and
// EMEWS "starts a worker pool by submitting a job to the compute resource
// scheduler" (§3.2).
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"osprey/internal/obs"
)

// Process-wide scheduler metrics (additive across clusters, like the
// EMEWS set in internal/emews/metrics.go).
var (
	mJobsSubmitted = obs.GetCounter("sched.jobs.submitted")
	mJobsCompleted = obs.GetCounter("sched.jobs.completed")
	mJobsFailed    = obs.GetCounter("sched.jobs.failed")
	mJobsKilled    = obs.GetCounter("sched.jobs.killed")
	mQueueDepth    = obs.GetGauge("sched.queue.depth")
	mJobsRunning   = obs.GetGauge("sched.jobs.running")
	mNodesBusy     = obs.GetGauge("sched.nodes.busy")
	mJobWait       = obs.GetHistogram("sched.job.wait_seconds")
	mJobRun        = obs.GetHistogram("sched.job.run_seconds")
)

// JobState enumerates the lifecycle of a job.
type JobState int

const (
	Queued JobState = iota
	Running
	Completed
	Failed
	Killed // exceeded walltime or cluster shut down
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case Killed:
		return "killed"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// Allocation describes the nodes granted to a running job.
type Allocation struct {
	JobID int
	Nodes []int
}

// JobSpec describes a batch submission. Run executes on the allocation; it
// must honor ctx cancellation, which fires at walltime expiry or shutdown.
type JobSpec struct {
	Name  string
	Nodes int
	// NodeKind requests a specific partition ("cpu", "gpu", ...); empty
	// means the default kind. OSPREY's first goal calls for "allocating
	// heterogeneous resources (CPU, GPU, and accelerators) based on task
	// needs" — kinds are how jobs express those needs.
	NodeKind string
	Walltime time.Duration // 0 means unlimited
	Run      func(ctx context.Context, alloc Allocation) error
}

// DefaultKind is the node kind assumed when none is specified.
const DefaultKind = "cpu"

// Job is a handle to a submitted job.
type Job struct {
	ID   int
	Spec JobSpec

	mu        sync.Mutex
	state     JobState
	err       error
	done      chan struct{}
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Wait blocks until the job reaches a terminal state and returns its error.
func (j *Job) Wait() error {
	<-j.done
	return j.Err()
}

// Done returns a channel closed when the job terminates.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setState(s JobState, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == Completed || j.state == Failed || j.state == Killed {
		return
	}
	j.state = s
	switch s {
	case Running:
		j.started = time.Now()
	case Completed, Failed, Killed:
		j.err = err
		j.finished = time.Now()
		close(j.done)
	}
}

// Stats reports cluster accounting.
type Stats struct {
	Nodes          int
	Submitted      int
	Completed      int
	Failed         int
	Killed         int
	QueuedNow      int
	RunningNow     int
	BusyNodeSecs   float64
	ElapsedSecs    float64
	UtilizationPct float64
}

// Cluster is a simulated batch system. Create with NewCluster (homogeneous)
// or NewHeterogeneousCluster (multiple partitions); Shutdown kills running
// jobs and rejects new submissions.
type Cluster struct {
	mu        sync.Mutex
	free      map[string][]int // kind -> free node ids
	capacity  map[string]int   // kind -> partition size
	total     int
	queue     []*Job
	running   map[int]*queuedRun
	nextID    int
	shutdown  bool
	submitted int
	completed int
	failed    int
	killed    int
	busySecs  float64
	epoch     time.Time
	// gQueued/gRunning/gBusy are the levels this cluster last published to
	// the process-wide gauges (see updateGaugesLocked).
	gQueued  int
	gRunning int
	gBusy    int
}

type queuedRun struct {
	job    *Job
	nodes  []int
	cancel context.CancelFunc
	start  time.Time
}

// NewCluster creates a homogeneous cluster of DefaultKind nodes.
func NewCluster(nodes int) (*Cluster, error) {
	return NewHeterogeneousCluster(map[string]int{DefaultKind: nodes})
}

// NewHeterogeneousCluster creates a cluster with one partition per node
// kind, e.g. {"cpu": 8, "gpu": 2}.
func NewHeterogeneousCluster(partitions map[string]int) (*Cluster, error) {
	c := &Cluster{
		free:     map[string][]int{},
		capacity: map[string]int{},
		running:  map[int]*queuedRun{},
		epoch:    time.Now(),
	}
	id := 0
	for kind, n := range partitions {
		if kind == "" {
			return nil, errors.New("scheduler: empty partition kind")
		}
		if n <= 0 {
			return nil, fmt.Errorf("scheduler: partition %q needs at least one node", kind)
		}
		for i := 0; i < n; i++ {
			c.free[kind] = append(c.free[kind], id)
			id++
		}
		c.capacity[kind] = n
		c.total += n
	}
	if c.total == 0 {
		return nil, errors.New("scheduler: cluster needs at least one node")
	}
	return c, nil
}

// ErrShutdown is returned by Submit after Shutdown.
var ErrShutdown = errors.New("scheduler: cluster is shut down")

// Submit enqueues a job. Scheduling is first-fit over the queue order
// (EASY-style backfill: a later small job may start ahead of a blocked
// larger one).
func (c *Cluster) Submit(spec JobSpec) (*Job, error) {
	if spec.Run == nil {
		return nil, errors.New("scheduler: JobSpec.Run is required")
	}
	if spec.Nodes <= 0 {
		spec.Nodes = 1
	}
	if spec.NodeKind == "" {
		spec.NodeKind = DefaultKind
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return nil, ErrShutdown
	}
	capacity, ok := c.capacity[spec.NodeKind]
	if !ok {
		return nil, fmt.Errorf("scheduler: no %q partition on this cluster", spec.NodeKind)
	}
	if spec.Nodes > capacity {
		return nil, fmt.Errorf("scheduler: job wants %d %s nodes, partition has %d",
			spec.Nodes, spec.NodeKind, capacity)
	}
	c.nextID++
	job := &Job{ID: c.nextID, Spec: spec, done: make(chan struct{}), submitted: time.Now()}
	c.submitted++
	mJobsSubmitted.Inc()
	c.queue = append(c.queue, job)
	c.schedLocked()
	c.updateGaugesLocked()
	return job, nil
}

// updateGaugesLocked refreshes the queue/running/busy-node gauges. Caller
// holds c.mu. Gauges are additive across clusters, so the refresh applies
// the delta from this cluster's last published levels.
func (c *Cluster) updateGaugesLocked() {
	busy := 0
	for _, run := range c.running {
		busy += len(run.nodes)
	}
	mQueueDepth.Add(int64(len(c.queue) - c.gQueued))
	mJobsRunning.Add(int64(len(c.running) - c.gRunning))
	mNodesBusy.Add(int64(busy - c.gBusy))
	c.gQueued, c.gRunning, c.gBusy = len(c.queue), len(c.running), busy
}

// schedLocked starts every queued job whose partition has room. Caller
// holds c.mu.
func (c *Cluster) schedLocked() {
	remaining := c.queue[:0]
	for _, job := range c.queue {
		kind := job.Spec.NodeKind
		if free := c.free[kind]; len(free) >= job.Spec.Nodes {
			alloc := append([]int(nil), free[:job.Spec.Nodes]...)
			c.free[kind] = free[job.Spec.Nodes:]
			c.startLocked(job, alloc)
		} else {
			remaining = append(remaining, job)
		}
	}
	c.queue = append([]*Job(nil), remaining...)
}

func (c *Cluster) startLocked(job *Job, nodes []int) {
	ctx, cancel := context.WithCancel(context.Background())
	if job.Spec.Walltime > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), job.Spec.Walltime)
	}
	run := &queuedRun{job: job, nodes: nodes, cancel: cancel, start: time.Now()}
	c.running[job.ID] = run
	job.setState(Running, nil)
	mJobWait.Observe(run.start.Sub(job.submitted))
	go func() {
		span := obs.StartSpan("sched.job")
		span.SetDetail(fmt.Sprintf("%s (%d nodes)", job.Spec.Name, len(nodes)))
		err := job.Spec.Run(ctx, Allocation{JobID: job.ID, Nodes: nodes})
		timedOut := ctx.Err() == context.DeadlineExceeded
		mJobRun.ObserveSince(run.start)

		c.mu.Lock()
		delete(c.running, job.ID)
		kind := job.Spec.NodeKind
		c.free[kind] = append(c.free[kind], nodes...)
		c.busySecs += time.Since(run.start).Seconds() * float64(len(nodes))
		switch {
		case timedOut:
			c.killed++
			mJobsKilled.Inc()
		case err != nil:
			c.failed++
			mJobsFailed.Inc()
		default:
			c.completed++
			mJobsCompleted.Inc()
		}
		c.schedLocked()
		c.updateGaugesLocked()
		c.mu.Unlock()

		cancel()
		switch {
		case timedOut:
			job.setState(Killed, fmt.Errorf("scheduler: job %d exceeded walltime %v", job.ID, job.Spec.Walltime))
			span.EndErr(fmt.Errorf("killed: exceeded walltime %v", job.Spec.Walltime))
		case err != nil:
			job.setState(Failed, err)
			span.EndErr(err)
		default:
			job.setState(Completed, nil)
			span.End()
		}
	}()
}

// Shutdown cancels running jobs, fails queued jobs, and rejects future
// submissions. It does not wait for job goroutines to observe cancellation.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	queued := c.queue
	c.queue = nil
	var cancels []context.CancelFunc
	for _, run := range c.running {
		cancels = append(cancels, run.cancel)
	}
	c.updateGaugesLocked()
	c.mu.Unlock()
	for _, job := range queued {
		job.setState(Killed, ErrShutdown)
		c.mu.Lock()
		c.killed++
		mJobsKilled.Inc()
		c.mu.Unlock()
	}
	for _, cancel := range cancels {
		cancel()
	}
}

// Stats snapshots accounting counters. Utilization is busy node-seconds over
// total node-seconds since the cluster epoch.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.epoch).Seconds()
	busy := c.busySecs
	for _, run := range c.running {
		busy += time.Since(run.start).Seconds() * float64(len(run.nodes))
	}
	util := 0.0
	if elapsed > 0 {
		util = 100 * busy / (elapsed * float64(c.total))
	}
	return Stats{
		Nodes:          c.total,
		Submitted:      c.submitted,
		Completed:      c.completed,
		Failed:         c.failed,
		Killed:         c.killed,
		QueuedNow:      len(c.queue),
		RunningNow:     len(c.running),
		BusyNodeSecs:   busy,
		ElapsedSecs:    elapsed,
		UtilizationPct: util,
	}
}

// FreeNodes reports currently idle nodes across all partitions.
func (c *Cluster) FreeNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, free := range c.free {
		n += len(free)
	}
	return n
}

// FreeNodesOf reports idle nodes in one partition.
func (c *Cluster) FreeNodesOf(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free[kind])
}

// Partitions returns the configured partition sizes.
func (c *Cluster) Partitions() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.capacity))
	for k, v := range c.capacity {
		out[k] = v
	}
	return out
}
