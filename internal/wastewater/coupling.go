package wastewater

import (
	"errors"

	"osprey/internal/rng"
)

// GenerateFromIncidence produces a plant's observed concentration series
// from an externally supplied infection-incidence trajectory, rather than
// the package's internal renewal process. This couples the two use cases:
// a MetaRVM simulation (use case 2) can drive the wastewater observation
// model whose inversion is use case 1 — the paper's future-work direction
// of "epidemiological analyses ... directly integrated via OSPREY-enabled
// automation".
//
// The incidence is interpreted as infections within the plant's sewershed
// per day; the observation model (shedding kernel, flow dilution,
// log-normal noise, sampling cadence) matches Generate.
func GenerateFromIncidence(p Plant, incidence []float64, sc Scenario, stream *rng.Stream) (*Series, error) {
	if len(incidence) == 0 {
		return nil, errors.New("wastewater: empty incidence series")
	}
	for _, v := range incidence {
		if v < 0 {
			return nil, errors.New("wastewater: negative incidence")
		}
	}
	if p.SampleEvery < 1 {
		p.SampleEvery = 1
	}
	if sc.SheddingMean <= 0 {
		sc.SheddingMean = 6
	}
	if sc.SheddingSD <= 0 {
		sc.SheddingSD = 3
	}
	sc.Days = len(incidence)

	shed := SheddingKernel(sc.SheddingMean, sc.SheddingSD, 28)
	const loadPerInfection = 1e9
	noise := stream.Split("noise")
	s := &Series{
		Plant:         p,
		Scenario:      sc,
		TrueIncidence: append([]float64(nil), incidence...),
		TrueRt:        append([]float64(nil), sc.Rt...),
	}
	for d := 0; d < sc.Days; d++ {
		if d%p.SampleEvery != 0 {
			continue
		}
		load := 0.0
		for lag := 0; lag < len(shed) && lag <= d; lag++ {
			load += incidence[d-lag] * shed[lag]
		}
		expected := load * loadPerInfection / (p.FlowML * 1e6)
		if expected <= 0 {
			continue
		}
		obs := expected * noise.LogNormal(0, p.NoiseSigma)
		s.Observations = append(s.Observations, Observation{Day: d, Concentration: obs})
	}
	return s, nil
}
