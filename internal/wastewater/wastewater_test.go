package wastewater

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

func TestChicagoPlantsMatchPaper(t *testing.T) {
	plants := ChicagoPlants()
	want := []string{"O'Brien", "Calumet", "Stickney South", "Stickney North"}
	if len(plants) != 4 {
		t.Fatalf("paper uses 4 plants, got %d", len(plants))
	}
	for i, p := range plants {
		if p.Name != want[i] {
			t.Fatalf("plant %d = %q, want %q", i, p.Name, want[i])
		}
		if p.Population <= 0 || p.FlowML <= 0 || p.NoiseSigma <= 0 {
			t.Fatalf("plant %q has invalid parameters: %+v", p.Name, p)
		}
	}
}

func TestSheddingKernelIsPMF(t *testing.T) {
	w := SheddingKernel(6, 3, 28)
	sum := 0.0
	for _, v := range w {
		if v < 0 {
			t.Fatal("negative kernel weight")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("kernel sums to %v", sum)
	}
	if w[0] <= 0 {
		t.Fatal("shedding should begin at infection (day 0)")
	}
}

func TestDefaultScenarioShape(t *testing.T) {
	sc := DefaultScenario(120)
	if len(sc.Rt) != 120 {
		t.Fatal("Rt length mismatch")
	}
	if sc.Rt[0] < 1.3 {
		t.Fatalf("scenario should start above 1.3, got %v", sc.Rt[0])
	}
	mid := sc.Rt[60]
	if mid > 1 {
		t.Fatalf("scenario should dip below 1 mid-series, got %v", mid)
	}
	if sc.Rt[119] <= mid {
		t.Fatal("scenario should rebound at the end")
	}
}

func TestGenerateTracksTruth(t *testing.T) {
	sc := DefaultScenario(120)
	p := ChicagoPlants()[0]
	s := Generate(p, sc, rng.New(1))
	if len(s.Observations) == 0 {
		t.Fatal("no observations generated")
	}
	// Sampling cadence respected.
	for _, o := range s.Observations {
		if o.Day%p.SampleEvery != 0 {
			t.Fatalf("observation on off-cadence day %d", o.Day)
		}
		if o.Concentration <= 0 {
			t.Fatalf("nonpositive concentration %v", o.Concentration)
		}
	}
	// The log-concentration series must correlate with the log of the
	// shedding-smoothed incidence: the signal is noisy but present.
	var lc, li []float64
	for _, o := range s.Observations {
		if o.Day < 10 {
			continue
		}
		lc = append(lc, math.Log(o.Concentration))
		li = append(li, math.Log(s.TrueIncidence[o.Day]+1))
	}
	if c := stats.Correlation(lc, li); c < 0.6 {
		t.Fatalf("log concentration/incidence correlation %v < 0.6", c)
	}
}

func TestGenerateAllSharesTruthDiffersInNoise(t *testing.T) {
	sc := DefaultScenario(100)
	all := GenerateAll(ChicagoPlants(), sc, rng.New(5))
	if len(all) != 4 {
		t.Fatal("want 4 series")
	}
	for _, s := range all {
		for d := range s.TrueRt {
			if s.TrueRt[d] != sc.Rt[d] {
				t.Fatal("plants must share the regional ground-truth R(t)")
			}
		}
	}
	// Different plants see different noise realizations.
	if all[0].Observations[5].Concentration == all[1].Observations[5].Concentration {
		t.Fatal("two plants produced identical observations")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	sc := DefaultScenario(60)
	s := Generate(ChicagoPlants()[1], sc, rng.New(2))
	text := s.CSV(-1)
	if !strings.HasPrefix(text, "day,concentration,plant\n") {
		t.Fatal("missing CSV header")
	}
	obs, err := ParseCSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(s.Observations) {
		t.Fatalf("round trip lost observations: %d vs %d", len(obs), len(s.Observations))
	}
	for i, o := range obs {
		if o.Day != s.Observations[i].Day {
			t.Fatal("day mismatch after round trip")
		}
		rel := math.Abs(o.Concentration-s.Observations[i].Concentration) / s.Observations[i].Concentration
		if rel > 1e-5 {
			t.Fatalf("concentration mismatch after round trip: %v", rel)
		}
	}
}

func TestCSVTruncation(t *testing.T) {
	sc := DefaultScenario(60)
	s := Generate(ChicagoPlants()[0], sc, rng.New(3))
	obs, err := ParseCSV(strings.NewReader(s.CSV(30)))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range obs {
		if o.Day > 30 {
			t.Fatalf("observation past cutoff day: %d", o.Day)
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"day,concentration,plant\nnotanumber,1.5,x",
		"day,concentration,plant\n3,notanumber,x",
		"day,concentration,plant\n3,-2,x",
		"day,concentration,plant\n3",
	}
	for _, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("bad CSV accepted: %q", c)
		}
	}
}

func TestParseCSVSortsByDay(t *testing.T) {
	obs, err := ParseCSV(strings.NewReader("10,5.0\n2,3.0\n6,4.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].Day < obs[i-1].Day {
			t.Fatal("observations not sorted")
		}
	}
}

func TestLiveSourceAdvanceAndETag(t *testing.T) {
	sc := DefaultScenario(90)
	s := Generate(ChicagoPlants()[0], sc, rng.New(4))
	ls := NewLiveSource(s, 30)
	srv := httptest.NewServer(ls)
	defer srv.Close()

	get := func(etag string) (int, string, string) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(strings.Builder)
		b := make([]byte, 64*1024)
		for {
			n, err := resp.Body.Read(b)
			buf.Write(b[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, buf.String(), resp.Header.Get("ETag")
	}

	code, body1, etag1 := get("")
	if code != http.StatusOK || etag1 == "" {
		t.Fatalf("first fetch: code %d etag %q", code, etag1)
	}
	// Conditional fetch with matching ETag: 304.
	code, _, _ = get(etag1)
	if code != http.StatusNotModified {
		t.Fatalf("matching ETag returned %d, want 304", code)
	}
	// Advance time: content and ETag change.
	ls.Advance(14)
	code, body2, etag2 := get(etag1)
	if code != http.StatusOK {
		t.Fatalf("post-advance fetch returned %d", code)
	}
	if etag2 == etag1 {
		t.Fatal("ETag unchanged after data update")
	}
	if len(body2) <= len(body1) {
		t.Fatal("feed did not grow after Advance")
	}
}

func TestLiveSourceClampsToScenarioEnd(t *testing.T) {
	sc := DefaultScenario(50)
	s := Generate(ChicagoPlants()[0], sc, rng.New(6))
	ls := NewLiveSource(s, 45)
	if got := ls.Advance(100); got != 50 {
		t.Fatalf("Advance past end = %d, want clamp to 50", got)
	}
}

func TestLiveSourceRejectsPost(t *testing.T) {
	sc := DefaultScenario(50)
	s := Generate(ChicagoPlants()[0], sc, rng.New(7))
	srv := httptest.NewServer(NewLiveSource(s, 10))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST returned %d", resp.StatusCode)
	}
}

func BenchmarkGenerate(b *testing.B) {
	sc := DefaultScenario(120)
	p := ChicagoPlants()[0]
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		Generate(p, sc, r.Split("bench"))
	}
}

func TestGenerateFromIncidenceValidation(t *testing.T) {
	p := ChicagoPlants()[0]
	if _, err := GenerateFromIncidence(p, nil, Scenario{}, rng.New(1)); err == nil {
		t.Fatal("empty incidence accepted")
	}
	if _, err := GenerateFromIncidence(p, []float64{1, -2}, Scenario{}, rng.New(1)); err == nil {
		t.Fatal("negative incidence accepted")
	}
}

func TestGenerateFromIncidenceTracksSignal(t *testing.T) {
	p := ChicagoPlants()[0]
	p.SampleEvery = 1
	// A triangular incidence pulse must show up as a (lagged, smoothed)
	// concentration pulse.
	days := 90
	inc := make([]float64, days)
	for d := 20; d < 50; d++ {
		inc[d] = float64(500 - 30*absInt(d-35))
		if inc[d] < 0 {
			inc[d] = 0
		}
	}
	s, err := GenerateFromIncidence(p, inc, Scenario{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TrueIncidence) != days {
		t.Fatal("incidence not recorded")
	}
	// The peak observed concentration should land after the incidence
	// peak (shedding lag) and before the series end.
	peakDay, peakVal := 0, 0.0
	for _, o := range s.Observations {
		if o.Concentration > peakVal {
			peakVal, peakDay = o.Concentration, o.Day
		}
	}
	if peakDay < 35 || peakDay > 60 {
		t.Fatalf("concentration peak at day %d, want after incidence peak 35", peakDay)
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
