package wastewater

import (
	"strings"
	"testing"

	"osprey/internal/rng"
)

func TestCleanDropsNonpositive(t *testing.T) {
	obs := []Observation{
		{Day: 0, Concentration: 10},
		{Day: 2, Concentration: -1},
		{Day: 4, Concentration: 0},
		{Day: 6, Concentration: 12},
	}
	cleaned, report := CleanObservations(obs, QualityOptions{})
	if len(cleaned) != 2 {
		t.Fatalf("kept %d, want 2", len(cleaned))
	}
	if report.Dropped != 2 || report.Input != 4 || report.Kept != 2 {
		t.Fatalf("report wrong: %+v", report)
	}
	nonpos := 0
	for _, iss := range report.Issues {
		if iss.Kind == "nonpositive" {
			nonpos++
		}
	}
	if nonpos != 2 {
		t.Fatalf("nonpositive issues = %d", nonpos)
	}
}

func TestCleanDropsIsolatedSpike(t *testing.T) {
	// Smooth series with one 1000x spike: the spike goes, the rest stays.
	var obs []Observation
	for d := 0; d < 40; d += 2 {
		c := 100.0 + float64(d)
		if d == 20 {
			c = 150000
		}
		obs = append(obs, Observation{Day: d, Concentration: c})
	}
	cleaned, report := CleanObservations(obs, QualityOptions{})
	for _, o := range cleaned {
		if o.Concentration > 100000 {
			t.Fatal("spike survived cleaning")
		}
	}
	if report.Dropped != 1 {
		t.Fatalf("dropped %d, want exactly the spike", report.Dropped)
	}
	if report.Issues[0].Kind != "spike" {
		t.Fatalf("issue kind %q", report.Issues[0].Kind)
	}
}

func TestCleanKeepsEpidemicGrowth(t *testing.T) {
	// A genuine epidemic doubling every 4 days must NOT be flagged: the
	// log-scale screen sees steady growth, not spikes.
	sc := DefaultScenario(120)
	s := Generate(ChicagoPlants()[0], sc, rng.New(8))
	cleaned, report := CleanObservations(s.Observations, QualityOptions{})
	frac := float64(len(cleaned)) / float64(len(s.Observations))
	if frac < 0.97 {
		t.Fatalf("cleaning dropped %.0f%% of legitimate data (%d issues)",
			(1-frac)*100, len(report.Issues))
	}
}

func TestCleanFlagsGaps(t *testing.T) {
	obs := []Observation{
		{Day: 0, Concentration: 10},
		{Day: 2, Concentration: 11},
		{Day: 40, Concentration: 12}, // 38-day gap
	}
	_, report := CleanObservations(obs, QualityOptions{})
	found := false
	for _, iss := range report.Issues {
		if iss.Kind == "gap" && iss.Day == 40 {
			found = true
		}
	}
	if !found {
		t.Fatalf("gap not flagged: %+v", report.Issues)
	}
	// Gaps are reported, not dropped.
	if report.Dropped != 0 {
		t.Fatal("gap handling dropped data")
	}
}

func TestCleanEmptyInput(t *testing.T) {
	cleaned, report := CleanObservations(nil, QualityOptions{})
	if cleaned != nil || report.Input != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestParseCSVSkipsComments(t *testing.T) {
	text := "day,concentration\n# quality: input=3 kept=2 dropped=1\n1,5.0\n# quality-issue: day=2 kind=spike\n3,6.0\n"
	obs, err := ParseCSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 {
		t.Fatalf("parsed %d observations, want 2", len(obs))
	}
}
