// Package wastewater provides the synthetic stand-in for the Illinois
// Wastewater Surveillance System data the paper ingests (§2): a mechanistic
// generator of pathogen-concentration time series for the four Chicago-area
// water reclamation plants, and a live HTTP CSV source whose content
// advances over (simulated) time so the AERO polling/trigger path is
// exercised exactly as it would be against the real feed.
//
// The generator simulates a regional epidemic with a known ground-truth
// R(t) via the renewal equation, convolves infections with a fecal-shedding
// load kernel, dilutes by plant flow, and applies log-normal measurement
// noise — the observation model of the Goldstein method (Goldstein et al.
// 2024) that internal/rt inverts. Because the truth is known, the full
// pipeline can be validated in a way production data never allows.
package wastewater

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"osprey/internal/epi"
	"osprey/internal/rng"
	"osprey/internal/stats"
)

// Plant describes one water reclamation plant.
type Plant struct {
	Name string
	// Population served by the plant's sewershed.
	Population int
	// FlowML is the average daily flow in megaliters, used for dilution.
	FlowML float64
	// NoiseSigma is the log-scale standard deviation of measurement noise.
	NoiseSigma float64
	// SampleEvery is the sampling cadence in days (1 = daily).
	SampleEvery int
}

// ChicagoPlants returns the four plants of the paper's use case: O'Brien,
// Calumet, Stickney South and Stickney North, with approximate populations
// served.
func ChicagoPlants() []Plant {
	return []Plant{
		{Name: "O'Brien", Population: 1300000, FlowML: 900, NoiseSigma: 0.45, SampleEvery: 2},
		{Name: "Calumet", Population: 1000000, FlowML: 1100, NoiseSigma: 0.55, SampleEvery: 2},
		{Name: "Stickney South", Population: 1200000, FlowML: 1400, NoiseSigma: 0.5, SampleEvery: 2},
		{Name: "Stickney North", Population: 1100000, FlowML: 1300, NoiseSigma: 0.5, SampleEvery: 2},
	}
}

// Scenario is the regional ground truth driving every plant.
type Scenario struct {
	Days int
	// Rt is the day-indexed ground-truth effective reproduction number.
	Rt []float64
	// SeedInfectionsPerCapita seeds the first week of the epidemic.
	SeedInfectionsPerCapita float64
	// GenerationMean/SD parameterize the generation-interval gamma.
	GenerationMean, GenerationSD float64
	// SheddingMean/SD parameterize the shedding-load kernel gamma.
	SheddingMean, SheddingSD float64
}

// DefaultScenario returns a two-phase wave: R(t) starts around 1.4, falls
// below 1 mid-series and partially rebounds — the kind of trend-change
// public health surveillance needs to detect.
func DefaultScenario(days int) Scenario {
	rt := make([]float64, days)
	for d := 0; d < days; d++ {
		frac := float64(d) / float64(days)
		switch {
		case frac < 0.3:
			rt[d] = 1.4 - 0.5*frac/0.3
		case frac < 0.6:
			rt[d] = 0.9 - 0.15*(frac-0.3)/0.3
		default:
			rt[d] = 0.75 + 0.45*(frac-0.6)/0.4
		}
	}
	return Scenario{
		Days: days, Rt: rt,
		SeedInfectionsPerCapita: 2e-4,
		GenerationMean:          5.2, GenerationSD: 1.9,
		SheddingMean: 6.0, SheddingSD: 3.0,
	}
}

// SheddingKernel discretizes the gamma shedding-load curve onto days
// 0..maxLag (shedding begins at infection) and normalizes to unit total
// load.
func SheddingKernel(meanDays, sdDays float64, maxLag int) []float64 {
	if meanDays <= 0 || sdDays <= 0 || maxLag < 1 {
		panic("wastewater: SheddingKernel requires positive mean, sd, maxLag")
	}
	shape := meanDays * meanDays / (sdDays * sdDays)
	rate := meanDays / (sdDays * sdDays)
	w := make([]float64, maxLag+1)
	total := 0.0
	for s := 0; s <= maxLag; s++ {
		p := stats.GammaCDF(float64(s+1), shape, rate) - stats.GammaCDF(float64(s), shape, rate)
		w[s] = p
		total += p
	}
	for s := range w {
		w[s] /= total
	}
	return w
}

// Observation is one measured concentration.
type Observation struct {
	Day           int
	Concentration float64 // genome copies per liter (arbitrary units)
}

// Series is a complete generated dataset for one plant, including the
// latent truth for validation.
type Series struct {
	Plant        Plant
	Scenario     Scenario
	Observations []Observation
	// TrueIncidence and TrueRt are the latent ground truth, never exposed
	// over the data feed; estimators are scored against them.
	TrueIncidence []float64
	TrueRt        []float64
}

// Generate simulates a plant's dataset. The per-plant stream decouples
// plant noise while the shared scenario keeps the regional truth common, as
// in the paper's multi-plant aggregation.
func Generate(p Plant, sc Scenario, stream *rng.Stream) *Series {
	if p.SampleEvery < 1 {
		p.SampleEvery = 1
	}
	w := epi.DiscretizedGamma(sc.GenerationMean, sc.GenerationSD, 20)
	seedDays := 7
	seed := make([]float64, seedDays)
	for i := range seed {
		seed[i] = sc.SeedInfectionsPerCapita * float64(p.Population)
	}
	inc := epi.RenewalSimulate(sc.Rt, seed, w, stream.Split("renewal"))

	shed := SheddingKernel(sc.SheddingMean, sc.SheddingSD, 28)
	// Expected concentration: total shed load / daily flow (liters).
	// loadPerInfection is an arbitrary but fixed genome-copies scale.
	const loadPerInfection = 1e9
	noise := stream.Split("noise")
	s := &Series{Plant: p, Scenario: sc, TrueIncidence: inc, TrueRt: append([]float64(nil), sc.Rt...)}
	for d := 0; d < sc.Days; d++ {
		if d%p.SampleEvery != 0 {
			continue
		}
		load := 0.0
		for lag := 0; lag < len(shed) && lag <= d; lag++ {
			load += inc[d-lag] * shed[lag]
		}
		expected := load * loadPerInfection / (p.FlowML * 1e6)
		if expected <= 0 {
			continue
		}
		obs := expected * noise.LogNormal(0, p.NoiseSigma)
		s.Observations = append(s.Observations, Observation{Day: d, Concentration: obs})
	}
	return s
}

// GenerateAll generates one Series per plant under a shared scenario.
func GenerateAll(plants []Plant, sc Scenario, root *rng.Stream) []*Series {
	out := make([]*Series, len(plants))
	for i, p := range plants {
		out[i] = Generate(p, sc, root.Split("plant/"+p.Name))
	}
	return out
}

// csvHeader is the wire format of the simulated surveillance feed.
const csvHeader = "day,concentration,plant"

// WriteCSV writes observations up to and including uptoDay in the feed's
// CSV format. Pass a negative uptoDay to write everything.
func (s *Series) WriteCSV(w io.Writer, uptoDay int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for _, o := range s.Observations {
		if uptoDay >= 0 && o.Day > uptoDay {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d,%.6g,%s\n", o.Day, o.Concentration, s.Plant.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CSV renders the series to a string (see WriteCSV).
func (s *Series) CSV(uptoDay int) string {
	var sb strings.Builder
	_ = s.WriteCSV(&sb, uptoDay)
	return sb.String()
}

// ParseCSV decodes the feed format, tolerating a missing plant column.
func ParseCSV(r io.Reader) ([]Observation, error) {
	sc := bufio.NewScanner(r)
	var out []Observation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue // comments carry quality/provenance annotations
		}
		if line == 1 && strings.HasPrefix(text, "day,") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("wastewater: line %d: want at least 2 fields, got %q", line, text)
		}
		day, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("wastewater: line %d: bad day: %v", line, err)
		}
		conc, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("wastewater: line %d: bad concentration: %v", line, err)
		}
		if conc < 0 {
			return nil, fmt.Errorf("wastewater: line %d: negative concentration", line)
		}
		out = append(out, Observation{Day: day, Concentration: conc})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Day < out[j].Day })
	return out, nil
}
