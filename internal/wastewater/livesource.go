package wastewater

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
)

// LiveSource serves a Series over HTTP as a CSV document that grows as
// simulated time advances, mimicking the daily-updated surveillance feed
// AERO polls in the paper's use case. It is safe for concurrent use.
type LiveSource struct {
	mu     sync.RWMutex
	series *Series
	day    int
}

// NewLiveSource creates a source whose feed initially contains observations
// up to and including startDay.
func NewLiveSource(series *Series, startDay int) *LiveSource {
	if startDay < 0 {
		startDay = 0
	}
	return &LiveSource{series: series, day: startDay}
}

// Advance moves simulated time forward n days, exposing any newly sampled
// observations to subsequent fetches. It returns the new current day.
func (ls *LiveSource) Advance(n int) int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if n > 0 {
		ls.day += n
	}
	if ls.day > ls.series.Scenario.Days {
		ls.day = ls.series.Scenario.Days
	}
	return ls.day
}

// CurrentDay reports the simulated "today".
func (ls *LiveSource) CurrentDay() int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.day
}

// Body returns the current CSV document.
func (ls *LiveSource) Body() string {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.series.CSV(ls.day)
}

// ETag returns a strong entity tag over the current body, letting pollers
// detect updates without downloading (the versioning-by-checksum behaviour
// of the AERO ingestion flow).
func (ls *LiveSource) ETag() string {
	sum := sha256.Sum256([]byte(ls.Body()))
	return `"` + hex.EncodeToString(sum[:8]) + `"`
}

// ServeHTTP implements http.Handler, honoring If-None-Match.
func (ls *LiveSource) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body := ls.Body()
	sum := sha256.Sum256([]byte(body))
	etag := `"` + hex.EncodeToString(sum[:8]) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	fmt.Fprint(w, body)
}
