package wastewater

import (
	"fmt"
	"math"

	"osprey/internal/stats"
)

// QualityOptions configures observation cleaning. Zero values select the
// defaults noted per field.
type QualityOptions struct {
	// SpikeMADs flags observations whose log concentration deviates from
	// the rolling median by more than this many (normal-consistent) MADs
	// (default 5). Wastewater signals are log-normal-ish, so screening on
	// the log scale keeps genuine epidemic growth out of the outlier set.
	SpikeMADs float64
	// Window is the rolling-window half-width in observations used for
	// the local median (default 7).
	Window int
	// MaxGapDays flags gaps longer than this for the report (default 14);
	// gaps are reported, never "fixed".
	MaxGapDays int
}

func (o *QualityOptions) defaults() {
	if o.SpikeMADs <= 0 {
		o.SpikeMADs = 5
	}
	if o.Window <= 0 {
		o.Window = 7
	}
	if o.MaxGapDays <= 0 {
		o.MaxGapDays = 14
	}
}

// QualityIssue describes one flagged observation or gap.
type QualityIssue struct {
	Day    int
	Kind   string // "nonpositive" | "spike" | "gap"
	Detail string
}

// QualityReport summarizes a cleaning pass — the provenance record of what
// validation did to the data, stored alongside the transformed product so
// downstream consumers can audit it (goal 2: "ensuring data quality and
// provenance").
type QualityReport struct {
	Input   int
	Kept    int
	Dropped int
	Issues  []QualityIssue
}

// CleanObservations validates a raw observation series: nonpositive
// concentrations are dropped, isolated spikes far outside the local
// log-scale distribution are dropped, and long sampling gaps are flagged
// (but kept). It returns the cleaned series and the audit report.
func CleanObservations(obs []Observation, opts QualityOptions) ([]Observation, *QualityReport) {
	(&opts).defaults()
	report := &QualityReport{Input: len(obs)}
	if len(obs) == 0 {
		return nil, report
	}

	// Pass 1: drop nonpositive values (assay failures).
	var positive []Observation
	for _, o := range obs {
		if o.Concentration <= 0 || math.IsNaN(o.Concentration) || math.IsInf(o.Concentration, 0) {
			report.Issues = append(report.Issues, QualityIssue{
				Day: o.Day, Kind: "nonpositive",
				Detail: fmt.Sprintf("concentration %v", o.Concentration),
			})
			continue
		}
		positive = append(positive, o)
	}

	// Pass 2: robust spike screen on the log scale with a rolling window.
	logs := make([]float64, len(positive))
	for i, o := range positive {
		logs[i] = math.Log(o.Concentration)
	}
	keep := make([]bool, len(positive))
	for i := range positive {
		lo := i - opts.Window
		if lo < 0 {
			lo = 0
		}
		hi := i + opts.Window + 1
		if hi > len(positive) {
			hi = len(positive)
		}
		window := logs[lo:hi]
		med := stats.Median(window)
		mad := stats.MAD(window, true)
		if mad <= 0 {
			keep[i] = true
			continue
		}
		dev := math.Abs(logs[i]-med) / mad
		if dev > opts.SpikeMADs {
			report.Issues = append(report.Issues, QualityIssue{
				Day: positive[i].Day, Kind: "spike",
				Detail: fmt.Sprintf("%.1f MADs from local median", dev),
			})
			continue
		}
		keep[i] = true
	}
	var cleaned []Observation
	for i, ok := range keep {
		if ok {
			cleaned = append(cleaned, positive[i])
		}
	}

	// Pass 3: flag long gaps between consecutive kept observations.
	for i := 1; i < len(cleaned); i++ {
		if gap := cleaned[i].Day - cleaned[i-1].Day; gap > opts.MaxGapDays {
			report.Issues = append(report.Issues, QualityIssue{
				Day: cleaned[i].Day, Kind: "gap",
				Detail: fmt.Sprintf("%d days since previous sample", gap),
			})
		}
	}

	report.Kept = len(cleaned)
	report.Dropped = report.Input - report.Kept
	return cleaned, report
}
