package sde

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func seedRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	arts := []Artifact{
		{Name: "metarvm", Version: "1.0", Kind: KindModel,
			Description: "Metapopulation respiratory virus model",
			Tags:        []string{"epidemiology", "compartmental"},
			Requires:    Requirements{Languages: []string{"R"}, Modules: []string{"deSolve"}}},
		{Name: "metarvm", Version: "1.1", Kind: KindModel,
			Description: "Metapopulation model with interventions",
			Tags:        []string{"epidemiology"},
			Requires:    Requirements{Languages: []string{"R"}}},
		{Name: "music-gsa", Version: "0.9", Kind: KindMEAlgorithm,
			Description: "Active-learning Sobol sensitivity analysis",
			Tags:        []string{"gsa", "surrogate"},
			Requires: Requirements{Languages: []string{"R"}, Modules: []string{"hetGP", "activeSens"},
				Scheduler: "pbs", MinNodes: 4}},
		{Name: "rt-harness", Version: "2.0", Kind: KindHarness,
			Description: "Python harness wrapping Julia Rt estimation and R plotting",
			Tags:        []string{"wastewater", "rt"},
			Requires:    Requirements{Languages: []string{"python", "julia", "R"}}},
	}
	for i, a := range arts {
		a.Registered = time.Date(2025, 1, 1+i, 0, 0, 0, 0, time.UTC)
		if _, err := r.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	envs := []Environment{
		{Name: "improv", Languages: []string{"R", "python"}, Scheduler: "pbs", Nodes: 16,
			Modules: []string{"hetGP", "activeSens", "deSolve"}},
		{Name: "bebop", Languages: []string{"python", "julia", "R"}, Scheduler: "pbs", Nodes: 8,
			Modules: []string{"deSolve"}},
		{Name: "laptop", Languages: []string{"python"}, Nodes: 1},
	}
	for _, e := range envs {
		if err := r.AddEnvironment(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register(Artifact{Version: "1", Kind: KindModel}); err == nil {
		t.Fatal("nameless artifact accepted")
	}
	if _, err := r.Register(Artifact{Name: "x", Version: "1", Kind: "bogus"}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := r.Register(Artifact{Name: "x", Version: "1", Kind: KindModel}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(Artifact{Name: "x", Version: "1", Kind: KindModel}); err == nil {
		t.Fatal("duplicate name@version accepted")
	}
}

func TestGetAndLatest(t *testing.T) {
	r := seedRegistry(t)
	latest, err := r.Latest("metarvm")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != "1.1" {
		t.Fatalf("latest metarvm = %s", latest.Version)
	}
	got, err := r.Get(latest.ID)
	if err != nil || got.Name != "metarvm" {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if _, err := r.Get("art-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown ID error = %v", err)
	}
	if _, err := r.Latest("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown name error = %v", err)
	}
}

func TestSearch(t *testing.T) {
	r := seedRegistry(t)
	if got := r.Search(Query{Kind: KindModel}); len(got) != 2 {
		t.Fatalf("model search returned %d", len(got))
	}
	if got := r.Search(Query{Tag: "GSA"}); len(got) != 1 || got[0].Name != "music-gsa" {
		t.Fatalf("tag search wrong: %v", got)
	}
	if got := r.Search(Query{Text: "julia"}); len(got) != 1 || got[0].Name != "rt-harness" {
		t.Fatalf("text search wrong: %v", got)
	}
	if got := r.Search(Query{}); len(got) != 4 {
		t.Fatalf("open search returned %d", len(got))
	}
	// Sorted by name then version.
	all := r.Search(Query{})
	for i := 1; i < len(all); i++ {
		if all[i-1].Name > all[i].Name {
			t.Fatal("search results not sorted")
		}
	}
}

func TestPortability(t *testing.T) {
	r := seedRegistry(t)
	musicArt := r.Search(Query{Text: "active-learning"})[0]

	// improv has everything MUSIC needs.
	rep, err := r.CheckPortability(musicArt.ID, "improv")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Portable {
		t.Fatalf("MUSIC should be portable to improv; missing %v", rep.Missing)
	}
	// bebop lacks the R modules and enough nodes? bebop has 8 nodes (ok)
	// but no hetGP/activeSens modules.
	rep, err = r.CheckPortability(musicArt.ID, "bebop")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Portable {
		t.Fatal("MUSIC should not be portable to bebop (missing modules)")
	}
	// laptop: no R, no scheduler, too few nodes.
	rep, _ = r.CheckPortability(musicArt.ID, "laptop")
	if rep.Portable || len(rep.Missing) < 3 {
		t.Fatalf("laptop report wrong: %+v", rep)
	}

	envs, err := r.PortableEnvironments(musicArt.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0] != "improv" {
		t.Fatalf("portable environments = %v", envs)
	}
}

func TestPortabilityUnknowns(t *testing.T) {
	r := seedRegistry(t)
	if _, err := r.CheckPortability("art-999999", "improv"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown artifact accepted")
	}
	a := r.Search(Query{})[0]
	if _, err := r.CheckPortability(a.ID, "atlantis"); !errors.Is(err, ErrNotFound) {
		t.Fatal("unknown environment accepted")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src := seedRegistry(t)
	var buf bytes.Buffer
	if err := src.Export(&buf, Query{}); err != nil {
		t.Fatal(err)
	}

	dst := NewRegistry()
	added, err := dst.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if added != 4 {
		t.Fatalf("imported %d artifacts, want 4", added)
	}
	if len(dst.Environments()) != 3 {
		t.Fatalf("environments not imported: %d", len(dst.Environments()))
	}
	// Re-import is idempotent.
	var buf2 bytes.Buffer
	if err := src.Export(&buf2, Query{}); err != nil {
		t.Fatal(err)
	}
	added, err = dst.Import(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-import added %d artifacts", added)
	}
}

func TestExportFiltered(t *testing.T) {
	src := seedRegistry(t)
	var buf bytes.Buffer
	if err := src.Export(&buf, Query{Kind: KindHarness}); err != nil {
		t.Fatal(err)
	}
	dst := NewRegistry()
	added, err := dst.Import(&buf)
	if err != nil || added != 1 {
		t.Fatalf("filtered import: %d, %v", added, err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := NewRegistry()
	if _, err := dst.Import(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestEnvironmentValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.AddEnvironment(Environment{}); err == nil {
		t.Fatal("nameless environment accepted")
	}
}
