package sde_test

import (
	"fmt"

	"osprey/internal/sde"
)

func ExampleRegistry() {
	reg := sde.NewRegistry()
	art, _ := reg.Register(sde.Artifact{
		Name: "music-gsa", Version: "1.0", Kind: sde.KindMEAlgorithm,
		Description: "Active-learning Sobol sensitivity analysis",
		Requires:    sde.Requirements{Languages: []string{"R"}, Scheduler: "pbs", MinNodes: 4},
	})
	_ = reg.AddEnvironment(sde.Environment{
		Name: "improv", Languages: []string{"R", "python"}, Scheduler: "pbs", Nodes: 16,
	})
	rep, _ := reg.CheckPortability(art.ID, "improv")
	fmt.Println(art.ID, rep.Portable)
	// Output: art-000001 true
}
