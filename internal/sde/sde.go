// Package sde implements the Shared Development Environment of OSPREY's
// third goal (§3): "rapid, collaborative development and efficient porting
// of modeling and model exploration codes to HPC", considering "differences
// in HPC environments, programming languages, workflow structures".
//
// Concretely it provides:
//
//   - An artifact registry for models, model-exploration algorithms and
//     harnesses, with versions, language/runtime requirements, tags, and
//     full-text search — the paper's future-work direction of "making
//     workflow artifacts such as models and model exploration algorithms
//     more easily discoverable and shareable".
//   - Environment descriptions of compute facilities (languages, scheduler,
//     modules) and a portability check matching an artifact's requirements
//     against an environment.
//   - JSON export/import bundles so collaborating groups exchange artifact
//     sets without a shared database.
package sde

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ArtifactKind classifies registry entries.
type ArtifactKind string

const (
	// KindModel is a simulation model (e.g. MetaRVM).
	KindModel ArtifactKind = "model"
	// KindMEAlgorithm is a model-exploration algorithm (e.g. MUSIC).
	KindMEAlgorithm ArtifactKind = "me-algorithm"
	// KindHarness is glue wrapping a model or algorithm for a workflow
	// system (e.g. the Python harness wrapping Julia estimation).
	KindHarness ArtifactKind = "harness"
)

func (k ArtifactKind) valid() bool {
	switch k {
	case KindModel, KindMEAlgorithm, KindHarness:
		return true
	}
	return false
}

// Requirements describe what an artifact needs from an execution
// environment.
type Requirements struct {
	// Languages that must be available (e.g. "R", "python", "julia").
	Languages []string `json:"languages,omitempty"`
	// Scheduler, when nonempty, requires a specific batch system
	// ("pbs", "slurm").
	Scheduler string `json:"scheduler,omitempty"`
	// MinNodes is the smallest usable allocation.
	MinNodes int `json:"min_nodes,omitempty"`
	// Modules are named software dependencies ("hetGP", "EpiEstim").
	Modules []string `json:"modules,omitempty"`
}

// Artifact is one registry entry (a specific version of a shareable code).
type Artifact struct {
	ID          string       `json:"id"`
	Name        string       `json:"name"`
	Version     string       `json:"version"`
	Kind        ArtifactKind `json:"kind"`
	Description string       `json:"description,omitempty"`
	Authors     []string     `json:"authors,omitempty"`
	Tags        []string     `json:"tags,omitempty"`
	Requires    Requirements `json:"requires"`
	// Spec is an opaque, artifact-specific payload (parameter schemas,
	// entry points, container references).
	Spec       json.RawMessage `json:"spec,omitempty"`
	Registered time.Time       `json:"registered"`
}

// Environment describes a compute facility available to the SDE.
type Environment struct {
	Name      string   `json:"name"`
	Languages []string `json:"languages"`
	Scheduler string   `json:"scheduler,omitempty"`
	Nodes     int      `json:"nodes"`
	Modules   []string `json:"modules,omitempty"`
}

// PortabilityReport explains whether an artifact can run in an environment.
type PortabilityReport struct {
	Artifact    string
	Environment string
	Portable    bool
	Missing     []string
}

// Registry is the shared artifact catalogue. Safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	next int
	arts map[string]*Artifact
	envs map[string]*Environment
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{arts: map[string]*Artifact{}, envs: map[string]*Environment{}}
}

// ErrNotFound is returned for unknown artifact IDs or environment names.
var ErrNotFound = errors.New("sde: not found")

// Register adds an artifact, assigning its ID and timestamp. Name, Version
// and a valid Kind are required; (Name, Version) pairs must be unique.
func (r *Registry) Register(a Artifact) (*Artifact, error) {
	if a.Name == "" || a.Version == "" {
		return nil, errors.New("sde: artifact needs Name and Version")
	}
	if !a.Kind.valid() {
		return nil, fmt.Errorf("sde: invalid artifact kind %q", a.Kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ex := range r.arts {
		if ex.Name == a.Name && ex.Version == a.Version {
			return nil, fmt.Errorf("sde: %s@%s already registered", a.Name, a.Version)
		}
	}
	r.next++
	a.ID = fmt.Sprintf("art-%06d", r.next)
	if a.Registered.IsZero() {
		a.Registered = time.Now()
	}
	cp := a
	r.arts[a.ID] = &cp
	out := cp
	return &out, nil
}

// Get returns an artifact by ID.
func (r *Registry) Get(id string) (*Artifact, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.arts[id]
	if !ok {
		return nil, fmt.Errorf("%w: artifact %s", ErrNotFound, id)
	}
	cp := *a
	return &cp, nil
}

// Latest returns the most recently registered version of the named
// artifact.
func (r *Registry) Latest(name string) (*Artifact, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var best *Artifact
	for _, a := range r.arts {
		if a.Name != name {
			continue
		}
		if best == nil || a.Registered.After(best.Registered) ||
			(a.Registered.Equal(best.Registered) && a.ID > best.ID) {
			best = a
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: artifact %q", ErrNotFound, name)
	}
	cp := *best
	return &cp, nil
}

// Query filters the catalogue.
type Query struct {
	Kind ArtifactKind // empty = any
	Tag  string       // empty = any
	Text string       // substring of name or description, case-insensitive
}

// Search returns matching artifacts sorted by name then version.
func (r *Registry) Search(q Query) []*Artifact {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Artifact
	text := strings.ToLower(q.Text)
	for _, a := range r.arts {
		if q.Kind != "" && a.Kind != q.Kind {
			continue
		}
		if q.Tag != "" && !hasTag(a.Tags, q.Tag) {
			continue
		}
		if text != "" &&
			!strings.Contains(strings.ToLower(a.Name), text) &&
			!strings.Contains(strings.ToLower(a.Description), text) {
			continue
		}
		cp := *a
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

func hasTag(tags []string, want string) bool {
	for _, t := range tags {
		if strings.EqualFold(t, want) {
			return true
		}
	}
	return false
}

// AddEnvironment registers or replaces a compute environment description.
func (r *Registry) AddEnvironment(e Environment) error {
	if e.Name == "" {
		return errors.New("sde: environment needs a Name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := e
	r.envs[e.Name] = &cp
	return nil
}

// Environments lists registered environments sorted by name.
func (r *Registry) Environments() []*Environment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Environment
	for _, e := range r.envs {
		cp := *e
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckPortability matches an artifact's requirements against an
// environment, returning a report listing anything missing.
func (r *Registry) CheckPortability(artifactID, envName string) (*PortabilityReport, error) {
	a, err := r.Get(artifactID)
	if err != nil {
		return nil, err
	}
	r.mu.RLock()
	env, ok := r.envs[envName]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: environment %q", ErrNotFound, envName)
	}
	rep := &PortabilityReport{Artifact: a.ID, Environment: env.Name, Portable: true}
	have := map[string]bool{}
	for _, l := range env.Languages {
		have["lang:"+strings.ToLower(l)] = true
	}
	for _, m := range env.Modules {
		have["mod:"+strings.ToLower(m)] = true
	}
	for _, l := range a.Requires.Languages {
		if !have["lang:"+strings.ToLower(l)] {
			rep.Missing = append(rep.Missing, "language "+l)
		}
	}
	for _, m := range a.Requires.Modules {
		if !have["mod:"+strings.ToLower(m)] {
			rep.Missing = append(rep.Missing, "module "+m)
		}
	}
	if a.Requires.Scheduler != "" && !strings.EqualFold(a.Requires.Scheduler, env.Scheduler) {
		rep.Missing = append(rep.Missing, "scheduler "+a.Requires.Scheduler)
	}
	if a.Requires.MinNodes > env.Nodes {
		rep.Missing = append(rep.Missing,
			fmt.Sprintf("nodes (need %d, have %d)", a.Requires.MinNodes, env.Nodes))
	}
	rep.Portable = len(rep.Missing) == 0
	return rep, nil
}

// PortableEnvironments returns the environments where the artifact can run.
func (r *Registry) PortableEnvironments(artifactID string) ([]string, error) {
	var out []string
	for _, env := range r.Environments() {
		rep, err := r.CheckPortability(artifactID, env.Name)
		if err != nil {
			return nil, err
		}
		if rep.Portable {
			out = append(out, env.Name)
		}
	}
	return out, nil
}

// bundle is the export wire format.
type bundle struct {
	Artifacts    []*Artifact    `json:"artifacts"`
	Environments []*Environment `json:"environments,omitempty"`
}

// Export writes the catalogue (optionally filtered by query) as a JSON
// bundle that another group's registry can Import.
func (r *Registry) Export(w io.Writer, q Query) error {
	b := bundle{Artifacts: r.Search(q), Environments: r.Environments()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Import merges a bundle into the registry. Artifacts whose (Name, Version)
// already exist are skipped; the count of newly added artifacts is
// returned.
func (r *Registry) Import(rd io.Reader) (int, error) {
	var b bundle
	if err := json.NewDecoder(rd).Decode(&b); err != nil {
		return 0, fmt.Errorf("sde: import: %w", err)
	}
	added := 0
	for _, a := range b.Artifacts {
		in := *a
		in.ID = "" // IDs are registry-local
		if _, err := r.Register(in); err != nil {
			if strings.Contains(err.Error(), "already registered") {
				continue
			}
			return added, err
		}
		added++
	}
	for _, e := range b.Environments {
		if err := r.AddEnvironment(*e); err != nil {
			return added, err
		}
	}
	return added, nil
}
