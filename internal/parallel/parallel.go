// Package parallel is the bounded, deterministic data-parallel substrate
// for OSPREY's numerical hot paths (GP fitting and prediction, MUSIC
// candidate scoring, Goldstein chain fan-out, Saltelli evaluation, the
// multi-plant pipeline). It replaces ad-hoc unbounded goroutine fan-outs so
// that every compute-bound loop in the repository obeys one process-wide
// worker bound.
//
// Determinism contract: For and ForChunk impose no ordering between
// iterations; callers obtain bit-identical results regardless of the worker
// count by writing each iteration's output to its own index slot and
// performing any reduction serially, in index order, after the loop
// returns. Every numerical caller in this repository follows that pattern,
// which is what the serial-vs-parallel equivalence tests in gp, music,
// sobolidx, rt, and core enforce.
//
// The worker count resolves, in order, from SetWorkers, the
// OSPREY_PARALLELISM environment variable, and GOMAXPROCS.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"osprey/internal/obs"
)

// EnvVar is the environment variable consulted for the default worker count.
const EnvVar = "OSPREY_PARALLELISM"

var (
	mForCalls   = obs.GetCounter("parallel.for.calls")
	mForItems   = obs.GetCounter("parallel.for.items")
	mForInline  = obs.GetCounter("parallel.for.inline")
	mWorkersG   = obs.GetGauge("parallel.workers")
	mForDur     = obs.GetHistogram("parallel.for.duration")
	mForImbal   = obs.GetHistogram("parallel.for.imbalance")
	workerState struct {
		mu       sync.Mutex
		override int // explicit SetWorkers value (> 0)
		resolved int // cached env/GOMAXPROCS resolution
	}
)

// Workers returns the process-wide worker bound: the last positive
// SetWorkers value if any, else OSPREY_PARALLELISM if set to a positive
// integer, else GOMAXPROCS.
func Workers() int {
	workerState.mu.Lock()
	defer workerState.mu.Unlock()
	if workerState.override > 0 {
		return workerState.override
	}
	if workerState.resolved > 0 {
		return workerState.resolved
	}
	n := 0
	if s := os.Getenv(EnvVar); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	workerState.resolved = n
	mWorkersG.Set(int64(n))
	return n
}

// SetWorkers overrides the worker bound. Passing n <= 0 clears the override
// and re-resolves from the environment (so tests can flip
// OSPREY_PARALLELISM and call SetWorkers(0) to pick the change up).
func SetWorkers(n int) {
	workerState.mu.Lock()
	if n > 0 {
		workerState.override = n
		mWorkersG.Set(int64(n))
	} else {
		workerState.override = 0
		workerState.resolved = 0
	}
	workerState.mu.Unlock()
}

// panicValue carries a worker panic back to the caller's goroutine.
type panicValue struct {
	val any
}

// ForChunk runs fn over contiguous index chunks that exactly cover [0, n),
// using at most Workers() goroutines. Chunks are claimed dynamically, so an
// imbalanced workload (e.g. GP predictions against training sets of
// different sizes) still packs the workers. fn must treat its [lo, hi)
// range as exclusively owned; a panic inside fn is re-raised on the calling
// goroutine after all workers stop.
func ForChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	mForCalls.Inc()
	mForItems.Add(int64(n))
	if w <= 1 || n == 1 {
		mForInline.Inc()
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	// Four chunks per worker balances imbalance against claim overhead;
	// chunk boundaries never affect results (slot-writing contract).
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	start := time.Now()
	var (
		next     atomic.Int64
		firstPan atomic.Pointer[panicValue]
		minBusy  atomic.Int64
		maxBusy  atomic.Int64
	)
	minBusy.Store(int64(^uint64(0) >> 1))
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			busyStart := time.Now()
			defer func() {
				if r := recover(); r != nil {
					firstPan.CompareAndSwap(nil, &panicValue{val: r})
				}
				busy := int64(time.Since(busyStart))
				for {
					cur := minBusy.Load()
					if busy >= cur || minBusy.CompareAndSwap(cur, busy) {
						break
					}
				}
				for {
					cur := maxBusy.Load()
					if busy <= cur || maxBusy.CompareAndSwap(cur, busy) {
						break
					}
				}
			}()
			for firstPan.Load() == nil {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	mForDur.ObserveSince(start)
	if imb := maxBusy.Load() - minBusy.Load(); imb > 0 {
		mForImbal.Observe(time.Duration(imb))
	}
	if p := firstPan.Load(); p != nil {
		panic(p.val)
	}
}

// For runs fn(i) for every i in [0, n) across the worker pool and returns
// when all iterations finish. See ForChunk for the determinism and panic
// contract.
func For(n int, fn func(i int)) {
	ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs the given heterogeneous tasks across the worker pool — the
// replacement for ad-hoc `go`/WaitGroup fan-outs (Goldstein chains, plant
// polls) that previously ignored the worker bound.
func Do(fns ...func()) {
	For(len(fns), func(i int) { fns[i]() })
}
