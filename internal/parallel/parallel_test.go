package parallel

import (
	"os"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			hits := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestForChunkCoversRangeExactly(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	const n = 999
	hits := make([]int32, n)
	ForChunk(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestWorkerBoundRespected(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	var cur, peak atomic.Int32
	For(64, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // widen the overlap window
			_ = j
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > 3 {
		t.Fatalf("observed %d concurrent iterations, bound is 3", got)
	}
}

func TestSetWorkersAndEnvResolution(t *testing.T) {
	defer SetWorkers(0)
	defer os.Unsetenv(EnvVar)

	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("SetWorkers(5): Workers() = %d", got)
	}
	os.Setenv(EnvVar, "7")
	SetWorkers(0) // clear override, re-resolve from env
	if got := Workers(); got != 7 {
		t.Fatalf("env=7: Workers() = %d", got)
	}
	os.Setenv(EnvVar, "not-a-number")
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("bad env: Workers() = %d", got)
	}
	os.Unsetenv(EnvVar)
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("default: Workers() = %d", got)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate to the caller")
		}
	}()
	For(100, func(i int) {
		if i == 37 {
			panic("worker exploded")
		}
	})
}

func TestDoRunsAllTasks(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(2)
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a task")
	}
}

// TestSlotWritingIsDeterministic is the substrate-level statement of the
// repository-wide determinism contract: elementwise slot writes plus an
// ordered serial reduction give bit-identical results at any worker count.
func TestSlotWritingIsDeterministic(t *testing.T) {
	defer SetWorkers(0)
	const n = 4096
	run := func(workers int) float64 {
		SetWorkers(workers)
		slots := make([]float64, n)
		For(n, func(i int) {
			v := 1.0
			for k := 0; k < 20; k++ {
				v = v*1.0000001 + float64(i)*1e-9
			}
			slots[i] = v
		})
		sum := 0.0
		for _, v := range slots { // ordered reduction
			sum += v
		}
		return sum
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got != serial {
			t.Fatalf("workers=%d: sum %x differs from serial %x", w, got, serial)
		}
	}
}
