// Binary (wire protocol v2) connection handling: the server side splits
// each connection into a reader loop, concurrent dispatch goroutines, and
// a writer goroutine; the client side runs one pipelined session per
// connection, matching responses to in-flight requests by id. The frame
// codec itself lives in wirev2.go; the op semantics in net.go's dispatch.
package emews

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// maxInflightPerConn bounds concurrent dispatches per connection: enough
// to keep a batched worker's pipeline full, small enough that one
// connection cannot monopolize the DB lock or goroutine budget.
const maxInflightPerConn = 64

// respFrame is one encoded response awaiting the writer.
type respFrame struct{ buf []byte }

// handleBinary runs the v2 loop on one connection (handshake already
// done). The reader decodes frames and hands each request to its own
// dispatch goroutine (bounded by maxInflightPerConn); responses funnel
// through a single writer goroutine that coalesces flushes. Blocking
// pops are additionally canceled when the connection's reader exits, so
// a dead worker's unbounded pop cannot linger past the connection.
func (s *Server) handleBinary(conn net.Conn, br *bufio.Reader, claims *connClaims) {
	connCtx, cancelConn := context.WithCancel(s.ctx)
	defer cancelConn()

	out := make(chan respFrame, maxInflightPerConn)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		bw := bufio.NewWriter(conn)
		broken := false
		for rf := range out {
			if !broken {
				if _, err := bw.Write(rf.buf); err != nil {
					broken = true
				} else if len(out) == 0 {
					// Nothing queued behind us: flush now. Otherwise let
					// the next frame piggyback on this buffer.
					if err := bw.Flush(); err != nil {
						broken = true
					}
				}
				if broken {
					conn.Close() // unblock the reader; keep draining for the WG accounting
				}
			}
			putWireBuf(rf.buf)
			s.dispatchWG.Done()
		}
		if !broken {
			_ = bw.Flush()
		}
	}()

	sem := make(chan struct{}, maxInflightPerConn)
	var reqWG sync.WaitGroup
	for {
		code, id, payload, err := readFrame(br)
		if err != nil {
			break
		}
		mNetRequests.Inc()
		req, derr := decodeRequestPayload(code, payload)
		putWireBuf(payload)
		if derr != nil {
			if !s.beginDispatch() {
				break
			}
			out <- respFrame{buf: appendResponseFrame(getWireBuf(), code, id, &wireResponse{Error: "bad request: " + derr.Error()})}
			continue
		}
		if !s.beginDispatch() {
			break
		}
		sem <- struct{}{}
		reqWG.Add(1)
		go func(code byte, id uint64, req wireRequest) {
			defer reqWG.Done()
			defer func() { <-sem }()
			reqStart := time.Now()
			resp := s.dispatch(connCtx, req, claims)
			mNetRequest.ObserveSince(reqStart)
			out <- respFrame{buf: appendResponseFrame(getWireBuf(), code, id, &resp)}
		}(code, id, req)
	}
	// Reader is done (connection dead or closing): release any blocking
	// pops this connection owns, wait out in-flight dispatches, then let
	// the writer drain and exit.
	cancelConn()
	reqWG.Wait()
	close(out)
	writerWG.Wait()
}

// clientSession pipelines requests on one binary connection: each request
// gets a fresh id and a response channel; a demux goroutine routes
// incoming frames to their waiters, so any number of ops can be in
// flight concurrently.
type clientSession struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan wireResponse
	err     error // first transport failure; set once
	done    chan struct{}
}

func newClientSession(conn net.Conn, r *bufio.Reader) *clientSession {
	s := &clientSession{
		conn:    conn,
		pending: map[uint64]chan wireResponse{},
		done:    make(chan struct{}),
	}
	go s.readLoop(r)
	return s
}

// readLoop demultiplexes response frames to their pending waiters until
// the connection fails.
func (s *clientSession) readLoop(r *bufio.Reader) {
	for {
		code, id, payload, err := readFrame(r)
		if err != nil {
			s.fail(fmt.Errorf("%w: read: %v", ErrTransport, err))
			return
		}
		resp, derr := decodeResponsePayload(code, payload)
		putWireBuf(payload)
		if derr != nil {
			s.fail(fmt.Errorf("%w: decode: %v", ErrTransport, derr))
			return
		}
		s.mu.Lock()
		ch := s.pending[id]
		delete(s.pending, id)
		s.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks
		}
	}
}

// fail records the session's terminal error (first one wins), wakes every
// pending waiter via done, and closes the connection. Idempotent.
func (s *clientSession) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		close(s.done)
	}
	s.mu.Unlock()
	s.conn.Close()
}

// shutdown terminates the session from the client side (Close or drop).
func (s *clientSession) shutdown() {
	s.fail(fmt.Errorf("%w: connection closed", ErrTransport))
}

func (s *clientSession) forget(id uint64) {
	s.mu.Lock()
	delete(s.pending, id)
	s.mu.Unlock()
}

// do sends one request and waits for its response, bounded by timeout
// (0 = no bound), session failure, and client close.
func (s *clientSession) do(req *wireRequest, timeout time.Duration, closeCh <-chan struct{}) (wireResponse, error) {
	ch := make(chan wireResponse, 1)
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return wireResponse{}, err
	}
	s.nextID++
	id := s.nextID
	s.pending[id] = ch
	s.mu.Unlock()

	buf, err := appendRequestFrame(getWireBuf(), id, req)
	if err != nil {
		putWireBuf(buf)
		s.forget(id)
		return wireResponse{}, err
	}
	s.wmu.Lock()
	_, werr := s.conn.Write(buf)
	s.wmu.Unlock()
	putWireBuf(buf)
	if werr != nil {
		s.forget(id)
		werr = fmt.Errorf("%w: write: %v", ErrTransport, werr)
		s.fail(werr)
		return wireResponse{}, werr
	}

	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case resp := <-ch:
		if err := respError(&resp); err != nil {
			return resp, err
		}
		return resp, nil
	case <-s.done:
		// The session failed; our response may still have been delivered
		// in the race window. Prefer it if so.
		select {
		case resp := <-ch:
			if err := respError(&resp); err != nil {
				return resp, err
			}
			return resp, nil
		default:
		}
		s.mu.Lock()
		err := s.err
		s.mu.Unlock()
		return wireResponse{}, err
	case <-timeoutCh:
		// The connection's state is now ambiguous (a late response would
		// desynchronize nothing, but the op's fate is unknown): kill the
		// session and let roundTrip's retry policy decide.
		s.forget(id)
		err := fmt.Errorf("%w: op %q timed out after %v", ErrTransport, req.Op, timeout)
		s.fail(err)
		return wireResponse{}, err
	case <-closeCh:
		s.forget(id)
		return wireResponse{}, closedClientErr()
	}
}
