package emews

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"osprey/internal/wal"
)

// The canonical ring must be deterministic across independent builds and
// spread a realistic keyspace across every shard.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := NewRing(3), NewRing(3)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("param-set-%d", i)
		sa, sb := a.Lookup(key), b.Lookup(key)
		if sa != sb {
			t.Fatalf("ring not deterministic: key %q -> %d vs %d", key, sa, sb)
		}
		counts[sa]++
	}
	for s, c := range counts {
		if c < 500 {
			t.Fatalf("shard %d got %d/3000 keys — ring badly imbalanced: %v", s, c, counts)
		}
	}
	if NewRing(1).Lookup("anything") != 0 {
		t.Fatal("single-shard ring must map everything to shard 0")
	}
}

// Strided ID allocation: shard i of n assigns i+1, i+1+n, i+1+2n, … and
// ShardOfTask inverts it.
func TestShardStridedIDs(t *testing.T) {
	const n = 3
	for i := 0; i < n; i++ {
		db, err := NewDBShard(i, n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			f, err := db.Submit("sim", 0, "p")
			if err != nil {
				t.Fatal(err)
			}
			want := int64(i+1) + int64(k*n)
			if f.TaskID != want {
				t.Fatalf("shard %d submit %d: ID %d, want %d", i, k, f.TaskID, want)
			}
			if got := ShardOfTask(f.TaskID, n); got != i {
				t.Fatalf("ShardOfTask(%d, %d) = %d, want %d", f.TaskID, n, got, i)
			}
		}
	}
	if _, err := NewDBShard(3, 3); err == nil {
		t.Fatal("out-of-range shard index must be rejected")
	}
}

// End-to-end over a served 3-shard group: keyed submits land on their
// ring owners, the fan-out pop drains everything, resolutions route by
// ID stride, and the post-run multi-shard audit is clean.
func TestShardGroupEndToEnd(t *testing.T) {
	base := t.TempDir()
	g, err := OpenShardGroup(base, 3, nil, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := DialShardGroup(g.Addrs(), WithOpTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	const total = 60
	payloads := make([]string, total)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("params-%03d", i)
	}
	ids, err := sc.SubmitBatch("sim", 0, payloads, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != total {
		t.Fatalf("got %d ids for %d payloads", len(ids), total)
	}
	ring := NewRing(3)
	perShard := make([]int, 3)
	for i, id := range ids {
		if id == 0 {
			t.Fatalf("payload %d got no ID", i)
		}
		want := ring.Lookup(payloads[i])
		if got := ShardOfTask(id, 3); got != want {
			t.Fatalf("payload %q landed on shard %d, ring says %d", payloads[i], got, want)
		}
		perShard[ShardOfTask(id, 3)]++
	}
	for s, c := range perShard {
		if c == 0 {
			t.Fatalf("shard %d received no tasks: %v", s, perShard)
		}
	}

	seen := map[int64]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < total {
		if time.Now().After(deadline) {
			t.Fatalf("drained only %d/%d tasks", len(seen), total)
		}
		tasks, err := sc.PopBatch("sim", 8, 250*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		var fins []FinishOp
		for _, task := range tasks {
			if seen[task.ID] {
				t.Fatalf("task %d delivered twice", task.ID)
			}
			seen[task.ID] = true
			fins = append(fins, FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: "ok:" + task.Payload})
		}
		errs, err := sc.FinishBatch(fins)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("finish %d: %v", fins[i].TaskID, e)
			}
		}
	}

	// Every result is fetchable through ID routing.
	for i, id := range ids {
		res, done, err := sc.Result(id)
		if err != nil || !done {
			t.Fatalf("result %d: done=%v err=%v", id, done, err)
		}
		if want := "ok:" + payloads[i]; res != want {
			t.Fatalf("result %d: %q, want %q", id, res, want)
		}
	}
	sum, err := sc.RemoteStats()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Complete != total || sum.Submitted != total {
		t.Fatalf("aggregate stats: %+v", sum)
	}
	sc.Close()
	g.Close()

	dirs := []string{g.Dir(0), g.Dir(1), g.Dir(2)}
	audit, err := AuditShards(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Ok() {
		t.Fatalf("shard audit violations: %v", audit.Combined.Violations)
	}
	var submits int
	for _, a := range audit.Shards {
		submits += a.Submits
	}
	if submits != total || audit.Combined.Submits != total {
		t.Fatalf("per-shard submit ledgers sum to %d (combined %d), want %d",
			submits, audit.Combined.Submits, total)
	}
}

// A raw client talking to the wrong member of a shard group gets a
// wrong_shard redirect naming the owner, and the op is not applied.
func TestWrongShardRedirect(t *testing.T) {
	base := t.TempDir()
	g, err := OpenShardGroup(base, 3, nil, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	ring := NewRing(3)
	key := "k"
	for i := 0; ring.Lookup(key) == 0 && i < 1000; i++ {
		key = fmt.Sprintf("k-%d", i)
	}
	owner := ring.Lookup(key)
	if owner == 0 {
		t.Fatal("could not find a key owned by a nonzero shard")
	}

	cl, err := Dial(g.Addrs()[0], WithOpTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	_, err = cl.SubmitKeyedRetry("sim", 0, "payload", key, 1)
	var ws *WrongShardError
	if !errors.As(err, &ws) {
		t.Fatalf("misrouted keyed submit: err=%v, want WrongShardError", err)
	}
	if ws.Shard != owner {
		t.Fatalf("redirect names shard %d, ring owner is %d", ws.Shard, owner)
	}
	if st := g.DB(0).Stats(); st.Submitted != 0 {
		t.Fatalf("redirected submit was applied: %+v", st)
	}

	// Task-addressed ops redirect by ID stride: task 2 strides to shard 1.
	if err := cl.Complete(2, 1, "r"); !errors.As(err, &ws) || ws.Shard != 1 {
		t.Fatalf("misrouted complete: err=%v", err)
	}

	// An unkeyed submit (legacy client) is accepted anywhere.
	if _, err := cl.Submit("sim", 0, "legacy"); err != nil {
		t.Fatalf("unkeyed submit refused: %v", err)
	}

	// The routing client follows redirects even when its address order
	// disagrees with the servers' identities.
	addrs := g.Addrs()
	shuffled := []string{addrs[1], addrs[2], addrs[0]}
	sc, err := DialShardGroup(shuffled, WithOpTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.SubmitRetry("sim", 0, "some-params", 1); err != nil {
		t.Fatalf("redirect-following submit failed: %v", err)
	}
}

// dumpBytes is the byte-level equivalence probe for replica tests.
func dumpBytes(t *testing.T, tasks []Task) []byte {
	t.Helper()
	b, err := json.Marshal(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A follower that tailed a primary's WAL must hold a byte-identical task
// table: same IDs, payloads, statuses, epochs, attempts, timestamps.
func TestFollowerReplayEquivalence(t *testing.T) {
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	l, err := wal.Open(primaryDir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDBShard(l, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "127.0.0.1:0", WithShardIdentity(1, 3), WithReplicationSource(l))
	if err != nil {
		t.Fatal(err)
	}

	// Generate history: submits, pops, completes, a failure, a requeue.
	for i := 0; i < 20; i++ {
		if _, err := db.SubmitRetry("sim", i%3, fmt.Sprintf("p-%d", i), 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		c, ok, err := db.TryPop("sim")
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		switch i % 3 {
		case 0:
			err = c.Complete("done")
		case 1:
			err = c.Fail("transient") // has budget: requeues
		default:
			err = c.Complete("fine")
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	f, err := StartFollower(srv.Addr(), filepath.Join(base, "follower"), FollowerOptions{
		ShardIndex: 1, ShardCount: 3,
		PollInterval: 5 * time.Millisecond,
		WAL:          wal.Options{Name: "wal.test"},
		ClientOpts:   []ClientOption{WithOpTimeout(2 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// More traffic while the tail is live.
	for i := 20; i < 30; i++ {
		if _, err := db.Submit("sim", 0, fmt.Sprintf("p-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	want := dumpBytes(t, db.Dump())
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := dumpBytes(t, f.dump())
		if string(got) == string(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged:\n got %s\nwant %s", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := f.Status()
	if st.Records == 0 || st.Promoted {
		t.Fatalf("unexpected follower status: %+v", st)
	}
	srv.Close()
	db.Close()
	l.Close()
}

// Bootstrap from a compacted primary: the snapshot seeds the replica and
// post-snapshot records flow through the tail.
func TestFollowerBootstrapFromSnapshot(t *testing.T) {
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	l, err := wal.Open(primaryDir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDBShard(l, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Submit("sim", 0, fmt.Sprintf("pre-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Submit("sim", 0, fmt.Sprintf("post-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := Serve(db, "127.0.0.1:0", WithReplicationSource(l))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f, err := StartFollower(srv.Addr(), filepath.Join(base, "follower"), FollowerOptions{
		PollInterval: 5 * time.Millisecond,
		WAL:          wal.Options{Name: "wal.test"},
		ClientOpts:   []ClientOption{WithOpTimeout(2 * time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	want := dumpBytes(t, db.Dump())
	deadline := time.Now().Add(5 * time.Second)
	for {
		if string(dumpBytes(t, f.dump())) == string(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never converged after snapshot bootstrap")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Full failover: primary dies with claims outstanding and records the
// follower has not shipped yet; CatchUp drains them from the dead
// primary's directory, Promote requeues the orphaned Running tasks with
// an epoch bump, and the old claim is fenced off with ErrStaleClaim on
// the promoted server.
func TestFailoverPreservesEpochFencing(t *testing.T) {
	base := t.TempDir()
	primaryDir := filepath.Join(base, "primary")
	l, err := wal.Open(primaryDir, wal.Options{Name: "wal.test"})
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenDBShard(l, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(db, "127.0.0.1:0", WithReplicationSource(l))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := db.SubmitRetry("sim", 0, fmt.Sprintf("p-%d", i), 3); err != nil {
			t.Fatal(err)
		}
	}

	f, err := StartFollower(srv.Addr(), filepath.Join(base, "follower"), FollowerOptions{
		PollInterval: 5 * time.Millisecond,
		WAL:          wal.Options{Name: "wal.test"},
		ClientOpts:   []ClientOption{WithOpTimeout(time.Second), WithRetries(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the tail before the final mutations so CatchUp has real work.
	f.Stop()

	// A worker claims a task directly on the primary...
	claim, ok, err := db.TryPop("sim")
	if err != nil || !ok {
		t.Fatalf("pop: ok=%v err=%v", ok, err)
	}
	oldEpoch := claim.Task.Epoch
	// ...and the primary commits one more submit the follower never saw.
	if _, err := db.Submit("sim", 5, "late-arrival"); err != nil {
		t.Fatal(err)
	}

	// Primary dies: server down, log closed (flushed), DB abandoned.
	srv.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if err := f.CatchUp(primaryDir); err != nil {
		t.Fatal(err)
	}
	newDB, newLog, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	newSrv, err := Serve(newDB, "127.0.0.1:0", WithReplicationSource(newLog))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		newSrv.Close()
		newDB.Close()
		newLog.Close()
	}()

	// The late submit survived failover (no acknowledged record lost).
	found := false
	for _, task := range newDB.Dump() {
		if task.Payload == "late-arrival" {
			found = true
		}
	}
	if !found {
		t.Fatal("record committed after the last ship was lost in failover")
	}

	// The old claim's resolution must be fenced off on the new primary.
	cl, err := Dial(newSrv.Addr(), WithOpTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Complete(claim.Task.ID, oldEpoch, "stale result")
	if !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("stale pre-failover claim: err=%v, want ErrStaleClaim", err)
	}

	// The task itself was requeued with a bumped epoch and is poppable.
	task, err := newDB.Get(claim.Task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if task.Status != StatusQueued || task.Epoch <= oldEpoch {
		t.Fatalf("requeued task: status=%v epoch=%d (old %d)", task.Status, task.Epoch, oldEpoch)
	}
	got, ok, err := cl.Pop("sim", time.Second)
	if err != nil || !ok {
		t.Fatalf("pop after failover: ok=%v err=%v", ok, err)
	}
	if err := cl.Complete(got.ID, got.Epoch, "fresh"); err != nil {
		t.Fatalf("fresh claim refused: %v", err)
	}

	// Promote is one-shot.
	if _, _, err := f.Promote(); err == nil {
		t.Fatal("second Promote must fail")
	}
}
