package emews

import "osprey/internal/obs"

// Process-wide EMEWS metrics (obs.Default registry). Counters are
// cumulative across every DB/pool in the process; gauges are additive
// levels (two DBs each holding 3 queued tasks show depth 6), which is the
// right aggregate for a /metrics endpoint watching the whole daemon.
//
// Ledger invariants the lifecycle tests pin down (as deltas over a run):
//
//	submitted = completed + failed + canceled + queued + running
//	popped    = completed + failed + requeued + running + staleRejected'
//
// where staleRejected' are pops whose resolution lost the epoch fence race
// (their attempt was superseded by a requeue, already counted there).
var (
	mTaskSubmitted = obs.GetCounter("emews.tasks.submitted")
	mTaskPopped    = obs.GetCounter("emews.tasks.popped")
	mTaskCompleted = obs.GetCounter("emews.tasks.completed")
	mTaskFailed    = obs.GetCounter("emews.tasks.failed")
	mTaskRequeued  = obs.GetCounter("emews.tasks.requeued")
	mTaskCanceled  = obs.GetCounter("emews.tasks.canceled")
	mStaleRejected = obs.GetCounter("emews.tasks.stale_rejected")

	mQueueDepth  = obs.GetGauge("emews.queue.depth")
	mRunningNow  = obs.GetGauge("emews.tasks.running")
	mPopWait     = obs.GetHistogram("emews.pop.wait_seconds")
	mTaskService = obs.GetHistogram("emews.task.service_seconds")

	mReaperRequeued = obs.GetCounter("emews.reaper.requeued")
	mReaperTerminal = obs.GetCounter("emews.reaper.terminal")

	mTaskPruned    = obs.GetCounter("emews.tasks.pruned")
	mTaskRecovered = obs.GetCounter("emews.tasks.recovered_requeued")

	mNetConns      = obs.GetGauge("emews.net.connections")
	mNetRequests   = obs.GetCounter("emews.net.requests")
	mNetClaims     = obs.GetGauge("emews.net.active_claims")
	mNetLostClaims = obs.GetCounter("emews.net.conn_lost_claims")
	mNetRequest    = obs.GetHistogram("emews.net.request_seconds")

	mPoolProcessed = obs.GetCounter("emews.pool.processed")
	mPoolFailed    = obs.GetCounter("emews.pool.failed")
	mPoolStale     = obs.GetCounter("emews.pool.stale")
	mPoolHandler   = obs.GetHistogram("emews.pool.handler_seconds")
)
