package emews

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"osprey/internal/scheduler"
)

// Handler evaluates one task payload (typically: decode parameters, run the
// model, encode the quantity of interest).
type Handler func(ctx context.Context, payload string) (string, error)

// PoolStats reports worker-pool throughput and busy time, the measurements
// behind the paper's resource-utilization argument (§3.2).
type PoolStats struct {
	Workers   int
	Processed int
	Failed    int
	// Stale counts resolutions rejected because the claim's lease had
	// expired and the task was reclaimed (the work was re-done elsewhere).
	Stale int
	// BusySeconds is summed across workers; divide by (Workers × elapsed)
	// for utilization.
	BusySeconds    float64
	ElapsedSeconds float64
	UtilizationPct float64
}

// Pool consumes tasks of one type from a DB with a fixed set of workers.
type Pool struct {
	db       *DB
	taskType string
	handler  Handler

	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started time.Time

	mu               sync.Mutex
	processedWorkers int
	processed        int
	failed           int
	stale            int
	busy             time.Duration
	stopped          time.Time

	job *scheduler.Job // non-nil for scheduler-launched pools
}

// StartLocalPool launches workers in-process (the "running locally when
// testing" mode of §3.2).
func StartLocalPool(db *DB, taskType string, workers int, handler Handler) (*Pool, error) {
	if db == nil || handler == nil {
		return nil, errors.New("emews: pool needs a DB and a handler")
	}
	if workers <= 0 {
		return nil, errors.New("emews: pool needs at least one worker")
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{db: db, taskType: taskType, handler: handler, cancel: cancel, started: time.Now()}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.workerLoop(ctx, i)
	}
	p.mu.Lock()
	p.processedWorkers = workers
	p.mu.Unlock()
	return p, nil
}

// StartScheduledPool starts the pool "in production on a compute node": it
// submits a job to the batch scheduler, and the workers run inside the
// job's allocation for its lifetime (§3.2). workersPerNode goroutines run
// per allocated node.
func StartScheduledPool(cluster *scheduler.Cluster, nodes, workersPerNode int, db *DB, taskType string, handler Handler, walltime time.Duration) (*Pool, error) {
	if cluster == nil {
		return nil, errors.New("emews: scheduled pool needs a cluster")
	}
	if db == nil || handler == nil {
		return nil, errors.New("emews: pool needs a DB and a handler")
	}
	if nodes <= 0 || workersPerNode <= 0 {
		return nil, errors.New("emews: scheduled pool needs positive nodes and workersPerNode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{db: db, taskType: taskType, handler: handler, cancel: cancel, started: time.Now()}
	ready := make(chan struct{})
	job, err := cluster.Submit(scheduler.JobSpec{
		Name:     fmt.Sprintf("emews-pool-%s", taskType),
		Nodes:    nodes,
		Walltime: walltime,
		Run: func(jobCtx context.Context, alloc scheduler.Allocation) error {
			workers := len(alloc.Nodes) * workersPerNode
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p.workerBody(jobCtx, ctx, id)
				}(i)
			}
			p.mu.Lock()
			p.processedWorkers = workers
			p.mu.Unlock()
			close(ready)
			wg.Wait()
			return nil
		},
	})
	if err != nil {
		cancel()
		return nil, err
	}
	p.job = job
	select {
	case <-ready:
	case <-job.Done():
		cancel()
		return nil, fmt.Errorf("emews: pool job ended before starting: %w", job.Err())
	}
	return p, nil
}

// workerLoop is the in-process worker entry.
func (p *Pool) workerLoop(ctx context.Context, id int) {
	defer p.wg.Done()
	p.workerBody(ctx, ctx, id)
}

// workerBody pops and evaluates tasks until either context cancels or the
// DB closes.
func (p *Pool) workerBody(jobCtx, poolCtx context.Context, id int) {
	for {
		claim, err := p.db.Pop(mergeCtx(jobCtx, poolCtx), p.taskType)
		if err != nil {
			return
		}
		start := time.Now()
		result, err := p.handler(jobCtx, claim.Task.Payload)
		elapsed := time.Since(start)
		mPoolHandler.Observe(elapsed)
		var resolveErr error
		if err != nil {
			resolveErr = claim.Fail(err.Error())
		} else {
			resolveErr = claim.Complete(result)
		}
		p.mu.Lock()
		p.busy += elapsed
		switch {
		case errors.Is(resolveErr, ErrStaleClaim):
			// The lease expired mid-evaluation and another attempt owns
			// the task now; this worker's result was discarded.
			p.stale++
			mPoolStale.Inc()
		case err != nil:
			p.failed++
			mPoolFailed.Inc()
		default:
			p.processed++
			mPoolProcessed.Inc()
		}
		p.mu.Unlock()
	}
}

// Stop cancels the workers (and the backing scheduler job, if any) and
// waits for them to exit.
func (p *Pool) Stop() {
	p.cancel()
	p.wg.Wait()
	if p.job != nil {
		<-p.job.Done()
	}
	p.mu.Lock()
	if p.stopped.IsZero() {
		p.stopped = time.Now()
	}
	p.mu.Unlock()
}

// Stats snapshots pool throughput and utilization.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	end := p.stopped
	if end.IsZero() {
		end = time.Now()
	}
	elapsed := end.Sub(p.started).Seconds()
	st := PoolStats{
		Workers:        p.processedWorkers,
		Processed:      p.processed,
		Failed:         p.failed,
		Stale:          p.stale,
		BusySeconds:    p.busy.Seconds(),
		ElapsedSeconds: elapsed,
	}
	if elapsed > 0 && st.Workers > 0 {
		st.UtilizationPct = 100 * st.BusySeconds / (elapsed * float64(st.Workers))
	}
	return st
}

// mergeCtx returns a context canceled when either input cancels.
func mergeCtx(a, b context.Context) context.Context {
	if a == b {
		return a
	}
	ctx, cancel := context.WithCancel(a)
	go func() {
		select {
		case <-b.Done():
		case <-ctx.Done():
		}
		cancel()
	}()
	return ctx
}
