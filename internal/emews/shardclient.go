// ShardedClient: the routing layer over a shard group. ME drivers and
// worker pools use it exactly like a single-shard Client; underneath it
// routes every op to the owning shard:
//
//   - Submits route by key (the payload) through the canonical hash ring —
//     the same ring every server builds from the shard count, so a
//     misrouted submit is caught server-side with a wrong_shard redirect,
//     which the client follows transparently.
//   - Task-addressed ops (complete/fail/result/finish_batch entries) route
//     by the task ID's stride: ShardOfTask(id, n).
//   - pop_batch fans out: the client keeps one outstanding pop per shard
//     per task type, returns as soon as any shard delivers, and buffers
//     late deliveries (their leases are live connection-scoped claims) for
//     the next call. Buffered tasks are handed out in deterministic order:
//     sorted by shard index, preserving per-shard delivery order.
//
// Per-shard connections are dialed lazily and redialed on demand, so a
// shard that is mid-failover only degrades ops that route to it;
// SetShardAddr repoints one shard at its promoted follower.
package emews

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// fanErrorBackoff paces per-shard pop retries after an error so a dead
// shard cannot spin the fan-out loop.
const fanErrorBackoff = 25 * time.Millisecond

// ShardedClient is a client for a whole shard group. Methods are safe for
// concurrent use.
type ShardedClient struct {
	opts []ClientOption
	ring *Ring

	mu      sync.Mutex
	addrs   []string
	clients []*Client // lazily dialed; nil until first use
	closed  bool
	fans    map[string]*popFan

	closeCh chan struct{}
}

// fanTask is one buffered pop_batch delivery, tagged with its source
// shard for the deterministic merge.
type fanTask struct {
	shard int
	task  RemoteTask
}

// popFan is the per-task-type fan-out state: which shards have a pop in
// flight, and deliveries not yet handed to a caller.
type popFan struct {
	inflight map[int]bool
	buf      []fanTask
	wake     chan struct{} // 1-buffered: a delivery or error landed
}

// DialShardGroup builds a routing client over the shard group whose
// member i listens on addrs[i]. Connections are dialed lazily, so a group
// with a member mid-failover can still be constructed; the first op that
// routes to the missing member reports the dial error.
func DialShardGroup(addrs []string, opts ...ClientOption) (*ShardedClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("emews: shard group needs at least one address")
	}
	sc := &ShardedClient{
		opts:    opts,
		ring:    NewRing(len(addrs)),
		addrs:   append([]string(nil), addrs...),
		clients: make([]*Client, len(addrs)),
		fans:    map[string]*popFan{},
		closeCh: make(chan struct{}),
	}
	return sc, nil
}

// Shards returns the group size.
func (sc *ShardedClient) Shards() int { return sc.ring.Shards() }

// SetShardAddr repoints shard i — e.g. at a promoted follower after
// failover — closing any existing connection so subsequent ops redial.
func (sc *ShardedClient) SetShardAddr(i int, addr string) error {
	sc.mu.Lock()
	if i < 0 || i >= len(sc.addrs) {
		sc.mu.Unlock()
		return fmt.Errorf("emews: shard %d out of range for %d shards", i, len(sc.addrs))
	}
	sc.addrs[i] = addr
	old := sc.clients[i]
	sc.clients[i] = nil
	sc.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// Close closes every per-shard connection and interrupts waiting pops.
func (sc *ShardedClient) Close() error {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil
	}
	sc.closed = true
	close(sc.closeCh)
	clients := append([]*Client(nil), sc.clients...)
	sc.mu.Unlock()
	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
	return nil
}

// client returns (dialing if needed) the connection to shard i.
func (sc *ShardedClient) client(i int) (*Client, error) {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, closedClientErr()
	}
	if i < 0 || i >= len(sc.addrs) {
		sc.mu.Unlock()
		return nil, fmt.Errorf("emews: shard %d out of range for %d shards", i, len(sc.addrs))
	}
	if cl := sc.clients[i]; cl != nil {
		sc.mu.Unlock()
		return cl, nil
	}
	addr := sc.addrs[i]
	sc.mu.Unlock()

	cl, err := Dial(addr, sc.opts...)
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		cl.Close()
		return nil, closedClientErr()
	}
	if existing := sc.clients[i]; existing != nil {
		// Another op dialed concurrently; keep the first.
		sc.mu.Unlock()
		cl.Close()
		return existing, nil
	}
	if sc.addrs[i] != addr {
		// The shard was repointed while we dialed the old address.
		sc.mu.Unlock()
		cl.Close()
		return sc.client(i)
	}
	sc.clients[i] = cl
	sc.mu.Unlock()
	return cl, nil
}

// onShard runs op against the routed shard, following wrong_shard
// redirects. Normally the redirect target accepts on the first hop (the
// server's ring is authoritative when versions skew); if the target
// redirects too — the group's address order disagrees with the servers'
// own identities — the untried members are probed in index order, so a
// permuted address list degrades to a scan instead of a livelock. Each
// member is tried at most once.
func (sc *ShardedClient) onShard(shard int, op func(cl *Client) error) error {
	n := sc.Shards()
	tried := make([]bool, n)
	if shard < 0 || shard >= n {
		shard = 0
	}
	for {
		cl, err := sc.client(shard)
		if err != nil {
			return err
		}
		err = op(cl)
		var ws *WrongShardError
		if !errors.As(err, &ws) {
			return err
		}
		tried[shard] = true
		next := ws.Shard
		if next < 0 || next >= n || tried[next] {
			next = -1
			for i := 0; i < n; i++ {
				if !tried[i] {
					next = i
					break
				}
			}
			if next == -1 {
				return err
			}
		}
		shard = next
	}
}

// Submit inserts a task on the shard owning its payload key.
func (sc *ShardedClient) Submit(taskType string, priority int, payload string) (int64, error) {
	return sc.SubmitRetry(taskType, priority, payload, 0)
}

// SubmitRetry inserts a task with a retry budget on the shard owning its
// payload key. Like Client.SubmitRetry it is not transport-retried once
// the request may have been applied.
func (sc *ShardedClient) SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (int64, error) {
	var id int64
	err := sc.onShard(sc.ring.Lookup(payload), func(cl *Client) error {
		var err error
		id, err = cl.SubmitKeyedRetry(taskType, priority, payload, payload, maxAttempts)
		return err
	})
	return id, err
}

// SubmitBatch splits the payloads across their owning shards (one
// submit_batch per shard, concurrently) and returns IDs in payload order.
// Atomicity is per shard, not per group: on error, groups that reached
// their shard first are committed — callers reconcile the same way they
// would after a transport-ambiguous Client.SubmitBatch.
func (sc *ShardedClient) SubmitBatch(taskType string, priority int, payloads []string, maxAttempts int) ([]int64, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	groups := map[int][]int{} // shard -> payload indices, input order
	for i, p := range payloads {
		s := sc.ring.Lookup(p)
		groups[s] = append(groups[s], i)
	}
	ids := make([]int64, len(payloads))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for shard, idxs := range groups {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			batch := make([]string, len(idxs))
			for j, i := range idxs {
				batch[j] = payloads[i]
			}
			var got []int64
			err := sc.onShard(shard, func(cl *Client) error {
				var err error
				// The representative key routes identically to every
				// payload in the group (they share a ring owner).
				got, err = cl.submitBatchKeyed(taskType, priority, batch, batch[0], maxAttempts)
				return err
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for j, i := range idxs {
				ids[i] = got[j]
			}
		}(shard, idxs)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ids, nil
}

// Complete resolves a claimed attempt on the task's owning shard.
func (sc *ShardedClient) Complete(taskID, epoch int64, result string) error {
	return sc.onShard(ShardOfTask(taskID, sc.Shards()), func(cl *Client) error {
		return cl.Complete(taskID, epoch, result)
	})
}

// Fail resolves a claimed attempt as failed on the task's owning shard.
func (sc *ShardedClient) Fail(taskID, epoch int64, errMsg string) error {
	return sc.onShard(ShardOfTask(taskID, sc.Shards()), func(cl *Client) error {
		return cl.Fail(taskID, epoch, errMsg)
	})
}

// Result polls a task's terminal result from its owning shard.
func (sc *ShardedClient) Result(taskID int64) (result string, done bool, err error) {
	err = sc.onShard(ShardOfTask(taskID, sc.Shards()), func(cl *Client) error {
		var oerr error
		result, done, oerr = cl.Result(taskID)
		return oerr
	})
	return result, done, err
}

// FinishBatch splits the resolutions across their owning shards (one
// finish_batch per shard, concurrently) and returns per-op outcomes in
// input order. Unlike Client.FinishBatch, a shard-level exchange failure
// is reported in that shard's per-op slots (wrapped ErrTransport) rather
// than failing the whole call: the other shards' outcomes are real and
// must reach the caller.
func (sc *ShardedClient) FinishBatch(ops []FinishOp) ([]error, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	n := sc.Shards()
	groups := map[int][]int{}
	for i, op := range ops {
		s := ShardOfTask(op.TaskID, n)
		groups[s] = append(groups[s], i)
	}
	errs := make([]error, len(ops))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for shard, idxs := range groups {
		wg.Add(1)
		go func(shard int, idxs []int) {
			defer wg.Done()
			batch := make([]FinishOp, len(idxs))
			for j, i := range idxs {
				batch[j] = ops[i]
			}
			var got []error
			err := sc.onShard(shard, func(cl *Client) error {
				var err error
				got, err = cl.FinishBatch(batch)
				return err
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				for _, i := range idxs {
					errs[i] = err
				}
				return
			}
			for j, i := range idxs {
				errs[i] = got[j]
			}
		}(shard, idxs)
	}
	wg.Wait()
	return errs, nil
}

// RemoteStats sums occupancy counters across every shard.
func (sc *ShardedClient) RemoteStats() (Stats, error) {
	per, err := sc.ShardStats()
	if err != nil {
		return Stats{}, err
	}
	var sum Stats
	for _, st := range per {
		sum.Queued += st.Queued
		sum.Running += st.Running
		sum.Complete += st.Complete
		sum.Failed += st.Failed
		sum.Canceled += st.Canceled
		sum.Submitted += st.Submitted
	}
	return sum, nil
}

// ShardStats fetches per-shard occupancy counters, indexed by shard.
func (sc *ShardedClient) ShardStats() ([]Stats, error) {
	out := make([]Stats, sc.Shards())
	for i := range out {
		cl, err := sc.client(i)
		if err != nil {
			return nil, err
		}
		st, err := cl.RemoteStats()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// fan returns the fan-out state for taskType. Caller must hold sc.mu.
func (sc *ShardedClient) fanLocked(taskType string) *popFan {
	f, ok := sc.fans[taskType]
	if !ok {
		f = &popFan{inflight: map[int]bool{}, wake: make(chan struct{}, 1)}
		sc.fans[taskType] = f
	}
	return f
}

// Pop claims one task of taskType from any shard (PopBatch of one).
func (sc *ShardedClient) Pop(taskType string, timeout time.Duration) (RemoteTask, bool, error) {
	tasks, err := sc.PopBatch(taskType, 1, timeout)
	if err != nil || len(tasks) == 0 {
		return RemoteTask{}, false, err
	}
	return tasks[0], true, nil
}

// PopBatch claims up to max tasks of taskType across the group, waiting
// up to timeout (0 = wait indefinitely) for the first delivery. The
// fan-out keeps at most one pop_batch outstanding per shard; deliveries
// beyond max (or arriving after this call returns) stay buffered — their
// leases are live — and are returned by the next call, sorted by shard
// index with per-shard delivery order preserved, so two runs over the
// same delivery history hand out the same order.
func (sc *ShardedClient) PopBatch(taskType string, max int, timeout time.Duration) ([]RemoteTask, error) {
	if max < 1 {
		max = 1
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		sc.mu.Lock()
		if sc.closed {
			sc.mu.Unlock()
			return nil, closedClientErr()
		}
		f := sc.fanLocked(taskType)
		if len(f.buf) > 0 {
			out := takeFanTasks(f, max)
			rearm := len(f.buf) > 0
			sc.mu.Unlock()
			if rearm {
				// Leftovers for the next waiter: re-signal so a concurrent
				// PopBatch on this type does not sleep on a full buffer.
				select {
				case f.wake <- struct{}{}:
				default:
				}
			}
			return out, nil
		}
		// Launch a pop on every shard that does not have one in flight.
		for i := 0; i < sc.Shards(); i++ {
			if f.inflight[i] {
				continue
			}
			f.inflight[i] = true
			go sc.fanPop(f, taskType, i, max, timeout)
		}
		sc.mu.Unlock()

		select {
		case <-f.wake:
		case <-deadline:
			return nil, nil
		case <-sc.closeCh:
			return nil, closedClientErr()
		}
	}
}

// takeFanTasks hands out up to max buffered deliveries in deterministic
// order: stable-sorted by shard index. Caller holds sc.mu.
func takeFanTasks(f *popFan, max int) []RemoteTask {
	sort.SliceStable(f.buf, func(i, j int) bool { return f.buf[i].shard < f.buf[j].shard })
	n := len(f.buf)
	if n > max {
		n = max
	}
	out := make([]RemoteTask, n)
	for i := 0; i < n; i++ {
		out[i] = f.buf[i].task
	}
	f.buf = append(f.buf[:0], f.buf[n:]...)
	return out
}

// fanPop is one shard's leg of the fan-out: pop, buffer the deliveries,
// release the in-flight slot, wake a waiter. Errors (shard down,
// mid-failover) release the slot after a short backoff so the retry loop
// cannot spin against a dead shard.
func (sc *ShardedClient) fanPop(f *popFan, taskType string, shard, max int, timeout time.Duration) {
	var tasks []RemoteTask
	cl, err := sc.client(shard)
	if err == nil {
		tasks, err = cl.PopBatch(taskType, max, timeout)
	}
	if err != nil && !errors.Is(err, errClientClosed) {
		t := time.NewTimer(fanErrorBackoff)
		select {
		case <-t.C:
		case <-sc.closeCh:
			t.Stop()
		}
	}
	sc.mu.Lock()
	delete(f.inflight, shard)
	for _, task := range tasks {
		f.buf = append(f.buf, fanTask{shard: shard, task: task})
	}
	sc.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
}
