package emews

import (
	"context"
	"errors"
	"sync"
	"time"
)

// RemotePool runs workers that consume tasks from a task database over the
// TCP wire protocol — the EMEWS deployment shape where worker pools live on
// a different resource than the ME algorithm and the database.
type RemotePool struct {
	addr     string
	taskType string
	handler  Handler

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	workers   int
	processed int
	failed    int
	stale     int
}

// StartRemotePool connects `workers` TCP workers to the database served at
// addr and begins consuming tasks of taskType. Each worker holds its own
// connection (Pop blocks the connection while waiting); the underlying
// Client transparently reconnects with exponential backoff when the
// connection drops, and every resolution is fenced with the claim's
// attempt epoch.
func StartRemotePool(addr, taskType string, workers int, handler Handler) (*RemotePool, error) {
	if workers <= 0 {
		return nil, errors.New("emews: remote pool needs at least one worker")
	}
	if handler == nil {
		return nil, errors.New("emews: remote pool needs a handler")
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &RemotePool{addr: addr, taskType: taskType, handler: handler, cancel: cancel, workers: workers}

	// Verify connectivity before declaring success.
	probe, err := Dial(addr, WithRetries(0))
	if err != nil {
		cancel()
		return nil, err
	}
	probe.Close()

	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(ctx)
	}
	return p, nil
}

func (p *RemotePool) worker(ctx context.Context) {
	defer p.wg.Done()
	var client *Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		if client == nil {
			c, err := Dial(p.addr)
			if err != nil {
				// Server gone or unreachable; back off briefly.
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			client = c
		}
		task, ok, err := client.Pop(p.taskType, 200*time.Millisecond)
		if err != nil {
			// The client already retried over fresh connections; treat a
			// persistent failure as "server unavailable" and redial from
			// scratch after a pause.
			client.Close()
			client = nil
			select {
			case <-ctx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		if !ok {
			continue // poll timeout; loop to observe ctx
		}
		start := time.Now()
		result, herr := p.handler(ctx, task.Payload)
		mPoolHandler.ObserveSince(start)
		var resolveErr error
		if herr != nil {
			resolveErr = client.Fail(task.ID, task.Epoch, herr.Error())
		} else {
			resolveErr = client.Complete(task.ID, task.Epoch, result)
		}
		p.mu.Lock()
		switch {
		case errors.Is(resolveErr, ErrStaleClaim):
			p.stale++
			mPoolStale.Inc()
		case herr != nil:
			p.failed++
			mPoolFailed.Inc()
		default:
			p.processed++
			mPoolProcessed.Inc()
		}
		p.mu.Unlock()
	}
}

// Stop terminates the workers and waits for them to exit.
func (p *RemotePool) Stop() {
	p.cancel()
	p.wg.Wait()
}

// Stats reports the pool's processed/failed counters.
func (p *RemotePool) Stats() (processed, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed, p.failed
}

// Stale reports how many resolutions were rejected as stale claims (the
// worker finished after its lease expired and the task was reclaimed).
func (p *RemotePool) Stale() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stale
}
