package emews

import (
	"context"
	"errors"
	"sync"
	"time"
)

// RemotePool runs workers that consume tasks from a task database over the
// TCP wire protocol — the EMEWS deployment shape where worker pools live on
// a different resource than the ME algorithm and the database.
type RemotePool struct {
	addr     string
	taskType string
	handler  Handler
	batch    int

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	workers   int
	processed int
	failed    int
	stale     int
}

// StartRemotePool connects `workers` TCP workers to the database served at
// addr and begins consuming tasks of taskType. Each worker holds its own
// connection (Pop blocks the connection while waiting); the underlying
// Client transparently reconnects with exponential backoff when the
// connection drops, and every resolution is fenced with the claim's
// attempt epoch.
func StartRemotePool(addr, taskType string, workers int, handler Handler) (*RemotePool, error) {
	return StartRemotePoolBatched(addr, taskType, workers, 1, handler)
}

// StartRemotePoolBatched is StartRemotePool with batched wire ops: each
// worker leases up to batch tasks per round trip (pop_batch) and resolves
// them together (finish_batch), amortizing the network exchange over the
// batch. batch <= 1 uses the single-op path, which also works against
// pre-v2 servers that lack the batch ops.
func StartRemotePoolBatched(addr, taskType string, workers, batch int, handler Handler) (*RemotePool, error) {
	if workers <= 0 {
		return nil, errors.New("emews: remote pool needs at least one worker")
	}
	if handler == nil {
		return nil, errors.New("emews: remote pool needs a handler")
	}
	if batch < 1 {
		batch = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &RemotePool{addr: addr, taskType: taskType, handler: handler, batch: batch, cancel: cancel, workers: workers}

	// Verify connectivity before declaring success.
	probe, err := Dial(addr, WithRetries(0))
	if err != nil {
		cancel()
		return nil, err
	}
	probe.Close()

	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker(ctx)
	}
	return p, nil
}

func (p *RemotePool) worker(ctx context.Context) {
	defer p.wg.Done()
	var client *Client
	defer func() {
		if client != nil {
			client.Close()
		}
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		if client == nil {
			c, err := Dial(p.addr)
			if err != nil {
				// Server gone or unreachable; back off briefly.
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			client = c
		}
		var tasks []RemoteTask
		var err error
		if p.batch > 1 {
			tasks, err = client.PopBatch(p.taskType, p.batch, 200*time.Millisecond)
		} else {
			var task RemoteTask
			var ok bool
			task, ok, err = client.Pop(p.taskType, 200*time.Millisecond)
			if err == nil && ok {
				tasks = []RemoteTask{task}
			}
		}
		if err != nil {
			// The client already retried over fresh connections; treat a
			// persistent failure as "server unavailable" and redial from
			// scratch after a pause.
			client.Close()
			client = nil
			select {
			case <-ctx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		if len(tasks) == 0 {
			continue // poll timeout; loop to observe ctx
		}
		// Evaluate the whole lease, then resolve it in one exchange.
		fins := make([]FinishOp, len(tasks))
		handlerFailed := make([]bool, len(tasks))
		for i, task := range tasks {
			start := time.Now()
			result, herr := p.handler(ctx, task.Payload)
			mPoolHandler.ObserveSince(start)
			if herr != nil {
				fins[i] = FinishOp{TaskID: task.ID, Epoch: task.Epoch, Failed: true, ErrMsg: herr.Error()}
				handlerFailed[i] = true
			} else {
				fins[i] = FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: result}
			}
		}
		var resolveErrs []error
		if p.batch > 1 {
			resolveErrs, err = client.FinishBatch(fins)
			if err != nil {
				// The exchange itself failed; every resolution is unknown.
				// The server's connection cleanup requeues the claims.
				resolveErrs = make([]error, len(fins))
				for i := range resolveErrs {
					resolveErrs[i] = err
				}
			}
		} else {
			resolveErrs = make([]error, len(fins))
			for i, fin := range fins {
				if fin.Failed {
					resolveErrs[i] = client.Fail(fin.TaskID, fin.Epoch, fin.ErrMsg)
				} else {
					resolveErrs[i] = client.Complete(fin.TaskID, fin.Epoch, fin.Result)
				}
			}
		}
		p.mu.Lock()
		for i := range fins {
			switch {
			case errors.Is(resolveErrs[i], ErrStaleClaim):
				p.stale++
				mPoolStale.Inc()
			case handlerFailed[i]:
				p.failed++
				mPoolFailed.Inc()
			default:
				p.processed++
				mPoolProcessed.Inc()
			}
		}
		p.mu.Unlock()
	}
}

// Stop terminates the workers and waits for them to exit.
func (p *RemotePool) Stop() {
	p.cancel()
	p.wg.Wait()
}

// Stats reports the pool's processed/failed counters.
func (p *RemotePool) Stats() (processed, failed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.processed, p.failed
}

// Stale reports how many resolutions were rejected as stale claims (the
// worker finished after its lease expired and the task was reclaimed).
func (p *RemotePool) Stale() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stale
}
