// ShardGroup: the server-side bundle of a sharded task substrate — one
// WAL-backed task database per shard, each served with its shard identity
// (for wrong_shard redirects) and its WAL exposed for replication. The
// daemon and the benchmarks use it to stand up a whole group in one call;
// the load harness wires the same pieces by hand because it interposes
// chaos proxies and followers between them.
package emews

import (
	"fmt"
	"os"
	"path/filepath"

	"osprey/internal/wal"
)

// ShardGroup is a set of co-hosted shard primaries.
type ShardGroup struct {
	dirs []string
	logs []*wal.Log
	dbs  []*DB
	srvs []*Server
}

// shardDir names shard i's WAL directory under a group base directory.
func shardDir(baseDir string, i int) string {
	return filepath.Join(baseDir, fmt.Sprintf("shard-%02d", i))
}

// OpenShardGroup opens (creating or recovering) count shard databases
// under baseDir/shard-NN and serves each one. addrs pins per-shard listen
// addresses; nil (or fewer entries than shards) assigns ephemeral
// loopback ports, the default — pinned ports are an explicit opt-in.
// On error, everything already opened is torn down.
func OpenShardGroup(baseDir string, count int, addrs []string, walOpts wal.Options) (*ShardGroup, error) {
	if count < 1 {
		count = 1
	}
	if err := os.MkdirAll(baseDir, 0o755); err != nil {
		return nil, err
	}
	g := &ShardGroup{}
	for i := 0; i < count; i++ {
		dir := shardDir(baseDir, i)
		l, err := wal.Open(dir, walOpts)
		if err != nil {
			g.Close()
			return nil, err
		}
		db, err := OpenDBShard(l, i, count)
		if err != nil {
			l.Close()
			g.Close()
			return nil, fmt.Errorf("emews: open shard %d: %w", i, err)
		}
		addr := "127.0.0.1:0"
		if i < len(addrs) && addrs[i] != "" {
			addr = addrs[i]
		}
		srv, err := Serve(db, addr, WithShardIdentity(i, count), WithReplicationSource(l))
		if err != nil {
			db.Close()
			l.Close()
			g.Close()
			return nil, fmt.Errorf("emews: serve shard %d: %w", i, err)
		}
		g.dirs = append(g.dirs, dir)
		g.logs = append(g.logs, l)
		g.dbs = append(g.dbs, db)
		g.srvs = append(g.srvs, srv)
	}
	return g, nil
}

// Shards returns the group size.
func (g *ShardGroup) Shards() int { return len(g.dbs) }

// Addrs returns the bound listen address of every shard, indexed by shard.
func (g *ShardGroup) Addrs() []string {
	out := make([]string, len(g.srvs))
	for i, s := range g.srvs {
		out[i] = s.Addr()
	}
	return out
}

// DB returns shard i's database (e.g. to attach a lease reaper).
func (g *ShardGroup) DB(i int) *DB { return g.dbs[i] }

// Dir returns shard i's WAL directory.
func (g *ShardGroup) Dir(i int) string { return g.dirs[i] }

// Stats sums occupancy across the group.
func (g *ShardGroup) Stats() Stats {
	var sum Stats
	for _, db := range g.dbs {
		st := db.Stats()
		sum.Queued += st.Queued
		sum.Running += st.Running
		sum.Complete += st.Complete
		sum.Failed += st.Failed
		sum.Canceled += st.Canceled
		sum.Submitted += st.Submitted
	}
	return sum
}

// Close stops the servers, closes the databases (logging the close
// mutation, canceling queued tasks — DB.Close semantics per shard), and
// closes the logs.
func (g *ShardGroup) Close() {
	for _, s := range g.srvs {
		s.Close()
	}
	for _, db := range g.dbs {
		db.Close()
	}
	for _, l := range g.logs {
		l.Close()
	}
}
