package emews

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRemotePoolProcessesTasks(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool, err := StartRemotePool(srv.Addr(), "m", 3, func(ctx context.Context, payload string) (string, error) {
		return "R:" + payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	var futures []*Future
	for i := 0; i < 12; i++ {
		f, err := db.Submit("m", 0, fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for i, f := range futures {
		res, err := f.Result(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res != fmt.Sprintf("R:t%d", i) {
			t.Fatalf("task %d = %q", i, res)
		}
	}
	// The future resolves when the server applies the completion; the
	// worker bumps its counter only after it sees the response, so allow
	// a moment for the counters to catch up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		processed, failed := pool.Stats()
		if processed == 12 && failed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool stats %d/%d", processed, failed)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemotePoolHandlerErrors(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, _ := Serve(db, "127.0.0.1:0")
	defer srv.Close()
	pool, err := StartRemotePool(srv.Addr(), "m", 1, func(ctx context.Context, payload string) (string, error) {
		return "", fmt.Errorf("remote boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()
	f, _ := db.Submit("m", 0, "x")
	if _, err := f.Result(context.Background()); err == nil || !strings.Contains(err.Error(), "remote boom") {
		t.Fatalf("remote failure not propagated: %v", err)
	}
}

func TestRemotePoolRejectsBadAddr(t *testing.T) {
	if _, err := StartRemotePool("127.0.0.1:1", "m", 1, func(ctx context.Context, p string) (string, error) {
		return "", nil
	}); err == nil {
		t.Fatal("unreachable server accepted")
	}
	db := NewDB()
	defer db.Close()
	srv, _ := Serve(db, "127.0.0.1:0")
	defer srv.Close()
	if _, err := StartRemotePool(srv.Addr(), "m", 0, func(ctx context.Context, p string) (string, error) {
		return "", nil
	}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := StartRemotePool(srv.Addr(), "m", 1, nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestRemotePoolStopsCleanly(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, _ := Serve(db, "127.0.0.1:0")
	defer srv.Close()
	pool, err := StartRemotePool(srv.Addr(), "m", 2, func(ctx context.Context, p string) (string, error) {
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		pool.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestSubmitRetryRequeuesOnFailure(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, err := db.SubmitRetry("m", 0, "flaky", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Two failures, then success on the third attempt.
	for attempt := 1; attempt <= 2; attempt++ {
		claim, err := db.Pop(context.Background(), "m")
		if err != nil {
			t.Fatal(err)
		}
		if claim.Task.Attempts != attempt {
			t.Fatalf("attempt %d recorded as %d", attempt, claim.Task.Attempts)
		}
		if err := claim.Fail("transient"); err != nil {
			t.Fatal(err)
		}
		if _, _, done := f.TryResult(); done {
			t.Fatalf("future terminated after failed attempt %d with retries left", attempt)
		}
	}
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Complete("finally"); err != nil {
		t.Fatal(err)
	}
	res, err := f.Result(context.Background())
	if err != nil || res != "finally" {
		t.Fatalf("retried task result = %q, %v", res, err)
	}
}

func TestSubmitRetryExhaustsBudget(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, _ := db.SubmitRetry("m", 0, "doomed", 2)
	for attempt := 0; attempt < 2; attempt++ {
		claim, err := db.Pop(context.Background(), "m")
		if err != nil {
			t.Fatal(err)
		}
		claim.Fail("permanent")
	}
	if _, err := f.Result(context.Background()); err == nil || !strings.Contains(err.Error(), "permanent") {
		t.Fatalf("exhausted retries should fail the future: %v", err)
	}
	st := db.Stats()
	if st.Failed != 1 {
		t.Fatalf("stats count %d failed, want 1 (retries are not separate tasks)", st.Failed)
	}
}

func TestRetryThroughLocalPool(t *testing.T) {
	db := NewDB()
	defer db.Close()
	var calls atomic.Int32
	pool, _ := StartLocalPool(db, "m", 1, func(ctx context.Context, payload string) (string, error) {
		if calls.Add(1) < 3 {
			return "", fmt.Errorf("flaky worker")
		}
		return "ok", nil
	})
	defer pool.Stop()
	f, _ := db.SubmitRetry("m", 0, "x", 5)
	res, err := f.Result(context.Background())
	if err != nil || res != "ok" {
		t.Fatalf("retry through pool = %q, %v", res, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("handler ran %d times, want 3", calls.Load())
	}
}

func TestLeaseReapRequeuesLostTask(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(20 * time.Millisecond)
	f, err := db.SubmitRetry("m", 0, "x", 2)
	if err != nil {
		t.Fatal(err)
	}
	// A "worker" pops the task and crashes (never resolves the claim).
	if _, err := db.Pop(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if req, failed := db.ReapExpired(); req != 1 || failed != 0 {
		t.Fatalf("reap = (%d requeued, %d failed), want (1, 0)", req, failed)
	}
	// The task is queued again and a healthy worker finishes it.
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if claim.Task.Attempts != 2 {
		t.Fatalf("attempts = %d after reclaim, want 2", claim.Task.Attempts)
	}
	if err := claim.Complete("recovered"); err != nil {
		t.Fatal(err)
	}
	res, err := f.Result(context.Background())
	if err != nil || res != "recovered" {
		t.Fatalf("recovered result = %q, %v", res, err)
	}
}

func TestLeaseReapFailsExhaustedTask(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(10 * time.Millisecond)
	f, _ := db.Submit("m", 0, "x") // MaxAttempts = 1
	db.Pop(context.Background(), "m")
	time.Sleep(25 * time.Millisecond)
	if req, failed := db.ReapExpired(); req != 0 || failed != 1 {
		t.Fatalf("reap = (%d requeued, %d failed), want (0, 1)", req, failed)
	}
	if _, err := f.Result(context.Background()); err == nil || !strings.Contains(err.Error(), "lease expired") {
		t.Fatalf("exhausted lost task should fail: %v", err)
	}
}

func TestReapNoopWithoutLeases(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.Submit("m", 0, "x")
	db.Pop(context.Background(), "m")
	if req, failed := db.ReapExpired(); req != 0 || failed != 0 {
		t.Fatalf("reap without lease timeout reclaimed (%d, %d)", req, failed)
	}
}

func TestStartReaperBackground(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(15 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	db.StartReaper(ctx, 10*time.Millisecond)
	f, _ := db.SubmitRetry("m", 0, "x", 2)
	db.Pop(context.Background(), "m") // lost worker
	// The background reaper must requeue it without manual intervention.
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	claim.Complete("ok")
	if res, err := f.Result(context.Background()); err != nil || res != "ok" {
		t.Fatalf("background reap path: %q, %v", res, err)
	}
}
