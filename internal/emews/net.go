package emews

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The wire protocol is newline-delimited JSON request/response over TCP,
// mirroring EMEWS's separation of ME algorithm processes from worker pools
// running on other resources. One request per line; one response per line.

type wireRequest struct {
	Op        string `json:"op"` // submit | pop | complete | fail | result | stats
	Type      string `json:"type,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Payload   string `json:"payload,omitempty"`
	TaskID    int64  `json:"task_id,omitempty"`
	Result    string `json:"result,omitempty"`
	ErrMsg    string `json:"err_msg,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

type wireResponse struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	TaskID  int64  `json:"task_id,omitempty"`
	Payload string `json:"payload,omitempty"`
	Result  string `json:"result,omitempty"`
	Done    bool   `json:"done,omitempty"`
	Empty   bool   `json:"empty,omitempty"`
	Stats   *Stats `json:"stats,omitempty"`
}

// Server exposes a DB over TCP.
type Server struct {
	db *DB
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts a TCP server for db on addr (e.g. "127.0.0.1:0") and returns
// it; the bound address is available via Addr.
func Serve(db *DB, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{db: db, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for connection handlers.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(wireResponse{Error: "bad request: " + err.Error()})
			continue
		}
		resp := s.dispatch(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req wireRequest) wireResponse {
	switch req.Op {
	case "submit":
		f, err := s.db.Submit(req.Type, req.Priority, req.Payload)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, TaskID: f.TaskID}
	case "pop":
		ctx := context.Background()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		claim, err := s.db.Pop(ctx, req.Type)
		if errors.Is(err, context.DeadlineExceeded) {
			return wireResponse{OK: true, Empty: true}
		}
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, TaskID: claim.Task.ID, Payload: claim.Task.Payload}
	case "complete":
		if err := s.db.finish(req.TaskID, StatusComplete, req.Result, ""); err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true}
	case "fail":
		if err := s.db.finish(req.TaskID, StatusFailed, "", req.ErrMsg); err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true}
	case "result":
		t, err := s.db.Get(req.TaskID)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		switch t.Status {
		case StatusComplete:
			return wireResponse{OK: true, Done: true, Result: t.Result}
		case StatusFailed:
			return wireResponse{OK: true, Done: true, Error: t.ErrMsg}
		case StatusCanceled:
			return wireResponse{OK: true, Done: true, Error: "canceled"}
		default:
			return wireResponse{OK: true, Done: false}
		}
	case "stats":
		st := s.db.Stats()
		return wireResponse{OK: true, Stats: &st}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a TCP client for a remote task DB. Methods are safe for
// concurrent use (requests are serialized on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), enc: json.NewEncoder(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return wireResponse{}, err
	}
	var resp wireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return wireResponse{}, err
	}
	if resp.Error != "" && !resp.OK {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Submit inserts a task remotely and returns its ID.
func (c *Client) Submit(taskType string, priority int, payload string) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// Pop claims a task, waiting up to timeout (0 = wait indefinitely on the
// server side). It returns ok=false if the wait timed out.
func (c *Client) Pop(taskType string, timeout time.Duration) (id int64, payload string, ok bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "pop", Type: taskType, TimeoutMS: int(timeout / time.Millisecond)})
	if err != nil {
		return 0, "", false, err
	}
	if resp.Empty {
		return 0, "", false, nil
	}
	return resp.TaskID, resp.Payload, true, nil
}

// Complete reports a successful evaluation.
func (c *Client) Complete(taskID int64, result string) error {
	_, err := c.roundTrip(wireRequest{Op: "complete", TaskID: taskID, Result: result})
	return err
}

// Fail reports a failed evaluation.
func (c *Client) Fail(taskID int64, errMsg string) error {
	_, err := c.roundTrip(wireRequest{Op: "fail", TaskID: taskID, ErrMsg: errMsg})
	return err
}

// Result polls a task's terminal result; done=false means still pending.
func (c *Client) Result(taskID int64) (result string, done bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "result", TaskID: taskID})
	if err != nil {
		return "", false, err
	}
	if !resp.Done {
		return "", false, nil
	}
	if resp.Error != "" {
		return "", true, errors.New(resp.Error)
	}
	return resp.Result, true, nil
}

// WaitResult polls Result until the task terminates or ctx cancels.
func (c *Client) WaitResult(ctx context.Context, taskID int64, pollEvery time.Duration) (string, error) {
	if pollEvery <= 0 {
		pollEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(pollEvery)
	defer ticker.Stop()
	for {
		res, done, err := c.Result(taskID)
		if err != nil && done {
			return "", err
		}
		if err != nil {
			return "", err
		}
		if done {
			return res, nil
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-ticker.C:
		}
	}
}

// RemoteStats fetches DB occupancy counters.
func (c *Client) RemoteStats() (Stats, error) {
	resp, err := c.roundTrip(wireRequest{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("emews: missing stats in response")
	}
	return *resp.Stats, nil
}
