// TCP wire protocol for the EMEWS task database, mirroring EMEWS's
// separation of ME algorithm processes from worker pools running on other
// resources.
//
// Two framings share one dispatch layer:
//
//   - v2 (default): length-prefixed binary frames with request ids, so a
//     connection can pipeline many ops and the server answers out of
//     order. See wirev2.go for the frame layout and the connect-time
//     negotiation; netv2.go holds the server reader/dispatcher/writer
//     split and the client session demux.
//   - v1 (legacy): newline-delimited JSON request/response, one op in
//     flight per connection. New servers detect a JSON client by its
//     first byte and fall back; new clients detect a JSON-only server by
//     its handshake reply and fall back. Old and new deployments mix
//     freely.
//
// Request ops and their fields (JSON names; the binary codec carries the
// same fields positionally):
//
//	submit       {op, type, priority, payload[, max_attempts]}   -> {ok, task_id}
//	pop          {op, type, timeout_ms}                          -> {ok, task_id, epoch, payload} | {ok, empty:true}
//	complete     {op, task_id, epoch, result}                    -> {ok} | {error, stale?}
//	fail         {op, task_id, epoch, err_msg}                   -> {ok} | {error, stale?}
//	result       {op, task_id}                                   -> {ok, done, failed?, result|error}
//	stats        {op}                                            -> {ok, stats}
//	submit_batch {op, type, priority, payloads[, max_attempts]}  -> {ok, task_ids}
//	pop_batch    {op, type, max, timeout_ms}                     -> {ok, tasks} | {ok, empty:true}
//	finish_batch {op, finishes:[{task_id, epoch, failed, ...}]}  -> {ok, results:[{ok, stale?, error?}]}
//
// Claim fencing: every pop response carries the attempt epoch assigned by
// the database. complete/fail must echo it back; a resolution whose epoch
// no longer matches the task's current attempt (the lease expired and the
// task was requeued/re-popped) is rejected with stale=true in the
// response. epoch 0 on complete/fail is accepted for legacy clients and
// falls back to the unfenced status-only check. Fenced complete/fail are
// idempotent per attempt: re-sending the same resolution (e.g. after a
// lost response) succeeds without effect.
//
// Connection-scoped claims: the server remembers which task attempts each
// connection has popped but not yet resolved. When the connection drops —
// the remote worker crashed, its node was reclaimed, or the network
// partitioned — those claims are automatically failed, which requeues the
// task if it has retry budget left. A remote worker's death therefore
// cannot leak a task in StatusRunning forever, even with no lease reaper
// configured.
package emews

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"osprey/internal/wal"
)

type wireRequest struct {
	Op        string `json:"op"`
	Type      string `json:"type,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Payload   string `json:"payload,omitempty"`
	TaskID    int64  `json:"task_id,omitempty"`
	Epoch     int64  `json:"epoch,omitempty"`
	Result    string `json:"result,omitempty"`
	ErrMsg    string `json:"err_msg,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	// MaxAttempts > 0 on submit/submit_batch enables automatic
	// requeue-on-failure up to that many attempts (DB.SubmitRetry
	// semantics); 0 keeps the single-attempt default.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Max bounds how many tasks one pop_batch may lease.
	Max      int          `json:"max,omitempty"`
	Payloads []string     `json:"payloads,omitempty"` // submit_batch
	Finishes []wireFinish `json:"finishes,omitempty"` // finish_batch
	// Key is the shard-routing key of a submit. A server with a shard
	// identity verifies it against its own ring and answers a wrong_shard
	// redirect when the key belongs elsewhere; an empty key skips the
	// check (unsharded and legacy clients).
	Key string `json:"key,omitempty"`
	// Seg/Off are the WAL shipping cursor of a wal_fetch (replication).
	// Seg 0 requests the bootstrap state (snapshot + starting cursor).
	Seg int   `json:"seg,omitempty"`
	Off int64 `json:"off,omitempty"`
}

// wireFinish is one resolution inside a finish_batch.
type wireFinish struct {
	TaskID int64  `json:"task_id"`
	Epoch  int64  `json:"epoch,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Result string `json:"result,omitempty"`
	ErrMsg string `json:"err_msg,omitempty"`
}

// wireTask is one claim inside a pop_batch response.
type wireTask struct {
	ID      int64  `json:"id"`
	Epoch   int64  `json:"epoch"`
	Payload string `json:"payload,omitempty"`
}

// wireResult is one per-op outcome inside a finish_batch response.
type wireResult struct {
	OK    bool   `json:"ok"`
	Stale bool   `json:"stale,omitempty"`
	Error string `json:"error,omitempty"`
}

type wireResponse struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Stale   bool   `json:"stale,omitempty"` // Error is a stale-claim rejection
	TaskID  int64  `json:"task_id,omitempty"`
	Epoch   int64  `json:"epoch,omitempty"`
	Payload string `json:"payload,omitempty"`
	Result  string `json:"result,omitempty"`
	Done    bool   `json:"done,omitempty"`
	// Failed marks a result response for a task that terminated
	// unsuccessfully. Clients must key on this, not on Error being
	// non-empty: a task can fail with an empty message.
	Failed  bool         `json:"failed,omitempty"`
	Empty   bool         `json:"empty,omitempty"`
	Tasks   []wireTask   `json:"tasks,omitempty"`    // pop_batch
	TaskIDs []int64      `json:"task_ids,omitempty"` // submit_batch
	Results []wireResult `json:"results,omitempty"`  // finish_batch
	Stats   *Stats       `json:"stats,omitempty"`
	// WrongShard marks a redirect: the op was sent to the wrong member of
	// a shard group and Shard names the owner. The op was NOT applied.
	WrongShard bool `json:"wrong_shard,omitempty"`
	Shard      int  `json:"shard,omitempty"`
	// wal_fetch: the next shipping cursor, the shipped framed records,
	// and whether Data is a bootstrap snapshot instead. Seg 0 in a
	// wal_fetch response means the requested cursor was compacted away
	// and the follower must re-bootstrap.
	Seg      int    `json:"seg,omitempty"`
	Off      int64  `json:"off,omitempty"`
	Snapshot bool   `json:"snapshot,omitempty"`
	Data     []byte `json:"data,omitempty"`
}

// connClaims tracks task attempts popped on one connection and not yet
// resolved (taskID -> attempt epoch). The binary handler dispatches
// requests concurrently, so access is locked.
type connClaims struct {
	mu sync.Mutex
	m  map[int64]int64
}

func newConnClaims() *connClaims { return &connClaims{m: map[int64]int64{}} }

func (cc *connClaims) add(id, epoch int64) {
	cc.mu.Lock()
	cc.m[id] = epoch
	cc.mu.Unlock()
	mNetClaims.Inc()
}

func (cc *connClaims) release(id int64) {
	cc.mu.Lock()
	_, held := cc.m[id]
	delete(cc.m, id)
	cc.mu.Unlock()
	if held {
		mNetClaims.Dec()
	}
}

// drain empties the claim table and returns what was held, for the
// connection-loss cleanup.
func (cc *connClaims) drain() map[int64]int64 {
	cc.mu.Lock()
	m := cc.m
	cc.m = map[int64]int64{}
	cc.mu.Unlock()
	return m
}

// ServerOption configures a Server at Serve time.
type ServerOption func(*Server)

// WithLegacyOnlyFraming makes the server speak only the v1 JSON framing,
// as a pre-v2 server would: a v2 client's handshake is answered with a
// JSON error line, driving the client down its fallback path. Useful for
// cross-version testing.
func WithLegacyOnlyFraming() ServerOption {
	return func(s *Server) { s.legacyOnly = true }
}

// WithShardIdentity declares the server shard index of a count-wide
// shard group. Keyed submits whose ring owner is another shard, and
// task-addressed ops whose strided ID belongs to another shard, are
// answered with a wrong_shard redirect instead of being applied.
func WithShardIdentity(index, count int) ServerOption {
	return func(s *Server) {
		s.shardIndex, s.shardCount = index, count
		if count > 1 {
			s.ring = NewRing(count)
		}
	}
}

// WithReplicationSource exposes the given WAL over the wal_fetch op so
// followers can bootstrap from its snapshot and tail its segments. The
// log must be the one backing this server's DB.
func WithReplicationSource(l *wal.Log) ServerOption {
	return func(s *Server) { s.replWAL = l }
}

// Server exposes a DB over TCP.
type Server struct {
	db         *DB
	ln         net.Listener
	wg         sync.WaitGroup
	dispatchWG sync.WaitGroup // in-flight requests whose responses are not yet flushed
	drainMu    sync.RWMutex   // guards draining vs dispatchWG.Add (see beginDispatch)
	draining   bool
	ctx        context.Context
	cancel     context.CancelFunc
	legacyOnly bool
	shardIndex int
	shardCount int
	ring       *Ring
	replWAL    *wal.Log

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a TCP server for db on addr (e.g. "127.0.0.1:0") and returns
// it; the bound address is available via Addr.
func Serve(db *DB, addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{db: db, ln: ln, ctx: ctx, cancel: cancel, conns: map[net.Conn]struct{}{}}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, cancels in-flight blocking pops, closes all
// active connections (requeueing their unresolved claims), and waits for
// connection handlers to finish. In-flight requests get a bounded window
// to flush their responses (a canceled blocking pop answers with a clean
// empty response) before the connections are torn down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	s.ln.Close()
	// Publish draining before waiting: beginDispatch registers new
	// requests under drainMu.RLock, so after this barrier every Add
	// either happened-before the Wait or was refused — the WaitGroup
	// counter can no longer be re-raised from zero mid-Wait (a race
	// the detector rightly flags).
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	flushed := make(chan struct{})
	go func() {
		s.dispatchWG.Wait()
		close(flushed)
	}()
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// beginDispatch registers one in-flight request with dispatchWG, or
// reports false once Close has begun draining. The RLock pairs with the
// write barrier in Close so an Add can never race the drain Wait; a
// refused request simply dies with its connection, which Close is about
// to tear down anyway.
func (s *Server) beginDispatch() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.dispatchWG.Add(1)
	return true
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle sniffs the framing and runs the matching per-connection loop.
func (s *Server) handle(conn net.Conn) {
	claims := newConnClaims()
	mNetConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		mNetConns.Dec()
		// The connection is gone; its worker can no longer resolve its
		// claims. Fail them so tasks with retry budget are requeued for
		// other workers. The epoch fence makes this a no-op for any claim
		// a lease reaper already reclaimed.
		for id, epoch := range claims.drain() {
			_, _ = s.db.finish(id, epoch, StatusFailed, "", "connection lost (remote worker gone)")
			mNetLostClaims.Inc()
			mNetClaims.Dec()
		}
	}()
	br := bufio.NewReader(conn)
	if s.legacyOnly {
		s.handleLegacy(conn, br, claims)
		return
	}
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == '{' {
		// v1 JSON client: no hello line, requests start immediately.
		s.handleLegacy(conn, br, claims)
		return
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	if line != clientHello {
		enc := json.NewEncoder(conn)
		_ = enc.Encode(wireResponse{Error: fmt.Sprintf("bad preamble %q", line)})
		return
	}
	if _, err := conn.Write([]byte(serverHelloAck)); err != nil {
		return
	}
	s.handleBinary(conn, br, claims)
}

// handleLegacy is the v1 loop: one newline-delimited JSON request at a
// time, processed synchronously.
func (s *Server) handleLegacy(conn net.Conn, r *bufio.Reader, claims *connClaims) {
	enc := json.NewEncoder(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(wireResponse{Error: "bad request: " + err.Error()})
			continue
		}
		mNetRequests.Inc()
		reqStart := time.Now()
		if !s.beginDispatch() {
			return
		}
		resp := s.dispatch(s.ctx, req, claims)
		mNetRequest.ObserveSince(reqStart)
		err = enc.Encode(resp)
		s.dispatchWG.Done()
		if err != nil {
			return
		}
	}
}

// dispatch executes one request against the DB. It is codec-agnostic:
// both the JSON loop and the binary handler feed it, so every op
// (including the batch ops) works over either framing. ctx bounds
// blocking pops: it is the server context, additionally canceled when the
// requesting connection dies (binary path).
// wrongShardTask answers a redirect when a task-addressed op reached a
// shard that does not own the task's strided ID; nil means the op may
// proceed (including always on an unsharded server).
func (s *Server) wrongShardTask(id int64) *wireResponse {
	if s.shardCount <= 1 || id < 1 {
		return nil
	}
	if want := ShardOfTask(id, s.shardCount); want != s.shardIndex {
		return &wireResponse{
			Error:      fmt.Sprintf("emews: task %d belongs to shard %d, not %d", id, want, s.shardIndex),
			WrongShard: true, Shard: want,
		}
	}
	return nil
}

// wrongShardKey answers a redirect when a keyed submit's ring owner is
// another shard. An empty key skips the check.
func (s *Server) wrongShardKey(key string) *wireResponse {
	if s.shardCount <= 1 || key == "" || s.ring == nil {
		return nil
	}
	if want := s.ring.Lookup(key); want != s.shardIndex {
		return &wireResponse{
			Error:      fmt.Sprintf("emews: key routes to shard %d, not %d", want, s.shardIndex),
			WrongShard: true, Shard: want,
		}
	}
	return nil
}

func (s *Server) dispatch(ctx context.Context, req wireRequest, claims *connClaims) wireResponse {
	switch req.Op {
	case "submit":
		if r := s.wrongShardKey(req.Key); r != nil {
			return *r
		}
		var f *Future
		var err error
		if req.MaxAttempts > 0 {
			f, err = s.db.SubmitRetry(req.Type, req.Priority, req.Payload, req.MaxAttempts)
		} else {
			f, err = s.db.Submit(req.Type, req.Priority, req.Payload)
		}
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, TaskID: f.TaskID}
	case "submit_batch":
		if r := s.wrongShardKey(req.Key); r != nil {
			return *r
		}
		maxAttempts := req.MaxAttempts
		if maxAttempts < 1 {
			maxAttempts = 1
		}
		fs, err := s.db.SubmitBatchRetry(req.Type, req.Priority, req.Payloads, maxAttempts)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		ids := make([]int64, len(fs))
		for i, f := range fs {
			ids[i] = f.TaskID
		}
		return wireResponse{OK: true, TaskIDs: ids}
	case "pop":
		claim, err := s.popCtx(ctx, req, func(pctx context.Context) (any, error) {
			return s.db.Pop(pctx, req.Type)
		})
		if err != nil || claim == nil {
			return popWaitResponse(err)
		}
		c := claim.(*Claim)
		claims.add(c.Task.ID, c.Task.Epoch)
		return wireResponse{OK: true, TaskID: c.Task.ID, Epoch: c.Task.Epoch, Payload: c.Task.Payload}
	case "pop_batch":
		max := req.Max
		if max < 1 {
			max = 1
		}
		res, err := s.popCtx(ctx, req, func(pctx context.Context) (any, error) {
			return s.db.PopBatch(pctx, req.Type, max)
		})
		if err != nil || res == nil {
			return popWaitResponse(err)
		}
		cs := res.([]*Claim)
		tasks := make([]wireTask, len(cs))
		for i, c := range cs {
			claims.add(c.Task.ID, c.Task.Epoch)
			tasks[i] = wireTask{ID: c.Task.ID, Epoch: c.Task.Epoch, Payload: c.Task.Payload}
		}
		return wireResponse{OK: true, Tasks: tasks}
	case "complete":
		if r := s.wrongShardTask(req.TaskID); r != nil {
			return *r
		}
		claims.release(req.TaskID)
		if _, err := s.db.finish(req.TaskID, req.Epoch, StatusComplete, req.Result, ""); err != nil {
			return wireResponse{Error: err.Error(), Stale: errors.Is(err, ErrStaleClaim)}
		}
		return wireResponse{OK: true}
	case "fail":
		if r := s.wrongShardTask(req.TaskID); r != nil {
			return *r
		}
		claims.release(req.TaskID)
		if _, err := s.db.finish(req.TaskID, req.Epoch, StatusFailed, "", req.ErrMsg); err != nil {
			return wireResponse{Error: err.Error(), Stale: errors.Is(err, ErrStaleClaim)}
		}
		return wireResponse{OK: true}
	case "finish_batch":
		results := make([]wireResult, len(req.Finishes))
		for i, fin := range req.Finishes {
			if r := s.wrongShardTask(fin.TaskID); r != nil {
				// Per-op redirect: the routing client groups finishes by
				// shard, so this is defensive, not a hot path.
				results[i] = wireResult{Error: r.Error}
				continue
			}
			claims.release(fin.TaskID)
			status, result, errMsg := StatusComplete, fin.Result, ""
			if fin.Failed {
				status, result, errMsg = StatusFailed, "", fin.ErrMsg
			}
			if _, err := s.db.finish(fin.TaskID, fin.Epoch, status, result, errMsg); err != nil {
				results[i] = wireResult{Error: err.Error(), Stale: errors.Is(err, ErrStaleClaim)}
			} else {
				results[i] = wireResult{OK: true}
			}
		}
		return wireResponse{OK: true, Results: results}
	case "result":
		if r := s.wrongShardTask(req.TaskID); r != nil {
			return *r
		}
		t, err := s.db.Get(req.TaskID)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		switch t.Status {
		case StatusComplete:
			return wireResponse{OK: true, Done: true, Result: t.Result}
		case StatusFailed:
			return wireResponse{OK: true, Done: true, Failed: true, Error: t.ErrMsg}
		case StatusCanceled:
			return wireResponse{OK: true, Done: true, Failed: true, Error: "canceled"}
		default:
			return wireResponse{OK: true, Done: false}
		}
	case "stats":
		st := s.db.Stats()
		return wireResponse{OK: true, Stats: &st}
	case "wal_fetch":
		if s.replWAL == nil {
			return wireResponse{Error: "emews: replication not enabled on this server"}
		}
		if req.Seg == 0 {
			// Bootstrap: newest snapshot (if any) plus the starting cursor.
			snap, seg, off, err := s.replWAL.ShipBootstrap()
			if err != nil {
				return wireResponse{Error: err.Error()}
			}
			return wireResponse{OK: true, Seg: seg, Off: off, Data: snap, Snapshot: snap != nil}
		}
		data, seg, off, err := s.replWAL.ReadAt(req.Seg, req.Off, 0)
		if err != nil {
			if errors.Is(err, wal.ErrCompacted) {
				// Seg 0 in a wal_fetch response is the re-bootstrap signal.
				return wireResponse{OK: true, Seg: 0}
			}
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Seg: seg, Off: off, Data: data}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// popCtx runs a blocking pop under the request's timeout. A nil result
// with nil error never happens: pop returns a claim or an error.
func (s *Server) popCtx(ctx context.Context, req wireRequest, pop func(context.Context) (any, error)) (any, error) {
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	return pop(ctx)
}

// popWaitResponse maps the terminal conditions of a blocking pop wait to a
// response. A deadline is the normal empty-poll outcome; cancellation
// means the server is shutting down (or the connection died), which a
// well-behaved worker should also see as a clean empty poll rather than a
// scary error string — it re-polls and then observes the close properly.
func popWaitResponse(err error) wireResponse {
	if err == nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return wireResponse{OK: true, Empty: true}
	}
	return wireResponse{Error: err.Error()}
}

// ErrTransport wraps connection-level client failures (dial, write, read,
// decode). Check with errors.Is to distinguish a flaky network from a
// server-side rejection or a task failure; transport errors are the ones
// worth retrying.
var ErrTransport = errors.New("emews: transport error")

// errClientClosed marks transport errors caused by Close() being called
// on the client itself — never worth retrying.
var errClientClosed = errors.New("client closed")

func closedClientErr() error {
	return fmt.Errorf("%w: %w", ErrTransport, errClientClosed)
}

// TaskError is a task-level failure reported by Result/WaitResult: the
// evaluation itself failed (or was canceled), as opposed to the transport
// or the protocol.
type TaskError struct {
	TaskID int64
	Msg    string
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("emews: task %d failed: %s", e.TaskID, e.Msg)
}

// RemoteTask is a claim handed to a wire client by Pop: the task to
// evaluate plus the attempt epoch that must be echoed back to
// Complete/Fail (claim fencing).
type RemoteTask struct {
	ID      int64
	Epoch   int64
	Payload string
}

// FinishOp is one resolution inside Client.FinishBatch.
type FinishOp struct {
	TaskID int64
	Epoch  int64
	Failed bool // false: complete with Result; true: fail with ErrMsg
	Result string
	ErrMsg string
}

// Client option defaults.
const (
	defaultOpTimeout   = 30 * time.Second
	defaultBaseBackoff = 20 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
	defaultMaxRetries  = 4
)

// ClientOption configures a Client at Dial time.
type ClientOption func(*Client)

// WithOpTimeout bounds each request/response round trip (for pop: in
// addition to the requested server-side wait). Zero disables deadlines.
func WithOpTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.opTimeout = d }
}

// WithRetries sets how many times a transport-failed op is retried on a
// fresh connection before giving up. Zero disables retries.
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoff sets the reconnect backoff range: the first redial waits
// base, doubling up to max on consecutive failures.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.baseBackoff, c.maxBackoff = base, max }
}

// WithLegacyFraming skips the v2 handshake and speaks the v1 JSON framing
// unconditionally, behaving exactly like a pre-v2 client. Useful for
// cross-version testing.
func WithLegacyFraming() ClientOption {
	return func(c *Client) { c.forceLegacy = true }
}

// Client is a TCP client for a remote task DB. Methods are safe for
// concurrent use. Against a v2 server, concurrent ops are pipelined on
// one connection (matched by request id); against a legacy server they
// are serialized.
//
// The client is resilient: when an op fails at the transport level, the
// connection is dropped and redialed with exponential backoff, and ops
// that are safe to re-send are retried. pop/pop_batch/result/stats are
// always safe: a pop whose response was lost is requeued by the server's
// connection-scoped claim cleanup. complete/fail (and finish_batch) are
// safe only when fenced with an attempt epoch, because duplicate fenced
// resolutions are idempotent; unfenced (epoch-0) resolutions are NOT
// retried once the request may have reached the server — a retry could
// land on a different attempt. submit is likewise not retried; callers
// see ErrTransport and decide.
type Client struct {
	addr        string
	opTimeout   time.Duration
	baseBackoff time.Duration
	maxBackoff  time.Duration
	maxRetries  int
	forceLegacy bool

	closeCh chan struct{} // closed by Close; interrupts backoff waits and pending ops

	// dialMu serializes connect attempts (including the backoff sleep),
	// deliberately separate from mu so Close and established-connection
	// ops never wait behind a redial in progress.
	dialMu sync.Mutex

	// legacyMu serializes request/response exchanges on a legacy (JSON)
	// connection, which supports only one op in flight.
	legacyMu sync.Mutex

	mu      sync.Mutex
	closed  bool
	conn    net.Conn
	r       *bufio.Reader  // legacy framing only
	enc     *json.Encoder  // legacy framing only
	sess    *clientSession // binary framing only (nil on a legacy conn)
	backoff time.Duration  // next redial delay; 0 after a healthy connect
}

// connHandle is a stable snapshot of the live connection for one exchange.
type connHandle struct {
	conn net.Conn
	sess *clientSession
	r    *bufio.Reader
	enc  *json.Encoder
}

// Dial connects to a Server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:        addr,
		opTimeout:   defaultOpTimeout,
		baseBackoff: defaultBaseBackoff,
		maxBackoff:  defaultMaxBackoff,
		maxRetries:  defaultMaxRetries,
		closeCh:     make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if _, err := c.ensureConn(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection and interrupts any in-progress backoff wait
// or pending op.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	conn, sess := c.conn, c.sess
	c.conn, c.r, c.enc, c.sess = nil, nil, nil, nil
	c.mu.Unlock()
	if sess != nil {
		sess.shutdown()
		return nil
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}

func (c *Client) bumpBackoffLocked() {
	if c.backoff == 0 {
		c.backoff = c.baseBackoff
	} else if c.backoff < c.maxBackoff {
		c.backoff *= 2
		if c.backoff > c.maxBackoff {
			c.backoff = c.maxBackoff
		}
	}
}

// ensureConn returns the live connection, dialing (with handshake and
// interruptible backoff) if there is none. The backoff sleep happens
// under dialMu only, so Close and ops on an established connection are
// never blocked behind it.
func (c *Client) ensureConn() (connHandle, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return connHandle{}, closedClientErr()
	}
	if c.conn != nil {
		h := connHandle{conn: c.conn, sess: c.sess, r: c.r, enc: c.enc}
		c.mu.Unlock()
		return h, nil
	}
	c.mu.Unlock()

	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	// Another op may have finished connecting while we waited for dialMu.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return connHandle{}, closedClientErr()
	}
	if c.conn != nil {
		h := connHandle{conn: c.conn, sess: c.sess, r: c.r, enc: c.enc}
		c.mu.Unlock()
		return h, nil
	}
	backoff := c.backoff
	c.mu.Unlock()

	if backoff > 0 {
		t := time.NewTimer(backoff)
		select {
		case <-c.closeCh:
			t.Stop()
			return connHandle{}, closedClientErr()
		case <-t.C:
		}
	}
	dialTimeout := c.opTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		c.mu.Lock()
		c.bumpBackoffLocked()
		c.mu.Unlock()
		return connHandle{}, fmt.Errorf("%w: dial %s: %v", ErrTransport, c.addr, err)
	}
	r := bufio.NewReader(conn)
	binaryOK, err := c.handshake(conn, r, dialTimeout)
	if err != nil {
		conn.Close()
		c.mu.Lock()
		c.bumpBackoffLocked()
		c.mu.Unlock()
		return connHandle{}, fmt.Errorf("%w: handshake %s: %v", ErrTransport, c.addr, err)
	}
	var sess *clientSession
	var enc *json.Encoder
	if binaryOK {
		sess = newClientSession(conn, r)
	} else {
		enc = json.NewEncoder(conn)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if sess != nil {
			sess.shutdown()
		} else {
			conn.Close()
		}
		return connHandle{}, closedClientErr()
	}
	c.backoff = 0
	c.conn, c.r, c.enc, c.sess = conn, r, enc, sess
	h := connHandle{conn: conn, sess: sess, r: r, enc: enc}
	c.mu.Unlock()
	return h, nil
}

// handshake negotiates the framing on a fresh connection. It returns
// binaryOK=false when the server only speaks the v1 JSON framing (its
// reply to the hello starts with '{').
func (c *Client) handshake(conn net.Conn, r *bufio.Reader, timeout time.Duration) (binaryOK bool, err error) {
	if c.forceLegacy {
		return false, nil
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer func() { _ = conn.SetDeadline(time.Time{}) }()
	if _, err := conn.Write([]byte(clientHello)); err != nil {
		return false, err
	}
	first, err := r.Peek(1)
	if err != nil {
		return false, err
	}
	if first[0] == '{' {
		// Legacy server: it read the hello as one bad JSON request and
		// answered an error line. Consume it and fall back to v1 framing.
		if _, err := r.ReadBytes('\n'); err != nil {
			return false, err
		}
		return false, nil
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return false, err
	}
	if line != serverHelloAck {
		return false, fmt.Errorf("unexpected handshake reply %q", line)
	}
	return true, nil
}

// drop discards conn if it is still the client's current connection and
// arms the reconnect backoff. Safe to call from several ops that failed
// on the same connection.
func (c *Client) drop(conn net.Conn) {
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		conn.Close()
		return
	}
	sess := c.sess
	c.conn, c.r, c.enc, c.sess = nil, nil, nil, nil
	if c.backoff == 0 {
		c.backoff = c.baseBackoff
	}
	c.mu.Unlock()
	if sess != nil {
		sess.shutdown()
	} else {
		conn.Close()
	}
}

// retrySafe reports whether req may be re-sent even though the previous
// attempt may have reached the server (see the Client doc comment).
// Resolutions are only retry-safe when fenced: the epoch makes a
// duplicate delivery idempotent, while an unfenced retry could resolve a
// different attempt than the one the caller observed.
func retrySafe(req *wireRequest) bool {
	switch req.Op {
	case "pop", "pop_batch", "result", "stats", "wal_fetch":
		return true
	case "complete", "fail":
		return req.Epoch > 0
	case "finish_batch":
		for _, f := range req.Finishes {
			if f.Epoch <= 0 {
				return false
			}
		}
		return true
	}
	return false
}

// exchangeTimeout is the client-side bound for one exchange: the op
// timeout, plus the requested server-side wait for pops. A pop with
// TimeoutMS=0 waits unboundedly by design.
func (c *Client) exchangeTimeout(req *wireRequest) time.Duration {
	if c.opTimeout <= 0 {
		return 0
	}
	d := c.opTimeout
	if req.Op == "pop" || req.Op == "pop_batch" {
		if req.TimeoutMS == 0 {
			return 0
		}
		d += time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return d
}

// exchange performs one request/response on the given connection.
func (c *Client) exchange(h connHandle, req *wireRequest) (wireResponse, error) {
	if h.sess != nil {
		return h.sess.do(req, c.exchangeTimeout(req), c.closeCh)
	}
	return c.legacyExchange(h, req)
}

// legacyExchange is the v1 path: one JSON line out, one JSON line back,
// serialized with other ops on this client.
func (c *Client) legacyExchange(h connHandle, req *wireRequest) (wireResponse, error) {
	c.legacyMu.Lock()
	defer c.legacyMu.Unlock()
	var deadline time.Time
	if d := c.exchangeTimeout(req); d > 0 {
		deadline = time.Now().Add(d)
	}
	_ = h.conn.SetDeadline(deadline)
	if err := h.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("%w: write: %v", ErrTransport, err)
	}
	line, err := h.r.ReadBytes('\n')
	if err != nil {
		return wireResponse{}, fmt.Errorf("%w: read: %v", ErrTransport, err)
	}
	var resp wireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return wireResponse{}, fmt.Errorf("%w: decode: %v", ErrTransport, err)
	}
	if err := respError(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// WrongShardError is a redirect from a shard-group member: the op was
// sent to the wrong shard, was not applied, and should be re-sent to
// Shard. The routing ShardedClient follows these transparently; a raw
// Client surfaces them.
type WrongShardError struct {
	Shard int
	Msg   string
}

func (e *WrongShardError) Error() string { return e.Msg }

// respError converts a server-side rejection into an error.
func respError(resp *wireResponse) error {
	if resp.Error != "" && !resp.OK {
		if resp.WrongShard {
			return &WrongShardError{Shard: resp.Shard, Msg: resp.Error}
		}
		if resp.Stale {
			return &staleRemoteError{msg: resp.Error}
		}
		return errors.New(resp.Error)
	}
	return nil
}

// staleRemoteError carries a server-side stale-claim rejection verbatim
// (the message already names the attempts) while still matching
// errors.Is(err, ErrStaleClaim).
type staleRemoteError struct{ msg string }

func (e *staleRemoteError) Error() string        { return e.msg }
func (e *staleRemoteError) Is(target error) bool { return target == ErrStaleClaim }

// roundTrip sends req, transparently reconnecting (with exponential
// backoff) and retrying transport failures for retry-safe ops.
func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		h, err := c.ensureConn()
		if err != nil {
			if errors.Is(err, errClientClosed) {
				return wireResponse{}, err
			}
			lastErr = err
			if attempt >= c.maxRetries {
				return wireResponse{}, lastErr
			}
			continue
		}
		resp, err := c.exchange(h, &req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransport) {
			// Server-side rejection (stale claim, unknown task, ...):
			// the connection is fine, the request was refused.
			return resp, err
		}
		c.drop(h.conn)
		if errors.Is(err, errClientClosed) {
			return wireResponse{}, err
		}
		lastErr = err
		if !retrySafe(&req) {
			return wireResponse{}, fmt.Errorf("%w (request may have been applied)", err)
		}
		if attempt >= c.maxRetries {
			return wireResponse{}, lastErr
		}
	}
}

// Submit inserts a task remotely and returns its ID.
func (c *Client) Submit(taskType string, priority int, payload string) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// SubmitRetry inserts a task remotely with a retry budget: a failed
// attempt requeues the task until maxAttempts is exhausted. Like Submit,
// it is not transport-retried once the request may have been applied.
func (c *Client) SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload, MaxAttempts: maxAttempts})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// SubmitKeyedRetry is SubmitRetry with an explicit shard-routing key: a
// server that is part of a shard group verifies the key against its hash
// ring and answers *WrongShardError when it routes elsewhere (the op is
// not applied). Unsharded servers ignore the key.
func (c *Client) SubmitKeyedRetry(taskType string, priority int, payload, key string, maxAttempts int) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload, Key: key, MaxAttempts: maxAttempts})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// SubmitBatch inserts several tasks of one type at one priority in a
// single round trip (atomic on the server; see DB.SubmitBatch) and
// returns their IDs in payload order. maxAttempts > 1 gives every task in
// the batch that retry budget. Like Submit, the batch is not
// transport-retried once it may have been applied.
func (c *Client) SubmitBatch(taskType string, priority int, payloads []string, maxAttempts int) ([]int64, error) {
	return c.submitBatchKeyed(taskType, priority, payloads, "", maxAttempts)
}

func (c *Client) submitBatchKeyed(taskType string, priority int, payloads []string, key string, maxAttempts int) ([]int64, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	resp, err := c.roundTrip(wireRequest{Op: "submit_batch", Type: taskType, Priority: priority, Payloads: payloads, Key: key, MaxAttempts: maxAttempts})
	if err != nil {
		return nil, err
	}
	if len(resp.TaskIDs) != len(payloads) {
		return nil, fmt.Errorf("emews: submit_batch returned %d ids for %d payloads", len(resp.TaskIDs), len(payloads))
	}
	return resp.TaskIDs, nil
}

// popTimeoutMS converts a pop timeout to wire milliseconds. Any positive
// timeout is clamped up to 1ms: truncating (say) 500µs to 0 would turn a
// bounded wait into an unbounded server-side one.
func popTimeoutMS(timeout time.Duration) int {
	if timeout <= 0 {
		return 0
	}
	ms := int(timeout / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	return ms
}

// Pop claims a task, waiting up to timeout (0 = wait indefinitely on the
// server side). It returns ok=false if the wait timed out. The returned
// claim carries the attempt epoch to pass to Complete/Fail.
func (c *Client) Pop(taskType string, timeout time.Duration) (task RemoteTask, ok bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "pop", Type: taskType, TimeoutMS: popTimeoutMS(timeout)})
	if err != nil {
		return RemoteTask{}, false, err
	}
	if resp.Empty {
		return RemoteTask{}, false, nil
	}
	return RemoteTask{ID: resp.TaskID, Epoch: resp.Epoch, Payload: resp.Payload}, true, nil
}

// PopBatch claims up to max tasks in one round trip, waiting up to
// timeout (0 = wait indefinitely) for the first one; once any task is
// available the server returns immediately with whatever else is queued,
// up to max. An empty (timed-out) wait returns a nil slice and no error.
func (c *Client) PopBatch(taskType string, max int, timeout time.Duration) ([]RemoteTask, error) {
	resp, err := c.roundTrip(wireRequest{Op: "pop_batch", Type: taskType, Max: max, TimeoutMS: popTimeoutMS(timeout)})
	if err != nil {
		return nil, err
	}
	if resp.Empty || len(resp.Tasks) == 0 {
		return nil, nil
	}
	tasks := make([]RemoteTask, len(resp.Tasks))
	for i, t := range resp.Tasks {
		tasks[i] = RemoteTask{ID: t.ID, Epoch: t.Epoch, Payload: t.Payload}
	}
	return tasks, nil
}

// Complete reports a successful evaluation of the claimed attempt. A
// stale claim (epoch superseded) is rejected with ErrStaleClaim.
func (c *Client) Complete(taskID, epoch int64, result string) error {
	_, err := c.roundTrip(wireRequest{Op: "complete", TaskID: taskID, Epoch: epoch, Result: result})
	return err
}

// Fail reports a failed evaluation of the claimed attempt.
func (c *Client) Fail(taskID, epoch int64, errMsg string) error {
	_, err := c.roundTrip(wireRequest{Op: "fail", TaskID: taskID, Epoch: epoch, ErrMsg: errMsg})
	return err
}

// FinishBatch resolves many claimed attempts in one round trip. The
// returned slice has one entry per op, in order: nil for an accepted
// resolution, an ErrStaleClaim-matching error for a superseded claim, or
// the server's rejection. The second return value reports a failure of
// the exchange itself (transport, protocol); when it is non-nil no
// per-op outcome is known.
func (c *Client) FinishBatch(ops []FinishOp) ([]error, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	fins := make([]wireFinish, len(ops))
	for i, op := range ops {
		fins[i] = wireFinish{TaskID: op.TaskID, Epoch: op.Epoch, Failed: op.Failed, Result: op.Result, ErrMsg: op.ErrMsg}
	}
	resp, err := c.roundTrip(wireRequest{Op: "finish_batch", Finishes: fins})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(ops) {
		return nil, fmt.Errorf("emews: finish_batch returned %d results for %d ops", len(resp.Results), len(ops))
	}
	errs := make([]error, len(ops))
	for i, r := range resp.Results {
		switch {
		case r.OK:
		case r.Stale:
			errs[i] = &staleRemoteError{msg: r.Error}
		default:
			errs[i] = errors.New(r.Error)
		}
	}
	return errs, nil
}

// Result polls a task's terminal result; done=false means still pending.
// A failed or canceled task is reported as (*TaskError, done=true);
// transport problems are reported wrapped in ErrTransport.
func (c *Client) Result(taskID int64) (result string, done bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "result", TaskID: taskID})
	if err != nil {
		return "", false, err
	}
	if !resp.Done {
		return "", false, nil
	}
	// Failed is authoritative (a task can fail with an empty message);
	// the Error check keeps compatibility with pre-v2 servers that only
	// signal failure through a non-empty message.
	if resp.Failed || resp.Error != "" {
		return "", true, &TaskError{TaskID: taskID, Msg: resp.Error}
	}
	return resp.Result, true, nil
}

// WaitResult polls Result until the task terminates or ctx cancels.
// Transport errors are transient here: the poll keeps going (the client's
// reconnect/backoff paces the retries) until the context gives up, so a
// server restart or network blip does not abort the wait. A task failure
// (*TaskError) terminates it.
func (c *Client) WaitResult(ctx context.Context, taskID int64, pollEvery time.Duration) (string, error) {
	if pollEvery <= 0 {
		pollEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(pollEvery)
	defer ticker.Stop()
	for {
		res, done, err := c.Result(taskID)
		switch {
		case err == nil && done:
			return res, nil
		case err != nil && !errors.Is(err, ErrTransport):
			// Task failure or server-side rejection: definitive.
			return "", err
		case err != nil && ctx.Err() == nil:
			// Transport error: keep polling until ctx expires.
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-ticker.C:
		}
	}
}

// RemoteStats fetches DB occupancy counters.
func (c *Client) RemoteStats() (Stats, error) {
	resp, err := c.roundTrip(wireRequest{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("emews: missing stats in response")
	}
	return *resp.Stats, nil
}

// WALChunk is one wal_fetch reply: either a bootstrap snapshot
// (Snapshot=true, Data = snapshot payload) or a run of framed WAL
// records (Data), plus the next shipping cursor. Seg == 0 means the
// requested cursor was compacted away: re-bootstrap with WALFetch(0, 0).
type WALChunk struct {
	Data     []byte
	Seg      int
	Off      int64
	Snapshot bool
}

// WALFetch reads the primary's WAL over the wire (replication): seg 0
// requests the bootstrap state, any other cursor requests the framed
// records after it (empty Data with Seg != 0 = caught up with the tail).
// Read-only and idempotent, so it is transport-retried like pops.
func (c *Client) WALFetch(seg int, off int64) (WALChunk, error) {
	resp, err := c.roundTrip(wireRequest{Op: "wal_fetch", Seg: seg, Off: off})
	if err != nil {
		return WALChunk{}, err
	}
	return WALChunk{Data: resp.Data, Seg: resp.Seg, Off: resp.Off, Snapshot: resp.Snapshot}, nil
}
