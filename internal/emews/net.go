// TCP wire protocol for the EMEWS task database, mirroring EMEWS's
// separation of ME algorithm processes from worker pools running on other
// resources.
//
// Transport: newline-delimited JSON request/response over TCP. One request
// per line; one response per line; requests on a connection are processed
// sequentially.
//
// Request ops and their fields:
//
//	submit   {op, type, priority, payload[, max_attempts]} -> {ok, task_id}
//	pop      {op, type, timeout_ms}                   -> {ok, task_id, epoch, payload} | {ok, empty:true}
//	complete {op, task_id, epoch, result}             -> {ok} | {error, stale?}
//	fail     {op, task_id, epoch, err_msg}            -> {ok} | {error, stale?}
//	result   {op, task_id}                            -> {ok, done, result|error}
//	stats    {op}                                     -> {ok, stats}
//
// Claim fencing: every pop response carries the attempt epoch assigned by
// the database. complete/fail must echo it back; a resolution whose epoch
// no longer matches the task's current attempt (the lease expired and the
// task was requeued/re-popped) is rejected with stale=true in the
// response. epoch 0 on complete/fail is accepted for legacy clients and
// falls back to the unfenced status-only check. Fenced complete/fail are
// idempotent per attempt: re-sending the same resolution (e.g. after a
// lost response) succeeds without effect.
//
// Connection-scoped claims: the server remembers which task attempts each
// connection has popped but not yet resolved. When the connection drops —
// the remote worker crashed, its node was reclaimed, or the network
// partitioned — those claims are automatically failed, which requeues the
// task if it has retry budget left. A remote worker's death therefore
// cannot leak a task in StatusRunning forever, even with no lease reaper
// configured.
package emews

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

type wireRequest struct {
	Op        string `json:"op"` // submit | pop | complete | fail | result | stats
	Type      string `json:"type,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Payload   string `json:"payload,omitempty"`
	TaskID    int64  `json:"task_id,omitempty"`
	Epoch     int64  `json:"epoch,omitempty"`
	Result    string `json:"result,omitempty"`
	ErrMsg    string `json:"err_msg,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	// MaxAttempts > 0 on submit enables automatic requeue-on-failure up to
	// that many attempts (DB.SubmitRetry semantics); 0 keeps the
	// single-attempt default.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

type wireResponse struct {
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Stale   bool   `json:"stale,omitempty"` // Error is a stale-claim rejection
	TaskID  int64  `json:"task_id,omitempty"`
	Epoch   int64  `json:"epoch,omitempty"`
	Payload string `json:"payload,omitempty"`
	Result  string `json:"result,omitempty"`
	Done    bool   `json:"done,omitempty"`
	Empty   bool   `json:"empty,omitempty"`
	Stats   *Stats `json:"stats,omitempty"`
}

// Server exposes a DB over TCP.
type Server struct {
	db     *DB
	ln     net.Listener
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a TCP server for db on addr (e.g. "127.0.0.1:0") and returns
// it; the bound address is available via Addr.
func Serve(db *DB, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{db: db, ln: ln, ctx: ctx, cancel: cancel, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, cancels in-flight blocking pops, closes all
// active connections (requeueing their unresolved claims), and waits for
// connection handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.cancel()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	// claims tracks task attempts popped on this connection and not yet
	// resolved: taskID -> attempt epoch. Single handler goroutine per
	// connection, so no locking is needed.
	claims := map[int64]int64{}
	mNetConns.Inc()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		mNetConns.Dec()
		// The connection is gone; its worker can no longer resolve its
		// claims. Fail them so tasks with retry budget are requeued for
		// other workers. The epoch fence makes this a no-op for any claim
		// a lease reaper already reclaimed.
		for id, epoch := range claims {
			_, _ = s.db.finish(id, epoch, StatusFailed, "", "connection lost (remote worker gone)")
			mNetLostClaims.Inc()
			mNetClaims.Dec()
		}
	}()
	r := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			_ = enc.Encode(wireResponse{Error: "bad request: " + err.Error()})
			continue
		}
		mNetRequests.Inc()
		reqStart := time.Now()
		resp := s.dispatch(req, claims)
		mNetRequest.ObserveSince(reqStart)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req wireRequest, claims map[int64]int64) wireResponse {
	switch req.Op {
	case "submit":
		var f *Future
		var err error
		if req.MaxAttempts > 0 {
			f, err = s.db.SubmitRetry(req.Type, req.Priority, req.Payload, req.MaxAttempts)
		} else {
			f, err = s.db.Submit(req.Type, req.Priority, req.Payload)
		}
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, TaskID: f.TaskID}
	case "pop":
		// Blocking pops are bounded by server shutdown: Close cancels
		// s.ctx, so a worker waiting with timeout_ms=0 cannot pin the
		// server open.
		ctx := s.ctx
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		claim, err := s.db.Pop(ctx, req.Type)
		if errors.Is(err, context.DeadlineExceeded) {
			return wireResponse{OK: true, Empty: true}
		}
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		claims[claim.Task.ID] = claim.Task.Epoch
		mNetClaims.Inc()
		return wireResponse{OK: true, TaskID: claim.Task.ID, Epoch: claim.Task.Epoch, Payload: claim.Task.Payload}
	case "complete":
		if _, held := claims[req.TaskID]; held {
			delete(claims, req.TaskID)
			mNetClaims.Dec()
		}
		if _, err := s.db.finish(req.TaskID, req.Epoch, StatusComplete, req.Result, ""); err != nil {
			return wireResponse{Error: err.Error(), Stale: errors.Is(err, ErrStaleClaim)}
		}
		return wireResponse{OK: true}
	case "fail":
		if _, held := claims[req.TaskID]; held {
			delete(claims, req.TaskID)
			mNetClaims.Dec()
		}
		if _, err := s.db.finish(req.TaskID, req.Epoch, StatusFailed, "", req.ErrMsg); err != nil {
			return wireResponse{Error: err.Error(), Stale: errors.Is(err, ErrStaleClaim)}
		}
		return wireResponse{OK: true}
	case "result":
		t, err := s.db.Get(req.TaskID)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		switch t.Status {
		case StatusComplete:
			return wireResponse{OK: true, Done: true, Result: t.Result}
		case StatusFailed:
			return wireResponse{OK: true, Done: true, Error: t.ErrMsg}
		case StatusCanceled:
			return wireResponse{OK: true, Done: true, Error: "canceled"}
		default:
			return wireResponse{OK: true, Done: false}
		}
	case "stats":
		st := s.db.Stats()
		return wireResponse{OK: true, Stats: &st}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// ErrTransport wraps connection-level client failures (dial, write, read,
// decode). Check with errors.Is to distinguish a flaky network from a
// server-side rejection or a task failure; transport errors are the ones
// worth retrying.
var ErrTransport = errors.New("emews: transport error")

// TaskError is a task-level failure reported by Result/WaitResult: the
// evaluation itself failed (or was canceled), as opposed to the transport
// or the protocol.
type TaskError struct {
	TaskID int64
	Msg    string
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("emews: task %d failed: %s", e.TaskID, e.Msg)
}

// RemoteTask is a claim handed to a wire client by Pop: the task to
// evaluate plus the attempt epoch that must be echoed back to
// Complete/Fail (claim fencing).
type RemoteTask struct {
	ID      int64
	Epoch   int64
	Payload string
}

// Client option defaults.
const (
	defaultOpTimeout   = 30 * time.Second
	defaultBaseBackoff = 20 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
	defaultMaxRetries  = 4
)

// ClientOption configures a Client at Dial time.
type ClientOption func(*Client)

// WithOpTimeout bounds each request/response round trip (for pop: in
// addition to the requested server-side wait). Zero disables deadlines.
func WithOpTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.opTimeout = d }
}

// WithRetries sets how many times a transport-failed op is retried on a
// fresh connection before giving up. Zero disables retries.
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.maxRetries = n }
}

// WithBackoff sets the reconnect backoff range: the first redial waits
// base, doubling up to max on consecutive failures.
func WithBackoff(base, max time.Duration) ClientOption {
	return func(c *Client) { c.baseBackoff, c.maxBackoff = base, max }
}

// Client is a TCP client for a remote task DB. Methods are safe for
// concurrent use (requests are serialized on the connection).
//
// The client is resilient: when an op fails at the transport level, the
// connection is dropped and redialed with exponential backoff, and ops
// that are safe to re-send are retried. pop/result/stats are always safe:
// a pop whose response was lost is requeued by the server's
// connection-scoped claim cleanup. complete/fail are safe when fenced
// with an epoch, because duplicate resolutions of the same attempt are
// idempotent. submit is NOT retried once the request may have reached the
// server (it would duplicate the task); callers see ErrTransport and
// decide.
type Client struct {
	addr        string
	opTimeout   time.Duration
	baseBackoff time.Duration
	maxBackoff  time.Duration
	maxRetries  int

	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	enc     *json.Encoder
	backoff time.Duration // next redial delay; 0 after a healthy connect
	closed  bool
}

// Dial connects to a Server.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:        addr,
		opTimeout:   defaultOpTimeout,
		baseBackoff: defaultBaseBackoff,
		maxBackoff:  defaultMaxBackoff,
		maxRetries:  defaultMaxRetries,
	}
	for _, o := range opts {
		o(c)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// connectLocked dials the server, honoring the exponential backoff state
// from previous failures. Caller holds c.mu.
func (c *Client) connectLocked() error {
	if c.backoff > 0 {
		time.Sleep(c.backoff)
	}
	dialTimeout := c.opTimeout
	if dialTimeout <= 0 {
		dialTimeout = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		if c.backoff == 0 {
			c.backoff = c.baseBackoff
		} else if c.backoff < c.maxBackoff {
			c.backoff *= 2
			if c.backoff > c.maxBackoff {
				c.backoff = c.maxBackoff
			}
		}
		return fmt.Errorf("%w: dial %s: %v", ErrTransport, c.addr, err)
	}
	c.backoff = 0
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.enc = json.NewEncoder(conn)
	return nil
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if c.backoff == 0 {
		c.backoff = c.baseBackoff
	}
}

// retrySafe reports whether op may be re-sent even though the previous
// attempt may have reached the server (see the Client doc comment).
func retrySafe(op string) bool {
	switch op {
	case "pop", "result", "stats", "complete", "fail":
		return true
	}
	return false
}

// doLocked performs one request/response exchange on the live connection.
func (c *Client) doLocked(req wireRequest) (wireResponse, error) {
	if c.opTimeout > 0 {
		deadline := time.Now().Add(c.opTimeout)
		if req.Op == "pop" {
			if req.TimeoutMS == 0 {
				// Unbounded server-side wait: no read deadline.
				deadline = time.Time{}
			} else {
				deadline = deadline.Add(time.Duration(req.TimeoutMS) * time.Millisecond)
			}
		}
		_ = c.conn.SetDeadline(deadline)
	}
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("%w: write: %v", ErrTransport, err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return wireResponse{}, fmt.Errorf("%w: read: %v", ErrTransport, err)
	}
	var resp wireResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return wireResponse{}, fmt.Errorf("%w: decode: %v", ErrTransport, err)
	}
	if resp.Error != "" && !resp.OK {
		if resp.Stale {
			return resp, &staleRemoteError{msg: resp.Error}
		}
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// staleRemoteError carries a server-side stale-claim rejection verbatim
// (the message already names the attempts) while still matching
// errors.Is(err, ErrStaleClaim).
type staleRemoteError struct{ msg string }

func (e *staleRemoteError) Error() string        { return e.msg }
func (e *staleRemoteError) Is(target error) bool { return target == ErrStaleClaim }

// roundTrip sends req, transparently reconnecting (with exponential
// backoff) and retrying transport failures for retry-safe ops.
func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.closed {
			return wireResponse{}, fmt.Errorf("%w: client closed", ErrTransport)
		}
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				lastErr = err
				if attempt >= c.maxRetries {
					return wireResponse{}, lastErr
				}
				continue
			}
		}
		resp, err := c.doLocked(req)
		if err == nil {
			return resp, nil
		}
		if !errors.Is(err, ErrTransport) {
			// Server-side rejection (stale claim, unknown task, ...):
			// the connection is fine, the request was refused.
			return resp, err
		}
		c.dropLocked()
		lastErr = err
		if !retrySafe(req.Op) {
			return wireResponse{}, fmt.Errorf("%w (request may have been applied)", err)
		}
		if attempt >= c.maxRetries {
			return wireResponse{}, lastErr
		}
	}
}

// Submit inserts a task remotely and returns its ID.
func (c *Client) Submit(taskType string, priority int, payload string) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// SubmitRetry inserts a task remotely with a retry budget: a failed
// attempt requeues the task until maxAttempts is exhausted. Like Submit,
// it is not transport-retried once the request may have been applied.
func (c *Client) SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (int64, error) {
	resp, err := c.roundTrip(wireRequest{Op: "submit", Type: taskType, Priority: priority, Payload: payload, MaxAttempts: maxAttempts})
	if err != nil {
		return 0, err
	}
	return resp.TaskID, nil
}

// Pop claims a task, waiting up to timeout (0 = wait indefinitely on the
// server side). It returns ok=false if the wait timed out. The returned
// claim carries the attempt epoch to pass to Complete/Fail.
func (c *Client) Pop(taskType string, timeout time.Duration) (task RemoteTask, ok bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "pop", Type: taskType, TimeoutMS: int(timeout / time.Millisecond)})
	if err != nil {
		return RemoteTask{}, false, err
	}
	if resp.Empty {
		return RemoteTask{}, false, nil
	}
	return RemoteTask{ID: resp.TaskID, Epoch: resp.Epoch, Payload: resp.Payload}, true, nil
}

// Complete reports a successful evaluation of the claimed attempt. A
// stale claim (epoch superseded) is rejected with ErrStaleClaim.
func (c *Client) Complete(taskID, epoch int64, result string) error {
	_, err := c.roundTrip(wireRequest{Op: "complete", TaskID: taskID, Epoch: epoch, Result: result})
	return err
}

// Fail reports a failed evaluation of the claimed attempt.
func (c *Client) Fail(taskID, epoch int64, errMsg string) error {
	_, err := c.roundTrip(wireRequest{Op: "fail", TaskID: taskID, Epoch: epoch, ErrMsg: errMsg})
	return err
}

// Result polls a task's terminal result; done=false means still pending.
// A failed or canceled task is reported as (*TaskError, done=true);
// transport problems are reported wrapped in ErrTransport.
func (c *Client) Result(taskID int64) (result string, done bool, err error) {
	resp, err := c.roundTrip(wireRequest{Op: "result", TaskID: taskID})
	if err != nil {
		return "", false, err
	}
	if !resp.Done {
		return "", false, nil
	}
	if resp.Error != "" {
		return "", true, &TaskError{TaskID: taskID, Msg: resp.Error}
	}
	return resp.Result, true, nil
}

// WaitResult polls Result until the task terminates or ctx cancels.
// Transport errors are transient here: the poll keeps going (the client's
// reconnect/backoff paces the retries) until the context gives up, so a
// server restart or network blip does not abort the wait. A task failure
// (*TaskError) terminates it.
func (c *Client) WaitResult(ctx context.Context, taskID int64, pollEvery time.Duration) (string, error) {
	if pollEvery <= 0 {
		pollEvery = 10 * time.Millisecond
	}
	ticker := time.NewTicker(pollEvery)
	defer ticker.Stop()
	for {
		res, done, err := c.Result(taskID)
		switch {
		case err == nil && done:
			return res, nil
		case err != nil && !errors.Is(err, ErrTransport):
			// Task failure or server-side rejection: definitive.
			return "", err
		case err != nil && ctx.Err() == nil:
			// Transport error: keep polling until ctx expires.
		}
		select {
		case <-ctx.Done():
			return "", ctx.Err()
		case <-ticker.C:
		}
	}
}

// RemoteStats fetches DB occupancy counters.
func (c *Client) RemoteStats() (Stats, error) {
	resp, err := c.roundTrip(wireRequest{Op: "stats"})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("emews: missing stats in response")
	}
	return *resp.Stats, nil
}
