// Package emews implements the EMEWS model-exploration substrate of §3: a
// decoupled architecture built from a task database and a task API. Model
// exploration (ME) algorithms submit parameter-set tasks to the database
// and receive Futures; worker pools running on compute resources pop tasks,
// evaluate the model, and push results back. Submission "returns a Future,
// which encapsulates the asynchronous execution of the task" (§3.2), and it
// is exactly this decoupling that lets multiple algorithm instances be
// interleaved to keep a worker pool fully utilized.
//
// The database can be used in-process or served over TCP (see net.go),
// mirroring EMEWS's separation between ME processes and worker pools on
// different resources.
package emews

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"osprey/internal/wal"
)

// TaskStatus enumerates the task lifecycle.
type TaskStatus int

const (
	StatusQueued TaskStatus = iota
	StatusRunning
	StatusComplete
	StatusFailed
	StatusCanceled
)

func (s TaskStatus) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusComplete:
		return "complete"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
}

// Task is one unit of work: an opaque payload (model input parameters,
// conventionally JSON) tagged with a type that selects the worker pool.
type Task struct {
	ID       int64
	Type     string
	Priority int // higher runs first; FIFO within a priority level
	Payload  string

	Status TaskStatus
	Result string
	ErrMsg string

	// Attempts counts pops; MaxAttempts > 1 enables automatic requeue on
	// failure (worker crashes, transient model errors).
	Attempts    int
	MaxAttempts int

	// Epoch is the attempt fencing token: it is incremented on every pop,
	// recorded in the Claim handed to the worker, and checked again when
	// the claim resolves. A claim whose lease expired — whose task was
	// requeued and possibly re-popped by another worker — carries a stale
	// epoch and can no longer overwrite the newer attempt's result.
	Epoch int64

	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Future is the submitter's handle to an asynchronous task evaluation.
type Future struct {
	TaskID int64
	db     *DB
	done   chan struct{}
}

// Done returns a channel closed when the task reaches a terminal state.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the task terminates (or ctx is canceled) and returns
// the result payload.
func (f *Future) Result(ctx context.Context) (string, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return "", ctx.Err()
	}
	t, err := f.db.Get(f.TaskID)
	if err != nil {
		return "", err
	}
	switch t.Status {
	case StatusComplete:
		return t.Result, nil
	case StatusFailed:
		return "", fmt.Errorf("emews: task %d failed: %s", t.ID, t.ErrMsg)
	case StatusCanceled:
		return "", fmt.Errorf("emews: task %d canceled", t.ID)
	default:
		return "", fmt.Errorf("emews: task %d in unexpected state %v", t.ID, t.Status)
	}
}

// TryResult returns (result, err, true) if the task has terminated, or
// (_, _, false) if it is still pending — the non-blocking check each
// interleaved MUSIC instance performs before ceding control (§3.2).
func (f *Future) TryResult() (string, error, bool) {
	select {
	case <-f.done:
		res, err := f.Result(context.Background())
		return res, err, true
	default:
		return "", nil, false
	}
}

// Stats summarizes database occupancy.
type Stats struct {
	Queued, Running, Complete, Failed, Canceled int
	Submitted                                   int
}

// DB is the EMEWS task database. All methods are safe for concurrent use.
// Every mutation flows through a typed taskMutation record (see
// durable.go); when a wal.Backend is attached the record is persisted
// before it is applied, and crash recovery replays the same records
// through the same transition function.
type DB struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	nextID int64
	tasks  map[int64]*Task
	// queues[type] is a priority heap of queued task IDs.
	queues  map[string]*taskHeap
	futures map[int64]*Future
	stats   Stats
	// leaseTimeout, when positive, bounds how long a popped task may run
	// before ReapExpired reclaims it (see lease.go).
	leaseTimeout time.Duration
	backend      wal.Backend // nil = in-memory only (the default)
	wal          *wal.Log    // set by OpenDB; enables Compact
	// shardIndex/shardCount stride the ID sequence so a shard group's
	// databases allocate disjoint IDs (see ring.go). 0/1 (or 0/0) is the
	// unsharded default: IDs 1, 2, 3, …
	shardIndex int
	shardCount int
}

// NewDB creates an empty task database.
func NewDB() *DB {
	db := &DB{
		tasks:   map[int64]*Task{},
		queues:  map[string]*taskHeap{},
		futures: map[int64]*Future{},
	}
	db.cond = sync.NewCond(&db.mu)
	return db
}

// NewDBShard creates an empty task database that is shard index of a
// count-wide shard group: it assigns the strided ID sequence index+1,
// index+1+count, index+1+2·count, … so every ID maps back to its owner
// via ShardOfTask. NewDBShard(0, 1) is NewDB.
func NewDBShard(index, count int) (*DB, error) {
	if count < 1 {
		count = 1
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("emews: shard index %d out of range for %d shards", index, count)
	}
	db := NewDB()
	db.shardIndex, db.shardCount = index, count
	// First assigned ID is nextID + stride = index + 1.
	db.nextID = int64(index+1) - db.stride()
	return db, nil
}

// ShardIdentity reports which shard of how many this database is
// (0 of 1 when unsharded).
func (db *DB) ShardIdentity() (index, count int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.shardCount < 1 {
		return 0, 1
	}
	return db.shardIndex, db.shardCount
}

// stride is the ID-allocation step. The caller holds db.mu (or the DB is
// not yet shared).
func (db *DB) stride() int64 {
	if db.shardCount > 1 {
		return int64(db.shardCount)
	}
	return 1
}

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("emews: task database closed")

// ErrStaleClaim is returned (wrapped) when a claim resolves after its
// attempt has been superseded: the lease expired (or the worker's
// connection dropped), the task was requeued, and the resolution would
// otherwise overwrite a newer attempt. Check with errors.Is.
var ErrStaleClaim = errors.New("stale claim")

// Submit inserts a task and returns its Future.
func (db *DB) Submit(taskType string, priority int, payload string) (*Future, error) {
	return db.SubmitRetry(taskType, priority, payload, 1)
}

// SubmitRetry inserts a task that is automatically requeued on failure
// until maxAttempts pops have been consumed.
func (db *DB) SubmitRetry(taskType string, priority int, payload string, maxAttempts int) (*Future, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if taskType == "" {
		return nil, errors.New("emews: task type required")
	}
	f, err := db.submitLocked(taskType, priority, payload, maxAttempts)
	if err != nil {
		return nil, err
	}
	db.cond.Broadcast()
	return f, nil
}

// submitLocked inserts one task; the caller holds db.mu and broadcasts.
func (db *DB) submitLocked(taskType string, priority int, payload string, maxAttempts int) (*Future, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	t := Task{
		ID: db.nextID + db.stride(), Type: taskType, Priority: priority, Payload: payload,
		MaxAttempts: maxAttempts,
		Status:      StatusQueued, Submitted: time.Now(),
	}
	if _, err := db.commitLocked(&taskMutation{Op: opSubmit, Task: &t}); err != nil {
		return nil, err
	}
	mTaskSubmitted.Inc()
	mQueueDepth.Inc()
	return db.futures[t.ID], nil
}

// SubmitBatch submits several payloads of one type at a single priority.
// The batch is atomic: it takes the lock once, so no observer (Pop, Stats)
// can see it half-submitted, and waiting workers are woken with a single
// broadcast instead of one per task.
func (db *DB) SubmitBatch(taskType string, priority int, payloads []string) ([]*Future, error) {
	return db.SubmitBatchRetry(taskType, priority, payloads, 1)
}

// SubmitBatchRetry is SubmitBatch with a per-task retry budget: every
// task in the batch is requeued on failure until maxAttempts pops have
// been consumed (DB.SubmitRetry semantics).
func (db *DB) SubmitBatchRetry(taskType string, priority int, payloads []string, maxAttempts int) ([]*Future, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if taskType == "" {
		return nil, errors.New("emews: task type required")
	}
	out := make([]*Future, 0, len(payloads))
	for _, p := range payloads {
		f, err := db.submitLocked(taskType, priority, p, maxAttempts)
		if err != nil {
			// Fail-stop mid-batch: earlier tasks are committed and stay;
			// report the persistence fault rather than a partial success.
			if len(out) > 0 {
				db.cond.Broadcast()
			}
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) > 0 {
		db.cond.Broadcast()
	}
	return out, nil
}

// Claim is a worker's lease on a running task.
type Claim struct {
	Task Task
	db   *DB
	used bool
}

// Pop blocks until a task of taskType is available (or ctx cancels /
// the DB closes) and claims it.
func (db *DB) Pop(ctx context.Context, taskType string) (*Claim, error) {
	// Wake the cond wait when ctx is canceled. The broadcast MUST happen
	// under db.mu: the waiter re-checks ctx.Err() while holding the lock
	// and only then calls cond.Wait(), so a locked broadcast cannot land
	// in the window between the check and the wait. An unlocked broadcast
	// could, losing the wakeup and hanging Pop until an unrelated
	// Submit/Close broadcasts.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			db.mu.Lock()
			db.cond.Broadcast()
			db.mu.Unlock()
		case <-stop:
		}
	}()

	waitStart := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if db.closed {
			return nil, ErrClosed
		}
		c, err := db.popLocked(taskType)
		if err != nil {
			return nil, err
		}
		if c != nil {
			mPopWait.ObserveSince(waitStart)
			return c, nil
		}
		db.cond.Wait()
	}
}

// PopBatch blocks until at least one task of taskType is available (or
// ctx cancels / the DB closes), then claims up to max tasks in one lock
// hold — the server-side half of the batched pop_batch wire op, which
// amortizes wakeup, locking, and (with a WAL attached) commit ordering
// over the whole batch. If a mid-batch commit fails after at least one
// task was claimed, the claimed prefix is returned rather than an error:
// those claims are real and must reach a worker.
func (db *DB) PopBatch(ctx context.Context, taskType string, max int) ([]*Claim, error) {
	if max < 1 {
		max = 1
	}
	// Same locked-broadcast wakeup pattern as Pop; see the comment there.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			db.mu.Lock()
			db.cond.Broadcast()
			db.mu.Unlock()
		case <-stop:
		}
	}()

	waitStart := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if db.closed {
			return nil, ErrClosed
		}
		var out []*Claim
		for len(out) < max {
			c, err := db.popLocked(taskType)
			if err != nil {
				if len(out) > 0 {
					mPopWait.ObserveSince(waitStart)
					return out, nil
				}
				return nil, err
			}
			if c == nil {
				break
			}
			out = append(out, c)
		}
		if len(out) > 0 {
			mPopWait.ObserveSince(waitStart)
			return out, nil
		}
		db.cond.Wait()
	}
}

// TryPop claims a task if one is immediately available.
func (db *DB) TryPop(taskType string) (*Claim, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	c, err := db.popLocked(taskType)
	if err != nil {
		return nil, false, err
	}
	if c != nil {
		return c, true, nil
	}
	return nil, false, nil
}

// popLocked claims the highest-priority queued task of taskType, or
// returns (nil, nil) if none is queued. The caller holds db.mu.
func (db *DB) popLocked(taskType string) (*Claim, error) {
	q, ok := db.queues[taskType]
	if !ok {
		return nil, nil
	}
	for q.Len() > 0 {
		item := heap.Pop(q).(heapItem)
		t := db.tasks[item.id]
		// Defensive lazy deletion: skip heap entries whose task is no
		// longer queued (e.g. resolved out of band, or a stale entry a
		// replayed pop left behind) rather than corrupting its state.
		if t == nil || t.Status != StatusQueued {
			continue
		}
		if _, err := db.commitLocked(&taskMutation{Op: opPop, ID: t.ID, At: time.Now()}); err != nil {
			// Fail-stop: the pop was never committed, so the task stays
			// queued — put its heap entry back.
			heap.Push(q, item)
			return nil, err
		}
		mTaskPopped.Inc()
		mQueueDepth.Dec()
		mRunningNow.Inc()
		return &Claim{Task: *t, db: db}, nil
	}
	return nil, nil
}

// finish resolves an attempt of task id. epoch > 0 fences the resolution:
// it must match the task's current attempt epoch (the one recorded at pop
// time), otherwise the claim is stale — its task was reclaimed, requeued,
// and possibly re-popped — and the resolution is rejected with
// ErrStaleClaim instead of silently corrupting the newer attempt.
// epoch == 0 is the unfenced legacy path (old wire clients) and only
// checks that the task is running. A duplicate delivery of the same
// attempt's resolution (same epoch, already recorded) returns nil, which
// makes fenced Complete/Fail safe to retry over a flaky transport.
//
// requeued reports whether the resolution put the task back on the queue
// (a failed attempt with retry budget left) rather than terminating it.
func (db *DB) finish(id, epoch int64, status TaskStatus, result, errMsg string) (requeued bool, err error) {
	db.mu.Lock()
	t, ok := db.tasks[id]
	if !ok {
		db.mu.Unlock()
		return false, fmt.Errorf("emews: unknown task %d", id)
	}
	if epoch > 0 {
		if t.Epoch != epoch {
			cur := t.Epoch
			db.mu.Unlock()
			mStaleRejected.Inc()
			return false, fmt.Errorf("emews: task %d attempt %d superseded by attempt %d: %w", id, epoch, cur, ErrStaleClaim)
		}
		switch t.Status {
		case StatusRunning:
			// The claim is current; fall through and resolve it.
		case StatusComplete, StatusFailed:
			if t.Status == status {
				// Duplicate delivery of this attempt's resolution
				// (e.g. a wire retry after a lost response): first
				// writer wins, the retry is acknowledged as success.
				db.mu.Unlock()
				return false, nil
			}
			st := t.Status
			db.mu.Unlock()
			mStaleRejected.Inc()
			return false, fmt.Errorf("emews: task %d already %v: %w", id, st, ErrStaleClaim)
		case StatusQueued:
			if status == StatusFailed {
				// The attempt's failure was already recorded by a
				// requeue (lease reap or connection loss).
				db.mu.Unlock()
				return true, nil
			}
			db.mu.Unlock()
			mStaleRejected.Inc()
			return false, fmt.Errorf("emews: task %d attempt %d was reclaimed and requeued: %w", id, epoch, ErrStaleClaim)
		default:
			db.mu.Unlock()
			mStaleRejected.Inc()
			return false, fmt.Errorf("emews: task %d canceled: %w", id, ErrStaleClaim)
		}
	} else if t.Status != StatusRunning {
		db.mu.Unlock()
		return false, fmt.Errorf("emews: task %d not running (state %v)", id, t.Status)
	}
	// The decision is made under the lock: a failed attempt with budget
	// left goes back to the queue (automatic retry) instead of terminating
	// the future. The decision is recorded in the mutation so replay does
	// not have to re-derive it.
	requeue := status == StatusFailed && t.Attempts < t.MaxAttempts && !db.closed
	res, err := db.commitLocked(&taskMutation{
		Op: opFinish, ID: id, Status: status, Result: result, ErrMsg: errMsg,
		Requeued: requeue, At: time.Now(),
	})
	if err != nil {
		db.mu.Unlock()
		return false, err
	}
	if requeue {
		db.cond.Broadcast()
		db.mu.Unlock()
		mTaskRequeued.Inc()
		mRunningNow.Dec()
		mQueueDepth.Inc()
		return true, nil
	}
	service := t.Finished.Sub(t.Started)
	db.mu.Unlock()
	mRunningNow.Dec()
	mTaskService.Observe(service)
	switch status {
	case StatusComplete:
		mTaskCompleted.Inc()
	case StatusFailed:
		mTaskFailed.Inc()
	case StatusCanceled:
		mTaskCanceled.Inc()
	}
	if res.terminal != nil {
		close(res.terminal.done)
	}
	return false, nil
}

// Complete marks the claimed task successful with the given result. It
// returns an ErrStaleClaim-wrapped error if this claim's attempt was
// superseded (lease expired and the task was requeued/re-popped).
func (c *Claim) Complete(result string) error {
	if c.used {
		return errors.New("emews: claim already resolved")
	}
	c.used = true
	_, err := c.db.finish(c.Task.ID, c.Task.Epoch, StatusComplete, result, "")
	return err
}

// Fail marks the claimed task failed. Like Complete, a stale claim is
// rejected with ErrStaleClaim.
func (c *Claim) Fail(errMsg string) error {
	if c.used {
		return errors.New("emews: claim already resolved")
	}
	c.used = true
	_, err := c.db.finish(c.Task.ID, c.Task.Epoch, StatusFailed, "", errMsg)
	return err
}

// Get returns a snapshot of the task.
func (db *DB) Get(id int64) (Task, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tasks[id]
	if !ok {
		return Task{}, fmt.Errorf("emews: unknown task %d", id)
	}
	return *t, nil
}

// Stats snapshots occupancy counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// Close cancels all queued tasks and unblocks every waiting Pop with
// ErrClosed. Running tasks may still Complete/Fail. The close is logged
// best-effort: a WAL write failure cannot prevent shutdown, so on that
// path the cancellations are applied in memory only (a subsequent crash
// replays them as still queued, which is the safer direction).
func (db *DB) Close() {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return
	}
	m := &taskMutation{Op: opDBClose, At: time.Now()}
	if db.backend != nil {
		if rec, err := json.Marshal(m); err == nil {
			_ = db.backend.Append(rec)
		}
	}
	res, _ := db.applyLocked(m)
	db.cond.Broadcast()
	db.mu.Unlock()
	for _, f := range res.canceled {
		mQueueDepth.Dec()
		mTaskCanceled.Inc()
		close(f.done)
	}
}

// AsCompleted returns a channel that yields futures in completion order,
// closing after all have terminated or ctx is canceled. This is the batch
// analogue of the per-future polling the interleaved MUSIC driver uses.
func AsCompleted(ctx context.Context, futures []*Future) <-chan *Future {
	out := make(chan *Future)
	var wg sync.WaitGroup
	for _, f := range futures {
		wg.Add(1)
		go func(f *Future) {
			defer wg.Done()
			select {
			case <-f.Done():
				select {
				case out <- f:
				case <-ctx.Done():
				}
			case <-ctx.Done():
			}
		}(f)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// heapItem orders queued tasks by priority (desc) then submission (asc).
type heapItem struct {
	id       int64
	priority int
	seq      int64
}

type taskHeap []heapItem

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
