package emews

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// framingModes are the protocol cross-version matrix: both peers v2
// (binary), a pre-v2 JSON client against a v2 server, and a v2 client
// against a JSON-only server (handshake fallback path).
var framingModes = []struct {
	name       string
	serverOpts []ServerOption
	clientOpts []ClientOption
	wantBinary bool
}{
	{name: "binary", wantBinary: true},
	{name: "legacy-client", clientOpts: []ClientOption{WithLegacyFraming()}},
	{name: "legacy-server", serverOpts: []ServerOption{WithLegacyOnlyFraming()}},
}

func (c *Client) usingBinary() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sess != nil
}

// Every op — including the batch ops — must behave identically across the
// version matrix, and each mode must negotiate the framing it claims to.
func TestProtocolCrossVersionMatrix(t *testing.T) {
	for _, mode := range framingModes {
		t.Run(mode.name, func(t *testing.T) {
			db := NewDB()
			defer db.Close()
			srv, err := Serve(db, "127.0.0.1:0", mode.serverOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr(), mode.clientOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if got := c.usingBinary(); got != mode.wantBinary {
				t.Fatalf("negotiated binary=%v, want %v", got, mode.wantBinary)
			}

			// Single-op lifecycle.
			id, err := c.Submit("m", 0, "one")
			if err != nil {
				t.Fatal(err)
			}
			task, ok, err := c.Pop("m", time.Second)
			if err != nil || !ok || task.ID != id || task.Epoch != 1 {
				t.Fatalf("pop = %+v ok=%v err=%v", task, ok, err)
			}
			if err := c.Complete(task.ID, task.Epoch, "done"); err != nil {
				t.Fatal(err)
			}
			res, done, err := c.Result(id)
			if err != nil || !done || res != "done" {
				t.Fatalf("result = %q done=%v err=%v", res, done, err)
			}

			// Batched lifecycle: submit N in one exchange, lease them in one
			// exchange, resolve them (mixed outcomes) in one exchange.
			payloads := []string{"p0", "p1", "p2", "p3", "p4"}
			ids, err := c.SubmitBatch("b", 0, payloads, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(payloads) {
				t.Fatalf("SubmitBatch returned %d ids", len(ids))
			}
			tasks, err := c.PopBatch("b", len(payloads), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if len(tasks) != len(payloads) {
				t.Fatalf("PopBatch leased %d/%d queued tasks", len(tasks), len(payloads))
			}
			fins := make([]FinishOp, len(tasks))
			for i, task := range tasks {
				if task.Epoch != 1 {
					t.Fatalf("task %d epoch = %d", task.ID, task.Epoch)
				}
				if i%2 == 0 {
					fins[i] = FinishOp{TaskID: task.ID, Epoch: task.Epoch, Result: "ok:" + task.Payload}
				} else {
					fins[i] = FinishOp{TaskID: task.ID, Epoch: task.Epoch, Failed: true, ErrMsg: "injected"}
				}
			}
			errs, err := c.FinishBatch(fins)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range errs {
				if e != nil {
					t.Fatalf("finish %d rejected: %v", i, e)
				}
			}
			for i, task := range tasks {
				snap, err := db.Get(task.ID)
				if err != nil {
					t.Fatal(err)
				}
				if i%2 == 0 && (snap.Status != StatusComplete || snap.Result != "ok:"+task.Payload) {
					t.Fatalf("task %d = %v %q", task.ID, snap.Status, snap.Result)
				}
				if i%2 == 1 && snap.Status != StatusFailed {
					t.Fatalf("task %d = %v, want failed", task.ID, snap.Status)
				}
			}

			// A stale fenced resolution inside a batch is rejected per-op
			// without failing the batch.
			errs, err = c.FinishBatch([]FinishOp{{TaskID: tasks[0].ID, Epoch: tasks[0].Epoch, Failed: true, ErrMsg: "late"}})
			if err != nil {
				t.Fatal(err)
			}
			if !errors.Is(errs[0], ErrStaleClaim) {
				t.Fatalf("late conflicting finish = %v, want ErrStaleClaim", errs[0])
			}

			// An empty poll must come back clean in every mode.
			if tasks, err := c.PopBatch("empty-type", 4, 10*time.Millisecond); err != nil || len(tasks) != 0 {
				t.Fatalf("empty PopBatch = %v, %v", tasks, err)
			}
			if _, err := c.RemoteStats(); err != nil {
				t.Fatal(err)
			}
			statsBalanced(t, db)
		})
	}
}

// Pipelining: many goroutines sharing ONE v2 client must make progress
// concurrently on a single connection, responses matched by request id.
func TestBinaryClientPipelinesConcurrentOps(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.usingBinary() {
		t.Fatal("expected binary framing")
	}

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				payload := fmt.Sprintf("w%d-%d", w, i)
				id, err := c.Submit("pipe", 0, payload)
				if err != nil {
					errCh <- err
					return
				}
				task, ok, err := c.Pop("pipe", time.Second)
				if err != nil || !ok {
					errCh <- fmt.Errorf("pop: ok=%v err=%v", ok, err)
					return
				}
				if err := c.Complete(task.ID, task.Epoch, "r"); err != nil {
					errCh <- err
					return
				}
				if _, done, err := c.Result(id); err != nil || !done {
					errCh <- fmt.Errorf("result %d: done=%v err=%v", id, done, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	st := db.Stats()
	if st.Complete != workers*perWorker || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after pipelined run: %+v", st)
	}
	statsBalanced(t, db)
}

// Regression (bugfix): a task that failed with an EMPTY err_msg must be
// reported as a failure by Result, not as a success with an empty result.
// Pre-v2 the client keyed failure on Error != "".
func TestResultReportsEmptyMessageFailure(t *testing.T) {
	for _, mode := range framingModes {
		t.Run(mode.name, func(t *testing.T) {
			db := NewDB()
			defer db.Close()
			srv, err := Serve(db, "127.0.0.1:0", mode.serverOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := Dial(srv.Addr(), mode.clientOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			if _, err := c.Submit("m", 0, "x"); err != nil {
				t.Fatal(err)
			}
			task, ok, err := c.Pop("m", time.Second)
			if err != nil || !ok {
				t.Fatalf("pop = %v ok=%v", err, ok)
			}
			if err := c.Fail(task.ID, task.Epoch, ""); err != nil {
				t.Fatal(err)
			}
			res, done, err := c.Result(task.ID)
			if !done {
				t.Fatal("failed task reported as still pending")
			}
			var te *TaskError
			if !errors.As(err, &te) {
				t.Fatalf("empty-message failure reported as success (res=%q err=%v), want *TaskError", res, err)
			}
		})
	}
}

// Regression (bugfix): a positive sub-millisecond pop timeout must stay a
// bounded wait. Pre-v2 it truncated to timeout_ms=0, i.e. an UNBOUNDED
// server-side wait, hanging the caller on an empty queue.
func TestPopClampsSubMillisecondTimeout(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type popOut struct {
		ok  bool
		err error
	}
	done := make(chan popOut, 1)
	go func() {
		_, ok, err := c.Pop("never-submitted", 500*time.Microsecond)
		done <- popOut{ok, err}
	}()
	select {
	case out := <-done:
		if out.err != nil || out.ok {
			t.Fatalf("sub-ms pop on empty queue = ok=%v err=%v, want clean empty", out.ok, out.err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("500µs pop timeout hung: truncated to an unbounded server-side wait")
	}
}

// Regression (bugfix): the reconnect backoff wait must not block Close or
// run while holding the client mutex. Pre-v2 the sleep sat inside
// connectLocked under c.mu, so Close (and every concurrent op) stalled
// for up to the full backoff.
func TestCloseInterruptsReconnectBackoff(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr(), WithBackoff(3*time.Second, 3*time.Second), WithRetries(4), WithOpTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // every reconnect from here fails, arming the 3s backoff

	opDone := make(chan error, 1)
	go func() {
		_, err := c.RemoteStats()
		opDone <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the op fail once and enter the backoff wait

	start := time.Now()
	closeDone := make(chan struct{})
	go func() {
		c.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
	case <-time.After(1500 * time.Millisecond):
		t.Fatal("Close blocked behind the reconnect backoff sleep")
	}
	select {
	case err := <-opDone:
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("op after close = %v, want ErrTransport", err)
		}
	case <-time.After(1500 * time.Millisecond):
		t.Fatal("in-flight op not interrupted by Close")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("close path took %v, backoff wait was not interrupted", elapsed)
	}
}

// swallowServer is a fake legacy server that answers the v2 handshake
// with a JSON error line (as a real pre-v2 server would), then swallows
// the next request — counting it — and drops the connection without
// replying, forcing a mid-op transport error with the op's fate unknown.
func swallowServer(t *testing.T, count *int64) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if line == clientHello {
						fmt.Fprint(conn, "{\"error\":\"bad request: unknown preamble\"}\n")
						continue
					}
					var req wireRequest
					if json.Unmarshal([]byte(line), &req) != nil {
						return
					}
					atomic.AddInt64(count, 1)
					return // swallow: no response, connection dropped
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// Regression (bugfix): an UNFENCED (epoch-0) complete/fail is not
// idempotent, so the client must not re-send it after an ambiguous
// transport failure — pre-v2 it was listed retry-safe and could
// double-resolve across attempts. Fenced resolutions keep retrying.
func TestUnfencedResolutionNotRetriedOverTransport(t *testing.T) {
	var sends int64
	addr, stop := swallowServer(t, &sends)
	defer stop()

	c, err := Dial(addr, WithRetries(3), WithBackoff(time.Millisecond, 5*time.Millisecond), WithOpTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Complete(7, 0, "r") // unfenced
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("swallowed unfenced complete = %v, want ErrTransport", err)
	}
	if !strings.Contains(err.Error(), "may have been applied") {
		t.Fatalf("ambiguous unfenced complete error %q does not flag possible application", err)
	}
	if n := atomic.LoadInt64(&sends); n != 1 {
		t.Fatalf("unfenced complete sent %d times, want exactly 1 (not idempotent!)", n)
	}

	atomic.StoreInt64(&sends, 0)
	err = c.Fail(7, 5, "x") // fenced: idempotent per attempt, so retried
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("swallowed fenced fail = %v, want ErrTransport", err)
	}
	if n := atomic.LoadInt64(&sends); n < 2 {
		t.Fatalf("fenced fail sent %d times, want retries", n)
	}
}

// Regression (bugfix): a worker blocked in an unbounded pop during server
// shutdown must get a clean empty poll, not a "context canceled" error —
// the close becomes visible as a transport condition on its next op.
func TestServerCloseYieldsCleanEmptyPop(t *testing.T) {
	for _, mode := range framingModes {
		t.Run(mode.name, func(t *testing.T) {
			db := NewDB()
			defer db.Close()
			srv, err := Serve(db, "127.0.0.1:0", mode.serverOpts...)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Dial(srv.Addr(), append([]ClientOption{WithRetries(0)}, mode.clientOpts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			type popOut struct {
				ok  bool
				err error
			}
			done := make(chan popOut, 1)
			go func() {
				_, ok, err := c.Pop("m", 0) // unbounded wait
				done <- popOut{ok, err}
			}()
			time.Sleep(100 * time.Millisecond)
			srv.Close()
			select {
			case out := <-done:
				if out.err != nil || out.ok {
					t.Fatalf("pop during server shutdown = ok=%v err=%v, want clean empty", out.ok, out.err)
				}
			case <-time.After(3 * time.Second):
				t.Fatal("blocking pop did not return on server close")
			}
		})
	}
}

// Regression (race): Close waits on the in-flight dispatch WaitGroup
// while live connections keep registering requests; an Add racing that
// Wait through zero is WaitGroup misuse the race detector flags. The
// drain barrier (beginDispatch) must make the storm below clean under
// -race: requests arriving mid-Close are refused, not registered.
func TestCloseDuringRequestStorm(t *testing.T) {
	for _, mode := range framingModes {
		t.Run(mode.name, func(t *testing.T) {
			db := NewDB()
			defer db.Close()
			srv, err := Serve(db, "127.0.0.1:0", mode.serverOpts...)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					c, err := Dial(srv.Addr(), append([]ClientOption{WithRetries(0)}, mode.clientOpts...)...)
					if err != nil {
						return
					}
					defer c.Close()
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Errors are expected once Close lands; the
						// point is that the server side stays race-free.
						_, _ = c.Submit("m", 1, "p")
					}
				}()
			}
			time.Sleep(50 * time.Millisecond)
			srv.Close()
			close(stop)
			wg.Wait()
		})
	}
}

// The DB-side batch primitive: PopBatch leases up to max in one call,
// returns fewer when the queue is shorter, and blocks until work arrives.
func TestDBPopBatchLeasesUpToMax(t *testing.T) {
	db := NewDB()
	defer db.Close()
	for i := 0; i < 10; i++ {
		if _, err := db.Submit("m", 0, strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	a, err := db.PopBatch(ctx, "m", 4)
	if err != nil || len(a) != 4 {
		t.Fatalf("PopBatch = %d claims, err %v", len(a), err)
	}
	b, err := db.PopBatch(ctx, "m", 100)
	if err != nil || len(b) != 6 {
		t.Fatalf("second PopBatch = %d claims, err %v (want the remaining 6)", len(b), err)
	}
	for _, c := range append(a, b...) {
		if err := c.Complete("r"); err != nil {
			t.Fatal(err)
		}
	}

	// Empty queue: PopBatch blocks, a submit wakes it.
	got := make(chan int, 1)
	go func() {
		cs, err := db.PopBatch(ctx, "m", 8)
		if err != nil {
			got <- -1
			return
		}
		for _, c := range cs {
			_ = c.Complete("late")
		}
		got <- len(cs)
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := db.Submit("m", 0, "wake"); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n < 1 {
			t.Fatalf("woken PopBatch returned %d", n)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("PopBatch did not wake on submit")
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.PopBatch(cctx, "m", 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled PopBatch = %v", err)
	}
	statsBalanced(t, db)
}

// End-to-end churn over the BATCHED path: a batched remote pool works
// through the chaos proxy while connections are repeatedly killed. Every
// task must complete exactly once — the claim-requeue and fencing
// invariants must hold for pop_batch/finish_batch exactly as they do for
// the single ops.
func TestBatchedPoolSurvivesConnectionChurn(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())

	pool, err := StartRemotePoolBatched(proxy.Addr(), "m", 4, 8, func(ctx context.Context, payload string) (string, error) {
		time.Sleep(2 * time.Millisecond) // widen the kill window
		return "ok:" + payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	const tasks = 40
	var futures []*Future
	for i := 0; i < tasks; i++ {
		f, err := db.SubmitRetry("m", 0, strconv.Itoa(i), 100)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}

	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 10; i++ {
			time.Sleep(15 * time.Millisecond)
			proxy.KillActive()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, f := range futures {
		res, err := f.Result(ctx)
		if err != nil {
			t.Fatalf("task %d lost under batched churn: %v", i, err)
		}
		if want := "ok:" + strconv.Itoa(i); res != want {
			t.Fatalf("task %d = %q, want %q", i, res, want)
		}
	}
	<-churnDone

	st := db.Stats()
	if st.Complete != tasks {
		t.Fatalf("Complete = %d, want %d (stats: %+v)", st.Complete, tasks, st)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("tasks leaked under batched churn: %+v", st)
	}
	statsBalanced(t, db)
}
