package emews

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"osprey/internal/wal"
)

// Event-sourced core of the task database. Every state transition — on the
// live API path and during crash recovery alike — is a typed, serializable
// taskMutation routed through applyLocked, the single transition function.
// The live path first decides the transition (fence checks, retry budget,
// assigned IDs and timestamps, so the record is fully deterministic),
// persists it through the optional wal.Backend, then applies it. Side
// effects — obs metrics, sync.Cond broadcasts, closing future done
// channels — live in the API wrappers, never in applyLocked, so replay
// rebuilds state without re-firing them.
//
// Deliberately not durable: leases and claim epochs held by workers (the
// processes die with the daemon), Pop waiters, and watch/notification
// state. Recovery therefore requeues every Running task — the requeue is
// itself logged as an opRequeue mutation so later pops replay against the
// same pre-states they saw live.

// Mutation ops of the EMEWS task database.
const (
	opSubmit  = "submit"
	opPop     = "pop"
	opFinish  = "finish"
	opDBClose = "close"
	opPrune   = "prune"
	opRequeue = "requeue"
)

// taskMutation is one serialized state transition.
type taskMutation struct {
	Op       string     `json:"op"`
	Task     *Task      `json:"task,omitempty"`     // submit: the full task, ID assigned
	ID       int64      `json:"id,omitempty"`       // pop/finish: target task
	Status   TaskStatus `json:"status,omitempty"`   // finish: terminal status
	Result   string     `json:"result,omitempty"`   // finish
	ErrMsg   string     `json:"err,omitempty"`      // finish
	Requeued bool       `json:"requeued,omitempty"` // finish: retry instead of terminate
	At       time.Time  `json:"at,omitempty"`       // pop: Started; finish/close: Finished
	IDs      []int64    `json:"ids,omitempty"`      // prune/requeue: affected tasks
}

// applyResult reports which side effects the live wrapper owes after a
// transition. Replay ignores it (OpenDB settles futures in one final pass).
type applyResult struct {
	terminal *Future   // finish: future to close
	canceled []*Future // close: futures of canceled queued tasks
}

// applyLocked is the pure state transition: it mutates only the in-memory
// structures and fires no metrics, broadcasts, or channel closes. The
// caller holds db.mu.
func (db *DB) applyLocked(m *taskMutation) (applyResult, error) {
	var res applyResult
	switch m.Op {
	case opSubmit:
		t := *m.Task
		if t.ID > db.nextID {
			db.nextID = t.ID
		}
		db.tasks[t.ID] = &t
		heap.Push(db.queueFor(t.Type), heapItem{id: t.ID, priority: t.Priority, seq: t.ID})
		db.futures[t.ID] = &Future{TaskID: t.ID, db: db, done: make(chan struct{})}
		db.stats.Submitted++
		db.stats.Queued++
	case opPop:
		t, ok := db.tasks[m.ID]
		if !ok {
			return res, fmt.Errorf("emews: apply pop: unknown task %d", m.ID)
		}
		// The live path popped the heap entry before committing; replay
		// leaves it in place and relies on popLocked's lazy deletion.
		t.Status = StatusRunning
		t.Attempts++
		t.Epoch++
		t.Started = m.At
		db.stats.Queued--
		db.stats.Running++
	case opFinish:
		t, ok := db.tasks[m.ID]
		if !ok {
			return res, fmt.Errorf("emews: apply finish: unknown task %d", m.ID)
		}
		if m.Requeued {
			t.Status = StatusQueued
			t.ErrMsg = m.ErrMsg
			db.stats.Running--
			db.stats.Queued++
			heap.Push(db.queueFor(t.Type), heapItem{id: t.ID, priority: t.Priority, seq: t.ID})
			break
		}
		t.Status = m.Status
		t.Result = m.Result
		t.ErrMsg = m.ErrMsg
		t.Finished = m.At
		db.stats.Running--
		switch m.Status {
		case StatusComplete:
			db.stats.Complete++
		case StatusFailed:
			db.stats.Failed++
		case StatusCanceled:
			db.stats.Canceled++
		}
		res.terminal = db.futures[m.ID]
	case opDBClose:
		db.closed = true
		for _, q := range db.queues {
			for q.Len() > 0 {
				item := heap.Pop(q).(heapItem)
				t := db.tasks[item.id]
				// Skip lazily-deleted entries: only genuinely queued tasks
				// are canceled by close.
				if t == nil || t.Status != StatusQueued {
					continue
				}
				t.Status = StatusCanceled
				t.Finished = m.At
				db.stats.Queued--
				db.stats.Canceled++
				if f := db.futures[t.ID]; f != nil {
					res.canceled = append(res.canceled, f)
				}
			}
		}
	case opPrune:
		for _, id := range m.IDs {
			delete(db.tasks, id)
			delete(db.futures, id)
		}
	case opRequeue:
		for _, id := range m.IDs {
			t, ok := db.tasks[id]
			if !ok || t.Status != StatusRunning {
				continue
			}
			// Fence off any claim the dead process handed out.
			t.Status = StatusQueued
			t.Epoch++
			db.stats.Running--
			db.stats.Queued++
			heap.Push(db.queueFor(t.Type), heapItem{id: t.ID, priority: t.Priority, seq: t.ID})
		}
	default:
		return res, fmt.Errorf("emews: unknown wal op %q", m.Op)
	}
	return res, nil
}

// queueFor returns (creating if needed) the priority heap for taskType.
// The caller holds db.mu.
func (db *DB) queueFor(taskType string) *taskHeap {
	q, ok := db.queues[taskType]
	if !ok {
		q = &taskHeap{}
		db.queues[taskType] = q
	}
	return q
}

// commitLocked persists m through the backend (if any) and applies it.
// Fail-stop: a persistence error leaves the in-memory state untouched, so
// memory never runs ahead of the log. The caller holds db.mu.
func (db *DB) commitLocked(m *taskMutation) (applyResult, error) {
	if db.backend != nil {
		rec, err := json.Marshal(m)
		if err != nil {
			return applyResult{}, fmt.Errorf("emews: encode mutation: %w", err)
		}
		if err := db.backend.Append(rec); err != nil {
			return applyResult{}, fmt.Errorf("emews: wal append: %w", err)
		}
	}
	return db.applyLocked(m)
}

// dbSnapshot is the full-state snapshot written at compaction.
type dbSnapshot struct {
	NextID int64   `json:"next_id"`
	Closed bool    `json:"closed"`
	Stats  Stats   `json:"stats"`
	Tasks  []*Task `json:"tasks"`
}

// snapshotLocked captures the full database state, tasks sorted by ID.
// The caller holds db.mu.
func (db *DB) snapshotLocked() dbSnapshot {
	snap := dbSnapshot{NextID: db.nextID, Closed: db.closed, Stats: db.stats}
	for _, t := range db.tasks {
		cp := *t
		snap.Tasks = append(snap.Tasks, &cp)
	}
	sort.Slice(snap.Tasks, func(i, j int) bool { return snap.Tasks[i].ID < snap.Tasks[j].ID })
	return snap
}

// loadSnapshot replaces the database contents from snapshot bytes,
// rebuilding the priority heaps from queued tasks and re-arming a future
// per task (terminal futures are settled by OpenDB's final pass).
func (db *DB) loadSnapshot(b []byte) error {
	var snap dbSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("emews: load snapshot: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nextID = snap.NextID
	db.closed = snap.Closed
	db.stats = snap.Stats
	db.tasks = map[int64]*Task{}
	db.queues = map[string]*taskHeap{}
	db.futures = map[int64]*Future{}
	for _, t := range snap.Tasks {
		cp := *t
		db.tasks[cp.ID] = &cp
		db.futures[cp.ID] = &Future{TaskID: cp.ID, db: db, done: make(chan struct{})}
		if cp.Status == StatusQueued {
			heap.Push(db.queueFor(cp.Type), heapItem{id: cp.ID, priority: cp.Priority, seq: cp.ID})
		}
	}
	return nil
}

// OpenDB recovers a task database from a WAL: the newest snapshot is
// loaded, the remaining mutations are replayed through the same
// applyLocked the live path uses, and the log becomes the database's
// persistence backend. Because leases do not survive a restart, every
// task left Running by the dead process is requeued (epoch bumped so any
// straggler claim is fenced off) — and that requeue is itself committed
// to the log. The log must come straight from wal.Open (not yet
// replayed).
func OpenDB(l *wal.Log) (*DB, error) {
	return OpenDBShard(l, 0, 1)
}

// OpenDBShard is OpenDB for one member of a shard group: the recovered
// database allocates the strided ID sequence of shard index of count
// (see NewDBShard). The WAL must of course belong to that same shard.
func OpenDBShard(l *wal.Log, index, count int) (*DB, error) {
	db, err := NewDBShard(index, count)
	if err != nil {
		return nil, err
	}
	if snap, ok := l.Snapshot(); ok {
		if err := db.loadSnapshot(snap); err != nil {
			return nil, err
		}
	}
	if _, err := l.Replay(func(rec []byte) error {
		var m taskMutation
		if err := json.Unmarshal(rec, &m); err != nil {
			return fmt.Errorf("emews: decode mutation: %w", err)
		}
		db.mu.Lock()
		defer db.mu.Unlock()
		_, err := db.applyLocked(&m)
		return err
	}); err != nil {
		return nil, err
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	// A logged clean close canceled the queued tasks it saw; the reopened
	// database accepts work again.
	db.closed = false
	db.backend = l
	db.wal = l

	// Requeue orphaned Running tasks, committing the transition.
	var running []int64
	for id, t := range db.tasks {
		if t.Status == StatusRunning {
			running = append(running, id)
		}
	}
	sort.Slice(running, func(i, j int) bool { return running[i] < running[j] })
	if len(running) > 0 {
		if _, err := db.commitLocked(&taskMutation{Op: opRequeue, IDs: running}); err != nil {
			return nil, err
		}
		mTaskRecovered.Add(int64(len(running)))
	}

	// Settle futures of terminal tasks so Result/Done work immediately.
	for id, t := range db.tasks {
		switch t.Status {
		case StatusComplete, StatusFailed, StatusCanceled:
			if f := db.futures[id]; f != nil {
				select {
				case <-f.done:
				default:
					close(f.done)
				}
			}
		}
	}

	// Re-arm additive occupancy gauges for the recovered population.
	// (Counters are per-process and deliberately not restored.)
	mQueueDepth.Add(int64(db.stats.Queued))
	mRunningNow.Add(int64(db.stats.Running))
	return db, nil
}

// Compact writes a full-state snapshot and truncates the log behind it,
// bounding the next boot's replay. The database lock is held across
// serialization and the snapshot write so no mutation can slip into a
// segment the compaction deletes.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return errors.New("emews: task database has no WAL (not opened with OpenDB)")
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(db.snapshotLocked()); err != nil {
		return fmt.Errorf("emews: encode snapshot: %w", err)
	}
	return db.wal.WriteSnapshot(buf.Bytes())
}

// Prune drops terminal tasks (and their futures) whose Finished time is at
// least olderThan in the past, returning how many were removed. Queued and
// Running tasks are never touched. Occupancy stats keep counting pruned
// tasks: Complete/Failed/Canceled are cumulative ledger totals, not live
// record counts.
func (db *DB) Prune(olderThan time.Duration) (int, error) {
	cutoff := time.Now().Add(-olderThan)
	db.mu.Lock()
	defer db.mu.Unlock()
	var ids []int64
	for id, t := range db.tasks {
		switch t.Status {
		case StatusComplete, StatusFailed, StatusCanceled:
			if !t.Finished.After(cutoff) {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return 0, nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if _, err := db.commitLocked(&taskMutation{Op: opPrune, IDs: ids}); err != nil {
		return 0, err
	}
	mTaskPruned.Add(int64(len(ids)))
	return len(ids), nil
}
