package emews

import (
	"encoding/json"
	"fmt"
	"sort"

	"osprey/internal/wal"
)

// Post-run audit of a task database's write-ahead log. Where applyLocked
// (durable.go) is deliberately lenient — recovery must boot whatever the
// log says — AuditWAL is deliberately strict: it replays the mutation
// stream through a checking state machine and reports every transition
// that violates the task lifecycle contract. The loadgen harness runs it
// after a chaos run to prove that no sequence of crashes, connection
// losses, and lease reaps produced a lost task, a double finish, or a
// non-monotone attempt epoch anywhere in the durable history.

// Dump returns a copy of every task, sorted by ID — the test/audit hook
// the load harness uses for end-of-run reconciliation and invariant
// checks.
func (db *DB) Dump() []Task {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := make([]Task, 0, len(db.tasks))
	for _, t := range db.tasks {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WALAudit is the result of replaying a task-database WAL through the
// strict checker.
type WALAudit struct {
	Records  int `json:"records"`
	Submits  int `json:"submits"`
	Pops     int `json:"pops"`
	Finishes int `json:"finishes"` // terminal finishes (complete/failed/canceled)
	Requeues int `json:"requeues"` // retry requeues + crash-recovery requeues
	Prunes   int `json:"prunes"`
	Closes   int `json:"closes"`

	// Violations lists every lifecycle-contract breach found in the log:
	// duplicate submits, pops of non-queued tasks, double finishes,
	// finishes of unknown tasks, epoch regressions. Empty means the
	// durable history is clean.
	Violations []string `json:"violations,omitempty"`
}

// Ok reports whether the audited history is free of violations.
func (a *WALAudit) Ok() bool { return len(a.Violations) == 0 }

// auditTask is the checker's view of one task.
type auditTask struct {
	status TaskStatus
	epoch  int64
}

// AuditWAL opens the task-database log directory at dir read-only-ish
// (the log is opened and closed, never appended to) and strictly replays
// its history. Call it only after the live Log on dir has been closed.
func AuditWAL(dir string) (*WALAudit, error) {
	audit, _, err := auditWALTasks(dir)
	return audit, err
}

// auditWALTasks is AuditWAL plus the checker's final per-task state,
// which the multi-shard audit needs for cross-shard ownership checks.
func auditWALTasks(dir string) (*WALAudit, map[int64]*auditTask, error) {
	l, err := wal.Open(dir, wal.Options{Name: "wal.audit", Logf: func(string, ...any) {}})
	if err != nil {
		return nil, nil, err
	}
	defer l.Close()

	audit := &WALAudit{}
	tasks := map[int64]*auditTask{}
	violate := func(format string, args ...any) {
		audit.Violations = append(audit.Violations, fmt.Sprintf(format, args...))
	}

	// A compaction snapshot, if present, seeds the checker state: the
	// pre-snapshot history is gone, so only post-snapshot transitions can
	// be audited.
	if b, ok := l.Snapshot(); ok {
		var snap dbSnapshot
		if err := json.Unmarshal(b, &snap); err != nil {
			return nil, nil, fmt.Errorf("emews: audit snapshot: %w", err)
		}
		for _, t := range snap.Tasks {
			tasks[t.ID] = &auditTask{status: t.Status, epoch: t.Epoch}
		}
	}

	if _, err := l.Replay(func(rec []byte) error {
		var m taskMutation
		if err := json.Unmarshal(rec, &m); err != nil {
			return fmt.Errorf("emews: audit decode: %w", err)
		}
		audit.Records++
		switch m.Op {
		case opSubmit:
			audit.Submits++
			if m.Task == nil {
				violate("submit record %d has no task", audit.Records)
				return nil
			}
			if _, dup := tasks[m.Task.ID]; dup {
				violate("task %d submitted twice", m.Task.ID)
				return nil
			}
			tasks[m.Task.ID] = &auditTask{status: StatusQueued}
		case opPop:
			audit.Pops++
			t, ok := tasks[m.ID]
			if !ok {
				violate("pop of unknown task %d", m.ID)
				return nil
			}
			if t.status != StatusQueued {
				violate("pop of task %d in state %v", m.ID, t.status)
			}
			t.status = StatusRunning
			t.epoch++ // pops bump the attempt epoch; monotone by construction
		case opFinish:
			t, ok := tasks[m.ID]
			if !ok {
				violate("finish of unknown task %d", m.ID)
				return nil
			}
			if m.Requeued {
				audit.Requeues++
				if t.status != StatusRunning {
					violate("requeue-finish of task %d in state %v", m.ID, t.status)
				}
				t.status = StatusQueued
				return nil
			}
			audit.Finishes++
			switch t.status {
			case StatusRunning:
				// The one legal source of a terminal transition.
			case StatusComplete, StatusFailed, StatusCanceled:
				violate("double finish of task %d (already %v, finishing %v)", m.ID, t.status, m.Status)
			default:
				violate("finish of task %d in state %v", m.ID, t.status)
			}
			t.status = m.Status
		case opRequeue:
			for _, id := range m.IDs {
				t, ok := tasks[id]
				if !ok {
					violate("recovery requeue of unknown task %d", id)
					continue
				}
				// OpenDB only requeues tasks it recovered as Running; the
				// live applyLocked skips others, so a non-Running target
				// here means the recovery scan and the log disagree.
				if t.status != StatusRunning {
					violate("recovery requeue of task %d in state %v", id, t.status)
					continue
				}
				audit.Requeues++
				t.status = StatusQueued
				t.epoch++
			}
		case opPrune:
			audit.Prunes++
			for _, id := range m.IDs {
				t, ok := tasks[id]
				if !ok {
					violate("prune of unknown task %d", id)
					continue
				}
				switch t.status {
				case StatusComplete, StatusFailed, StatusCanceled:
					delete(tasks, id)
				default:
					violate("prune of non-terminal task %d (state %v)", id, t.status)
				}
			}
		case opDBClose:
			audit.Closes++
			for _, t := range tasks {
				if t.status == StatusQueued {
					t.status = StatusCanceled
				}
			}
		default:
			violate("unknown op %q at record %d", m.Op, audit.Records)
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return audit, tasks, nil
}

// ShardsAudit is the strict audit of a whole shard group's durable
// history: each shard's WAL audited independently, plus the cross-shard
// ownership checks — every task ID must live on the shard its stride
// names, and no ID may appear in two shards' histories — and a combined
// ledger summing the per-shard ones.
type ShardsAudit struct {
	Shards   []*WALAudit `json:"shards"`
	Combined *WALAudit   `json:"combined"`
}

// Ok reports whether every shard audit and the cross-shard checks passed.
func (a *ShardsAudit) Ok() bool { return a.Combined.Ok() }

// AuditShards audits the log directory of every member of a shard group
// (dirs indexed by shard). Per-shard lifecycle violations are collected
// into the combined audit prefixed with their shard; cross-shard
// violations (a task outside its strided home, an ID in two histories)
// are appended after them. Call only after the live logs are closed.
func AuditShards(dirs []string) (*ShardsAudit, error) {
	n := len(dirs)
	out := &ShardsAudit{Combined: &WALAudit{}}
	owner := map[int64]int{} // task ID -> first shard whose history holds it
	for i, dir := range dirs {
		audit, tasks, err := auditWALTasks(dir)
		if err != nil {
			return nil, fmt.Errorf("emews: audit shard %d: %w", i, err)
		}
		out.Shards = append(out.Shards, audit)
		c := out.Combined
		c.Records += audit.Records
		c.Submits += audit.Submits
		c.Pops += audit.Pops
		c.Finishes += audit.Finishes
		c.Requeues += audit.Requeues
		c.Prunes += audit.Prunes
		c.Closes += audit.Closes
		for _, v := range audit.Violations {
			c.Violations = append(c.Violations, fmt.Sprintf("shard %d: %s", i, v))
		}
		ids := make([]int64, 0, len(tasks))
		for id := range tasks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			if want := ShardOfTask(id, n); want != i {
				c.Violations = append(c.Violations,
					fmt.Sprintf("task %d found on shard %d but its ID strides to shard %d", id, i, want))
			}
			if prev, dup := owner[id]; dup {
				c.Violations = append(c.Violations,
					fmt.Sprintf("task %d present in histories of both shard %d and shard %d", id, prev, i))
				continue
			}
			owner[id] = i
		}
	}
	return out, nil
}
