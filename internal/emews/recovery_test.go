package emews

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"osprey/internal/wal"
)

func openDBAt(t *testing.T, dir string) *DB {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Name: "wal.emewstest", Policy: wal.SyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	db, err := OpenDB(l)
	if err != nil {
		t.Fatalf("OpenDB: %v", err)
	}
	return db
}

func TestDBCrashRecoveryRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)

	fA, err := db.Submit("sim", 5, "params-A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("sim", 1, "params-B"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SubmitRetry("sim", 0, "params-C", 3); err != nil {
		t.Fatal(err)
	}

	// A completes; B is mid-flight when the process dies; C never started.
	cA, err := db.Pop(context.Background(), "sim")
	if err != nil || cA.Task.Payload != "params-A" {
		t.Fatalf("pop A: %v %+v", err, cA)
	}
	if err := cA.Complete("result-A"); err != nil {
		t.Fatal(err)
	}
	cB, err := db.Pop(context.Background(), "sim")
	if err != nil || cB.Task.Payload != "params-B" {
		t.Fatalf("pop B: %v %+v", err, cB)
	}
	// Crash: close only the log, never db.Close.
	if err := db.wal.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDBAt(t, dir)
	st := db2.Stats()
	if st.Queued != 2 || st.Running != 0 || st.Complete != 1 || st.Submitted != 3 {
		t.Fatalf("recovered stats = %+v, want Queued 2 Running 0 Complete 1 Submitted 3", st)
	}
	// A's result and settled future survive.
	tA, err := db2.Get(fA.TaskID)
	if err != nil || tA.Status != StatusComplete || tA.Result != "result-A" {
		t.Fatalf("task A = %+v, %v", tA, err)
	}
	fA2 := db2.futures[fA.TaskID]
	res, err := fA2.Result(context.Background())
	if err != nil || res != "result-A" {
		t.Fatalf("future A result = %q, %v", res, err)
	}
	// B was Running at crash time: it is queued again with a bumped epoch,
	// so the dead worker's claim can never resolve it.
	tB, err := db2.Get(cB.Task.ID)
	if err != nil || tB.Status != StatusQueued {
		t.Fatalf("task B = %+v, %v; want queued", tB, err)
	}
	if tB.Epoch <= cB.Task.Epoch {
		t.Fatalf("task B epoch %d not bumped past crashed claim %d", tB.Epoch, cB.Task.Epoch)
	}
	if _, err := db2.finish(cB.Task.ID, cB.Task.Epoch, StatusComplete, "zombie", ""); err == nil {
		t.Fatal("crashed claim resolved after recovery, want ErrStaleClaim")
	}
	// Priority order survives the requeue: B (prio 1) pops before C (0).
	c, err := db2.Pop(context.Background(), "sim")
	if err != nil || c.Task.ID != cB.Task.ID {
		t.Fatalf("post-recovery pop = %+v, %v; want task B", c, err)
	}
	if err := c.Complete("result-B"); err != nil {
		t.Fatal(err)
	}
	// The ID counter continues: no task ID reuse.
	fD, err := db2.Submit("sim", 0, "params-D")
	if err != nil {
		t.Fatal(err)
	}
	if fD.TaskID != 4 {
		t.Fatalf("post-recovery task ID = %d, want 4", fD.TaskID)
	}
	db2.wal.Close()

	// A second crash replays the requeue mutation and the new work.
	db3 := openDBAt(t, dir)
	defer db3.wal.Close()
	st = db3.Stats()
	if st.Queued != 2 || st.Running != 0 || st.Complete != 2 || st.Submitted != 4 {
		t.Fatalf("second recovery stats = %+v", st)
	}
}

func TestDBCloseIsDurable(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	f, err := db.Submit("sim", 0, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	select {
	case <-f.Done():
	case <-time.After(time.Second):
		t.Fatal("close did not settle the queued future")
	}
	db.wal.Close()

	// The logged close replays: the canceled task stays canceled, but the
	// reopened database accepts new work.
	db2 := openDBAt(t, dir)
	defer db2.wal.Close()
	tt, err := db2.Get(f.TaskID)
	if err != nil || tt.Status != StatusCanceled {
		t.Fatalf("task after close+recover = %+v, %v; want canceled", tt, err)
	}
	if _, err := db2.Submit("sim", 0, "fresh"); err != nil {
		t.Fatalf("reopened DB rejected submit: %v", err)
	}
}

func TestDBPruneDurable(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	f, err := db.Submit("sim", 0, "old")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("sim", 0, "still-queued"); err != nil {
		t.Fatal(err)
	}
	c, err := db.Pop(context.Background(), "sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("done"); err != nil {
		t.Fatal(err)
	}
	n, err := db.Prune(0)
	if err != nil || n != 1 {
		t.Fatalf("Prune = %d, %v; want 1", n, err)
	}
	if _, err := db.Get(f.TaskID); err == nil {
		t.Fatal("pruned task still readable")
	}
	st := db.Stats()
	if st.Queued != 1 || st.Complete != 1 {
		t.Fatalf("stats after prune = %+v (Complete stays cumulative)", st)
	}
	// Nothing terminal left: prune is a no-op, and queued tasks survive.
	if n, err := db.Prune(0); err != nil || n != 0 {
		t.Fatalf("second Prune = %d, %v; want 0", n, err)
	}
	db.wal.Close()

	db2 := openDBAt(t, dir)
	defer db2.wal.Close()
	if _, err := db2.Get(f.TaskID); err == nil {
		t.Fatal("pruned task resurrected by recovery")
	}
	if st := db2.Stats(); st.Queued != 1 {
		t.Fatalf("recovered stats = %+v, want Queued 1", st)
	}
}

func TestDBTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	if _, err := db.Submit("sim", 0, "committed"); err != nil {
		t.Fatal(err)
	}
	// The torn mutation must vanish on recovery.
	if _, err := db.Submit("sim", 0, "torn"); err != nil {
		t.Fatal(err)
	}
	db.wal.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	db2 := openDBAt(t, dir)
	defer db2.wal.Close()
	stats := db2.Stats()
	if stats.Submitted != 1 || stats.Queued != 1 {
		t.Fatalf("torn-tail stats = %+v, want 1 submitted/queued", stats)
	}
	if _, err := db2.Get(1); err != nil {
		t.Fatalf("committed task lost: %v", err)
	}
	if _, err := db2.Get(2); err == nil {
		t.Fatal("torn task survived recovery")
	}
	// The counter reuses the torn ID — its mutation never committed.
	f, err := db2.Submit("sim", 0, "replacement")
	if err != nil {
		t.Fatal(err)
	}
	if f.TaskID != 2 {
		t.Fatalf("post-torn task ID = %d, want 2", f.TaskID)
	}
}

func TestDBCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDBAt(t, dir)
	for i := 0; i < 5; i++ {
		if _, err := db.Submit("sim", i, "p"); err != nil {
			t.Fatal(err)
		}
	}
	c, err := db.Pop(context.Background(), "sim")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("r"); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := db.Submit("sim", 9, "post-snap"); err != nil {
		t.Fatal(err)
	}
	want := db.Stats()
	db.wal.Close()

	db2 := openDBAt(t, dir)
	defer db2.wal.Close()
	if got := db2.Stats(); got != want {
		t.Fatalf("recovered stats = %+v, want %+v", got, want)
	}
	// Highest priority queued pops first across snapshot + replayed tasks.
	c2, err := db2.Pop(context.Background(), "sim")
	if err != nil || c2.Task.Payload != "post-snap" {
		t.Fatalf("pop after compaction recovery = %+v, %v", c2, err)
	}
}
