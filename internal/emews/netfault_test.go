package emews

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"osprey/internal/chaos"
)

// newFaultProxy places a chaos.Proxy (the shared fault-injection proxy;
// see internal/chaos) in front of the server under test.
func newFaultProxy(t *testing.T, backend string) *chaos.Proxy {
	t.Helper()
	p, err := chaos.NewProxy(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// A remote worker that dies after pop must not leak a StatusRunning task:
// the server's connection-scoped claim cleanup requeues it, and another
// worker completes it exactly once — with no lease reaper configured.
func TestConnDropRequeuesClaimWithoutReaper(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())

	f, _ := db.SubmitRetry("m", 0, "x", 3)

	// Worker 1 pops through the proxy and "dies" (connection severed).
	w1, err := Dial(proxy.Addr(), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	task, ok, err := w1.Pop("m", time.Second)
	if err != nil || !ok {
		t.Fatalf("pop = %v ok=%v", err, ok)
	}
	if n := proxy.KillActive(); n == 0 {
		t.Fatal("no connection to kill")
	}
	w1.Close()

	// The server must notice the dead connection and requeue the claim.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := db.Get(task.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Status == StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("task stuck in %v after worker connection dropped", snap.Status)
		}
		time.Sleep(time.Millisecond)
	}

	// Worker 2 picks it up and completes it.
	w2, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	task2, ok, err := w2.Pop("m", time.Second)
	if err != nil || !ok {
		t.Fatalf("re-pop = %v ok=%v", err, ok)
	}
	if task2.ID != task.ID || task2.Epoch <= task.Epoch {
		t.Fatalf("re-pop got id=%d epoch=%d (was id=%d epoch=%d)", task2.ID, task2.Epoch, task.ID, task.Epoch)
	}
	if err := w2.Complete(task2.ID, task2.Epoch, "second attempt"); err != nil {
		t.Fatal(err)
	}
	if res, err := f.Result(context.Background()); err != nil || res != "second attempt" {
		t.Fatalf("Result = %q, %v", res, err)
	}

	// The zombie worker reconnects and tries to resolve its stale claim.
	zombie, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()
	if err := zombie.Complete(task.ID, task.Epoch, "zombie"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("stale remote complete = %v, want ErrStaleClaim", err)
	}
	if snap, _ := db.Get(task.ID); snap.Result != "second attempt" {
		t.Fatalf("stale remote claim overwrote result: %q", snap.Result)
	}
	statsBalanced(t, db)
}

// The stale-claim fence over TCP with a lease reaper: the original worker
// survives (connection intact) but exceeds its lease; the reaper requeues,
// a second worker wins, and the late resolution is rejected.
func TestStaleClaimRejectedOverTCP(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(20 * time.Millisecond)
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	f, _ := db.SubmitRetry("m", 0, "x", 2)
	w1, _ := Dial(srv.Addr())
	defer w1.Close()
	t1, ok, err := w1.Pop("m", time.Second)
	if err != nil || !ok {
		t.Fatalf("pop = %v ok=%v", err, ok)
	}
	time.Sleep(40 * time.Millisecond)
	if req, _ := db.ReapExpired(); req != 1 {
		t.Fatal("lease did not expire")
	}
	w2, _ := Dial(srv.Addr())
	defer w2.Close()
	t2, ok, err := w2.Pop("m", time.Second)
	if err != nil || !ok {
		t.Fatalf("re-pop = %v ok=%v", err, ok)
	}
	// Old worker reports late, over its still-healthy connection.
	if err := w1.Complete(t1.ID, t1.Epoch, "old"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("stale complete over TCP = %v, want ErrStaleClaim", err)
	}
	if err := w2.Complete(t2.ID, t2.Epoch, "new"); err != nil {
		t.Fatal(err)
	}
	if res, err := f.Result(context.Background()); err != nil || res != "new" {
		t.Fatalf("Result = %q, %v", res, err)
	}
	statsBalanced(t, db)
}

// The client must transparently reconnect (with backoff) when its
// connection is killed between ops.
func TestClientReconnectsAfterKill(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())

	c, err := Dial(proxy.Addr(), WithBackoff(time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.RemoteStats(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		proxy.KillActive()
		// stats is retry-safe: the op must succeed on a fresh connection.
		if _, err := c.RemoteStats(); err != nil {
			t.Fatalf("round %d: op after kill failed: %v", round, err)
		}
	}
}

// WaitResult must ride out transport blips (reconnecting under the hood)
// instead of aborting, and still surface task failures as definitive.
func TestWaitResultSurvivesTransportBlips(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())

	f, _ := db.Submit("m", 0, "x")
	c, err := Dial(proxy.Addr(), WithBackoff(time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	got := make(chan error, 1)
	var res string
	go func() {
		var werr error
		res, werr = c.WaitResult(ctx, f.TaskID, 2*time.Millisecond)
		got <- werr
	}()

	// Blips while the poll is in flight.
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		proxy.KillActive()
	}
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Complete("survived"); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("WaitResult aborted on transport blip: %v", err)
	}
	if res != "survived" {
		t.Fatalf("WaitResult = %q", res)
	}

	// Task failure is definitive: *TaskError, not a retried transport error.
	f2, _ := db.Submit("m", 0, "y")
	claim2, _ := db.Pop(context.Background(), "m")
	claim2.Fail("model exploded")
	_, werr := c.WaitResult(ctx, f2.TaskID, 2*time.Millisecond)
	var te *TaskError
	if !errors.As(werr, &te) || te.TaskID != f2.TaskID {
		t.Fatalf("task failure surfaced as %v, want *TaskError", werr)
	}
}

// End-to-end churn: a remote pool works through the proxy while
// connections are repeatedly killed. Every task must complete exactly
// once; none may be lost or double-resolved.
func TestRemotePoolSurvivesConnectionChurn(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())

	var mu sync.Mutex
	completions := map[string]int{} // payload -> handler completions that stuck
	pool, err := StartRemotePool(proxy.Addr(), "m", 4, func(ctx context.Context, payload string) (string, error) {
		time.Sleep(2 * time.Millisecond) // widen the kill window
		return "ok:" + payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	const tasks = 40
	var futures []*Future
	for i := 0; i < tasks; i++ {
		f, err := db.SubmitRetry("m", 0, strconv.Itoa(i), 100)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}

	// Kill connections while the pool is working.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 10; i++ {
			time.Sleep(15 * time.Millisecond)
			proxy.KillActive()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, f := range futures {
		res, err := f.Result(ctx)
		if err != nil {
			t.Fatalf("task %d lost under churn: %v", i, err)
		}
		want := "ok:" + strconv.Itoa(i)
		if res != want {
			t.Fatalf("task %d = %q, want %q", i, res, want)
		}
		mu.Lock()
		completions[res]++
		mu.Unlock()
	}
	<-churnDone

	// Exactly once: every future resolved with its own payload's result,
	// and the DB counted each task complete exactly once.
	st := db.Stats()
	if st.Complete != tasks {
		t.Fatalf("Complete = %d, want %d (stats: %+v)", st.Complete, tasks, st)
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("tasks leaked under churn: %+v", st)
	}
	statsBalanced(t, db)
	for payload, n := range completions {
		if n != 1 {
			t.Fatalf("payload %q observed %d times", payload, n)
		}
	}
}

// Submit is not retried once the request may have been applied: the
// caller must see ErrTransport and decide, to avoid duplicate tasks.
func TestSubmitNotRetriedAfterSend(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := newFaultProxy(t, srv.Addr())
	c, err := Dial(proxy.Addr(), WithBackoff(time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Stop the server so the submit's response can never arrive, then
	// sever the proxied connection to force a mid-op transport error.
	srv.Close()
	proxy.KillActive()
	if _, err := c.Submit("m", 0, "x"); !errors.Is(err, ErrTransport) {
		t.Fatalf("submit through dead server = %v, want ErrTransport", err)
	}
}

// A worker pool must come up even if the first connections are slow
// (accept delay), and pops must honor their deadline budget.
func TestClientToleratesSlowAccept(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())
	proxy.SetAcceptDelay(30 * time.Millisecond)

	c, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.Submit("m", 0, "slow")
	if err != nil {
		t.Fatal(err)
	}
	task, ok, err := c.Pop("m", time.Second)
	if err != nil || !ok || task.ID != id {
		t.Fatalf("pop through slow proxy = %+v ok=%v err=%v", task, ok, err)
	}
	if err := c.Complete(task.ID, task.Epoch, "done"); err != nil {
		t.Fatal(err)
	}
}

// Refused connections exercise the exponential backoff: ops fail fast
// with ErrTransport while the server is unreachable, then succeed once it
// is back.
func TestClientBackoffThenRecovery(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFaultProxy(t, srv.Addr())
	c, err := Dial(proxy.Addr(), WithBackoff(time.Millisecond, 10*time.Millisecond), WithRetries(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	proxy.SetRefuse(true)
	proxy.KillActive()
	if _, err := c.RemoteStats(); !errors.Is(err, ErrTransport) {
		t.Fatalf("stats with refused connections = %v, want ErrTransport", err)
	}
	proxy.SetRefuse(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.RemoteStats(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server came back")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
