// Shard addressing for the task substrate.
//
// Two complementary mappings place work on a shard group of n task
// databases:
//
//   - Submits are routed by key (conventionally the task payload, which
//     the workload derives from the flow/parameter set) through a
//     consistent-hash ring: n shards × ringVirtualNodes points on a
//     64-bit circle, so adding a shard moves ~1/n of the keyspace.
//     Every router and every server builds the identical ring from the
//     shard count alone, which is what makes the wrong_shard redirect
//     check possible server-side.
//
//   - Task IDs are allocated in shard-strided sequences: shard i of n
//     assigns IDs i+1, i+1+n, i+1+2n, … so any party can recover the
//     owning shard of an existing task from its ID alone —
//     ShardOfTask(id, n) == (id-1) mod n — with no directory service.
//     Resolutions (complete/fail/finish_batch) and result polls route
//     this way.
package emews

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVirtualNodes is the number of points each shard contributes to the
// hash ring. 64 keeps the per-shard keyspace imbalance within a few
// percent while the ring stays small enough to rebuild at every Dial.
const ringVirtualNodes = 64

// Ring is a consistent-hash ring over a fixed shard count. It is
// deterministic: every Ring built for the same count maps every key to
// the same shard, on clients and servers alike. A Ring is immutable and
// safe for concurrent use.
type Ring struct {
	count  int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// ringHash hashes a routing key (or virtual-node label) onto the ring's
// 64-bit circle: fnv-1a for the byte stream, then a splitmix64-style
// avalanche finalizer. The finalizer matters: raw fnv-1a leaves similar
// fixed-width keys ("params-000", "params-001", …) clustered in one arc
// of the circle, which can dump an entire workload onto one shard.
func ringHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds the canonical ring for a shard group of the given size.
func NewRing(count int) *Ring {
	if count < 1 {
		count = 1
	}
	r := &Ring{count: count}
	if count == 1 {
		return r
	}
	r.points = make([]ringPoint, 0, count*ringVirtualNodes)
	for shard := 0; shard < count; shard++ {
		for v := 0; v < ringVirtualNodes; v++ {
			label := fmt.Sprintf("osprey-shard-%d-%d", shard, v)
			r.points = append(r.points, ringPoint{hash: ringHash(label), shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.count }

// Lookup maps a routing key to its owning shard: the first ring point at
// or after the key's hash, wrapping around the circle.
func (r *Ring) Lookup(key string) int {
	if r.count == 1 || len(r.points) == 0 {
		return 0
	}
	kh := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ShardOfTask recovers the owning shard of a task from its strided ID.
func ShardOfTask(id int64, count int) int {
	if count <= 1 || id < 1 {
		return 0
	}
	return int((id - 1) % int64(count))
}
