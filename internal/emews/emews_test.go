package emews

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"osprey/internal/scheduler"
)

func TestSubmitPopCompleteRoundTrip(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, err := db.Submit("model", 0, `{"ts":0.5}`)
	if err != nil {
		t.Fatal(err)
	}
	claim, err := db.Pop(context.Background(), "model")
	if err != nil {
		t.Fatal(err)
	}
	if claim.Task.Payload != `{"ts":0.5}` {
		t.Fatalf("payload = %q", claim.Task.Payload)
	}
	if err := claim.Complete("42"); err != nil {
		t.Fatal(err)
	}
	res, err := f.Result(context.Background())
	if err != nil || res != "42" {
		t.Fatalf("Result = %q, %v", res, err)
	}
}

func TestFutureTryResult(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, _ := db.Submit("m", 0, "x")
	if _, _, done := f.TryResult(); done {
		t.Fatal("unfinished task reported done")
	}
	claim, _ := db.Pop(context.Background(), "m")
	claim.Complete("ok")
	res, err, done := f.TryResult()
	if !done || err != nil || res != "ok" {
		t.Fatalf("TryResult = %q, %v, %v", res, err, done)
	}
}

func TestTaskFailurePropagates(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, _ := db.Submit("m", 0, "x")
	claim, _ := db.Pop(context.Background(), "m")
	claim.Fail("model exploded")
	if _, err := f.Result(context.Background()); err == nil || !strings.Contains(err.Error(), "model exploded") {
		t.Fatalf("failure not propagated: %v", err)
	}
}

func TestClaimDoubleResolveRejected(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.Submit("m", 0, "x")
	claim, _ := db.Pop(context.Background(), "m")
	claim.Complete("1")
	if err := claim.Complete("2"); err == nil {
		t.Fatal("double complete accepted")
	}
}

func TestPriorityOrdering(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.Submit("m", 0, "low")
	db.Submit("m", 5, "high")
	db.Submit("m", 0, "low2")
	claim, _ := db.Pop(context.Background(), "m")
	if claim.Task.Payload != "high" {
		t.Fatalf("first pop = %q, want high-priority task", claim.Task.Payload)
	}
	claim.Complete("")
	// FIFO within equal priority.
	c2, _ := db.Pop(context.Background(), "m")
	if c2.Task.Payload != "low" {
		t.Fatalf("second pop = %q, want FIFO order", c2.Task.Payload)
	}
	c2.Complete("")
}

func TestTaskTypeIsolation(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.Submit("a", 0, "forA")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := db.Pop(ctx, "b"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pop on empty type returned %v", err)
	}
}

func TestPopBlocksUntilSubmit(t *testing.T) {
	db := NewDB()
	defer db.Close()
	got := make(chan string, 1)
	go func() {
		claim, err := db.Pop(context.Background(), "m")
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		claim.Complete("")
		got <- claim.Task.Payload
	}()
	time.Sleep(20 * time.Millisecond)
	db.Submit("m", 0, "late")
	select {
	case v := <-got:
		if v != "late" {
			t.Fatalf("blocked pop got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never unblocked")
	}
}

func TestCloseCancelsQueuedAndUnblocksPop(t *testing.T) {
	db := NewDB()
	f, _ := db.Submit("m", 0, "x")
	errCh := make(chan error, 1)
	go func() {
		_, err := db.Pop(context.Background(), "other")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	db.Close()
	if err := <-errCh; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked pop after close: %v", err)
	}
	if _, err := f.Result(context.Background()); err == nil {
		t.Fatal("queued task not canceled by close")
	}
	if _, err := db.Submit("m", 0, "y"); !errors.Is(err, ErrClosed) {
		t.Fatal("submit after close accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	db := NewDB()
	defer db.Close()
	fs, _ := db.SubmitBatch("m", 0, []string{"1", "2", "3"})
	st := db.Stats()
	if st.Submitted != 3 || st.Queued != 3 {
		t.Fatalf("stats after submit: %+v", st)
	}
	c, _ := db.Pop(context.Background(), "m")
	if st := db.Stats(); st.Running != 1 || st.Queued != 2 {
		t.Fatalf("stats after pop: %+v", st)
	}
	c.Complete("done")
	c2, _ := db.Pop(context.Background(), "m")
	c2.Fail("x")
	if st := db.Stats(); st.Complete != 1 || st.Failed != 1 || st.Queued != 1 {
		t.Fatalf("stats after resolve: %+v", st)
	}
	_ = fs
}

func TestAsCompletedYieldsAll(t *testing.T) {
	db := NewDB()
	defer db.Close()
	futures, _ := db.SubmitBatch("m", 0, []string{"a", "b", "c", "d"})
	go func() {
		for i := 0; i < 4; i++ {
			claim, _ := db.Pop(context.Background(), "m")
			claim.Complete(claim.Task.Payload + "!")
		}
	}()
	seen := 0
	for f := range AsCompleted(context.Background(), futures) {
		res, err := f.Result(context.Background())
		if err != nil || !strings.HasSuffix(res, "!") {
			t.Fatalf("bad result %q %v", res, err)
		}
		seen++
	}
	if seen != 4 {
		t.Fatalf("AsCompleted yielded %d of 4", seen)
	}
}

func TestLocalPoolProcessesTasks(t *testing.T) {
	db := NewDB()
	defer db.Close()
	pool, err := StartLocalPool(db, "square", 4, func(ctx context.Context, payload string) (string, error) {
		n, err := strconv.Atoi(payload)
		if err != nil {
			return "", err
		}
		return strconv.Itoa(n * n), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()
	var futures []*Future
	for i := 1; i <= 20; i++ {
		f, _ := db.Submit("square", 0, strconv.Itoa(i))
		futures = append(futures, f)
	}
	for i, f := range futures {
		res, err := f.Result(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := strconv.Itoa((i + 1) * (i + 1))
		if res != want {
			t.Fatalf("task %d = %q, want %q", i, res, want)
		}
	}
	st := pool.Stats()
	if st.Processed != 20 || st.Failed != 0 {
		t.Fatalf("pool stats %+v", st)
	}
	if st.Workers != 4 {
		t.Fatalf("workers = %d", st.Workers)
	}
}

func TestLocalPoolHandlerError(t *testing.T) {
	db := NewDB()
	defer db.Close()
	pool, _ := StartLocalPool(db, "m", 1, func(ctx context.Context, payload string) (string, error) {
		return "", fmt.Errorf("bad input")
	})
	defer pool.Stop()
	f, _ := db.Submit("m", 0, "x")
	if _, err := f.Result(context.Background()); err == nil {
		t.Fatal("handler error not propagated to future")
	}
	if pool.Stats().Failed != 1 {
		t.Fatal("failure not counted")
	}
}

func TestScheduledPoolRunsThroughScheduler(t *testing.T) {
	cluster, err := scheduler.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	db := NewDB()
	defer db.Close()
	var calls atomic.Int64
	pool, err := StartScheduledPool(cluster, 2, 2, db, "model", func(ctx context.Context, payload string) (string, error) {
		calls.Add(1)
		return payload + "-done", nil
	}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var futures []*Future
	for i := 0; i < 10; i++ {
		f, _ := db.Submit("model", 0, fmt.Sprintf("t%d", i))
		futures = append(futures, f)
	}
	for _, f := range futures {
		if _, err := f.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 10 {
		t.Fatalf("handler ran %d times", calls.Load())
	}
	if pool.Stats().Workers != 4 {
		t.Fatalf("scheduled pool workers = %d, want 2 nodes x 2", pool.Stats().Workers)
	}
	pool.Stop()
	if cluster.Stats().Completed != 1 {
		t.Fatal("pool job did not complete cleanly after Stop")
	}
}

func TestPoolValidation(t *testing.T) {
	db := NewDB()
	defer db.Close()
	if _, err := StartLocalPool(nil, "m", 1, nil); err == nil {
		t.Fatal("nil db/handler accepted")
	}
	if _, err := StartLocalPool(db, "m", 0, func(ctx context.Context, p string) (string, error) { return "", nil }); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := StartScheduledPool(nil, 1, 1, db, "m", nil, 0); err == nil {
		t.Fatal("nil cluster accepted")
	}
}

func TestTCPServerClientRoundTrip(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, err := Serve(db, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Worker side over TCP.
	worker, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	// Submitter side over TCP.
	submitter, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer submitter.Close()

	id, err := submitter.Submit("model", 3, "params")
	if err != nil {
		t.Fatal(err)
	}
	task, ok, err := worker.Pop("model", time.Second)
	if err != nil || !ok {
		t.Fatalf("Pop = %v, ok=%v", err, ok)
	}
	if task.ID != id || task.Payload != "params" {
		t.Fatalf("Pop got (%d, %q)", task.ID, task.Payload)
	}
	if task.Epoch != 1 {
		t.Fatalf("first attempt epoch = %d, want 1", task.Epoch)
	}
	// Result not ready yet.
	if _, done, err := submitter.Result(id); err != nil || done {
		t.Fatalf("premature result: done=%v err=%v", done, err)
	}
	if err := worker.Complete(task.ID, task.Epoch, "out"); err != nil {
		t.Fatal(err)
	}
	res, err := submitter.WaitResult(context.Background(), id, time.Millisecond)
	if err != nil || res != "out" {
		t.Fatalf("WaitResult = %q, %v", res, err)
	}
	st, err := submitter.RemoteStats()
	if err != nil || st.Complete != 1 {
		t.Fatalf("RemoteStats = %+v, %v", st, err)
	}
}

func TestTCPPopTimeout(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, _ := Serve(db, "127.0.0.1:0")
	defer srv.Close()
	c, _ := Dial(srv.Addr())
	defer c.Close()
	start := time.Now()
	_, ok, err := c.Pop("empty", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("pop on empty queue returned a task")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timeout returned too early")
	}
}

func TestTCPFailurePath(t *testing.T) {
	db := NewDB()
	defer db.Close()
	srv, _ := Serve(db, "127.0.0.1:0")
	defer srv.Close()
	c, _ := Dial(srv.Addr())
	defer c.Close()
	id, _ := c.Submit("m", 0, "x")
	task, ok, _ := c.Pop("m", time.Second)
	if !ok {
		t.Fatal("pop failed")
	}
	if err := c.Fail(task.ID, task.Epoch, "worker crashed"); err != nil {
		t.Fatal(err)
	}
	_, err := c.WaitResult(context.Background(), id, time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "worker crashed") {
		t.Fatalf("failure not surfaced over TCP: %v", err)
	}
}

func TestInterleavedDriversShareOnePool(t *testing.T) {
	// Two "algorithm instances" interleave submissions against one pool,
	// checking futures non-blockingly as in §3.2.
	db := NewDB()
	defer db.Close()
	pool, _ := StartLocalPool(db, "m", 2, func(ctx context.Context, p string) (string, error) {
		time.Sleep(time.Millisecond)
		return p, nil
	})
	defer pool.Stop()

	type instance struct {
		pending []*Future
		got     int
	}
	insts := [2]*instance{{}, {}}
	for i, inst := range insts {
		fs, _ := db.SubmitBatch("m", 0, []string{
			fmt.Sprintf("i%d-a", i), fmt.Sprintf("i%d-b", i), fmt.Sprintf("i%d-c", i),
		})
		inst.pending = fs
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		active := false
		for _, inst := range insts {
			remaining := inst.pending[:0]
			for _, f := range inst.pending {
				if _, err, done := f.TryResult(); done {
					if err != nil {
						t.Fatal(err)
					}
					inst.got++
				} else {
					remaining = append(remaining, f)
				}
			}
			inst.pending = remaining
			if len(inst.pending) > 0 {
				active = true
			}
		}
		if !active {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for i, inst := range insts {
		if inst.got != 3 {
			t.Fatalf("instance %d completed %d of 3", i, inst.got)
		}
	}
}

func BenchmarkSubmitPopComplete(b *testing.B) {
	db := NewDB()
	defer db.Close()
	for i := 0; i < b.N; i++ {
		f, _ := db.Submit("m", 0, "x")
		claim, _ := db.Pop(context.Background(), "m")
		claim.Complete("y")
		f.Result(context.Background())
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	db := NewDB()
	defer db.Close()
	pool, _ := StartLocalPool(db, "m", 8, func(ctx context.Context, p string) (string, error) {
		return p, nil
	})
	defer pool.Stop()
	b.ResetTimer()
	futures := make([]*Future, b.N)
	for i := 0; i < b.N; i++ {
		futures[i], _ = db.Submit("m", 0, "x")
	}
	for _, f := range futures {
		f.Result(context.Background())
	}
}
