package emews

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"osprey/internal/wal"
)

func openTestWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Name: "wal.test." + t.Name(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// A clean lifecycle — submit, pop, fail+requeue, re-pop, complete, prune —
// must audit with zero violations and matching op counts.
func TestAuditWALCleanHistory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "emews")
	l := openTestWAL(t, dir)
	db, err := OpenDB(l)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := db.SubmitRetry("m", 0, "x", 2); err != nil {
		t.Fatal(err)
	}
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Fail("first attempt fails"); err != nil {
		t.Fatal(err)
	}
	claim2, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim2.Complete("done"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("m", 0, "y"); err != nil {
		t.Fatal(err)
	}
	if n, err := db.Prune(0); err != nil || n != 1 {
		t.Fatalf("Prune = %d, %v", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	audit, err := AuditWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Ok() {
		t.Fatalf("violations in clean history: %v", audit.Violations)
	}
	if audit.Submits != 2 || audit.Pops != 2 || audit.Finishes != 1 || audit.Requeues != 1 || audit.Prunes != 1 {
		t.Fatalf("unexpected op counts: %+v", audit)
	}
}

// Crash recovery (requeue of orphaned Running tasks) is part of the legal
// history: OpenDB on a log with a Running task commits an opRequeue, and
// the audit must accept it.
func TestAuditWALAcceptsCrashRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "emews")
	l := openTestWAL(t, dir)
	db, err := OpenDB(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("m", 0, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Pop(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the DB, close only the log.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTestWAL(t, dir)
	db2, err := OpenDB(l2)
	if err != nil {
		t.Fatal(err)
	}
	claim, err := db2.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 3: first pop (1), recovery requeue fence bump (2), re-pop (3).
	if claim.Task.Epoch != 3 {
		t.Fatalf("post-recovery epoch = %d, want 3", claim.Task.Epoch)
	}
	if err := claim.Complete("after crash"); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	audit, err := AuditWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Ok() {
		t.Fatalf("violations after crash recovery: %v", audit.Violations)
	}
	if audit.Requeues != 1 || audit.Finishes != 1 {
		t.Fatalf("unexpected op counts: %+v", audit)
	}
}

// A corrupted history — a hand-forged double finish — must be flagged.
func TestAuditWALFlagsDoubleFinish(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "emews")
	l := openTestWAL(t, dir)
	db, err := OpenDB(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("m", 0, "x"); err != nil {
		t.Fatal(err)
	}
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Complete("first"); err != nil {
		t.Fatal(err)
	}
	// Forge a second terminal finish for the same task, bypassing the
	// fence (the live path would reject it).
	rec, err := json.Marshal(&taskMutation{
		Op: opFinish, ID: claim.Task.ID, Status: StatusFailed, ErrMsg: "forged", At: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	audit, err := AuditWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Ok() {
		t.Fatal("forged double finish not flagged")
	}
}

// Dump returns ID-sorted task copies covering every state.
func TestDump(t *testing.T) {
	db := NewDB()
	defer db.Close()
	if _, err := db.Submit("m", 0, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Submit("m", 5, "b"); err != nil {
		t.Fatal(err)
	}
	claim, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.Complete("done"); err != nil {
		t.Fatal(err)
	}
	tasks := db.Dump()
	if len(tasks) != 2 {
		t.Fatalf("Dump returned %d tasks, want 2", len(tasks))
	}
	if tasks[0].ID != 1 || tasks[1].ID != 2 {
		t.Fatalf("Dump not ID-sorted: %v %v", tasks[0].ID, tasks[1].ID)
	}
	if tasks[1].Status != StatusComplete || tasks[1].Result != "done" {
		t.Fatalf("task 2 = %+v, want complete/done", tasks[1])
	}
	if tasks[0].Status != StatusQueued {
		t.Fatalf("task 1 = %v, want queued", tasks[0].Status)
	}
}
