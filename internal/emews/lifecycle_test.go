package emews

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"osprey/internal/obs"
)

// statsBalanced asserts the occupancy counters account for every
// submitted task exactly once.
func statsBalanced(t *testing.T, db *DB) {
	t.Helper()
	st := db.Stats()
	total := st.Queued + st.Running + st.Complete + st.Failed + st.Canceled
	if total != st.Submitted {
		t.Fatalf("stats do not balance: %+v (sum %d, submitted %d)", st, total, st.Submitted)
	}
}

// Regression for the lost-wakeup race: the ctx-cancellation goroutine used
// to Broadcast without holding db.mu, so a cancel landing between the
// waiter's ctx.Err() check and cond.Wait() was lost and Pop hung. Hammer
// cancels against concurrent waiters and submits; every Pop must return.
func TestPopCancelUnderContention(t *testing.T) {
	db := NewDB()
	defer db.Close()

	const waiters = 32
	const rounds = 50
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				claim, err := db.Pop(ctx, "contended")
				if err == nil {
					_ = claim.Complete("ok")
				}
			}()
		}
		// Interleave a few submits so some waiters win tasks and others
		// must be unblocked purely by the cancel.
		go func() {
			for j := 0; j < waiters/4; j++ {
				db.Submit("contended", 0, "x")
			}
		}()
		go func() {
			cancel() // race the cancel against the waits
		}()
		go func() {
			wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: Pop hung after cancel (lost wakeup)", round)
		}
		// Drain whatever the canceled waiters left behind.
		for {
			c, ok, _ := db.TryPop("contended")
			if !ok {
				break
			}
			_ = c.Complete("drained")
		}
	}
}

// The full lease-expiry story: worker pops, lease expires, the task is
// requeued and re-popped, and the original worker resolves late. The stale
// resolution must be rejected, the future must resolve exactly once with
// the new attempt's result, and the stats must balance.
func TestStaleClaimCannotOverwriteNewAttempt(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(20 * time.Millisecond)

	f, err := db.SubmitRetry("m", 0, "x", 3)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if stale.Task.Epoch != 1 {
		t.Fatalf("first attempt epoch = %d", stale.Task.Epoch)
	}
	time.Sleep(40 * time.Millisecond)
	if req, failed := db.ReapExpired(); req != 1 || failed != 0 {
		t.Fatalf("reap = (%d, %d), want (1, 0)", req, failed)
	}
	fresh, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Task.Epoch != 2 {
		t.Fatalf("second attempt epoch = %d", fresh.Task.Epoch)
	}

	// The zombie worker comes back and tries to resolve its old claim.
	if err := stale.Complete("zombie result"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("stale Complete = %v, want ErrStaleClaim", err)
	}
	if _, _, done := f.TryResult(); done {
		t.Fatal("future resolved by a stale claim")
	}

	if err := fresh.Complete("real result"); err != nil {
		t.Fatal(err)
	}
	res, err := f.Result(context.Background())
	if err != nil || res != "real result" {
		t.Fatalf("Result = %q, %v", res, err)
	}
	task, _ := db.Get(f.TaskID)
	if task.Result != "real result" {
		t.Fatalf("stale claim overwrote result: %q", task.Result)
	}
	statsBalanced(t, db)
	st := db.Stats()
	if st.Complete != 1 || st.Failed != 0 || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after stale rejection: %+v", st)
	}
}

// A stale Fail must be rejected too, and a stale claim resolving while the
// task sits requeued (not yet re-popped) must not corrupt the queue entry.
func TestStaleClaimWhileRequeued(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(10 * time.Millisecond)

	f, _ := db.SubmitRetry("m", 0, "x", 2)
	stale, _ := db.Pop(context.Background(), "m")
	time.Sleep(25 * time.Millisecond)
	db.ReapExpired() // requeued; not yet re-popped

	if err := stale.Complete("late"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("Complete on requeued task = %v, want ErrStaleClaim", err)
	}
	// The queue entry must still be poppable and resolvable.
	fresh, err := db.Pop(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Complete("good"); err != nil {
		t.Fatal(err)
	}
	if res, err := f.Result(context.Background()); err != nil || res != "good" {
		t.Fatalf("Result = %q, %v", res, err)
	}
	statsBalanced(t, db)
}

// ReapExpired must report requeues and terminal failures separately: a
// task that exhausted MaxAttempts is a permanent failure, not a reclaim.
func TestReapExpiredCountsSeparately(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(10 * time.Millisecond)

	retriable, _ := db.SubmitRetry("m", 0, "retriable", 2)
	doomed, _ := db.Submit("m", 0, "doomed") // MaxAttempts = 1
	if _, err := db.Pop(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Pop(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond)
	req, failed := db.ReapExpired()
	if req != 1 || failed != 1 {
		t.Fatalf("reap = (%d requeued, %d failed), want (1, 1)", req, failed)
	}
	if _, err := doomed.Result(context.Background()); err == nil {
		t.Fatal("exhausted task should fail terminally")
	}
	if _, _, done := retriable.TryResult(); done {
		t.Fatal("retriable task should be requeued, not terminated")
	}
	statsBalanced(t, db)
}

// StartReaper must expose the reclaim counts instead of discarding them.
func TestReaperExposesCounts(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(10 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reaper := db.StartReaper(ctx, 5*time.Millisecond)

	db.SubmitRetry("m", 0, "x", 2)
	if _, err := db.Pop(context.Background(), "m"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if req, _ := reaper.Counts(); req >= 1 {
			break
		}
		if time.Now().After(deadline) {
			req, failed := reaper.Counts()
			t.Fatalf("reaper counts = (%d, %d), want requeued >= 1", req, failed)
		}
		time.Sleep(time.Millisecond)
	}
}

// SubmitBatch takes the lock once: an observer can see the queue before
// the batch or after it, never in between.
func TestSubmitBatchAtomic(t *testing.T) {
	db := NewDB()
	defer db.Close()
	const batch = 2000
	payloads := make([]string, batch)
	for i := range payloads {
		payloads[i] = strconv.Itoa(i)
	}
	stop := make(chan struct{})
	violations := make(chan int, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if q := db.Stats().Queued; q != 0 && q != batch {
				select {
				case violations <- q:
				default:
				}
				return
			}
		}
	}()
	time.Sleep(time.Millisecond) // let the observer spin
	if _, err := db.SubmitBatch("m", 0, payloads); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	select {
	case q := <-violations:
		t.Fatalf("observed half-submitted batch: Queued = %d", q)
	default:
	}
}

// A batch's single broadcast must still wake blocked poppers.
func TestSubmitBatchWakesBlockedPoppers(t *testing.T) {
	db := NewDB()
	defer db.Close()
	const n = 8
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			claim, err := db.Pop(context.Background(), "m")
			if err == nil {
				err = claim.Complete("ok")
			}
			results <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)
	payloads := make([]string, n)
	for i := range payloads {
		payloads[i] = fmt.Sprintf("p%d", i)
	}
	if _, err := db.SubmitBatch("m", 0, payloads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("popper %d never woke after batch submit", i)
		}
	}
}

// Duplicate delivery of the same attempt's resolution (a wire retry after
// a lost response) must be acknowledged without double-resolving, and the
// future must fire exactly once.
func TestFinishDuplicateResolutionIdempotent(t *testing.T) {
	db := NewDB()
	defer db.Close()
	f, _ := db.Submit("m", 0, "x")
	claim, _ := db.Pop(context.Background(), "m")
	epoch := claim.Task.Epoch
	if _, err := db.finish(claim.Task.ID, epoch, StatusComplete, "v1", ""); err != nil {
		t.Fatal(err)
	}
	// Retry of the same resolution: first writer wins, retry succeeds.
	if _, err := db.finish(claim.Task.ID, epoch, StatusComplete, "v2", ""); err != nil {
		t.Fatalf("duplicate fenced complete = %v, want nil", err)
	}
	res, err := f.Result(context.Background())
	if err != nil || res != "v1" {
		t.Fatalf("Result = %q, %v (first writer must win)", res, err)
	}
	// But a conflicting resolution of the same attempt is stale.
	if _, err := db.finish(claim.Task.ID, epoch, StatusFailed, "", "boom"); !errors.Is(err, ErrStaleClaim) {
		t.Fatalf("conflicting resolution = %v, want ErrStaleClaim", err)
	}
	statsBalanced(t, db)
}

// TestMetricsLedgerAfterFaultRun turns PR 1's lifecycle guarantees into a
// checkable ledger over the obs counters: after a run with transient
// failures, a lease kill, a requeue, and a stale (zombie) resolution,
// every submitted task must be accounted for exactly once —
//
//	Δsubmitted = Δcompleted + Δfailed + Δcanceled   (all terminal)
//	Δpopped    = Δcompleted + Δfailed + Δrequeued    (every attempt lands)
//
// with the stale resolution surfacing in emews.tasks.stale_rejected rather
// than perturbing either sum. Metrics are process-global, so everything is
// asserted as deltas against a pre-run snapshot.
func TestMetricsLedgerAfterFaultRun(t *testing.T) {
	before := obs.Default().Snapshot()
	delta := func(after obs.Snapshot, name string) int64 {
		return after.Counters[name] - before.Counters[name]
	}

	db := NewDB()
	defer db.Close()
	// Generous lease: only the deliberately hung task may expire, even on
	// a slow race-detector run.
	db.SetLeaseTimeout(200 * time.Millisecond)

	var failOnce sync.Map
	release := make(chan struct{})
	var hangOnce sync.Once
	pool, err := StartLocalPool(db, "ledger", 4, func(ctx context.Context, payload string) (string, error) {
		if payload == "hang" {
			hung := false
			hangOnce.Do(func() { hung = true })
			if hung {
				<-release // zombie: held past its lease
				return "late", nil
			}
			return "recovered", nil
		}
		if strings.HasPrefix(payload, "flaky") {
			if _, seen := failOnce.LoadOrStore(payload, true); !seen {
				return "", errors.New("transient model failure")
			}
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	const steady, flaky = 10, 5
	var futures []*Future
	for i := 0; i < steady; i++ {
		f, err := db.SubmitRetry("ledger", 0, fmt.Sprintf("steady%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for i := 0; i < flaky; i++ {
		f, err := db.SubmitRetry("ledger", 0, fmt.Sprintf("flaky%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	hungF, err := db.SubmitRetry("ledger", 0, "hang", 2)
	if err != nil {
		t.Fatal(err)
	}
	futures = append(futures, hungF)
	const submitted = steady + flaky + 1

	// Kill the hung attempt: wait for its lease to expire and reap it,
	// which requeues the task for a fresh (instant) attempt.
	reapStart := time.Now()
	for {
		if req, _ := db.ReapExpired(); req >= 1 {
			break
		}
		if time.Since(reapStart) > 10*time.Second {
			t.Fatal("hung task's lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(release) // zombie resolves late; must be rejected as stale

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, f := range futures {
		if res, err := f.Result(ctx); err != nil || res == "" {
			t.Fatalf("future %d: result %q, err %v", i, res, err)
		}
	}

	// The zombie's stale rejection races the futures resolving; wait for
	// it to be recorded before freezing the ledger.
	staleStart := time.Now()
	for {
		if after := obs.Default().Snapshot(); delta(after, "emews.tasks.stale_rejected") >= 1 {
			break
		}
		if time.Since(staleStart) > 10*time.Second {
			t.Fatal("stale resolution never counted")
		}
		time.Sleep(time.Millisecond)
	}

	after := obs.Default().Snapshot()
	statsBalanced(t, db)

	if got := delta(after, "emews.tasks.submitted"); got != submitted {
		t.Fatalf("Δsubmitted = %d, want %d", got, submitted)
	}
	completed := delta(after, "emews.tasks.completed")
	failed := delta(after, "emews.tasks.failed")
	canceled := delta(after, "emews.tasks.canceled")
	requeued := delta(after, "emews.tasks.requeued")
	popped := delta(after, "emews.tasks.popped")

	// Every submitted task reached exactly one terminal state.
	if completed+failed+canceled != submitted {
		t.Fatalf("terminal ledger broken: completed %d + failed %d + canceled %d != submitted %d",
			completed, failed, canceled, submitted)
	}
	// Every pop (attempt) was resolved exactly once: terminally or by a
	// requeue (transient failure or lease reap).
	if popped != completed+failed+requeued {
		t.Fatalf("attempt ledger broken: popped %d != completed %d + failed %d + requeued %d",
			popped, completed, failed, requeued)
	}
	// The injected faults are visible: at least one requeue per flaky task
	// plus the lease kill, and the zombie surfaced as a stale rejection.
	if requeued < flaky+1 {
		t.Fatalf("Δrequeued = %d, want >= %d", requeued, flaky+1)
	}
	if delta(after, "emews.reaper.requeued") < 1 {
		t.Fatal("reaper requeue not counted")
	}
	if delta(after, "emews.tasks.stale_rejected") < 1 {
		t.Fatal("stale rejection not counted")
	}
	// Latency histograms saw every attempt: one pop-wait observation per
	// blocking pop and one service observation per terminal resolution.
	popWaits := after.Histograms["emews.pop.wait_seconds"].Count - before.Histograms["emews.pop.wait_seconds"].Count
	if popWaits < popped {
		t.Fatalf("pop-wait observations %d < popped %d", popWaits, popped)
	}
	services := after.Histograms["emews.task.service_seconds"].Count - before.Histograms["emews.task.service_seconds"].Count
	if services != completed+failed {
		t.Fatalf("service observations %d, want completed+failed = %d", services, completed+failed)
	}
	// Levels drain back to where they started.
	if after.Gauges["emews.queue.depth"] != before.Gauges["emews.queue.depth"] {
		t.Fatalf("queue depth gauge leaked: %d -> %d",
			before.Gauges["emews.queue.depth"], after.Gauges["emews.queue.depth"])
	}
	if after.Gauges["emews.tasks.running"] != before.Gauges["emews.tasks.running"] {
		t.Fatalf("running gauge leaked: %d -> %d",
			before.Gauges["emews.tasks.running"], after.Gauges["emews.tasks.running"])
	}
}

// A local pool worker whose lease expires mid-evaluation must see its
// resolution discarded as stale, counted in PoolStats.Stale.
func TestLocalPoolCountsStaleClaims(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.SetLeaseTimeout(15 * time.Millisecond)

	release := make(chan struct{})
	var once sync.Once
	pool, err := StartLocalPool(db, "m", 1, func(ctx context.Context, payload string) (string, error) {
		slow := false
		once.Do(func() { slow = true })
		if slow {
			<-release // hold the first attempt past its lease
		}
		return "v:" + payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Stop()

	f, _ := db.SubmitRetry("m", 0, "x", 2)
	time.Sleep(40 * time.Millisecond) // first attempt is now past its lease
	if req, _ := db.ReapExpired(); req != 1 {
		t.Fatal("lease did not expire as expected")
	}
	close(release) // zombie worker finishes; its Complete must be stale
	res, err := f.Result(context.Background())
	if err != nil || res != "v:x" {
		t.Fatalf("Result = %q, %v", res, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := pool.Stats()
		if st.Stale == 1 && st.Processed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool stats %+v, want Processed=1 Stale=1", st)
		}
		time.Sleep(time.Millisecond)
	}
	statsBalanced(t, db)
}
