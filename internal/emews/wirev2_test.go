package emews

import (
	"bytes"
	"reflect"
	"testing"
)

// fullRequest populates every wireRequest field the codec carries.
func fullRequest() wireRequest {
	return wireRequest{
		Op:          "finish_batch",
		Type:        "sim",
		Priority:    -3,
		Payload:     "payload with \x00 bytes and unicode ✓",
		TaskID:      1 << 40,
		Epoch:       7,
		Result:      "r",
		ErrMsg:      "boom",
		TimeoutMS:   250,
		MaxAttempts: 5,
		Max:         64,
		Key:         "route-key ✓",
		Seg:         12,
		Off:         1 << 33,
		Payloads:    []string{"", "a", "bb"},
		Finishes: []wireFinish{
			{TaskID: 1, Epoch: 2, Failed: true, Result: "", ErrMsg: "e"},
			{TaskID: 3, Epoch: 0, Failed: false, Result: "ok", ErrMsg: ""},
		},
	}
}

func fullResponse() wireResponse {
	return wireResponse{
		OK:      true,
		Error:   "partial",
		Stale:   true,
		TaskID:  99,
		Epoch:   3,
		Payload: "p",
		Result:  "res",
		Done:    true,
		Failed:  true,
		Empty:   true,
		Tasks: []wireTask{
			{ID: 1, Epoch: 1, Payload: "x"},
			{ID: 2, Epoch: 5, Payload: ""},
		},
		TaskIDs: []int64{10, 11, 12},
		Results: []wireResult{
			{OK: true},
			{OK: false, Stale: true, Error: "stale claim"},
			{OK: false, Error: "nope"},
		},
		Stats:      &Stats{Queued: 1, Running: 2, Complete: 3, Failed: -4, Canceled: 5, Submitted: 7},
		WrongShard: true,
		Shard:      2,
		Seg:        4,
		Off:        513,
		Snapshot:   true,
		Data:       []byte{0x00, 0xff, 0x7f, 0x01},
	}
}

// Every field must survive an encode/decode round trip through the binary
// frame codec, for both directions of the protocol.
func TestWireV2RoundTrip(t *testing.T) {
	req := fullRequest()
	buf, err := appendRequestFrame(nil, 42, &req)
	if err != nil {
		t.Fatal(err)
	}
	code, id, payload, err := readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || code != opcFinishBatch {
		t.Fatalf("frame header: code=%d id=%d", code, id)
	}
	got, err := decodeRequestPayload(code, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("request round trip:\n got %+v\nwant %+v", got, req)
	}

	resp := fullResponse()
	rbuf := appendResponseFrame(nil, opcPopBatch, 7, &resp)
	code, id, payload, err = readFrame(bytes.NewReader(rbuf))
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || code != opcPopBatch {
		t.Fatalf("frame header: code=%d id=%d", code, id)
	}
	gotResp, err := decodeResponsePayload(code, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip:\n got %+v\nwant %+v", gotResp, resp)
	}

	// A zero-value request (all fields empty) must round-trip too.
	minimal := wireRequest{Op: "stats"}
	buf, err = appendRequestFrame(nil, 1, &minimal)
	if err != nil {
		t.Fatal(err)
	}
	code, _, payload, err = readFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := decodeRequestPayload(code, payload); err != nil || !reflect.DeepEqual(got, minimal) {
		t.Fatalf("minimal round trip: %+v, %v", got, err)
	}
}

// Malformed frames must be rejected with errBadFrame, never accepted or
// panicked on.
func TestWireV2RejectsBadFrames(t *testing.T) {
	good, err := appendRequestFrame(nil, 1, &wireRequest{Op: "pop", Type: "m"})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 0x00
		if _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted frame with bad magic")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[1] = 0x01
		if _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted frame with bad version")
		}
	})
	t.Run("oversized-length", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, _, _, err := readFrame(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted frame with oversized payload length")
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		if _, _, _, err := readFrame(bytes.NewReader(good[:len(good)-1])); err == nil {
			t.Fatal("accepted truncated frame")
		}
	})
	t.Run("unknown-op", func(t *testing.T) {
		code, _, payload, err := readFrame(bytes.NewReader(good))
		if err != nil {
			t.Fatal(err)
		}
		defer putWireBuf(payload)
		if _, err := decodeRequestPayload(code+100, payload); err == nil {
			t.Fatal("accepted unknown op code")
		}
	})
	t.Run("truncated-fields", func(t *testing.T) {
		full := fullRequest()
		buf, err := appendRequestFrame(nil, 1, &full)
		if err != nil {
			t.Fatal(err)
		}
		code, _, payload, err := readFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer putWireBuf(payload)
		// Chopping the payload at any prefix must yield an error, not a
		// partial struct silently missing fields.
		for n := 0; n < len(payload); n++ {
			if _, err := decodeRequestPayload(code, payload[:n]); err == nil {
				t.Fatalf("accepted payload truncated to %d/%d bytes", n, len(payload))
			}
		}
	})
	t.Run("hostile-list-count", func(t *testing.T) {
		// A payload claiming 2^40 finishes with no bytes behind it must be
		// rejected by the count bound, not trigger a huge allocation.
		payload := make([]byte, 0, 64)
		for i := 0; i < 4; i++ { // type, payload, result, err_msg
			payload = append(payload, 0)
		}
		for i := 0; i < 4; i++ { // priority, timeout_ms, max_attempts, max
			payload = append(payload, 0)
		}
		payload = append(payload, 0, 0) // task_id, epoch
		payload = append(payload, 0)    // payloads count = 0
		payload = append(payload, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
		if _, err := decodeRequestPayload(opcFinishBatch, payload); err == nil {
			t.Fatal("accepted hostile finish count")
		}
	})
}

// The frame decoder must never panic or over-allocate on arbitrary input.
func FuzzDecodeFrame(f *testing.F) {
	if buf, err := appendRequestFrame(nil, 3, &wireRequest{Op: "pop", Type: "m", TimeoutMS: 5}); err == nil {
		f.Add(buf)
	}
	full := fullRequest()
	if buf, err := appendRequestFrame(nil, 9, &full); err == nil {
		f.Add(buf)
	}
	resp := fullResponse()
	f.Add(appendResponseFrame(nil, opcPop, 1, &resp))
	f.Add([]byte{frameMagic, frameVersion})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		code, _, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		_, _ = decodeRequestPayload(code, payload)
		_, _ = decodeResponsePayload(code, payload)
		putWireBuf(payload)
	})
}
