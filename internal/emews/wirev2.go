// Wire protocol v2: a length-prefixed binary codec for the EMEWS task
// substrate.
//
// Every frame is a fixed 16-byte header followed by a payload:
//
//	offset 0   magic      0xF7
//	offset 1   version    0x02
//	offset 2   op code    (request: the op; response: echoes the request op)
//	offset 3   flags      reserved, 0
//	offset 4   request id uint64 big-endian (pipelining correlation token)
//	offset 12  length     uint32 big-endian payload byte count
//
// Payloads are a compact field encoding (uvarint/varint integers,
// length-prefixed strings) of the same wireRequest/wireResponse structs the
// v1 JSON framing serializes, so both framings share one server dispatch.
// Request ids let a connection carry many ops in flight: the server
// dispatches frames concurrently and responses may return out of order.
//
// Negotiation: a v2 client opens with the clientHello line. A v2 server
// recognizes it and answers serverHelloAck, after which both sides speak
// binary frames. A v1 (JSON) server consumes the hello as one malformed
// request line and answers a JSON error object, which the client detects
// (first byte '{') and falls back to the v1 framing. A v1 client's first
// byte is '{', which a v2 server detects and routes to the v1 handler. Both
// fallbacks cost at most one round trip and no reconnect.
package emews

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

const (
	frameMagic      = 0xF7
	frameVersion    = 0x02
	frameHeaderLen  = 16
	maxFramePayload = 16 << 20 // decoder refuses larger claimed payloads
	maxWireBatch    = 1 << 16  // decoder cap on any list length
)

// Handshake lines. Both end in '\n' so a v1 server consumes the hello as
// exactly one (invalid) request line.
const (
	clientHello    = "OSPREY-WIRE/2\n"
	serverHelloAck = "OSPREY-WIRE/2 OK\n"
)

// Request op codes. Responses echo the request's code.
const (
	opcSubmit byte = iota + 1
	opcPop
	opcComplete
	opcFail
	opcResult
	opcStats
	opcSubmitBatch
	opcPopBatch
	opcFinishBatch
	opcWALFetch
)

var opToCode = map[string]byte{
	"submit":       opcSubmit,
	"pop":          opcPop,
	"complete":     opcComplete,
	"fail":         opcFail,
	"result":       opcResult,
	"stats":        opcStats,
	"submit_batch": opcSubmitBatch,
	"pop_batch":    opcPopBatch,
	"finish_batch": opcFinishBatch,
	"wal_fetch":    opcWALFetch,
}

var codeToOp = map[byte]string{}

func init() {
	for op, code := range opToCode {
		codeToOp[code] = op
	}
}

var errBadFrame = errors.New("emews: bad wire frame")

// wireBufPool recycles encode/decode buffers end-to-end: frame assembly on
// the send side, payload reads on the receive side.
var wireBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getWireBuf() []byte {
	return (*wireBufPool.Get().(*[]byte))[:0]
}

func putWireBuf(b []byte) {
	if cap(b) > 1<<20 {
		return // don't let one huge payload pin memory in the pool
	}
	wireBufPool.Put(&b)
}

// ---- encoding ----

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendBytes(b, data []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// appendRequestPayload encodes every wireRequest field in a fixed order.
// All ops share the layout; unused fields cost one zero byte each.
func appendRequestPayload(b []byte, req *wireRequest) []byte {
	b = appendString(b, req.Type)
	b = appendString(b, req.Payload)
	b = appendString(b, req.Result)
	b = appendString(b, req.ErrMsg)
	b = appendString(b, req.Key)
	b = binary.AppendVarint(b, int64(req.Priority))
	b = binary.AppendVarint(b, int64(req.TimeoutMS))
	b = binary.AppendVarint(b, int64(req.MaxAttempts))
	b = binary.AppendVarint(b, int64(req.Max))
	b = binary.AppendVarint(b, int64(req.Seg))
	b = binary.AppendVarint(b, req.Off)
	b = binary.AppendUvarint(b, uint64(req.TaskID))
	b = binary.AppendUvarint(b, uint64(req.Epoch))
	b = binary.AppendUvarint(b, uint64(len(req.Payloads)))
	for _, p := range req.Payloads {
		b = appendString(b, p)
	}
	b = binary.AppendUvarint(b, uint64(len(req.Finishes)))
	for _, f := range req.Finishes {
		b = binary.AppendUvarint(b, uint64(f.TaskID))
		b = binary.AppendUvarint(b, uint64(f.Epoch))
		b = appendBool(b, f.Failed)
		b = appendString(b, f.Result)
		b = appendString(b, f.ErrMsg)
	}
	return b
}

// Response flag bits.
const (
	respOK         = 1 << 0
	respStale      = 1 << 1
	respDone       = 1 << 2
	respEmpty      = 1 << 3
	respFailed     = 1 << 4
	respHasStats   = 1 << 5
	respWrongShard = 1 << 6
	respSnapshot   = 1 << 7
)

func appendResponsePayload(b []byte, resp *wireResponse) []byte {
	var flags byte
	if resp.OK {
		flags |= respOK
	}
	if resp.Stale {
		flags |= respStale
	}
	if resp.Done {
		flags |= respDone
	}
	if resp.Empty {
		flags |= respEmpty
	}
	if resp.Failed {
		flags |= respFailed
	}
	if resp.Stats != nil {
		flags |= respHasStats
	}
	if resp.WrongShard {
		flags |= respWrongShard
	}
	if resp.Snapshot {
		flags |= respSnapshot
	}
	b = append(b, flags)
	b = appendString(b, resp.Error)
	b = appendString(b, resp.Payload)
	b = appendString(b, resp.Result)
	b = binary.AppendUvarint(b, uint64(resp.TaskID))
	b = binary.AppendUvarint(b, uint64(resp.Epoch))
	b = binary.AppendVarint(b, int64(resp.Shard))
	b = binary.AppendVarint(b, int64(resp.Seg))
	b = binary.AppendVarint(b, resp.Off)
	b = appendBytes(b, resp.Data)
	b = binary.AppendUvarint(b, uint64(len(resp.Tasks)))
	for _, t := range resp.Tasks {
		b = binary.AppendUvarint(b, uint64(t.ID))
		b = binary.AppendUvarint(b, uint64(t.Epoch))
		b = appendString(b, t.Payload)
	}
	b = binary.AppendUvarint(b, uint64(len(resp.TaskIDs)))
	for _, id := range resp.TaskIDs {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Results)))
	for _, r := range resp.Results {
		var rf byte
		if r.OK {
			rf |= respOK
		}
		if r.Stale {
			rf |= respStale
		}
		b = append(b, rf)
		b = appendString(b, r.Error)
	}
	if resp.Stats != nil {
		st := resp.Stats
		for _, v := range []int{st.Queued, st.Running, st.Complete, st.Failed, st.Canceled, st.Submitted} {
			b = binary.AppendVarint(b, int64(v))
		}
	}
	return b
}

// appendFrame reserves a header, appends the payload via encode, and
// back-patches the header with the final length.
func appendFrame(b []byte, code byte, id uint64, encode func([]byte) []byte) ([]byte, error) {
	start := len(b)
	var hdr [frameHeaderLen]byte
	b = append(b, hdr[:]...)
	b = encode(b)
	n := len(b) - start - frameHeaderLen
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds limit", errBadFrame, n)
	}
	h := b[start:]
	h[0] = frameMagic
	h[1] = frameVersion
	h[2] = code
	h[3] = 0
	binary.BigEndian.PutUint64(h[4:12], id)
	binary.BigEndian.PutUint32(h[12:16], uint32(n))
	return b, nil
}

func appendRequestFrame(b []byte, id uint64, req *wireRequest) ([]byte, error) {
	code, ok := opToCode[req.Op]
	if !ok {
		return nil, fmt.Errorf("emews: unknown op %q", req.Op)
	}
	return appendFrame(b, code, id, func(b []byte) []byte { return appendRequestPayload(b, req) })
}

func appendResponseFrame(b []byte, code byte, id uint64, resp *wireResponse) []byte {
	out, err := appendFrame(b, code, id, func(b []byte) []byte { return appendResponsePayload(b, resp) })
	if err != nil {
		// Oversized response (a task result can exceed the frame limit):
		// degrade to an error response the peer can still parse.
		out, _ = appendFrame(b[:0], code, id, func(b []byte) []byte {
			return appendResponsePayload(b, &wireResponse{Error: err.Error()})
		})
	}
	return out
}

// readFrame reads one frame header + payload. The returned payload buffer
// comes from wireBufPool; the caller must putWireBuf it after decoding.
func readFrame(r io.Reader) (code byte, id uint64, payload []byte, err error) {
	var h [frameHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, 0, nil, err
	}
	if h[0] != frameMagic || h[1] != frameVersion {
		return 0, 0, nil, fmt.Errorf("%w: magic=%#x version=%#x", errBadFrame, h[0], h[1])
	}
	n := binary.BigEndian.Uint32(h[12:16])
	if n > maxFramePayload {
		return 0, 0, nil, fmt.Errorf("%w: payload length %d exceeds limit", errBadFrame, n)
	}
	id = binary.BigEndian.Uint64(h[4:12])
	buf := getWireBuf()
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		putWireBuf(buf)
		return 0, 0, nil, err
	}
	return h[2], id, buf, nil
}

// ---- decoding ----

// wireReader is a bounds-checked cursor over a frame payload. Every
// accessor is a no-op once an error is recorded, so call sites can decode
// straight through and check err once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", errBadFrame, what, r.off)
	}
}

func (r *wireReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) str(what string) string {
	n := r.uvarint(what)
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(what)
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)]) // copies out of the pooled buffer
	r.off += int(n)
	return s
}

// bytes reads a length-prefixed byte run, copying out of the pooled
// buffer. A zero length decodes as nil.
func (r *wireReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(what)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *wireReader) boolByte(what string) bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// count validates a list length against both the batch cap and the bytes
// actually present (each element needs at least one byte), so a hostile
// length cannot force a huge allocation.
func (r *wireReader) count(what string) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if n > maxWireBatch || n > uint64(len(r.b)-r.off) {
		r.fail(what + " count")
		return 0
	}
	return int(n)
}

func decodeRequestPayload(code byte, payload []byte) (wireRequest, error) {
	op, ok := codeToOp[code]
	if !ok {
		return wireRequest{}, fmt.Errorf("%w: unknown op code %d", errBadFrame, code)
	}
	r := &wireReader{b: payload}
	req := wireRequest{Op: op}
	req.Type = r.str("type")
	req.Payload = r.str("payload")
	req.Result = r.str("result")
	req.ErrMsg = r.str("err_msg")
	req.Key = r.str("key")
	req.Priority = int(r.varint("priority"))
	req.TimeoutMS = int(r.varint("timeout_ms"))
	req.MaxAttempts = int(r.varint("max_attempts"))
	req.Max = int(r.varint("max"))
	req.Seg = int(r.varint("seg"))
	req.Off = r.varint("off")
	req.TaskID = int64(r.uvarint("task_id"))
	req.Epoch = int64(r.uvarint("epoch"))
	if n := r.count("payloads"); n > 0 {
		req.Payloads = make([]string, 0, n)
		for i := 0; i < n; i++ {
			req.Payloads = append(req.Payloads, r.str("payloads"))
		}
	}
	if n := r.count("finishes"); n > 0 {
		req.Finishes = make([]wireFinish, 0, n)
		for i := 0; i < n; i++ {
			var f wireFinish
			f.TaskID = int64(r.uvarint("finish task_id"))
			f.Epoch = int64(r.uvarint("finish epoch"))
			f.Failed = r.boolByte("finish failed")
			f.Result = r.str("finish result")
			f.ErrMsg = r.str("finish err_msg")
			req.Finishes = append(req.Finishes, f)
		}
	}
	if r.err != nil {
		return wireRequest{}, r.err
	}
	return req, nil
}

func decodeResponsePayload(code byte, payload []byte) (wireResponse, error) {
	if _, ok := codeToOp[code]; !ok {
		return wireResponse{}, fmt.Errorf("%w: unknown op code %d", errBadFrame, code)
	}
	r := &wireReader{b: payload}
	var resp wireResponse
	if len(payload) == 0 {
		r.fail("flags")
	} else {
		flags := payload[0]
		r.off = 1
		resp.OK = flags&respOK != 0
		resp.Stale = flags&respStale != 0
		resp.Done = flags&respDone != 0
		resp.Empty = flags&respEmpty != 0
		resp.Failed = flags&respFailed != 0
		resp.WrongShard = flags&respWrongShard != 0
		resp.Snapshot = flags&respSnapshot != 0
		resp.Error = r.str("error")
		resp.Payload = r.str("payload")
		resp.Result = r.str("result")
		resp.TaskID = int64(r.uvarint("task_id"))
		resp.Epoch = int64(r.uvarint("epoch"))
		resp.Shard = int(r.varint("shard"))
		resp.Seg = int(r.varint("seg"))
		resp.Off = r.varint("off")
		resp.Data = r.bytes("data")
		if n := r.count("tasks"); n > 0 {
			resp.Tasks = make([]wireTask, 0, n)
			for i := 0; i < n; i++ {
				var t wireTask
				t.ID = int64(r.uvarint("task id"))
				t.Epoch = int64(r.uvarint("task epoch"))
				t.Payload = r.str("task payload")
				resp.Tasks = append(resp.Tasks, t)
			}
		}
		if n := r.count("task_ids"); n > 0 {
			resp.TaskIDs = make([]int64, 0, n)
			for i := 0; i < n; i++ {
				resp.TaskIDs = append(resp.TaskIDs, int64(r.uvarint("task_ids")))
			}
		}
		if n := r.count("results"); n > 0 {
			resp.Results = make([]wireResult, 0, n)
			for i := 0; i < n; i++ {
				var res wireResult
				rf := byte(0)
				if r.err == nil && r.off < len(r.b) {
					rf = r.b[r.off]
					r.off++
				} else {
					r.fail("result flags")
				}
				res.OK = rf&respOK != 0
				res.Stale = rf&respStale != 0
				res.Error = r.str("result error")
				resp.Results = append(resp.Results, res)
			}
		}
		if flags&respHasStats != 0 {
			var st Stats
			st.Queued = int(r.varint("stats queued"))
			st.Running = int(r.varint("stats running"))
			st.Complete = int(r.varint("stats complete"))
			st.Failed = int(r.varint("stats failed"))
			st.Canceled = int(r.varint("stats canceled"))
			st.Submitted = int(r.varint("stats submitted"))
			resp.Stats = &st
		}
	}
	if r.err != nil {
		return wireResponse{}, r.err
	}
	return resp, nil
}
