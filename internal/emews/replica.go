// Primary→follower replication for one shard of the task substrate.
//
// A Follower is a warm standby for a shard primary. It bootstraps over the
// existing TCP service (the wal_fetch op): first the primary's newest
// compaction snapshot plus a shipping cursor, then a tail loop that pages
// framed WAL records from that cursor forward. Every shipped record is
// appended to the follower's own wal.Log (durable copy first, exactly the
// primary's commitLocked ordering) and then applied through the same pure
// applyLocked transition function the primary and crash recovery use — so
// the follower's in-memory state and its on-disk log are both faithful
// replicas, record for record.
//
// Failover sequence (driven by a coordinator, e.g. the loadgen harness or
// the daemon supervisor):
//
//  1. The primary dies. Stop() the tail loop.
//  2. CatchUp(primaryDir) drains whatever acknowledged records the tail
//     had not shipped yet straight from the dead primary's log directory
//     (wal.ReadDirAt) — the shared-filesystem model of the HPC clusters
//     OSPREY targets, where the WAL outlives its writer. After CatchUp the
//     follower has every mutation the primary ever acknowledged.
//  3. Promote() turns the replica into a primary: its own log becomes the
//     persistence backend, every task left Running by the dead primary is
//     requeued with an epoch bump — committed through the log like any
//     other mutation — so straggler claims against the old primary resolve
//     as ErrStaleClaim, exactly as they would after a crash-restart.
//  4. The coordinator serves the returned DB (Serve + WithShardIdentity)
//     and repoints routers at the new address.
//
// The epoch bump in step 3 is what preserves attempt fencing across
// failover: a worker holding a claim from the old primary cannot overwrite
// a newer attempt on the new one.
package emews

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"osprey/internal/wal"
)

// FollowerOptions configures StartFollower.
type FollowerOptions struct {
	// ShardIndex/ShardCount are the shard identity of the primary being
	// followed (0/1 for an unsharded primary). The promoted database
	// allocates the same strided ID sequence.
	ShardIndex int
	ShardCount int
	// PollInterval paces the tail loop when it is caught up with the
	// primary. Default 25ms.
	PollInterval time.Duration
	// WAL configures the follower's own log (name, segment size, sync
	// policy). The zero value syncs every append, matching a primary that
	// must not lose acknowledged work.
	WAL wal.Options
	// ClientOpts configure the wire client used to reach the primary.
	ClientOpts []ClientOption
}

// FollowerStatus is an observability snapshot of a Follower.
type FollowerStatus struct {
	Seg      int    `json:"seg"` // shipping cursor, primary segment numbering
	Off      int64  `json:"off"`
	Records  int64  `json:"records"` // mutations replicated since start
	Resyncs  int64  `json:"resyncs"` // full re-bootstraps (compaction raced the tail)
	Promoted bool   `json:"promoted"`
	LastErr  string `json:"last_err,omitempty"`
}

// Follower tails one shard primary's WAL into a local replica. Safe for
// concurrent use; the tail loop runs in its own goroutine between
// StartFollower and Stop.
type Follower struct {
	primaryAddr string
	dir         string
	opts        FollowerOptions
	cl          *Client

	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	db       *DB
	log      *wal.Log
	seg      int
	off      int64
	records  int64
	resyncs  int64
	lastErr  error
	promoted bool
	stopped  bool
}

// StartFollower connects to a shard primary, bootstraps a replica of its
// task database into dir (wiping whatever was there — a follower's state
// is always derived, never authoritative), and starts the tail loop.
func StartFollower(primaryAddr, dir string, opts FollowerOptions) (*Follower, error) {
	if opts.ShardCount < 1 {
		opts.ShardCount = 1
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	cl, err := Dial(primaryAddr, opts.ClientOpts...)
	if err != nil {
		return nil, fmt.Errorf("emews: follower dial primary: %w", err)
	}
	f := &Follower{primaryAddr: primaryAddr, dir: dir, opts: opts, cl: cl, done: make(chan struct{})}
	if err := f.bootstrap(); err != nil {
		cl.Close()
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	go f.run(ctx)
	return f, nil
}

// bootstrap wipes the replica directory and rebuilds it from the
// primary's snapshot + shipping cursor. Called from StartFollower and,
// under the tail goroutine, on a compaction resync.
func (f *Follower) bootstrap() error {
	f.mu.Lock()
	if old := f.log; old != nil {
		old.Close()
		f.log, f.db = nil, nil
	}
	f.mu.Unlock()
	if err := os.RemoveAll(f.dir); err != nil {
		return fmt.Errorf("emews: follower reset %s: %w", f.dir, err)
	}
	l, err := wal.Open(f.dir, f.opts.WAL)
	if err != nil {
		return err
	}
	if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
		l.Close()
		return err
	}
	db, err := NewDBShard(f.opts.ShardIndex, f.opts.ShardCount)
	if err != nil {
		l.Close()
		return err
	}
	chunk, err := f.cl.WALFetch(0, 0)
	if err != nil {
		l.Close()
		return fmt.Errorf("emews: follower bootstrap: %w", err)
	}
	if chunk.Snapshot && len(chunk.Data) > 0 {
		if err := db.loadSnapshot(chunk.Data); err != nil {
			l.Close()
			return err
		}
		// Persist the snapshot so the replica's own directory boots (and
		// audits) standalone, without the pre-snapshot history.
		if err := l.WriteSnapshot(chunk.Data); err != nil {
			l.Close()
			return err
		}
	}
	f.mu.Lock()
	f.db, f.log = db, l
	f.seg, f.off = chunk.Seg, chunk.Off
	f.mu.Unlock()
	return nil
}

// run is the tail loop: fetch from the cursor, apply, advance, sleep when
// caught up. Transient errors (primary down, mid-failover) are recorded
// and retried; a compaction signal triggers a full resync.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		f.mu.Lock()
		seg, off := f.seg, f.off
		f.mu.Unlock()
		chunk, err := f.cl.WALFetch(seg, off)
		if err != nil {
			f.noteErr(err)
			if !f.sleep(ctx) {
				return
			}
			continue
		}
		if chunk.Seg == 0 {
			// The cursor was compacted away under us: re-bootstrap.
			f.mu.Lock()
			f.resyncs++
			f.mu.Unlock()
			if err := f.bootstrap(); err != nil {
				f.noteErr(err)
				if !f.sleep(ctx) {
					return
				}
			}
			continue
		}
		if err := f.apply(chunk.Data); err != nil {
			// A framing/apply error means the replica diverged (it should
			// not happen on a healthy stream): resync from scratch.
			f.noteErr(err)
			f.mu.Lock()
			f.resyncs++
			f.mu.Unlock()
			if err := f.bootstrap(); err != nil {
				f.noteErr(err)
				if !f.sleep(ctx) {
					return
				}
			}
			continue
		}
		f.mu.Lock()
		f.seg, f.off = chunk.Seg, chunk.Off
		f.lastErr = nil
		f.mu.Unlock()
		if len(chunk.Data) == 0 {
			// Caught up with the primary's tail.
			if !f.sleep(ctx) {
				return
			}
		}
	}
}

// apply appends and replays a run of framed WAL records. Durable copy
// first, then the in-memory transition — the same ordering as the
// primary's commitLocked, so the replica's log never lags its state.
func (f *Follower) apply(data []byte) error {
	f.mu.Lock()
	db, l := f.db, f.log
	f.mu.Unlock()
	for len(data) > 0 {
		payload, n, err := wal.ParseRecord(data, 0)
		if err != nil {
			return fmt.Errorf("emews: follower frame: %w", err)
		}
		var m taskMutation
		if err := json.Unmarshal(payload, &m); err != nil {
			return fmt.Errorf("emews: follower decode: %w", err)
		}
		if err := l.Append(payload); err != nil {
			return err
		}
		db.mu.Lock()
		_, aerr := db.applyLocked(&m)
		db.mu.Unlock()
		if aerr != nil {
			return aerr
		}
		f.mu.Lock()
		f.records++
		f.mu.Unlock()
		data = data[n:]
	}
	return nil
}

func (f *Follower) noteErr(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// sleep waits one poll interval; false means the context was canceled.
func (f *Follower) sleep(ctx context.Context) bool {
	t := time.NewTimer(f.opts.PollInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Status snapshots the follower's replication progress.
func (f *Follower) Status() FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStatus{Seg: f.seg, Off: f.off, Records: f.records, Resyncs: f.resyncs, Promoted: f.promoted}
	if f.lastErr != nil {
		st.LastErr = f.lastErr.Error()
	}
	return st
}

// Stop halts the tail loop. Idempotent; returns once the loop has exited.
// The replica state and log are kept — Stop is the first step of failover,
// not a teardown (that is Close).
func (f *Follower) Stop() {
	f.mu.Lock()
	stopped := f.stopped
	f.stopped = true
	f.mu.Unlock()
	if !stopped {
		f.cancel()
	}
	<-f.done
}

// CatchUp drains the dead primary's log directory from the follower's
// cursor forward, applying every acknowledged mutation the tail loop had
// not shipped before the primary died. Call after Stop, before Promote.
// wal.ErrCompacted here means the replica is too far behind its primary's
// surviving history to catch up losslessly — the caller must rebuild a
// fresh follower instead of promoting this one.
func (f *Follower) CatchUp(primaryDir string) error {
	f.mu.Lock()
	if !f.stopped || f.promoted {
		f.mu.Unlock()
		return errors.New("emews: CatchUp requires a stopped, unpromoted follower")
	}
	seg, off := f.seg, f.off
	f.mu.Unlock()
	for {
		data, nextSeg, nextOff, err := wal.ReadDirAt(primaryDir, seg, off, 0, 0)
		if err != nil {
			return fmt.Errorf("emews: follower catch-up from %s: %w", primaryDir, err)
		}
		if len(data) > 0 {
			if err := f.apply(data); err != nil {
				return err
			}
		}
		f.mu.Lock()
		f.seg, f.off = nextSeg, nextOff
		f.mu.Unlock()
		if len(data) == 0 {
			return nil
		}
		seg, off = nextSeg, nextOff
	}
}

// Promote turns the caught-up replica into a primary and returns its
// database (backed by the follower's own log) ready to Serve. It stops
// the tail loop if still running, then — like OpenDB after a crash —
// requeues every task the dead primary left Running, committing the
// epoch-bumping requeue through the log so claims handed out by the old
// primary are fenced off (ErrStaleClaim) on the new one.
//
// The returned log is owned by the caller: close the DB (or the serving
// stack) and then the log on shutdown. The Follower itself is spent.
func (f *Follower) Promote() (*DB, *wal.Log, error) {
	f.Stop()
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil, nil, errors.New("emews: follower already promoted")
	}
	f.promoted = true
	db, l := f.db, f.log
	f.mu.Unlock()
	f.cl.Close()

	db.mu.Lock()
	// A replicated opDBClose marked the replica closed; promotion reopens
	// for business, mirroring OpenDB's crash-restart behavior.
	db.closed = false
	db.backend = l
	db.wal = l
	var running []int64
	for id, t := range db.tasks {
		if t.Status == StatusRunning {
			running = append(running, id)
		}
	}
	sort.Slice(running, func(i, j int) bool { return running[i] < running[j] })
	if len(running) > 0 {
		if _, err := db.commitLocked(&taskMutation{Op: opRequeue, IDs: running}); err != nil {
			db.mu.Unlock()
			return nil, nil, err
		}
		mTaskRecovered.Add(int64(len(running)))
	}
	// Settle futures of terminal tasks so Result/Done work immediately
	// (replication applies mutations without side effects, like replay).
	for id, t := range db.tasks {
		switch t.Status {
		case StatusComplete, StatusFailed, StatusCanceled:
			if fut := db.futures[id]; fut != nil {
				select {
				case <-fut.done:
				default:
					close(fut.done)
				}
			}
		}
	}
	queued, runningNow := db.stats.Queued, db.stats.Running
	db.mu.Unlock()
	// Re-arm additive occupancy gauges for the promoted population, the
	// same way OpenDB does for a recovered one.
	mQueueDepth.Add(int64(queued))
	mRunningNow.Add(int64(runningNow))
	return db, l, nil
}

// Close tears the follower down: stops the tail loop, closes the client,
// and (unless promoted, in which case the caller owns them) closes the
// replica log.
func (f *Follower) Close() {
	f.Stop()
	f.cl.Close()
	f.mu.Lock()
	l, promoted := f.log, f.promoted
	f.mu.Unlock()
	if l != nil && !promoted {
		l.Close()
	}
}

// dump is the replica's test/audit hook: the same sorted task copy as
// DB.Dump, fetched without promoting.
func (f *Follower) dump() []Task {
	f.mu.Lock()
	db := f.db
	f.mu.Unlock()
	return db.Dump()
}
