package emews

import (
	"context"
	"time"
)

// SetLeaseTimeout enables task leasing: a popped task that is neither
// completed nor failed within d is considered lost (its worker crashed or
// its node was reclaimed) and becomes eligible for ReapExpired. Zero
// disables leasing. Set this before workers start popping.
func (db *DB) SetLeaseTimeout(d time.Duration) {
	db.mu.Lock()
	db.leaseTimeout = d
	db.mu.Unlock()
}

// ReapExpired requeues every running task whose lease has expired,
// returning how many were reclaimed. Reclaimed tasks keep their attempt
// count; a task that has exhausted MaxAttempts fails instead of requeueing.
func (db *DB) ReapExpired() int {
	db.mu.Lock()
	if db.leaseTimeout <= 0 || db.closed {
		db.mu.Unlock()
		return 0
	}
	now := time.Now()
	type lost struct {
		id        int64
		exhausted bool
	}
	var expired []lost
	for _, t := range db.tasks {
		if t.Status != StatusRunning {
			continue
		}
		if now.Sub(t.Started) < db.leaseTimeout {
			continue
		}
		expired = append(expired, lost{id: t.ID, exhausted: t.Attempts >= t.MaxAttempts})
	}
	db.mu.Unlock()

	reclaimed := 0
	for _, l := range expired {
		// finish handles both paths: requeue (attempts remain) or
		// terminal failure (budget exhausted).
		if err := db.finish(l.id, StatusFailed, "", "lease expired (worker lost)"); err == nil {
			reclaimed++
		}
	}
	return reclaimed
}

// StartReaper runs ReapExpired every interval until ctx is canceled — the
// watchdog a long-lived deployment runs alongside its pools.
func (db *DB) StartReaper(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				db.ReapExpired()
			}
		}
	}()
}
