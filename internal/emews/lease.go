package emews

import (
	"context"
	"sync"
	"time"
)

// SetLeaseTimeout enables task leasing: a popped task that is neither
// completed nor failed within d is considered lost (its worker crashed or
// its node was reclaimed) and becomes eligible for ReapExpired. Zero
// disables leasing. Set this before workers start popping.
func (db *DB) SetLeaseTimeout(d time.Duration) {
	db.mu.Lock()
	db.leaseTimeout = d
	db.mu.Unlock()
}

// ReapExpired reclaims every running task whose lease has expired. A
// reclaimed task with retry budget left is requeued (counted in requeued);
// one that has exhausted MaxAttempts fails terminally (counted in failed).
// Reclaimed tasks keep their attempt count, and the reap is fenced on the
// attempt epoch observed during the scan: a task that was resolved or
// re-popped between the scan and the reclaim is left alone.
func (db *DB) ReapExpired() (requeued, failed int) {
	db.mu.Lock()
	if db.leaseTimeout <= 0 || db.closed {
		db.mu.Unlock()
		return 0, 0
	}
	now := time.Now()
	type lost struct {
		id    int64
		epoch int64
	}
	var expired []lost
	for _, t := range db.tasks {
		if t.Status != StatusRunning {
			continue
		}
		if now.Sub(t.Started) < db.leaseTimeout {
			continue
		}
		expired = append(expired, lost{id: t.ID, epoch: t.Epoch})
	}
	db.mu.Unlock()

	for _, l := range expired {
		// finish handles both paths: requeue (attempts remain) or
		// terminal failure (budget exhausted). The epoch fence makes the
		// reap a no-op if the attempt resolved or was superseded after
		// the scan above released the lock.
		req, err := db.finish(l.id, l.epoch, StatusFailed, "", "lease expired (worker lost)")
		if err != nil {
			continue
		}
		if req {
			requeued++
			mReaperRequeued.Inc()
		} else {
			failed++
			mReaperTerminal.Inc()
		}
	}
	return requeued, failed
}

// Reaper is the handle returned by StartReaper; it accumulates how many
// expired leases were requeued vs terminally failed.
type Reaper struct {
	mu       sync.Mutex
	requeued int
	failed   int
}

// Counts returns the cumulative number of lease expiries that led to a
// requeue and to a terminal failure since the reaper started.
func (r *Reaper) Counts() (requeued, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.requeued, r.failed
}

// StartReaper runs ReapExpired every interval until ctx is canceled — the
// watchdog a long-lived deployment runs alongside its pools. The returned
// Reaper exposes cumulative reclaim counts for monitoring.
func (db *DB) StartReaper(ctx context.Context, interval time.Duration) *Reaper {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Reaper{}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				req, failed := db.ReapExpired()
				if req != 0 || failed != 0 {
					r.mu.Lock()
					r.requeued += req
					r.failed += failed
					r.mu.Unlock()
				}
			}
		}
	}()
	return r
}
