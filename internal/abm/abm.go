// Package abm implements an individual-based (agent-based) epidemic model
// with household structure and random daily mixing — the "more expensive
// agent-based epidemiological models" whose time-to-solution the paper
// says would benefit most from MUSIC's sample efficiency (§3.3, citing the
// CityCOVID workflow of Ozik et al. 2021).
//
// Agents progress through the same disease states as MetaRVM (S, E, Ia,
// Ip, Is, H, R, D), so the two models are interchangeable GSA targets over
// the Table 1 parameter space: EvaluateGSA here is a drop-in replacement
// for metarvm.EvaluateGSA at roughly 10-50x the compute cost per run.
// Transmission happens along explicit contacts: all household members plus
// a Poisson number of random community contacts per day.
package abm

import (
	"errors"
	"fmt"
	"math"

	"osprey/internal/metarvm"
	"osprey/internal/rng"
)

// State is an agent's disease state, mirroring metarvm.Compartment.
type State uint8

const (
	Susceptible State = iota
	Exposed
	AsympInfectious
	PresympInfectious
	SympInfectious
	Hospitalized
	Recovered
	Dead
)

// Config specifies an agent-based simulation.
type Config struct {
	// Agents is the population size (default 20000).
	Agents int
	// MeanHousehold is the average household size (default 3).
	MeanHousehold float64
	// MeanCommunityContacts is the mean number of random daily contacts
	// per agent (default 4).
	MeanCommunityContacts float64
	// InitialInfected agents start presymptomatic (default 10).
	InitialInfected int
	Days            int // default 90, the paper's horizon
	// Params reuses the MetaRVM parameterization: TS drives per-contact
	// transmission, PEA/PSH/PHD the branching, D* the dwell times. TV and
	// vaccination are not modeled (no V state in this ABM).
	Params metarvm.Params
	Seed   uint64
}

func (c *Config) defaults() {
	if c.Agents <= 0 {
		c.Agents = 20000
	}
	if c.MeanHousehold <= 0 {
		c.MeanHousehold = 3
	}
	if c.MeanCommunityContacts < 0 {
		c.MeanCommunityContacts = 0
	}
	if c.MeanCommunityContacts == 0 {
		c.MeanCommunityContacts = 4
	}
	if c.InitialInfected <= 0 {
		c.InitialInfected = 10
	}
	if c.Days <= 0 {
		c.Days = 90
	}
}

// DayCount is one day's aggregate state.
type DayCount struct {
	Day                                int
	S, E, Ia, Ip, Is, H, R, D          int
	NewInfections, NewHospitalizations int
	// HouseholdInfections counts new infections acquired at home, the
	// quantity behind the household-structure ablation.
	HouseholdInfections int
}

// Result is a completed simulation.
type Result struct {
	Config              Config
	Days                []DayCount
	CumInfections       int
	CumHospitalizations int
	CumDeaths           int
	// HouseholdShare is the fraction of all infections acquired within
	// households.
	HouseholdShare float64
}

// Run simulates the model. Deterministic given Config.Seed.
func Run(cfg Config) (*Result, error) {
	(&cfg).defaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialInfected > cfg.Agents {
		return nil, errors.New("abm: more initial infections than agents")
	}
	r := rng.New(cfg.Seed)

	n := cfg.Agents
	state := make([]State, n)

	// Build households: sizes ~ 1 + Poisson(mean-1), assigned contiguously.
	household := make([]int32, n)
	var households [][]int32
	hs := r.Split("households")
	for i := 0; i < n; {
		size := 1 + hs.Poisson(cfg.MeanHousehold-1)
		if i+size > n {
			size = n - i
		}
		members := make([]int32, size)
		for k := 0; k < size; k++ {
			household[i+k] = int32(len(households))
			members[k] = int32(i + k)
		}
		households = append(households, members)
		i += size
	}

	// Seed infections.
	seedStream := r.Split("seeds")
	for _, idx := range seedStream.Perm(n)[:cfg.InitialInfected] {
		state[idx] = PresympInfectious
	}

	p := cfg.Params
	// Per-contact transmission probability. TS is a daily rate in the
	// compartmental model; here it is spread across the expected number
	// of daily contacts so the Table 1 range maps onto a comparable
	// epidemic intensity.
	meanContacts := cfg.MeanHousehold - 1 + cfg.MeanCommunityContacts
	pTransmit := 1 - math.Exp(-p.TS/math.Max(1, meanContacts))

	exitProb := func(d float64) float64 {
		if d <= 0 {
			return 0
		}
		return 1 - math.Exp(-1/d)
	}
	pE, pIa, pIp, pIs, pH := exitProb(p.DE), exitProb(p.DA), exitProb(p.DP), exitProb(p.DS), exitProb(p.DH)

	res := &Result{Config: cfg}
	dyn := r.Split("dynamics")
	totalHouseholdInf := 0

	count := func(day, newInf, newHosp, hhInf int) DayCount {
		var c DayCount
		c.Day = day
		for _, s := range state {
			switch s {
			case Susceptible:
				c.S++
			case Exposed:
				c.E++
			case AsympInfectious:
				c.Ia++
			case PresympInfectious:
				c.Ip++
			case SympInfectious:
				c.Is++
			case Hospitalized:
				c.H++
			case Recovered:
				c.R++
			case Dead:
				c.D++
			}
		}
		c.NewInfections = newInf
		c.NewHospitalizations = newHosp
		c.HouseholdInfections = hhInf
		return c
	}
	res.Days = append(res.Days, count(0, 0, 0, 0))

	newlyExposed := make([]int32, 0, 1024)
	for day := 1; day <= cfg.Days; day++ {
		newlyExposed = newlyExposed[:0]
		newHosp := 0
		hhInf := 0

		// Transmission from each infectious agent along its contacts.
		for i := 0; i < n; i++ {
			s := state[i]
			if s != AsympInfectious && s != PresympInfectious && s != SympInfectious {
				continue
			}
			// Household contacts: everyone at home, every day.
			for _, m := range households[household[i]] {
				if int(m) == i || state[m] != Susceptible {
					continue
				}
				if dyn.Float64() < pTransmit {
					state[m] = Exposed
					newlyExposed = append(newlyExposed, m)
					hhInf++
				}
			}
			// Community contacts: Poisson-many uniform random agents.
			// Hospitalized agents would be excluded, but they are not
			// infectious in this state machine anyway.
			k := dyn.Poisson(cfg.MeanCommunityContacts)
			for c := 0; c < k; c++ {
				j := dyn.Intn(n)
				if state[j] != Susceptible {
					continue
				}
				if dyn.Float64() < pTransmit {
					state[j] = Exposed
					newlyExposed = append(newlyExposed, int32(j))
				}
			}
		}
		// Exposed agents infected today must not progress today; mark
		// them so the progression pass skips them.
		justExposed := map[int32]bool{}
		for _, idx := range newlyExposed {
			justExposed[idx] = true
		}

		// Disease progression.
		for i := 0; i < n; i++ {
			switch state[i] {
			case Exposed:
				if justExposed[int32(i)] {
					continue
				}
				if dyn.Float64() < pE {
					if dyn.Float64() < p.PEA {
						state[i] = AsympInfectious
					} else {
						state[i] = PresympInfectious
					}
				}
			case AsympInfectious:
				if dyn.Float64() < pIa {
					state[i] = Recovered
				}
			case PresympInfectious:
				if dyn.Float64() < pIp {
					state[i] = SympInfectious
				}
			case SympInfectious:
				if dyn.Float64() < pIs {
					if dyn.Float64() < p.PSH {
						state[i] = Hospitalized
						newHosp++
					} else {
						state[i] = Recovered
					}
				}
			case Hospitalized:
				if dyn.Float64() < pH {
					if dyn.Float64() < p.PHD {
						state[i] = Dead
					} else {
						state[i] = Recovered
					}
				}
			}
		}

		res.CumInfections += len(newlyExposed)
		res.CumHospitalizations += newHosp
		res.CumDeaths = 0 // recomputed from the absorbing count below
		totalHouseholdInf += hhInf
		dc := count(day, len(newlyExposed), newHosp, hhInf)
		res.CumDeaths = dc.D
		res.Days = append(res.Days, dc)
	}
	if res.CumInfections > 0 {
		res.HouseholdShare = float64(totalHouseholdInf) / float64(res.CumInfections)
	}
	return res, nil
}

// EvaluateGSA evaluates the Table 1 point on the agent-based model and
// returns cumulative hospitalizations at day 90 — the drop-in expensive
// counterpart of metarvm.EvaluateGSA.
func EvaluateGSA(x []float64, seed uint64) (float64, error) {
	if len(x) != 5 {
		return 0, fmt.Errorf("abm: GSA point must have 5 coordinates, got %d", len(x))
	}
	cfg := Config{Seed: seed}
	params, err := metarvm.ApplyGSAPoint(metarvm.NominalParams(), x)
	if err != nil {
		return 0, err
	}
	cfg.Params = params
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return float64(res.CumHospitalizations), nil
}
