package abm

import (
	"testing"

	"osprey/internal/metarvm"
)

func baseConfig(seed uint64) Config {
	return Config{Agents: 8000, InitialInfected: 20, Days: 90,
		Params: metarvm.NominalParams(), Seed: seed}
}

func TestPopulationConservation(t *testing.T) {
	res, err := Run(baseConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Days {
		total := d.S + d.E + d.Ia + d.Ip + d.Is + d.H + d.R + d.D
		if total != 8000 {
			t.Fatalf("day %d population %d != 8000", d.Day, total)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, err := Run(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.CumInfections != b.CumInfections || a.CumHospitalizations != b.CumHospitalizations {
		t.Fatal("same-seed ABM runs differ")
	}
	c, err := Run(baseConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.CumInfections == a.CumInfections {
		t.Log("warning: two seeds matched exactly (possible but unlikely)")
	}
}

func TestTransmissionMonotonicity(t *testing.T) {
	lo := baseConfig(3)
	lo.Params.TS = 0.15
	hi := baseConfig(3)
	hi.Params.TS = 0.8
	rLo, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if rHi.CumInfections <= rLo.CumInfections {
		t.Fatalf("higher TS infected fewer agents: %d vs %d", rHi.CumInfections, rLo.CumInfections)
	}
}

func TestHouseholdTransmissionMatters(t *testing.T) {
	// With households of mean size 3, a meaningful share of infections
	// happens at home; shrinking households to singletons removes it.
	withHH := baseConfig(4)
	withHH.Params.TS = 0.6
	r1, err := Run(withHH)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HouseholdShare < 0.1 {
		t.Fatalf("household share %v implausibly small", r1.HouseholdShare)
	}
	solo := withHH
	solo.MeanHousehold = 1.0001 // all singleton households
	r2, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	if r2.HouseholdShare > r1.HouseholdShare/2 {
		t.Fatalf("singleton households still show share %v (with: %v)", r2.HouseholdShare, r1.HouseholdShare)
	}
}

func TestNewlyExposedDoNotProgressSameDay(t *testing.T) {
	// With a 1-day latent period, same-day progression would let an agent
	// be infected and infectious within one step; the E count on the day
	// of a large seed must stay visible.
	cfg := baseConfig(5)
	cfg.Params.DE = 1
	cfg.Params.TS = 0.9
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Structural check: infections only ever come from infectious states,
	// so day 1 new infections are bounded by seeds × contacts.
	if res.Days[1].NewInfections > 20*30 {
		t.Fatalf("day-1 infections %d exceed what 20 seeds can produce", res.Days[1].NewInfections)
	}
}

func TestValidation(t *testing.T) {
	cfg := baseConfig(1)
	cfg.InitialInfected = 10 * cfg.Agents
	if _, err := Run(cfg); err == nil {
		t.Fatal("overfull seeding accepted")
	}
	bad := baseConfig(1)
	bad.Params.PEA = 2
	if _, err := Run(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestEvaluateGSAMatchesSpace(t *testing.T) {
	space := metarvm.GSAParameterSpace()
	x := space.Scale([]float64{0.6, 0.5, 0.5, 0.5, 0.5})
	y, err := EvaluateGSA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y < 0 || y > 20000 {
		t.Fatalf("QoI %v out of range for 20k agents", y)
	}
	if _, err := EvaluateGSA([]float64{1, 2}, 3); err == nil {
		t.Fatal("short point accepted")
	}
	// Deterministic per seed.
	y2, _ := EvaluateGSA(x, 3)
	if y != y2 {
		t.Fatal("ABM GSA evaluation not deterministic")
	}
}

func TestABMAndMetaRVMAgreeOnDominantParameter(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The two models share the parameterization; a crude 2-point contrast
	// on ts must point the same direction in both.
	space := metarvm.GSAParameterSpace()
	lo := space.Scale([]float64{0.15, 0.5, 0.5, 0.5, 0.5})
	hi := space.Scale([]float64{0.85, 0.5, 0.5, 0.5, 0.5})
	abmLo, _ := EvaluateGSA(lo, 5)
	abmHi, _ := EvaluateGSA(hi, 5)
	rvmLo, _ := metarvm.EvaluateGSA(lo, 5)
	rvmHi, _ := metarvm.EvaluateGSA(hi, 5)
	if (abmHi > abmLo) != (rvmHi > rvmLo) {
		t.Fatalf("models disagree on ts direction: abm %v->%v, metarvm %v->%v",
			abmLo, abmHi, rvmLo, rvmHi)
	}
}

func BenchmarkABMRun(b *testing.B) {
	cfg := Config{Params: metarvm.NominalParams()}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
