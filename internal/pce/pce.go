// Package pce implements polynomial chaos expansion surrogates with
// orthonormal (shifted) Legendre bases for uniform inputs on the unit cube.
// PCE is the one-shot baseline the paper compares MUSIC against (§3.3,
// Figure 4): a single experimental design is fit by regression and Sobol
// sensitivity indices are read directly off the squared coefficients.
package pce

import (
	"errors"
	"math"

	"osprey/internal/linalg"
)

// MultiIndex is one exponent tuple of a multivariate polynomial term.
type MultiIndex []int

// TotalDegreeIndices enumerates all multi-indices of dimension d with total
// degree <= p, in graded lexicographic order (constant term first).
func TotalDegreeIndices(d, p int) []MultiIndex {
	if d <= 0 || p < 0 {
		panic("pce: TotalDegreeIndices requires d > 0 and p >= 0")
	}
	var out []MultiIndex
	for deg := 0; deg <= p; deg++ {
		var rec func(prefix []int, remaining, dims int)
		rec = func(prefix []int, remaining, dims int) {
			if dims == 1 {
				idx := make(MultiIndex, 0, d)
				idx = append(idx, prefix...)
				idx = append(idx, remaining)
				out = append(out, idx)
				return
			}
			for v := remaining; v >= 0; v-- {
				rec(append(prefix, v), remaining-v, dims-1)
			}
		}
		rec(nil, deg, d)
	}
	return out
}

// legendreOrthonormal evaluates the degree-n orthonormal Legendre polynomial
// for the uniform measure on [0,1] at u. Orthonormality means
// E[phi_m(U) phi_n(U)] = delta_mn for U ~ Uniform(0,1), so PCE coefficients
// are directly variance contributions.
func legendreOrthonormal(n int, u float64) float64 {
	x := 2*u - 1 // shift to [-1,1]
	var pPrev, p float64 = 1, x
	switch n {
	case 0:
		return 1
	case 1:
		return math.Sqrt(3) * x
	}
	for k := 1; k < n; k++ {
		pNext := (float64(2*k+1)*x*p - float64(k)*pPrev) / float64(k+1)
		pPrev, p = p, pNext
	}
	return math.Sqrt(float64(2*n+1)) * p
}

// Model is a fitted polynomial chaos expansion.
type Model struct {
	Dim     int
	Degree  int
	Indices []MultiIndex
	Coef    []float64
	// Ridge is the Tikhonov regularization used during fitting.
	Ridge float64
}

// ErrUnderdetermined is returned when there are fewer samples than basis
// terms and no ridge regularization to compensate.
var ErrUnderdetermined = errors.New("pce: fewer samples than basis terms (set Ridge > 0 or add samples)")

// Options configures Fit.
type Options struct {
	Degree int     // total polynomial degree (default 3, matching the paper)
	Ridge  float64 // optional Tikhonov regularization
}

// Fit builds a degree-p PCE from unit-cube inputs x and responses y by
// (optionally ridge-) regularized least squares.
func Fit(x [][]float64, y []float64, opts Options) (*Model, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, errors.New("pce: empty or mismatched training data")
	}
	d := len(x[0])
	p := opts.Degree
	if p <= 0 {
		p = 3
	}
	idx := TotalDegreeIndices(d, p)
	if n < len(idx) && opts.Ridge <= 0 {
		return nil, ErrUnderdetermined
	}
	phi := linalg.NewDense(n, len(idx))
	for i, xi := range x {
		if len(xi) != d {
			return nil, errors.New("pce: ragged input points")
		}
		row := phi.Row(i)
		for j, mi := range idx {
			row[j] = evalBasis(mi, xi)
		}
	}
	coef, err := linalg.RidgeLeastSquares(phi, y, opts.Ridge)
	if err != nil {
		return nil, err
	}
	return &Model{Dim: d, Degree: p, Indices: idx, Coef: coef, Ridge: opts.Ridge}, nil
}

func evalBasis(mi MultiIndex, x []float64) float64 {
	v := 1.0
	for j, deg := range mi {
		if deg > 0 {
			v *= legendreOrthonormal(deg, x[j])
		}
	}
	return v
}

// Predict evaluates the expansion at a unit-cube point.
func (m *Model) Predict(x []float64) float64 {
	if len(x) != m.Dim {
		panic("pce: Predict dimension mismatch")
	}
	s := 0.0
	for j, mi := range m.Indices {
		s += m.Coef[j] * evalBasis(mi, x)
	}
	return s
}

// Mean returns the expansion's mean (the constant coefficient, by
// orthonormality).
func (m *Model) Mean() float64 { return m.Coef[0] }

// Variance returns the total variance of the expansion.
func (m *Model) Variance() float64 {
	v := 0.0
	for j := 1; j < len(m.Coef); j++ {
		v += m.Coef[j] * m.Coef[j]
	}
	return v
}

// FirstOrderIndices returns the first-order Sobol indices S_i: the variance
// carried by terms involving only input i, divided by total variance.
func (m *Model) FirstOrderIndices() []float64 {
	v := m.Variance()
	out := make([]float64, m.Dim)
	if v <= 0 {
		return out
	}
	for j := 1; j < len(m.Coef); j++ {
		mi := m.Indices[j]
		active := -1
		pure := true
		for dim, deg := range mi {
			if deg > 0 {
				if active >= 0 {
					pure = false
					break
				}
				active = dim
			}
		}
		if pure && active >= 0 {
			out[active] += m.Coef[j] * m.Coef[j]
		}
	}
	for i := range out {
		out[i] /= v
	}
	return out
}

// TotalIndices returns the total-order Sobol indices ST_i: the variance of
// every term involving input i at all, divided by total variance.
func (m *Model) TotalIndices() []float64 {
	v := m.Variance()
	out := make([]float64, m.Dim)
	if v <= 0 {
		return out
	}
	for j := 1; j < len(m.Coef); j++ {
		c2 := m.Coef[j] * m.Coef[j]
		for dim, deg := range m.Indices[j] {
			if deg > 0 {
				out[dim] += c2
			}
		}
	}
	for i := range out {
		out[i] /= v
	}
	return out
}

// NumTerms returns the number of basis terms.
func (m *Model) NumTerms() int { return len(m.Indices) }
