package pce

import (
	"math"
	"testing"

	"osprey/internal/design"
	"osprey/internal/rng"
)

func TestTotalDegreeIndicesCount(t *testing.T) {
	// C(d+p, p) terms for total degree <= p.
	cases := []struct{ d, p, want int }{
		{1, 3, 4}, {2, 2, 6}, {5, 3, 56}, {3, 0, 1},
	}
	for _, c := range cases {
		got := len(TotalDegreeIndices(c.d, c.p))
		if got != c.want {
			t.Fatalf("indices(d=%d,p=%d) = %d, want %d", c.d, c.p, got, c.want)
		}
	}
}

func TestTotalDegreeIndicesValid(t *testing.T) {
	for _, mi := range TotalDegreeIndices(4, 3) {
		sum := 0
		for _, v := range mi {
			if v < 0 {
				t.Fatal("negative exponent")
			}
			sum += v
		}
		if sum > 3 {
			t.Fatalf("total degree %d > 3", sum)
		}
		if len(mi) != 4 {
			t.Fatal("wrong dimension")
		}
	}
}

func TestLegendreOrthonormality(t *testing.T) {
	// Check E[phi_m phi_n] = delta_mn by high-resolution quadrature.
	n := 200000
	for m := 0; m <= 4; m++ {
		for l := m; l <= 4; l++ {
			s := 0.0
			for i := 0; i < n; i++ {
				u := (float64(i) + 0.5) / float64(n)
				s += legendreOrthonormal(m, u) * legendreOrthonormal(l, u)
			}
			s /= float64(n)
			want := 0.0
			if m == l {
				want = 1
			}
			if math.Abs(s-want) > 1e-6 {
				t.Fatalf("E[phi_%d phi_%d] = %v, want %v", m, l, s, want)
			}
		}
	}
}

func TestFitRecoversPolynomial(t *testing.T) {
	// f(u,v) = 2 + 3u + u*v is exactly representable at degree 2.
	f := func(x []float64) float64 { return 2 + 3*x[0] + x[0]*x[1] }
	r := rng.New(1)
	x := design.LatinHypercube(r, 80, 2)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = f(p)
	}
	m, err := Fit(x, y, Options{Degree: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := []float64{r.Float64(), r.Float64()}
		if math.Abs(m.Predict(p)-f(p)) > 1e-8 {
			t.Fatalf("PCE fails to reproduce a quadratic at %v", p)
		}
	}
}

func TestMeanAndVarianceLinear(t *testing.T) {
	// f(u) = a + b*u with U~Uniform(0,1): mean a + b/2, variance b^2/12.
	a, b := 1.5, 4.0
	f := func(x []float64) float64 { return a + b*x[0] }
	r := rng.New(2)
	x := design.LatinHypercube(r, 50, 1)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = f(p)
	}
	m, err := Fit(x, y, Options{Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-(a+b/2)) > 1e-8 {
		t.Fatalf("mean = %v, want %v", m.Mean(), a+b/2)
	}
	if math.Abs(m.Variance()-b*b/12) > 1e-8 {
		t.Fatalf("variance = %v, want %v", m.Variance(), b*b/12)
	}
}

func TestFirstOrderIndicesAdditive(t *testing.T) {
	// f = c1*x1 + c2*x2 + c3*x3: S_i = c_i^2 / sum(c_j^2), no interactions.
	c := []float64{1, 2, 3}
	f := func(x []float64) float64 { return c[0]*x[0] + c[1]*x[1] + c[2]*x[2] }
	r := rng.New(3)
	x := design.LatinHypercube(r, 150, 3)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = f(p)
	}
	m, err := Fit(x, y, Options{Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := m.FirstOrderIndices()
	st := m.TotalIndices()
	denom := 1.0 + 4 + 9
	for i := range c {
		want := c[i] * c[i] / denom
		if math.Abs(s[i]-want) > 1e-6 {
			t.Fatalf("S_%d = %v, want %v", i, s[i], want)
		}
		if math.Abs(st[i]-want) > 1e-6 {
			t.Fatalf("ST_%d = %v, want %v (additive: ST=S)", i, st[i], want)
		}
	}
}

func TestInteractionShowsInTotalNotFirst(t *testing.T) {
	// f = (x1-0.5)*(x2-0.5): pure interaction — S_i ~ 0, ST_i ~ 1.
	f := func(x []float64) float64 { return (x[0] - 0.5) * (x[1] - 0.5) }
	r := rng.New(4)
	x := design.LatinHypercube(r, 120, 2)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = f(p)
	}
	m, err := Fit(x, y, Options{Degree: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := m.FirstOrderIndices()
	st := m.TotalIndices()
	for i := 0; i < 2; i++ {
		if s[i] > 0.01 {
			t.Fatalf("pure interaction leaked into S_%d = %v", i, s[i])
		}
		if st[i] < 0.99 {
			t.Fatalf("ST_%d = %v, want ~1", i, st[i])
		}
	}
}

func TestUnderdeterminedRejected(t *testing.T) {
	x := design.LatinHypercube(rng.New(5), 10, 5) // 56 terms at degree 3
	y := make([]float64, 10)
	if _, err := Fit(x, y, Options{Degree: 3}); err == nil {
		t.Fatal("underdetermined fit accepted without ridge")
	}
	// With ridge it should succeed.
	if _, err := Fit(x, y, Options{Degree: 3, Ridge: 1e-6}); err != nil {
		t.Fatalf("ridge fit failed: %v", err)
	}
}

func TestFitEmptyRejected(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("empty fit accepted")
	}
}

func TestDefaultDegreeIsThree(t *testing.T) {
	x := design.LatinHypercube(rng.New(6), 60, 2)
	y := make([]float64, len(x))
	m, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 3 {
		t.Fatalf("default degree = %d, want 3 (paper's choice)", m.Degree)
	}
}

func BenchmarkFitDegree3Dim5(b *testing.B) {
	r := rng.New(1)
	x := design.LatinHypercube(r, 200, 5)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0] + p[1]*p[2] + p[3]*p[3]*p[4]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Options{Degree: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
