package sobolidx

import (
	"math"
	"testing"

	"osprey/internal/rng"
)

// ishigami on the unit cube (inputs scaled to (-pi, pi)), the classic GSA
// benchmark with known analytic indices.
func ishigami(x []float64) float64 {
	const a, b = 7.0, 0.1
	x1 := -math.Pi + 2*math.Pi*x[0]
	x2 := -math.Pi + 2*math.Pi*x[1]
	x3 := -math.Pi + 2*math.Pi*x[2]
	return math.Sin(x1) + a*math.Sin(x2)*math.Sin(x2) + b*math.Pow(x3, 4)*math.Sin(x1)
}

func ishigamiTruth() (s []float64, st []float64, variance float64) {
	const a, b = 7.0, 0.1
	pi4 := math.Pow(math.Pi, 4)
	pi8 := pi4 * pi4
	v1 := 0.5 * math.Pow(1+b*pi4/5, 2)
	v2 := a * a / 8
	v13 := b * b * pi8 * (1.0/18 - 1.0/50)
	v := v1 + v2 + v13
	return []float64{v1 / v, v2 / v, 0},
		[]float64{(v1 + v13) / v, v2 / v, v13 / v}, v
}

func TestIshigamiQMC(t *testing.T) {
	res, err := Estimate(ishigami, 3, Options{N: 8192})
	if err != nil {
		t.Fatal(err)
	}
	s, st, v := ishigamiTruth()
	for i := range s {
		if math.Abs(res.First[i]-s[i]) > 0.02 {
			t.Fatalf("S_%d = %v, want %v", i, res.First[i], s[i])
		}
		if math.Abs(res.Total[i]-st[i]) > 0.02 {
			t.Fatalf("ST_%d = %v, want %v", i, res.Total[i], st[i])
		}
	}
	if math.Abs(res.Variance-v)/v > 0.02 {
		t.Fatalf("variance = %v, want %v", res.Variance, v)
	}
}

func TestIshigamiPseudoRandom(t *testing.T) {
	res, err := Estimate(ishigami, 3, Options{N: 20000, Rand: rng.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := ishigamiTruth()
	for i := range s {
		if math.Abs(res.First[i]-s[i]) > 0.05 {
			t.Fatalf("MC S_%d = %v, want %v", i, res.First[i], s[i])
		}
	}
}

func TestAdditiveIndicesSumToOne(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + 2*x[1] + 3*x[2] + 4*x[3] }
	res, err := Estimate(f, 4, Options{N: 4096, Clamp01: true})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.First {
		sum += v
	}
	if math.Abs(sum-1) > 0.02 {
		t.Fatalf("additive first-order indices sum to %v, want 1", sum)
	}
	want := []float64{1, 4, 9, 16}
	denom := 30.0
	for i := range want {
		if math.Abs(res.First[i]-want[i]/denom) > 0.02 {
			t.Fatalf("S_%d = %v, want %v", i, res.First[i], want[i]/denom)
		}
		// In an additive model total equals first-order.
		if math.Abs(res.Total[i]-res.First[i]) > 0.02 {
			t.Fatalf("ST_%d = %v differs from S_%d = %v in additive model", i, res.Total[i], i, res.First[i])
		}
	}
}

func TestInertInputHasZeroIndices(t *testing.T) {
	f := func(x []float64) float64 { return math.Exp(x[0]) } // x[1] unused
	res, err := Estimate(f, 2, Options{N: 4096, Clamp01: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.First[1] > 0.01 || res.Total[1] > 0.01 {
		t.Fatalf("inert input has indices S=%v ST=%v", res.First[1], res.Total[1])
	}
	if res.First[0] < 0.97 {
		t.Fatalf("active input S = %v, want ~1", res.First[0])
	}
}

func TestConstantFunction(t *testing.T) {
	res, err := Estimate(func(x []float64) float64 { return 42 }, 3, Options{N: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variance != 0 {
		t.Fatalf("constant function variance = %v", res.Variance)
	}
	for i, v := range res.First {
		if v != 0 || res.Total[i] != 0 {
			t.Fatal("constant function should have zero indices")
		}
	}
	if math.Abs(res.Mean-42) > 1e-12 {
		t.Fatalf("mean = %v", res.Mean)
	}
}

func TestTotalAtLeastFirst(t *testing.T) {
	// For any model, ST_i >= S_i (up to MC noise).
	f := func(x []float64) float64 {
		return x[0] + x[1]*x[2] + math.Sin(3*x[0]*x[3])
	}
	res, err := Estimate(f, 4, Options{N: 8192})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.First {
		if res.Total[i] < res.First[i]-0.02 {
			t.Fatalf("ST_%d=%v < S_%d=%v", i, res.Total[i], i, res.First[i])
		}
	}
}

func TestDimensionValidation(t *testing.T) {
	if _, err := Estimate(ishigami, 0, Options{}); err == nil {
		t.Fatal("d=0 accepted")
	}
	// 2d > 16 requires a pseudo-random stream.
	f := func(x []float64) float64 { return x[0] }
	if _, err := Estimate(f, 9, Options{N: 64}); err == nil {
		t.Fatal("9-dim QMC should be rejected")
	}
	if _, err := Estimate(f, 9, Options{N: 64, Rand: rng.New(1)}); err != nil {
		t.Fatalf("9-dim MC rejected: %v", err)
	}
}

func TestFirstOrderFromSurrogate(t *testing.T) {
	f := func(x []float64) float64 { return 5 * x[1] }
	s, err := FirstOrderFromSurrogate(f, 3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] < 0.97 || s[0] > 0.02 || s[2] > 0.02 {
		t.Fatalf("surrogate indices wrong: %v", s)
	}
	for _, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("clamped index out of range: %v", v)
		}
	}
}

func BenchmarkEstimateIshigami(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(ishigami, 3, Options{N: 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEstimateWithSEMatchesPointEstimate(t *testing.T) {
	res, err := EstimateWithSE(ishigami, 3, Options{N: 2048, Clamp01: true}, 100, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Estimate(ishigami, 3, Options{N: 2048, Clamp01: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.First {
		if math.Abs(res.First[i]-plain.First[i]) > 1e-12 {
			t.Fatalf("point estimate differs from Estimate: %v vs %v", res.First[i], plain.First[i])
		}
	}
	for i := range res.FirstSE {
		if res.FirstSE[i] <= 0 || res.TotalSE[i] <= 0 {
			t.Fatalf("non-positive SE at %d: %v / %v", i, res.FirstSE[i], res.TotalSE[i])
		}
	}
}

func TestBootstrapSEShrinksWithN(t *testing.T) {
	f := func(x []float64) float64 { return x[0] + 2*x[1] }
	small, err := EstimateWithSE(f, 2, Options{N: 256}, 150, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	large, err := EstimateWithSE(f, 2, Options{N: 4096}, 150, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if large.FirstSE[i] >= small.FirstSE[i] {
			t.Fatalf("SE did not shrink with N: %v (n=256) vs %v (n=4096)",
				small.FirstSE[i], large.FirstSE[i])
		}
	}
	// The SE should roughly cover the true estimation error.
	truth := []float64{1.0 / 5, 4.0 / 5}
	for i := range truth {
		errAbs := math.Abs(large.First[i] - truth[i])
		if errAbs > 6*large.FirstSE[i]+0.02 {
			t.Fatalf("error %v at %d far beyond reported SE %v", errAbs, i, large.FirstSE[i])
		}
	}
}
