package sobolidx

import (
	"math"
	"testing"

	"osprey/internal/parallel"
)

// TestConcurrentMatchesSerial checks that Options.Concurrent changes only
// wall-clock time: index estimates must be bit-identical to the serial
// evaluation path at any worker count.
func TestConcurrentMatchesSerial(t *testing.T) {
	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	serial, err := Estimate(ishigami, 3, Options{N: 2048, Clamp01: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		parallel.SetWorkers(workers)
		conc, err := Estimate(ishigami, 3, Options{N: 2048, Clamp01: true, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.First {
			if serial.First[i] != conc.First[i] || serial.Total[i] != conc.Total[i] {
				t.Fatalf("workers=%d dim %d: concurrent estimate %x/%x vs serial %x/%x",
					workers, i, conc.First[i], conc.Total[i], serial.First[i], serial.Total[i])
			}
		}
		if serial.Variance != conc.Variance {
			t.Fatalf("workers=%d: variances differ", workers)
		}
	}
}

// TestDesignEstimateMatchesFunc pins the split Design/Estimate API (used by
// MUSIC's cached surrogate path) to the closed-loop Estimate.
func TestDesignEstimateMatchesFunc(t *testing.T) {
	defer parallel.SetWorkers(0)
	d, n := 3, 1024
	ref, err := Estimate(ishigami, d, Options{N: n})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		parallel.SetWorkers(workers)
		dg, err := NewDesign(d, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		pts := dg.Points()
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = ishigami(p)
		}
		return dg.Estimate(vals, false)
	}
	for _, workers := range []int{1, 8} {
		res := run(workers)
		for i := 0; i < d; i++ {
			if res.First[i] != ref.First[i] || res.Total[i] != ref.Total[i] {
				t.Fatalf("workers=%d dim %d: design-path estimate differs from Estimate", workers, i)
			}
		}
		if math.IsNaN(res.Variance) || res.Variance != ref.Variance {
			t.Fatalf("workers=%d: design-path variance differs", workers)
		}
	}
}
