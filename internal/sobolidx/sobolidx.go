// Package sobolidx implements variance-based global sensitivity analysis:
// pick–freeze (Saltelli/Jansen) Monte Carlo estimators of first- and
// total-order Sobol' indices. The paper's GSA (§3.1) decomposes the variance
// of MetaRVM's end-of-simulation hospitalization count into per-parameter
// contributions; MUSIC estimates these indices on a Gaussian-process
// surrogate, which this package evaluates exactly the same way it would a
// raw simulator.
package sobolidx

import (
	"errors"
	"fmt"

	"osprey/internal/design"
	"osprey/internal/parallel"
	"osprey/internal/rng"
	"osprey/internal/stats"
)

// Func is a deterministic model (or surrogate posterior mean) on the unit
// cube.
type Func func(x []float64) float64

// Result holds estimated Sobol indices.
type Result struct {
	First    []float64 // first-order indices S_i
	Total    []float64 // total-order indices ST_i
	Mean     float64   // sample mean of the output
	Variance float64   // sample variance of the output
	N        int       // base sample size (model evaluated N*(d+2) times)
}

// Options configures Estimate.
type Options struct {
	// N is the base sample size (default 1024). The model is evaluated
	// N*(d+2) times.
	N int
	// Rand, when non-nil, switches from the default Sobol' quasi-random
	// design to pseudo-random sampling with the given stream.
	Rand *rng.Stream
	// Clamp01, when true, clips estimated indices into [0,1]; raw
	// estimators can stray slightly outside under sampling noise.
	Clamp01 bool
	// Concurrent evaluates the model over the pick–freeze design across the
	// worker pool. It defaults to false because Func closures are often not
	// safe for concurrent calls (e.g. they count invocations); enable it
	// only when f is. The estimates are bit-identical either way: every
	// evaluation lands in its own slot and the estimator reductions run
	// serially in row order.
	Concurrent bool
}

// Design is the Saltelli pick–freeze point set: base matrices A and B plus
// the d hybrid blocks ABi (A with column i replaced from B). Building it
// once and re-estimating over fresh model values is the fast path for
// workloads that evaluate the same design repeatedly — MUSIC re-scores one
// QMC design against its surrogate after every refit.
type Design struct {
	D, N int
	a, b [][]float64
	pts  [][]float64 // lazily materialized full point set
}

// NewDesign builds the pick–freeze design exactly as Estimate would:
// quasi-random (Sobol' sequence) when stream is nil, pseudo-random from the
// stream otherwise.
func NewDesign(d, n int, stream *rng.Stream) (*Design, error) {
	if d <= 0 {
		return nil, errors.New("sobolidx: dimension must be positive")
	}
	if n <= 0 {
		n = 1024
	}
	a := make([][]float64, n)
	b := make([][]float64, n)
	if stream != nil {
		copy(a, design.Uniform(stream, n, d))
		copy(b, design.Uniform(stream, n, d))
	} else {
		if 2*d > 16 {
			return nil, fmt.Errorf("sobolidx: %d dimensions exceed the QMC limit; provide Options.Rand", d)
		}
		seq := design.NewSobolSeq(2 * d)
		for i := 0; i < n; i++ {
			p := seq.Next()
			a[i] = p[:d:d]
			b[i] = p[d:]
		}
	}
	return &Design{D: d, N: n, a: a, b: b}, nil
}

// block materializes hybrid block ABi: A with column i taken from B.
func (dg *Design) block(i int) [][]float64 {
	out := make([][]float64, dg.N)
	for j := 0; j < dg.N; j++ {
		p := append([]float64(nil), dg.a[j]...)
		p[i] = dg.b[j][i]
		out[j] = p
	}
	return out
}

// Points returns the full design as a flat point list in the order
// [A rows, B rows, AB_0 rows, …, AB_{d-1} rows] — N*(D+2) points total,
// matching the values layout Design.Estimate expects. The slice is built
// once and cached; callers must not mutate it.
func (dg *Design) Points() [][]float64 {
	if dg.pts != nil {
		return dg.pts
	}
	pts := make([][]float64, 0, dg.N*(dg.D+2))
	pts = append(pts, dg.a...)
	pts = append(pts, dg.b...)
	for i := 0; i < dg.D; i++ {
		pts = append(pts, dg.block(i)...)
	}
	dg.pts = pts
	return pts
}

// Estimate computes the Saltelli-2010 first-order and Jansen total-order
// indices from model values evaluated at Points() (same layout). The
// arithmetic — loop structure and reduction order included — is identical to
// the function-driven Estimate, so a surrogate scored through a kernel cache
// reproduces it bit-for-bit.
func (dg *Design) Estimate(values []float64, clamp bool) Result {
	n, d := dg.N, dg.D
	if len(values) != n*(d+2) {
		panic("sobolidx: Design.Estimate values length mismatch")
	}
	fa := values[:n]
	fb := values[n : 2*n]

	mean := 0.0
	for i := 0; i < n; i++ {
		mean += fa[i] + fb[i]
	}
	mean /= float64(2 * n)
	variance := 0.0
	for i := 0; i < n; i++ {
		da := fa[i] - mean
		db := fb[i] - mean
		variance += da*da + db*db
	}
	variance /= float64(2*n - 1)

	res := Result{
		First:    make([]float64, d),
		Total:    make([]float64, d),
		Mean:     mean,
		Variance: variance,
		N:        n,
	}
	if variance <= 0 {
		return res
	}
	for i := 0; i < d; i++ {
		fabi := values[(2+i)*n : (3+i)*n]
		vi := 0.0
		vti := 0.0
		for j := 0; j < n; j++ {
			vi += fb[j] * (fabi[j] - fa[j])
			dt := fa[j] - fabi[j]
			vti += dt * dt
		}
		res.First[i] = vi / float64(n) / variance
		res.Total[i] = vti / float64(2*n) / variance
		if clamp {
			res.First[i] = clamp01(res.First[i])
			res.Total[i] = clamp01(res.Total[i])
		}
	}
	return res
}

// evalInto evaluates f at every point, serially or across the worker pool.
// Each value lands in its own slot, so the output is independent of the
// evaluation schedule.
func evalInto(f Func, pts [][]float64, out []float64, concurrent bool) {
	if !concurrent {
		for i, p := range pts {
			out[i] = f(p)
		}
		return
	}
	parallel.ForChunk(len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(pts[i])
		}
	})
}

// Estimate computes first- and total-order Sobol indices of f over the unit
// cube in d dimensions using the Saltelli pick–freeze design with the
// Saltelli-2010 first-order estimator and the Jansen total-order estimator.
func Estimate(f Func, d int, opts Options) (Result, error) {
	dg, err := NewDesign(d, opts.N, opts.Rand)
	if err != nil {
		return Result{}, err
	}
	n := dg.N

	fa := make([]float64, n)
	fb := make([]float64, n)
	evalInto(f, dg.a, fa, opts.Concurrent)
	evalInto(f, dg.b, fb, opts.Concurrent)

	// Mean and variance from the pooled A and B evaluations.
	mean := 0.0
	for i := 0; i < n; i++ {
		mean += fa[i] + fb[i]
	}
	mean /= float64(2 * n)
	variance := 0.0
	for i := 0; i < n; i++ {
		da := fa[i] - mean
		db := fb[i] - mean
		variance += da*da + db*db
	}
	variance /= float64(2*n - 1)

	res := Result{
		First:    make([]float64, d),
		Total:    make([]float64, d),
		Mean:     mean,
		Variance: variance,
		N:        n,
	}
	if variance <= 0 {
		// Degenerate output: skip the d*n hybrid-block evaluations, as the
		// serial estimator always has.
		return res, nil
	}

	fabi := make([]float64, n)
	for i := 0; i < d; i++ {
		evalInto(f, dg.block(i), fabi, opts.Concurrent)
		// Saltelli 2010 first-order: V_i = mean(fB * (fABi - fA)).
		vi := 0.0
		// Jansen total-order: VT_i = mean((fA - fABi)^2) / 2.
		vti := 0.0
		for j := 0; j < n; j++ {
			vi += fb[j] * (fabi[j] - fa[j])
			dt := fa[j] - fabi[j]
			vti += dt * dt
		}
		res.First[i] = vi / float64(n) / variance
		res.Total[i] = vti / float64(2*n) / variance
		if opts.Clamp01 {
			res.First[i] = clamp01(res.First[i])
			res.Total[i] = clamp01(res.Total[i])
		}
	}
	return res, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// FirstOrderFromSurrogate is a convenience wrapper estimating first-order
// indices from a surrogate's posterior-mean predictor, matching the MUSIC
// algorithm's inner index evaluation. It uses the quasi-random design with
// the given base sample size.
func FirstOrderFromSurrogate(predict Func, d, n int) ([]float64, error) {
	res, err := Estimate(predict, d, Options{N: n, Clamp01: true})
	if err != nil {
		return nil, err
	}
	return res.First, nil
}

// ResultWithSE augments Result with bootstrap standard errors per index —
// the uncertainty MUSIC's acquisition is named for (Minimize Uncertainty
// in Sobol Index Convergence).
type ResultWithSE struct {
	Result
	FirstSE []float64
	TotalSE []float64
}

// EstimateWithSE computes indices plus bootstrap standard errors by
// resampling the pick–freeze rows with replacement nBoot times (default
// 200). The model is evaluated exactly as in Estimate — the bootstrap
// reuses the stored evaluations, so it adds no model runs.
func EstimateWithSE(f Func, d int, opts Options, nBoot int, boot *rng.Stream) (*ResultWithSE, error) {
	if nBoot <= 0 {
		nBoot = 200
	}
	if boot == nil {
		boot = rng.New(1).Split("sobol-bootstrap")
	}
	// Re-run the pick–freeze design, caching all evaluations.
	dg, err := NewDesign(d, opts.N, opts.Rand)
	if err != nil {
		return nil, err
	}
	n := dg.N
	opts.N = n
	fa := make([]float64, n)
	fb := make([]float64, n)
	evalInto(f, dg.a, fa, opts.Concurrent)
	evalInto(f, dg.b, fb, opts.Concurrent)
	fabi := make([][]float64, d)
	for i := 0; i < d; i++ {
		fabi[i] = make([]float64, n)
		evalInto(f, dg.block(i), fabi[i], opts.Concurrent)
	}

	// Estimators over an index subset (identity = the point estimate).
	compute := func(rows []int) ([]float64, []float64, float64, float64) {
		mean := 0.0
		for _, j := range rows {
			mean += fa[j] + fb[j]
		}
		mean /= float64(2 * len(rows))
		variance := 0.0
		for _, j := range rows {
			da := fa[j] - mean
			db := fb[j] - mean
			variance += da*da + db*db
		}
		variance /= float64(2*len(rows) - 1)
		first := make([]float64, d)
		total := make([]float64, d)
		if variance <= 0 {
			return first, total, mean, variance
		}
		for i := 0; i < d; i++ {
			vi, vti := 0.0, 0.0
			for _, j := range rows {
				vi += fb[j] * (fabi[i][j] - fa[j])
				dt := fa[j] - fabi[i][j]
				vti += dt * dt
			}
			first[i] = vi / float64(len(rows)) / variance
			total[i] = vti / float64(2*len(rows)) / variance
			if opts.Clamp01 {
				first[i] = clamp01(first[i])
				total[i] = clamp01(total[i])
			}
		}
		return first, total, mean, variance
	}

	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	first, total, mean, variance := compute(identity)
	out := &ResultWithSE{
		Result:  Result{First: first, Total: total, Mean: mean, Variance: variance, N: n},
		FirstSE: make([]float64, d),
		TotalSE: make([]float64, d),
	}

	// Bootstrap.
	bootFirst := make([][]float64, d)
	bootTotal := make([][]float64, d)
	for i := 0; i < d; i++ {
		bootFirst[i] = make([]float64, nBoot)
		bootTotal[i] = make([]float64, nBoot)
	}
	rows := make([]int, n)
	for rep := 0; rep < nBoot; rep++ {
		for j := range rows {
			rows[j] = boot.Intn(n)
		}
		bf, bt, _, _ := compute(rows)
		for i := 0; i < d; i++ {
			bootFirst[i][rep] = bf[i]
			bootTotal[i][rep] = bt[i]
		}
	}
	for i := 0; i < d; i++ {
		out.FirstSE[i] = stats.StdDev(bootFirst[i])
		out.TotalSE[i] = stats.StdDev(bootTotal[i])
	}
	return out, nil
}
