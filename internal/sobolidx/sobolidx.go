// Package sobolidx implements variance-based global sensitivity analysis:
// pick–freeze (Saltelli/Jansen) Monte Carlo estimators of first- and
// total-order Sobol' indices. The paper's GSA (§3.1) decomposes the variance
// of MetaRVM's end-of-simulation hospitalization count into per-parameter
// contributions; MUSIC estimates these indices on a Gaussian-process
// surrogate, which this package evaluates exactly the same way it would a
// raw simulator.
package sobolidx

import (
	"errors"
	"fmt"

	"osprey/internal/design"
	"osprey/internal/rng"
	"osprey/internal/stats"
)

// Func is a deterministic model (or surrogate posterior mean) on the unit
// cube.
type Func func(x []float64) float64

// Result holds estimated Sobol indices.
type Result struct {
	First    []float64 // first-order indices S_i
	Total    []float64 // total-order indices ST_i
	Mean     float64   // sample mean of the output
	Variance float64   // sample variance of the output
	N        int       // base sample size (model evaluated N*(d+2) times)
}

// Options configures Estimate.
type Options struct {
	// N is the base sample size (default 1024). The model is evaluated
	// N*(d+2) times.
	N int
	// Rand, when non-nil, switches from the default Sobol' quasi-random
	// design to pseudo-random sampling with the given stream.
	Rand *rng.Stream
	// Clamp01, when true, clips estimated indices into [0,1]; raw
	// estimators can stray slightly outside under sampling noise.
	Clamp01 bool
}

// Estimate computes first- and total-order Sobol indices of f over the unit
// cube in d dimensions using the Saltelli pick–freeze design with the
// Saltelli-2010 first-order estimator and the Jansen total-order estimator.
func Estimate(f Func, d int, opts Options) (Result, error) {
	if d <= 0 {
		return Result{}, errors.New("sobolidx: dimension must be positive")
	}
	n := opts.N
	if n <= 0 {
		n = 1024
	}

	// Build the A and B base matrices.
	a := make([][]float64, n)
	b := make([][]float64, n)
	if opts.Rand != nil {
		ua := design.Uniform(opts.Rand, n, d)
		ub := design.Uniform(opts.Rand, n, d)
		copy(a, ua)
		copy(b, ub)
	} else {
		if 2*d > 16 {
			return Result{}, fmt.Errorf("sobolidx: %d dimensions exceed the QMC limit; provide Options.Rand", d)
		}
		seq := design.NewSobolSeq(2 * d)
		for i := 0; i < n; i++ {
			p := seq.Next()
			a[i] = p[:d:d]
			b[i] = p[d:]
		}
	}

	fa := make([]float64, n)
	fb := make([]float64, n)
	for i := 0; i < n; i++ {
		fa[i] = f(a[i])
		fb[i] = f(b[i])
	}

	// Mean and variance from the pooled A and B evaluations.
	mean := 0.0
	for i := 0; i < n; i++ {
		mean += fa[i] + fb[i]
	}
	mean /= float64(2 * n)
	variance := 0.0
	for i := 0; i < n; i++ {
		da := fa[i] - mean
		db := fb[i] - mean
		variance += da*da + db*db
	}
	variance /= float64(2*n - 1)

	res := Result{
		First:    make([]float64, d),
		Total:    make([]float64, d),
		Mean:     mean,
		Variance: variance,
		N:        n,
	}
	if variance <= 0 {
		return res, nil
	}

	abi := make([]float64, d) // scratch point
	fabi := make([]float64, n)
	for i := 0; i < d; i++ {
		for j := 0; j < n; j++ {
			copy(abi, a[j])
			abi[i] = b[j][i]
			fabi[j] = f(abi)
		}
		// Saltelli 2010 first-order: V_i = mean(fB * (fABi - fA)).
		vi := 0.0
		// Jansen total-order: VT_i = mean((fA - fABi)^2) / 2.
		vti := 0.0
		for j := 0; j < n; j++ {
			vi += fb[j] * (fabi[j] - fa[j])
			dt := fa[j] - fabi[j]
			vti += dt * dt
		}
		res.First[i] = vi / float64(n) / variance
		res.Total[i] = vti / float64(2*n) / variance
		if opts.Clamp01 {
			res.First[i] = clamp01(res.First[i])
			res.Total[i] = clamp01(res.Total[i])
		}
	}
	return res, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// FirstOrderFromSurrogate is a convenience wrapper estimating first-order
// indices from a surrogate's posterior-mean predictor, matching the MUSIC
// algorithm's inner index evaluation. It uses the quasi-random design with
// the given base sample size.
func FirstOrderFromSurrogate(predict Func, d, n int) ([]float64, error) {
	res, err := Estimate(predict, d, Options{N: n, Clamp01: true})
	if err != nil {
		return nil, err
	}
	return res.First, nil
}

// ResultWithSE augments Result with bootstrap standard errors per index —
// the uncertainty MUSIC's acquisition is named for (Minimize Uncertainty
// in Sobol Index Convergence).
type ResultWithSE struct {
	Result
	FirstSE []float64
	TotalSE []float64
}

// EstimateWithSE computes indices plus bootstrap standard errors by
// resampling the pick–freeze rows with replacement nBoot times (default
// 200). The model is evaluated exactly as in Estimate — the bootstrap
// reuses the stored evaluations, so it adds no model runs.
func EstimateWithSE(f Func, d int, opts Options, nBoot int, boot *rng.Stream) (*ResultWithSE, error) {
	if nBoot <= 0 {
		nBoot = 200
	}
	if boot == nil {
		boot = rng.New(1).Split("sobol-bootstrap")
	}
	n := opts.N
	if n <= 0 {
		n = 1024
	}
	opts.N = n

	// Re-run the pick–freeze design, caching all evaluations.
	a := make([][]float64, n)
	b := make([][]float64, n)
	if opts.Rand != nil {
		copy(a, design.Uniform(opts.Rand, n, d))
		copy(b, design.Uniform(opts.Rand, n, d))
	} else {
		if 2*d > 16 {
			return nil, fmt.Errorf("sobolidx: %d dimensions exceed the QMC limit; provide Options.Rand", d)
		}
		seq := design.NewSobolSeq(2 * d)
		for i := 0; i < n; i++ {
			p := seq.Next()
			a[i] = p[:d:d]
			b[i] = p[d:]
		}
	}
	fa := make([]float64, n)
	fb := make([]float64, n)
	for i := 0; i < n; i++ {
		fa[i] = f(a[i])
		fb[i] = f(b[i])
	}
	fabi := make([][]float64, d)
	scratch := make([]float64, d)
	for i := 0; i < d; i++ {
		fabi[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			copy(scratch, a[j])
			scratch[i] = b[j][i]
			fabi[i][j] = f(scratch)
		}
	}

	// Estimators over an index subset (identity = the point estimate).
	compute := func(rows []int) ([]float64, []float64, float64, float64) {
		mean := 0.0
		for _, j := range rows {
			mean += fa[j] + fb[j]
		}
		mean /= float64(2 * len(rows))
		variance := 0.0
		for _, j := range rows {
			da := fa[j] - mean
			db := fb[j] - mean
			variance += da*da + db*db
		}
		variance /= float64(2*len(rows) - 1)
		first := make([]float64, d)
		total := make([]float64, d)
		if variance <= 0 {
			return first, total, mean, variance
		}
		for i := 0; i < d; i++ {
			vi, vti := 0.0, 0.0
			for _, j := range rows {
				vi += fb[j] * (fabi[i][j] - fa[j])
				dt := fa[j] - fabi[i][j]
				vti += dt * dt
			}
			first[i] = vi / float64(len(rows)) / variance
			total[i] = vti / float64(2*len(rows)) / variance
			if opts.Clamp01 {
				first[i] = clamp01(first[i])
				total[i] = clamp01(total[i])
			}
		}
		return first, total, mean, variance
	}

	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	first, total, mean, variance := compute(identity)
	out := &ResultWithSE{
		Result:  Result{First: first, Total: total, Mean: mean, Variance: variance, N: n},
		FirstSE: make([]float64, d),
		TotalSE: make([]float64, d),
	}

	// Bootstrap.
	bootFirst := make([][]float64, d)
	bootTotal := make([][]float64, d)
	for i := 0; i < d; i++ {
		bootFirst[i] = make([]float64, nBoot)
		bootTotal[i] = make([]float64, nBoot)
	}
	rows := make([]int, n)
	for rep := 0; rep < nBoot; rep++ {
		for j := range rows {
			rows[j] = boot.Intn(n)
		}
		bf, bt, _, _ := compute(rows)
		for i := 0; i < d; i++ {
			bootFirst[i][rep] = bf[i]
			bootTotal[i][rep] = bt[i]
		}
	}
	for i := 0; i < d; i++ {
		out.FirstSE[i] = stats.StdDev(bootFirst[i])
		out.TotalSE[i] = stats.StdDev(bootTotal[i])
	}
	return out, nil
}
