package globus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"osprey/internal/scheduler"
)

// ComputeFunc is a registered function: payload in, result out. Registered
// functions are the unit of remote execution, as in Globus Compute (funcX).
type ComputeFunc func(ctx context.Context, payload []byte) ([]byte, error)

// Engine abstracts where a compute endpoint runs its tasks. The paper uses
// two configurations (§2.2): a login-node endpoint for cheap transform and
// aggregation steps, and a GlobusComputeEngine endpoint that queues a batch
// job so the expensive R(t) analysis runs on a compute node.
type Engine interface {
	// Execute runs fn(payload) under the engine's resource policy.
	Execute(ctx context.Context, fn ComputeFunc, payload []byte) ([]byte, error)
	// Describe names the engine for provenance records.
	Describe() string
}

// LoginNodeEngine executes immediately in-process (shared login node).
type LoginNodeEngine struct{}

// Execute runs the function inline.
func (LoginNodeEngine) Execute(ctx context.Context, fn ComputeFunc, payload []byte) ([]byte, error) {
	return fn(ctx, payload)
}

// Describe implements Engine.
func (LoginNodeEngine) Describe() string { return "login-node" }

// BatchEngine submits each task as a job to a simulated batch scheduler
// (the GlobusComputeEngine configuration).
type BatchEngine struct {
	Cluster  *scheduler.Cluster
	Nodes    int
	Walltime time.Duration
}

// Execute submits a one-task job and waits for it.
func (b BatchEngine) Execute(ctx context.Context, fn ComputeFunc, payload []byte) ([]byte, error) {
	if b.Cluster == nil {
		return nil, fmt.Errorf("globus: batch engine has no cluster")
	}
	var out []byte
	job, err := b.Cluster.Submit(scheduler.JobSpec{
		Name:     "globus-compute-task",
		Nodes:    b.Nodes,
		Walltime: b.Walltime,
		Run: func(jobCtx context.Context, alloc scheduler.Allocation) error {
			res, err := fn(jobCtx, payload)
			if err != nil {
				return err
			}
			out = res
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	select {
	case <-job.Done():
		return out, job.Err()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Describe implements Engine.
func (b BatchEngine) Describe() string {
	return fmt.Sprintf("batch-scheduler(nodes=%d)", b.Nodes)
}

// TaskStatus enumerates compute task states.
type TaskStatus int

const (
	TaskPending TaskStatus = iota
	TaskRunning
	TaskSucceeded
	TaskFailed
)

func (s TaskStatus) String() string {
	switch s {
	case TaskPending:
		return "pending"
	case TaskRunning:
		return "running"
	case TaskSucceeded:
		return "succeeded"
	case TaskFailed:
		return "failed"
	default:
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
}

// ComputeTask is a handle to an asynchronous function invocation.
type ComputeTask struct {
	ID       string
	Function string
	done     chan struct{}
	mu       sync.Mutex
	status   TaskStatus
	result   []byte
	err      error
}

// Status returns the task state.
func (t *ComputeTask) Status() TaskStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Result blocks until the task terminates and returns its output.
func (t *ComputeTask) Result() ([]byte, error) {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result, t.err
}

// ComputeEndpoint executes registered functions on its engine, guarded by
// compute-scoped tokens.
type ComputeEndpoint struct {
	Name   string
	engine Engine
	auth   *Auth

	mu    sync.RWMutex
	funcs map[string]ComputeFunc
	tasks map[string]*ComputeTask
}

// NewComputeEndpoint creates an endpoint running on the given engine.
func NewComputeEndpoint(name string, auth *Auth, engine Engine) *ComputeEndpoint {
	return &ComputeEndpoint{
		Name: name, engine: engine, auth: auth,
		funcs: map[string]ComputeFunc{},
		tasks: map[string]*ComputeTask{},
	}
}

// RegisterFunction stores fn and returns its function ID.
func (c *ComputeEndpoint) RegisterFunction(tokenID, name string, fn ComputeFunc) (string, error) {
	if _, err := c.auth.Validate(tokenID, ScopeCompute); err != nil {
		return "", err
	}
	if fn == nil {
		return "", fmt.Errorf("globus: nil function")
	}
	id := randomID("fn")
	c.mu.Lock()
	c.funcs[id] = fn
	c.mu.Unlock()
	_ = name // retained for API fidelity; IDs are the lookup key
	return id, nil
}

// Submit invokes a registered function asynchronously.
func (c *ComputeEndpoint) Submit(tokenID, funcID string, payload []byte) (*ComputeTask, error) {
	if _, err := c.auth.Validate(tokenID, ScopeCompute); err != nil {
		return nil, err
	}
	c.mu.RLock()
	fn, ok := c.funcs[funcID]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: function %s", ErrNotFound, funcID)
	}
	task := &ComputeTask{ID: randomID("task"), Function: funcID, done: make(chan struct{})}
	c.mu.Lock()
	c.tasks[task.ID] = task
	c.mu.Unlock()

	go func() {
		defer close(task.done)
		task.mu.Lock()
		task.status = TaskRunning
		task.mu.Unlock()
		res, err := c.engine.Execute(context.Background(), fn, payload)
		task.mu.Lock()
		defer task.mu.Unlock()
		if err != nil {
			task.status = TaskFailed
			task.err = err
			return
		}
		task.status = TaskSucceeded
		task.result = res
	}()
	return task, nil
}

// Call is the synchronous convenience wrapper: Submit then Result.
func (c *ComputeEndpoint) Call(tokenID, funcID string, payload []byte) ([]byte, error) {
	task, err := c.Submit(tokenID, funcID, payload)
	if err != nil {
		return nil, err
	}
	return task.Result()
}

// Task looks up a task by ID.
func (c *ComputeEndpoint) Task(id string) (*ComputeTask, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: task %s", ErrNotFound, id)
	}
	return t, nil
}

// EngineDescription reports the engine configuration for provenance.
func (c *ComputeEndpoint) EngineDescription() string { return c.engine.Describe() }
