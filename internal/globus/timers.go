package globus

import (
	"sync"
	"time"
)

// TimerService schedules periodic callbacks (the Globus Timers stand-in
// that drives AERO's daily polling of the wastewater feed). Timers can also
// be fired manually, which lets tests and simulations advance "daily" polls
// without waiting wall-clock time.
type TimerService struct {
	auth *Auth
	mu   sync.Mutex
	next int
	ts   map[int]*Timer
}

// NewTimerService creates the service.
func NewTimerService(auth *Auth) *TimerService {
	return &TimerService{auth: auth, ts: map[int]*Timer{}}
}

// Timer is a periodic trigger.
type Timer struct {
	ID       int
	Name     string
	Interval time.Duration

	mu       sync.Mutex
	callback func()
	stopped  bool
	stopCh   chan struct{}
	fires    int
}

// Schedule registers a callback to fire every interval. An interval of 0
// creates a manual-only timer (fired via Fire), which is how simulations
// model "daily" polls in compressed time.
func (s *TimerService) Schedule(tokenID, name string, interval time.Duration, callback func()) (*Timer, error) {
	if _, err := s.auth.Validate(tokenID, ScopeTimers); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.next++
	t := &Timer{ID: s.next, Name: name, Interval: interval, callback: callback, stopCh: make(chan struct{})}
	s.ts[t.ID] = t
	s.mu.Unlock()

	if interval > 0 {
		go func() {
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					t.Fire()
				case <-t.stopCh:
					return
				}
			}
		}()
	}
	return t, nil
}

// Fire invokes the callback synchronously (unless stopped).
func (t *Timer) Fire() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	cb := t.callback
	t.fires++
	t.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Stop permanently disables the timer.
func (t *Timer) Stop() {
	t.mu.Lock()
	if !t.stopped {
		t.stopped = true
		close(t.stopCh)
	}
	t.mu.Unlock()
}

// Fires reports how many times the timer has fired.
func (t *Timer) Fires() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fires
}

// StopAll stops every registered timer.
func (s *TimerService) StopAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.ts {
		t.Stop()
	}
}
