package globus

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func gatewayRig(t *testing.T) (*httptest.Server, *Auth, *Endpoint) {
	t.Helper()
	auth := NewAuth()
	ep := NewEndpoint("eagle")
	if err := ep.CreateCollection("shared", "alice"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPGateway(ep, auth))
	t.Cleanup(srv.Close)
	return srv, auth, ep
}

func TestGatewayRoundTrip(t *testing.T) {
	srv, auth, _ := gatewayRig(t)
	tok := auth.Issue("alice", 0, ScopeTransfer)
	rc := &RemoteCollection{BaseURL: srv.URL, Collection: "shared", TokenID: tok.ID}

	if err := rc.Put("reports/rt.csv", []byte("day,median\n1,1.2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := rc.Get("reports/rt.csv")
	if err != nil || !strings.HasPrefix(string(got), "day,median") {
		t.Fatalf("Get = %q, %v", got, err)
	}
	paths, err := rc.List("reports/")
	if err != nil || len(paths) != 1 || paths[0] != "reports/rt.csv" {
		t.Fatalf("List = %v, %v", paths, err)
	}
	sum, err := rc.Checksum("reports/rt.csv")
	if err != nil || len(sum) != 64 {
		t.Fatalf("Checksum = %q, %v", sum, err)
	}
	if err := rc.Delete("reports/rt.csv"); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Get("reports/rt.csv"); err == nil {
		t.Fatal("deleted file still readable")
	}
}

func TestGatewayEnforcesACL(t *testing.T) {
	srv, auth, ep := gatewayRig(t)
	owner := auth.Issue("alice", 0, ScopeTransfer)
	ownerRC := &RemoteCollection{BaseURL: srv.URL, Collection: "shared", TokenID: owner.ID}
	if err := ownerRC.Put("rt/ensemble.json", []byte("{}")); err != nil {
		t.Fatal(err)
	}

	// The stakeholder has a valid token but no grant yet.
	stakeholder := auth.Issue("public-health-dept", 0, ScopeTransfer)
	shRC := &RemoteCollection{BaseURL: srv.URL, Collection: "shared", TokenID: stakeholder.ID}
	if _, err := shRC.Get("rt/ensemble.json"); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("ungranted read should 403: %v", err)
	}
	// Owner grants read-only — the §2.2 sharing mechanism.
	if err := ep.SetPermission("shared", "alice", "public-health-dept", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := shRC.Get("rt/ensemble.json"); err != nil {
		t.Fatalf("granted read failed: %v", err)
	}
	// Read does not allow writes.
	if err := shRC.Put("rt/evil.json", []byte("x")); err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("read-only write should 403: %v", err)
	}
}

func TestGatewayRejectsBadTokens(t *testing.T) {
	srv, auth, _ := gatewayRig(t)
	// No token.
	rc := &RemoteCollection{BaseURL: srv.URL, Collection: "shared", TokenID: ""}
	if _, err := rc.Get("x"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("tokenless request should 401: %v", err)
	}
	// Wrong scope.
	tok := auth.Issue("alice", 0, ScopeCompute)
	rc2 := &RemoteCollection{BaseURL: srv.URL, Collection: "shared", TokenID: tok.ID}
	if _, err := rc2.Get("x"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("wrong-scope request should 401: %v", err)
	}
}

func TestGatewayUnknownRoutes(t *testing.T) {
	srv, auth, _ := gatewayRig(t)
	tok := auth.Issue("alice", 0, ScopeTransfer)
	rc := &RemoteCollection{BaseURL: srv.URL, Collection: "nope", TokenID: tok.ID}
	if _, err := rc.Get("x"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown collection should 404: %v", err)
	}
}
