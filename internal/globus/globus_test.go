package globus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"osprey/internal/scheduler"
)

func testAuthToken(t *testing.T, scopes ...Scope) (*Auth, *Token) {
	t.Helper()
	a := NewAuth()
	return a, a.Issue("alice", 0, scopes...)
}

func TestAuthScopes(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTransfer)
	if _, err := a.Validate(tok.ID, ScopeTransfer); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Validate(tok.ID, ScopeCompute); !errors.Is(err, ErrForbidden) {
		t.Fatalf("wrong-scope error = %v", err)
	}
	if _, err := a.Validate("tok-bogus", ScopeTransfer); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown-token error = %v", err)
	}
}

func TestAuthExpiry(t *testing.T) {
	a := NewAuth()
	tok := a.Issue("bob", time.Millisecond, ScopeTransfer)
	time.Sleep(5 * time.Millisecond)
	if _, err := a.Validate(tok.ID, ScopeTransfer); err == nil {
		t.Fatal("expired token accepted")
	}
}

func TestAuthRevoke(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTimers)
	a.Revoke(tok.ID)
	if _, err := a.Validate(tok.ID, ScopeTimers); err == nil {
		t.Fatal("revoked token accepted")
	}
}

func TestEndpointPutGetListDelete(t *testing.T) {
	e := NewEndpoint("eagle")
	if err := e.CreateCollection("ww", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateCollection("ww", "alice"); err == nil {
		t.Fatal("duplicate collection accepted")
	}
	if err := e.Put("ww", "raw/obrien.csv", "alice", []byte("data")); err != nil {
		t.Fatal(err)
	}
	got, err := e.Get("ww", "raw/obrien.csv", "alice")
	if err != nil || string(got) != "data" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := e.Put("ww", "raw/calumet.csv", "alice", []byte("x")); err != nil {
		t.Fatal(err)
	}
	paths, err := e.List("ww", "raw/", "alice")
	if err != nil || len(paths) != 2 {
		t.Fatalf("List = %v, %v", paths, err)
	}
	if paths[0] != "raw/calumet.csv" {
		t.Fatal("List not sorted")
	}
	if err := e.Delete("ww", "raw/obrien.csv", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get("ww", "raw/obrien.csv", "alice"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted file error = %v", err)
	}
}

func TestCollectionPermissions(t *testing.T) {
	e := NewEndpoint("eagle")
	if err := e.CreateCollection("shared", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := e.Put("shared", "f", "alice", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Stakeholder bob has no access yet.
	if _, err := e.Get("shared", "f", "bob"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("unauthorized read error = %v", err)
	}
	// Only the owner can grant.
	if err := e.SetPermission("shared", "mallory", "bob", PermRead); !errors.Is(err, ErrForbidden) {
		t.Fatalf("non-owner ACL change error = %v", err)
	}
	if err := e.SetPermission("shared", "alice", "bob", PermRead); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Get("shared", "f", "bob"); err != nil {
		t.Fatalf("granted read failed: %v", err)
	}
	// Read does not imply write.
	if err := e.Put("shared", "g", "bob", []byte("w")); !errors.Is(err, ErrForbidden) {
		t.Fatalf("read-only write error = %v", err)
	}
}

func TestTransferMovesDataWithChecksum(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTransfer)
	src := NewEndpoint("bebop-scratch")
	dst := NewEndpoint("eagle")
	for _, e := range []*Endpoint{src, dst} {
		if err := e.CreateCollection("c", "alice"); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte(strings.Repeat("wastewater,", 1000))
	if err := src.Put("c", "in.csv", "alice", payload); err != nil {
		t.Fatal(err)
	}
	svc := NewTransferService(a)
	task, err := svc.Submit(tok.ID, Location{src, "c", "in.csv"}, Location{dst, "c", "out.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Wait(); err != nil {
		t.Fatal(err)
	}
	if st, _ := task.Status(); st != TransferSucceeded {
		t.Fatalf("status = %v", st)
	}
	if task.Checksum == "" {
		t.Fatal("no checksum recorded")
	}
	got, err := dst.Get("c", "out.csv", "alice")
	if err != nil || string(got) != string(payload) {
		t.Fatal("transferred content mismatch")
	}
	// Task lookup works.
	if _, err := svc.Task(task.ID); err != nil {
		t.Fatal(err)
	}
}

func TestTransferFailsOnMissingSource(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTransfer)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	src.CreateCollection("c", "alice")
	dst.CreateCollection("c", "alice")
	svc := NewTransferService(a)
	task, err := svc.Submit(tok.ID, Location{src, "c", "nope"}, Location{dst, "c", "out"})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Wait(); err == nil {
		t.Fatal("missing source transfer succeeded")
	}
}

func TestTransferRequiresScope(t *testing.T) {
	a := NewAuth()
	tok := a.Issue("alice", 0, ScopeCompute) // wrong scope
	svc := NewTransferService(a)
	if _, err := svc.Submit(tok.ID, Location{}, Location{}); err == nil {
		t.Fatal("transfer without scope accepted")
	}
}

func TestComputeLoginNode(t *testing.T) {
	a, tok := testAuthToken(t, ScopeCompute)
	ep := NewComputeEndpoint("bebop-login", a, LoginNodeEngine{})
	fid, err := ep.RegisterFunction(tok.ID, "double", func(ctx context.Context, p []byte) ([]byte, error) {
		return append(p, p...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ep.Call(tok.ID, fid, []byte("ab"))
	if err != nil || string(out) != "abab" {
		t.Fatalf("Call = %q, %v", out, err)
	}
}

func TestComputeUnknownFunction(t *testing.T) {
	a, tok := testAuthToken(t, ScopeCompute)
	ep := NewComputeEndpoint("x", a, LoginNodeEngine{})
	if _, err := ep.Submit(tok.ID, "fn-bogus", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown function error = %v", err)
	}
}

func TestComputeTaskFailure(t *testing.T) {
	a, tok := testAuthToken(t, ScopeCompute)
	ep := NewComputeEndpoint("x", a, LoginNodeEngine{})
	fid, _ := ep.RegisterFunction(tok.ID, "fail", func(ctx context.Context, p []byte) ([]byte, error) {
		return nil, fmt.Errorf("kaput")
	})
	task, err := ep.Submit(tok.ID, fid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.Result(); err == nil {
		t.Fatal("task failure not propagated")
	}
	if task.Status() != TaskFailed {
		t.Fatalf("status = %v", task.Status())
	}
}

func TestComputeBatchEngineRunsThroughScheduler(t *testing.T) {
	a, tok := testAuthToken(t, ScopeCompute)
	cluster, err := scheduler.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	ep := NewComputeEndpoint("bebop-compute", a, BatchEngine{Cluster: cluster, Nodes: 1, Walltime: time.Second})
	fid, _ := ep.RegisterFunction(tok.ID, "analysis", func(ctx context.Context, p []byte) ([]byte, error) {
		return []byte("rt-done"), nil
	})
	out, err := ep.Call(tok.ID, fid, nil)
	if err != nil || string(out) != "rt-done" {
		t.Fatalf("batch Call = %q, %v", out, err)
	}
	if cluster.Stats().Completed != 1 {
		t.Fatal("job did not go through the scheduler")
	}
	if !strings.Contains(ep.EngineDescription(), "batch") {
		t.Fatal("engine description wrong")
	}
}

func TestComputeBatchWalltimeKillSurfaces(t *testing.T) {
	a, tok := testAuthToken(t, ScopeCompute)
	cluster, _ := scheduler.NewCluster(1)
	defer cluster.Shutdown()
	ep := NewComputeEndpoint("c", a, BatchEngine{Cluster: cluster, Nodes: 1, Walltime: 20 * time.Millisecond})
	fid, _ := ep.RegisterFunction(tok.ID, "slow", func(ctx context.Context, p []byte) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return []byte("late"), nil
		}
	})
	if _, err := ep.Call(tok.ID, fid, nil); err == nil {
		t.Fatal("walltime kill not surfaced")
	}
}

func TestTimersFireAndStop(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTimers)
	svc := NewTimerService(a)
	var mu sync.Mutex
	count := 0
	tm, err := svc.Schedule(tok.ID, "poll", 0, func() {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	tm.Fire()
	tm.Fire()
	tm.Stop()
	tm.Fire() // ignored after stop
	mu.Lock()
	defer mu.Unlock()
	if count != 2 {
		t.Fatalf("callback ran %d times, want 2", count)
	}
	if tm.Fires() != 2 {
		t.Fatalf("Fires() = %d", tm.Fires())
	}
}

func TestTimersPeriodic(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTimers)
	svc := NewTimerService(a)
	defer svc.StopAll()
	done := make(chan struct{})
	var once sync.Once
	_, err := svc.Schedule(tok.ID, "tick", 5*time.Millisecond, func() {
		once.Do(func() { close(done) })
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("periodic timer never fired")
	}
}

func TestFlowRunsStepsInOrder(t *testing.T) {
	a, tok := testAuthToken(t, ScopeFlows)
	svc := NewFlowService(a)
	err := svc.Define(tok.ID, "pipeline", []Step{
		{Name: "fetch", Run: func(ctx context.Context, in any) (any, error) { return "raw", nil }},
		{Name: "transform", Run: func(ctx context.Context, in any) (any, error) {
			return in.(string) + "->clean", nil
		}},
		{Name: "store", Run: func(ctx context.Context, in any) (any, error) {
			return in.(string) + "->stored", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := svc.Start(tok.ID, "pipeline", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	if out != "raw->clean->stored" {
		t.Fatalf("flow output = %v", out)
	}
	if run.Status() != FlowRunSucceeded {
		t.Fatalf("status = %v", run.Status())
	}
	if len(run.Log()) != 3 {
		t.Fatalf("log has %d records", len(run.Log()))
	}
}

func TestFlowRetriesThenSucceeds(t *testing.T) {
	a, tok := testAuthToken(t, ScopeFlows)
	svc := NewFlowService(a)
	attempts := 0
	err := svc.Define(tok.ID, "flaky", []Step{
		{Name: "unstable", MaxRetries: 3, Run: func(ctx context.Context, in any) (any, error) {
			attempts++
			if attempts < 3 {
				return nil, fmt.Errorf("transient")
			}
			return "ok", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, _ := svc.Start(tok.ID, "flaky", nil)
	out, err := run.Result()
	if err != nil || out != "ok" {
		t.Fatalf("retry flow = %v, %v", out, err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
	if len(run.Log()) != 3 {
		t.Fatalf("log should record each attempt, got %d", len(run.Log()))
	}
}

func TestFlowFailureAfterRetries(t *testing.T) {
	a, tok := testAuthToken(t, ScopeFlows)
	svc := NewFlowService(a)
	svc.Define(tok.ID, "doomed", []Step{
		{Name: "always-fails", MaxRetries: 2, Run: func(ctx context.Context, in any) (any, error) {
			return nil, fmt.Errorf("nope")
		}},
		{Name: "never-reached", Run: func(ctx context.Context, in any) (any, error) {
			t.Error("later step ran after failure")
			return nil, nil
		}},
	})
	run, _ := svc.Start(tok.ID, "doomed", nil)
	if _, err := run.Result(); err == nil {
		t.Fatal("doomed flow succeeded")
	}
	if run.Status() != FlowRunFailed {
		t.Fatalf("status = %v", run.Status())
	}
}

func TestFlowValidation(t *testing.T) {
	a, tok := testAuthToken(t, ScopeFlows)
	svc := NewFlowService(a)
	if err := svc.Define(tok.ID, "empty", nil); err == nil {
		t.Fatal("empty flow accepted")
	}
	if err := svc.Define(tok.ID, "nilstep", []Step{{Name: "x"}}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if _, err := svc.Start(tok.ID, "unknown", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown flow error = %v", err)
	}
}

func TestConcurrentEndpointAccess(t *testing.T) {
	e := NewEndpoint("eagle")
	e.CreateCollection("c", "alice")
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("f%d", i)
			if err := e.Put("c", path, "alice", []byte{byte(i)}); err != nil {
				t.Error(err)
			}
			if _, err := e.Get("c", path, "alice"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	paths, _ := e.List("c", "", "alice")
	if len(paths) != 20 {
		t.Fatalf("want 20 files, got %d", len(paths))
	}
}

func TestSubmitPrefixTransfersTree(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTransfer)
	src := NewEndpoint("scratch")
	dst := NewEndpoint("archive")
	src.CreateCollection("c", "alice")
	dst.CreateCollection("c", "alice")
	files := map[string]string{
		"results/run1/table.csv": "t1",
		"results/run1/plot.txt":  "p1",
		"results/run2/table.csv": "t2",
		"other/keep.txt":         "nope",
	}
	for p, content := range files {
		if err := src.Put("c", p, "alice", []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewTransferService(a)
	tasks, wait, err := svc.SubmitPrefix(tok.ID,
		Location{src, "c", ""}, "results/",
		Location{dst, "c", ""}, "staged/")
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("submitted %d transfers, want 3", len(tasks))
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Get("c", "staged/run1/table.csv", "alice")
	if err != nil || string(got) != "t1" {
		t.Fatalf("staged file = %q, %v", got, err)
	}
	if _, err := dst.Get("c", "staged/keep.txt", "alice"); err == nil {
		t.Fatal("file outside the prefix was transferred")
	}
}

func TestSubmitPrefixEmpty(t *testing.T) {
	a, tok := testAuthToken(t, ScopeTransfer)
	src := NewEndpoint("a")
	dst := NewEndpoint("b")
	src.CreateCollection("c", "alice")
	dst.CreateCollection("c", "alice")
	svc := NewTransferService(a)
	if _, _, err := svc.SubmitPrefix(tok.ID, Location{src, "c", ""}, "nothing/", Location{dst, "c", ""}, "x/"); err == nil {
		t.Fatal("empty prefix transfer accepted")
	}
}
