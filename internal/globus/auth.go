// Package globus simulates the research-automation fabric the paper builds
// on — Globus Auth, Transfer/Collections, Compute (funcX), Timers, and
// Flows — as in-process services with the same API shape and semantics:
// bearer tokens with scopes, asynchronous checksummed transfers between
// storage endpoints with per-identity permissions, a federated function
// execution service with login-node and batch-scheduler engines, periodic
// timers, and retryable multi-step flows.
//
// The point of the simulation (see DESIGN.md) is that AERO and the OSPREY
// workflows run unmodified against these services, preserving the paper's
// key architectural property: data moves between user-owned endpoints and
// never through the AERO metadata server.
package globus

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Scope names the capability a token grants.
type Scope string

// Standard scopes for the simulated services.
const (
	ScopeTransfer Scope = "urn:globus:auth:scope:transfer.api:all"
	ScopeCompute  Scope = "urn:globus:auth:scope:compute.api:all"
	ScopeTimers   Scope = "urn:globus:auth:scope:timers.api:all"
	ScopeFlows    Scope = "urn:globus:auth:scope:flows.api:all"
	// ScopeAero guards the AERO metadata server's tenant API.
	ScopeAero Scope = "urn:globus:auth:scope:aero.api:all"
)

// Token is a bearer credential bound to an identity and scope set.
type Token struct {
	ID       string
	Identity string
	Scopes   map[Scope]bool
	Expiry   time.Time
}

// HasScope reports whether the token carries the scope and is unexpired.
func (t *Token) HasScope(s Scope) bool {
	if t == nil {
		return false
	}
	if !t.Expiry.IsZero() && time.Now().After(t.Expiry) {
		return false
	}
	return t.Scopes[s]
}

// Auth issues and validates tokens (the Globus Auth stand-in).
type Auth struct {
	mu     sync.RWMutex
	tokens map[string]*Token
}

// NewAuth creates an empty identity provider.
func NewAuth() *Auth { return &Auth{tokens: map[string]*Token{}} }

// Issue mints a token for identity with the given scopes and lifetime
// (zero lifetime = non-expiring).
func (a *Auth) Issue(identity string, lifetime time.Duration, scopes ...Scope) *Token {
	id := randomID("tok")
	t := &Token{ID: id, Identity: identity, Scopes: map[Scope]bool{}}
	for _, s := range scopes {
		t.Scopes[s] = true
	}
	if lifetime > 0 {
		t.Expiry = time.Now().Add(lifetime)
	}
	a.mu.Lock()
	a.tokens[id] = t
	a.mu.Unlock()
	return t
}

// Validate checks a presented token ID and required scope, returning the
// registered token. Unknown, revoked, and expired tokens are all
// ErrUnauthorized (the credential itself is invalid — the caller must
// reauthenticate); a live token lacking the scope is ErrForbidden.
func (a *Auth) Validate(tokenID string, scope Scope) (*Token, error) {
	a.mu.RLock()
	t := a.tokens[tokenID]
	a.mu.RUnlock()
	if t == nil {
		return nil, ErrUnauthorized
	}
	if !t.Expiry.IsZero() && time.Now().After(t.Expiry) {
		return nil, fmt.Errorf("%w: token expired", ErrUnauthorized)
	}
	if !t.HasScope(scope) {
		return nil, fmt.Errorf("%w: token lacks scope %s", ErrForbidden, scope)
	}
	return t, nil
}

// RegisterToken installs a pre-built token (static credential files for
// daemons; tests). The token must carry an ID.
func (a *Auth) RegisterToken(t *Token) error {
	if t == nil || t.ID == "" {
		return errors.New("globus: token needs an ID")
	}
	if t.Scopes == nil {
		t.Scopes = map[Scope]bool{}
	}
	a.mu.Lock()
	a.tokens[t.ID] = t
	a.mu.Unlock()
	return nil
}

// Revoke invalidates a token.
func (a *Auth) Revoke(tokenID string) {
	a.mu.Lock()
	delete(a.tokens, tokenID)
	a.mu.Unlock()
}

// Sentinel errors shared by the simulated services.
var (
	ErrUnauthorized = errors.New("globus: unauthorized")
	ErrForbidden    = errors.New("globus: forbidden")
	ErrNotFound     = errors.New("globus: not found")
)

func randomID(prefix string) string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}
