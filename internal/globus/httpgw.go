package globus

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// HTTPGateway serves an Endpoint's collections over HTTP with bearer-token
// authentication — the "guest collection" access path through which the
// paper's outputs are "directly shareable with public health stakeholders
// through standard Globus Collection permissions" (§2.2). The collection
// ACL is enforced on every request: a stakeholder granted PermRead can GET
// but not PUT.
//
// Routes (token in the Authorization: Bearer header, transfer scope):
//
//	GET    /collections/{coll}/files/{path...}   download
//	PUT    /collections/{coll}/files/{path...}   upload
//	DELETE /collections/{coll}/files/{path...}   delete
//	GET    /collections/{coll}?prefix=p          list paths
//	GET    /collections/{coll}/checksum/{path…}  SHA-256
type HTTPGateway struct {
	endpoint *Endpoint
	auth     *Auth
}

// NewHTTPGateway wraps an endpoint in the HTTP access layer.
func NewHTTPGateway(endpoint *Endpoint, auth *Auth) *HTTPGateway {
	return &HTTPGateway{endpoint: endpoint, auth: auth}
}

func (g *HTTPGateway) identify(r *http.Request) (string, int, error) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(h, prefix) {
		return "", http.StatusUnauthorized, fmt.Errorf("missing bearer token")
	}
	tok, err := g.auth.Validate(strings.TrimPrefix(h, prefix), ScopeTransfer)
	if err != nil {
		return "", http.StatusUnauthorized, err
	}
	return tok.Identity, 0, nil
}

func httpStatusFor(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case strings.Contains(err.Error(), "forbidden"):
		return http.StatusForbidden
	case strings.Contains(err.Error(), "not found"):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// ServeHTTP implements http.Handler.
func (g *HTTPGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	identity, code, err := g.identify(r)
	if err != nil {
		http.Error(w, err.Error(), code)
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/collections/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	coll, after, _ := strings.Cut(rest, "/")
	if coll == "" {
		http.NotFound(w, r)
		return
	}

	switch {
	case after == "" && r.Method == http.MethodGet:
		paths, err := g.endpoint.List(coll, r.URL.Query().Get("prefix"), identity)
		if err != nil {
			http.Error(w, err.Error(), httpStatusFor(err))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, p := range paths {
			fmt.Fprintln(w, p)
		}
	case strings.HasPrefix(after, "files/"):
		path := strings.TrimPrefix(after, "files/")
		switch r.Method {
		case http.MethodGet:
			data, err := g.endpoint.Get(coll, path, identity)
			if err != nil {
				http.Error(w, err.Error(), httpStatusFor(err))
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		case http.MethodPut:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := g.endpoint.Put(coll, path, identity, body); err != nil {
				http.Error(w, err.Error(), httpStatusFor(err))
				return
			}
			w.WriteHeader(http.StatusCreated)
		case http.MethodDelete:
			if err := g.endpoint.Delete(coll, path, identity); err != nil {
				http.Error(w, err.Error(), httpStatusFor(err))
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	case strings.HasPrefix(after, "checksum/") && r.Method == http.MethodGet:
		path := strings.TrimPrefix(after, "checksum/")
		sum, err := g.endpoint.Checksum(coll, path, identity)
		if err != nil {
			http.Error(w, err.Error(), httpStatusFor(err))
			return
		}
		fmt.Fprintln(w, sum)
	default:
		http.NotFound(w, r)
	}
}

// RemoteCollection is the client side of HTTPGateway: file access to one
// collection on a remote endpoint, authenticated by a bearer token.
type RemoteCollection struct {
	BaseURL    string // gateway root, e.g. http://host:port
	Collection string
	TokenID    string
	HTTP       *http.Client
}

func (c *RemoteCollection) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *RemoteCollection) do(method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.TokenID)
	return c.client().Do(req)
}

func (c *RemoteCollection) fileURL(path string) string {
	return fmt.Sprintf("%s/collections/%s/files/%s",
		strings.TrimSuffix(c.BaseURL, "/"), c.Collection, path)
}

func remoteErr(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("globus: gateway %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
}

// Get downloads a file.
func (c *RemoteCollection) Get(path string) ([]byte, error) {
	resp, err := c.do(http.MethodGet, c.fileURL(path), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// Put uploads a file.
func (c *RemoteCollection) Put(path string, data []byte) error {
	resp, err := c.do(http.MethodPut, c.fileURL(path), strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return remoteErr(resp)
	}
	return nil
}

// Delete removes a file.
func (c *RemoteCollection) Delete(path string) error {
	resp, err := c.do(http.MethodDelete, c.fileURL(path), nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return remoteErr(resp)
	}
	return nil
}

// List returns paths under prefix.
func (c *RemoteCollection) List(prefix string) ([]string, error) {
	url := fmt.Sprintf("%s/collections/%s?prefix=%s",
		strings.TrimSuffix(c.BaseURL, "/"), c.Collection, prefix)
	resp, err := c.do(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, remoteErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

// Checksum fetches the SHA-256 of a file.
func (c *RemoteCollection) Checksum(path string) (string, error) {
	url := fmt.Sprintf("%s/collections/%s/checksum/%s",
		strings.TrimSuffix(c.BaseURL, "/"), c.Collection, path)
	resp, err := c.do(http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", remoteErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(body)), nil
}
