package globus

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestValidateExpiredIsUnauthorized(t *testing.T) {
	a := NewAuth()
	tok := &Token{ID: "tok-old", Identity: "x",
		Scopes: map[Scope]bool{ScopeAero: true},
		Expiry: time.Now().Add(-time.Second)}
	if err := a.RegisterToken(tok); err != nil {
		t.Fatal(err)
	}
	// An expired credential is invalid, not merely under-scoped: the
	// caller must reauthenticate, so the error is ErrUnauthorized (401),
	// never ErrForbidden (403).
	if _, err := a.Validate(tok.ID, ScopeAero); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("expired token: %v, want ErrUnauthorized", err)
	}
}

func TestRegisterTokenValidation(t *testing.T) {
	a := NewAuth()
	if err := a.RegisterToken(nil); err == nil {
		t.Fatal("nil token accepted")
	}
	if err := a.RegisterToken(&Token{}); err == nil {
		t.Fatal("ID-less token accepted")
	}
	if err := a.RegisterToken(&Token{ID: "tok-1", Identity: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Validate("tok-1", ScopeAero); !errors.Is(err, ErrForbidden) {
		t.Fatalf("scope-less token: %v, want ErrForbidden", err)
	}
}

// TestAuthConcurrentValidateRevoke hammers Validate against concurrent
// Issue/Revoke/expiry. Run under -race; the assertion is that every
// outcome is one of the defined errors and nothing tears.
func TestAuthConcurrentValidateRevoke(t *testing.T) {
	a := NewAuth()
	const tenants = 8
	tokens := make([]*Token, tenants)
	for i := range tokens {
		// Half the tokens expire mid-test, so validators cross the
		// valid->expired edge while revokers delete their neighbors.
		lifetime := time.Duration(0)
		if i%2 == 0 {
			lifetime = 10 * time.Millisecond
		}
		tokens[i] = a.Issue("tenant", lifetime, ScopeAero)
	}

	var wg sync.WaitGroup
	stop := time.Now().Add(100 * time.Millisecond)
	for i := 0; i < tenants; i++ {
		wg.Add(2)
		go func(tok *Token) {
			defer wg.Done()
			for time.Now().Before(stop) {
				_, err := a.Validate(tok.ID, ScopeAero)
				if err != nil && !errors.Is(err, ErrUnauthorized) && !errors.Is(err, ErrForbidden) {
					t.Errorf("unexpected validate error: %v", err)
					return
				}
			}
		}(tokens[i])
		go func(i int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				if i%4 == 3 {
					a.Revoke(tokens[i].ID)
				}
				a.Issue("churn", time.Millisecond, ScopeAero)
			}
		}(i)
	}
	wg.Wait()

	// After the dust settles: revoked and expired tokens are dead.
	time.Sleep(15 * time.Millisecond)
	if _, err := a.Validate(tokens[0].ID, ScopeAero); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("expired token after race: %v", err)
	}
	a.Revoke(tokens[1].ID)
	if _, err := a.Validate(tokens[1].ID, ScopeAero); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("revoked token after race: %v", err)
	}
}
