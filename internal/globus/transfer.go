package globus

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Permission is an access level on a collection.
type Permission int

const (
	// PermNone denies access.
	PermNone Permission = iota
	// PermRead allows Get/Stat/List.
	PermRead
	// PermReadWrite additionally allows Put/Delete.
	PermReadWrite
)

// Endpoint is an in-memory storage endpoint holding named collections (the
// ALCF Eagle Globus endpoint stand-in). All methods are safe for concurrent
// use.
type Endpoint struct {
	Name string

	mu          sync.RWMutex
	collections map[string]*collection
}

type collection struct {
	files map[string][]byte
	acl   map[string]Permission // identity -> permission
	owner string
}

// NewEndpoint creates an endpoint with no collections.
func NewEndpoint(name string) *Endpoint {
	return &Endpoint{Name: name, collections: map[string]*collection{}}
}

// CreateCollection registers a collection owned by identity, who receives
// read-write access.
func (e *Endpoint) CreateCollection(name, owner string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.collections[name]; ok {
		return fmt.Errorf("globus: collection %q already exists on %s", name, e.Name)
	}
	e.collections[name] = &collection{
		files: map[string][]byte{},
		acl:   map[string]Permission{owner: PermReadWrite},
		owner: owner,
	}
	return nil
}

// SetPermission grants identity a permission on the collection. Only the
// owner may change the ACL — this is the "directly shareable with public
// health stakeholders through standard Globus Collection permissions"
// mechanism of §2.2.
func (e *Endpoint) SetPermission(coll, actor, identity string, p Permission) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.collections[coll]
	if !ok {
		return fmt.Errorf("%w: collection %q", ErrNotFound, coll)
	}
	if c.owner != actor {
		return fmt.Errorf("%w: only owner %q may change ACLs", ErrForbidden, c.owner)
	}
	c.acl[identity] = p
	return nil
}

func (e *Endpoint) check(coll, identity string, want Permission) (*collection, error) {
	c, ok := e.collections[coll]
	if !ok {
		return nil, fmt.Errorf("%w: collection %q on %s", ErrNotFound, coll, e.Name)
	}
	if c.acl[identity] < want {
		return nil, fmt.Errorf("%w: %q on %s/%s", ErrForbidden, identity, e.Name, coll)
	}
	return c, nil
}

// Put stores data at path within the collection.
func (e *Endpoint) Put(coll, path, identity string, data []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.check(coll, identity, PermReadWrite)
	if err != nil {
		return err
	}
	c.files[path] = append([]byte(nil), data...)
	return nil
}

// Get retrieves the file at path.
func (e *Endpoint) Get(coll, path, identity string) ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, err := e.check(coll, identity, PermRead)
	if err != nil {
		return nil, err
	}
	data, ok := c.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s:%s", ErrNotFound, e.Name, coll, path)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes the file at path.
func (e *Endpoint) Delete(coll, path, identity string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.check(coll, identity, PermReadWrite)
	if err != nil {
		return err
	}
	if _, ok := c.files[path]; !ok {
		return fmt.Errorf("%w: %s/%s:%s", ErrNotFound, e.Name, coll, path)
	}
	delete(c.files, path)
	return nil
}

// List returns the paths in a collection, optionally filtered by prefix,
// sorted lexicographically.
func (e *Endpoint) List(coll, prefix, identity string) ([]string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	c, err := e.check(coll, identity, PermRead)
	if err != nil {
		return nil, err
	}
	var out []string
	for p := range c.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Checksum returns the SHA-256 of the file at path.
func (e *Endpoint) Checksum(coll, path, identity string) (string, error) {
	data, err := e.Get(coll, path, identity)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// TransferStatus enumerates transfer task states.
type TransferStatus int

const (
	TransferActive TransferStatus = iota
	TransferSucceeded
	TransferFailed
)

// TransferTask is a handle to an asynchronous transfer.
type TransferTask struct {
	ID       string
	done     chan struct{}
	mu       sync.Mutex
	status   TransferStatus
	err      error
	Checksum string
	Started  time.Time
	Finished time.Time
}

// Status returns the task's current state and terminal error.
func (t *TransferTask) Status() (TransferStatus, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.err
}

// Wait blocks until the transfer terminates.
func (t *TransferTask) Wait() error {
	<-t.done
	_, err := t.Status()
	return err
}

// Location names a file on an endpoint collection.
type Location struct {
	Endpoint   *Endpoint
	Collection string
	Path       string
}

func (l Location) String() string {
	name := "<nil>"
	if l.Endpoint != nil {
		name = l.Endpoint.Name
	}
	return fmt.Sprintf("%s/%s:%s", name, l.Collection, l.Path)
}

// TransferService moves files between endpoints asynchronously with
// checksum verification, requiring a transfer-scoped token.
type TransferService struct {
	auth *Auth
	mu   sync.Mutex
	// Latency simulates wide-area transfer delay per task (0 for tests).
	Latency time.Duration
	tasks   map[string]*TransferTask
}

// NewTransferService creates the service bound to an Auth issuer.
func NewTransferService(auth *Auth) *TransferService {
	return &TransferService{auth: auth, tasks: map[string]*TransferTask{}}
}

// Submit starts an asynchronous copy of src to dst on behalf of the token's
// identity. The write happens atomically after checksum verification.
func (s *TransferService) Submit(tokenID string, src, dst Location) (*TransferTask, error) {
	tok, err := s.auth.Validate(tokenID, ScopeTransfer)
	if err != nil {
		return nil, err
	}
	if src.Endpoint == nil || dst.Endpoint == nil {
		return nil, fmt.Errorf("globus: transfer requires both endpoints")
	}
	task := &TransferTask{ID: randomID("xfer"), done: make(chan struct{}), Started: time.Now()}
	s.mu.Lock()
	s.tasks[task.ID] = task
	s.mu.Unlock()

	go func() {
		defer close(task.done)
		finish := func(st TransferStatus, err error) {
			task.mu.Lock()
			task.status, task.err = st, err
			task.Finished = time.Now()
			task.mu.Unlock()
		}
		if s.Latency > 0 {
			time.Sleep(s.Latency)
		}
		data, err := src.Endpoint.Get(src.Collection, src.Path, tok.Identity)
		if err != nil {
			finish(TransferFailed, fmt.Errorf("globus: transfer read: %w", err))
			return
		}
		srcSum := sha256.Sum256(data)
		if err := dst.Endpoint.Put(dst.Collection, dst.Path, tok.Identity, data); err != nil {
			finish(TransferFailed, fmt.Errorf("globus: transfer write: %w", err))
			return
		}
		dstSumHex, err := dst.Endpoint.Checksum(dst.Collection, dst.Path, tok.Identity)
		if err != nil || dstSumHex != hex.EncodeToString(srcSum[:]) {
			finish(TransferFailed, fmt.Errorf("globus: checksum mismatch after transfer"))
			return
		}
		task.mu.Lock()
		task.Checksum = dstSumHex
		task.mu.Unlock()
		finish(TransferSucceeded, nil)
	}()
	return task, nil
}

// Task looks up a transfer by ID.
func (s *TransferService) Task(id string) (*TransferTask, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return nil, fmt.Errorf("%w: transfer %s", ErrNotFound, id)
	}
	return t, nil
}

// EndpointName returns the endpoint's name; it satisfies the handle
// interfaces of consumers (e.g. AERO retention) without exposing fields
// through an interface.
func (e *Endpoint) EndpointName() string { return e.Name }

// SubmitPrefix transfers every file under srcPrefix in the source
// collection to the destination collection, rewriting srcPrefix to
// dstPrefix. It returns one task per file plus an aggregate wait function —
// the recursive-directory transfer shape Globus users rely on for staging
// whole result sets.
func (s *TransferService) SubmitPrefix(tokenID string, src Location, srcPrefix string, dst Location, dstPrefix string) ([]*TransferTask, func() error, error) {
	tok, err := s.auth.Validate(tokenID, ScopeTransfer)
	if err != nil {
		return nil, nil, err
	}
	if src.Endpoint == nil || dst.Endpoint == nil {
		return nil, nil, fmt.Errorf("globus: transfer requires both endpoints")
	}
	paths, err := src.Endpoint.List(src.Collection, srcPrefix, tok.Identity)
	if err != nil {
		return nil, nil, err
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("%w: no files under %s/%s:%s", ErrNotFound, src.Endpoint.Name, src.Collection, srcPrefix)
	}
	var tasks []*TransferTask
	for _, p := range paths {
		rel := strings.TrimPrefix(p, srcPrefix)
		task, err := s.Submit(tokenID,
			Location{src.Endpoint, src.Collection, p},
			Location{dst.Endpoint, dst.Collection, dstPrefix + rel})
		if err != nil {
			return tasks, nil, err
		}
		tasks = append(tasks, task)
	}
	wait := func() error {
		for _, t := range tasks {
			if err := t.Wait(); err != nil {
				return err
			}
		}
		return nil
	}
	return tasks, wait, nil
}
