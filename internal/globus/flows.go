package globus

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Step is one action of a flow. Steps receive the output of the previous
// step as input (nil for the first step).
type Step struct {
	Name string
	// MaxRetries re-runs the step on error (0 = no retries).
	MaxRetries int
	// RetryDelay waits between attempts.
	RetryDelay time.Duration
	Run        func(ctx context.Context, input any) (any, error)
}

// FlowRunStatus enumerates flow run outcomes.
type FlowRunStatus int

const (
	FlowRunActive FlowRunStatus = iota
	FlowRunSucceeded
	FlowRunFailed
)

// StepRecord logs one step attempt for provenance.
type StepRecord struct {
	Step     string
	Attempt  int
	Err      string
	Started  time.Time
	Finished time.Time
}

// FlowRun is the execution trace of one flow invocation.
type FlowRun struct {
	ID     string
	Flow   string
	mu     sync.Mutex
	status FlowRunStatus
	output any
	err    error
	log    []StepRecord
	done   chan struct{}
}

// Status returns the run state.
func (r *FlowRun) Status() FlowRunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Result blocks until the run completes and returns the final step output.
func (r *FlowRun) Result() (any, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.output, r.err
}

// Log returns a copy of the per-step provenance records.
func (r *FlowRun) Log() []StepRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]StepRecord(nil), r.log...)
}

// FlowService runs named multi-step flows with per-step retry policies (the
// Globus Flows stand-in).
type FlowService struct {
	auth *Auth
	mu   sync.Mutex
	defs map[string][]Step
}

// NewFlowService creates the service.
func NewFlowService(auth *Auth) *FlowService {
	return &FlowService{auth: auth, defs: map[string][]Step{}}
}

// Define registers a flow definition under a name.
func (s *FlowService) Define(tokenID, name string, steps []Step) error {
	if _, err := s.auth.Validate(tokenID, ScopeFlows); err != nil {
		return err
	}
	if len(steps) == 0 {
		return fmt.Errorf("globus: flow %q has no steps", name)
	}
	for _, st := range steps {
		if st.Run == nil {
			return fmt.Errorf("globus: flow %q step %q has no Run", name, st.Name)
		}
	}
	s.mu.Lock()
	s.defs[name] = append([]Step(nil), steps...)
	s.mu.Unlock()
	return nil
}

// Start launches an asynchronous run of the named flow with the given
// initial input.
func (s *FlowService) Start(tokenID, name string, input any) (*FlowRun, error) {
	if _, err := s.auth.Validate(tokenID, ScopeFlows); err != nil {
		return nil, err
	}
	s.mu.Lock()
	steps, ok := s.defs[name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: flow %q", ErrNotFound, name)
	}
	run := &FlowRun{ID: randomID("run"), Flow: name, done: make(chan struct{})}
	go func() {
		defer close(run.done)
		cur := input
		for _, st := range steps {
			var out any
			var err error
			for attempt := 0; ; attempt++ {
				rec := StepRecord{Step: st.Name, Attempt: attempt, Started: time.Now()}
				out, err = st.Run(context.Background(), cur)
				rec.Finished = time.Now()
				if err != nil {
					rec.Err = err.Error()
				}
				run.mu.Lock()
				run.log = append(run.log, rec)
				run.mu.Unlock()
				if err == nil || attempt >= st.MaxRetries {
					break
				}
				if st.RetryDelay > 0 {
					time.Sleep(st.RetryDelay)
				}
			}
			if err != nil {
				run.mu.Lock()
				run.status = FlowRunFailed
				run.err = fmt.Errorf("globus: flow %q step %q: %w", name, st.Name, err)
				run.mu.Unlock()
				return
			}
			cur = out
		}
		run.mu.Lock()
		run.status = FlowRunSucceeded
		run.output = cur
		run.mu.Unlock()
	}()
	return run, nil
}
