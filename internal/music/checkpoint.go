package music

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"osprey/internal/gp"
	"osprey/internal/rng"
)

// checkpoint is the serialized state of an Algorithm. Options are NOT
// stored (they may contain a live Space); the caller supplies matching
// options at Load time, and the checkpoint verifies compatibility.
type checkpoint struct {
	FormatVersion int         `json:"format_version"`
	Dim           int         `json:"dim"`
	InitialDesign int         `json:"initial_design"`
	Budget        int         `json:"budget"`
	X             [][]float64 `json:"x"` // unit-cube coordinates
	Y             []float64   `json:"y"`
	IssuedInit    bool        `json:"issued_init"`
	SinceRefit    int         `json:"since_refit"`
	History       []Snapshot  `json:"history"`
	LastIndices   []float64   `json:"last_indices,omitempty"`
	RNGState      []byte      `json:"rng_state"`
	// Surrogate hyperparameters (nil if no surrogate was fitted yet).
	// Restoring them — rather than refitting — is what makes resume
	// bit-identical even mid-way between refit intervals. For the sparse
	// kind they carry the surrogate kind, inducing budget, and the selected
	// inducing indices (re-selection over the grown training set could pick
	// different points and break bit-identical resume).
	GP *gp.Hyperparams `json:"gp,omitempty"`
}

const checkpointFormat = 1

// Save serializes the instance's full state — observations, convergence
// history, and exact RNG position — so an interrupted campaign resumes
// bit-identically. This is the rapid-response property the SDE needs:
// a preempted HPC job continues instead of restarting.
func (a *Algorithm) Save(w io.Writer) error {
	rngState, err := a.r.MarshalBinary()
	if err != nil {
		return err
	}
	cp := checkpoint{
		FormatVersion: checkpointFormat,
		Dim:           a.Dim(),
		InitialDesign: a.opts.InitialDesign,
		Budget:        a.opts.Budget,
		X:             a.x,
		Y:             a.y,
		IssuedInit:    a.issuedInit,
		SinceRefit:    a.sinceRefit,
		History:       a.history,
		LastIndices:   a.lastIndices,
		RNGState:      rngState,
	}
	if a.surrogate != nil {
		hp := a.surrogate.Hyperparams()
		cp.GP = &hp
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// Load reconstructs an Algorithm from a checkpoint. opts must describe the
// same problem (space dimension, initial design, budget); the surrogate is
// rebuilt from the checkpointed hyperparameters without reoptimization, so
// the resumed run continues bit-identically to an uninterrupted one.
func Load(r io.Reader, opts Options) (*Algorithm, error) {
	if err := (&opts).defaults(); err != nil {
		return nil, err
	}
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("music: decode checkpoint: %w", err)
	}
	if cp.FormatVersion != checkpointFormat {
		return nil, fmt.Errorf("music: unsupported checkpoint format %d", cp.FormatVersion)
	}
	if cp.Dim != opts.Space.Dim() {
		return nil, fmt.Errorf("music: checkpoint dimension %d != space dimension %d", cp.Dim, opts.Space.Dim())
	}
	if cp.InitialDesign != opts.InitialDesign || cp.Budget != opts.Budget {
		return nil, errors.New("music: checkpoint was created with different design/budget options")
	}
	if len(cp.X) != len(cp.Y) {
		return nil, errors.New("music: corrupt checkpoint (x/y length mismatch)")
	}
	a := &Algorithm{opts: opts, r: rng.New(0)}
	if err := a.r.UnmarshalBinary(cp.RNGState); err != nil {
		return nil, err
	}
	a.x = cp.X
	a.y = cp.Y
	a.issuedInit = cp.IssuedInit
	a.sinceRefit = cp.SinceRefit
	a.history = cp.History
	a.lastIndices = cp.LastIndices
	if cp.GP != nil {
		if cp.GP.Surrogate != opts.Surrogate {
			return nil, fmt.Errorf("music: checkpoint surrogate kind %v != options kind %v", cp.GP.Surrogate, opts.Surrogate)
		}
		if cp.GP.Surrogate == gp.SparseSurrogate && cp.GP.Inducing != opts.Inducing {
			return nil, fmt.Errorf("music: checkpoint inducing count %d != options count %d", cp.GP.Inducing, opts.Inducing)
		}
		raw := make([]float64, len(a.y))
		copy(raw, a.y)
		g, err := gp.RestoreSurrogate(a.x, raw, *cp.GP, opts.GP)
		if err != nil {
			return nil, fmt.Errorf("music: restore surrogate: %w", err)
		}
		a.surrogate = g
	}
	return a, nil
}
