package music

import (
	"bytes"
	"math"
	"testing"

	"osprey/internal/design"
	"osprey/internal/gp"
)

func unitSpace(d int) *design.Space {
	params := make([]design.Parameter, d)
	for i := range params {
		params[i] = design.Parameter{Name: string(rune('a' + i)), Lo: 0, Hi: 1}
	}
	return design.NewSpace(params...)
}

// fastOpts keeps the GP small for unit tests.
func fastOpts(space *design.Space, seed uint64) Options {
	return Options{
		Space: space, InitialDesign: 20, Budget: 45, CandidatePool: 60,
		RefitEvery: 10, IndexSamples: 512, Seed: seed,
		GP: gp.Options{MaxIter: 60, Restarts: 1},
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing space accepted")
	}
	if _, err := New(Options{Space: unitSpace(2), InitialDesign: 50, Budget: 40}); err == nil {
		t.Fatal("budget below initial design accepted")
	}
}

func TestInitialDesignOnce(t *testing.T) {
	a, err := New(fastOpts(unitSpace(3), 1))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := a.InitialDesign()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("initial design size %d", len(pts))
	}
	for _, p := range pts {
		if !a.opts.Space.Contains(p) {
			t.Fatal("initial point outside space")
		}
	}
	if _, err := a.InitialDesign(); err == nil {
		t.Fatal("second initial design allowed")
	}
}

func TestNextPointRequiresSurrogate(t *testing.T) {
	a, _ := New(fastOpts(unitSpace(2), 2))
	if _, err := a.NextPoint(); err == nil {
		t.Fatal("NextPoint before Observe allowed")
	}
}

func TestObserveValidation(t *testing.T) {
	a, _ := New(fastOpts(unitSpace(2), 3))
	if err := a.Observe([][]float64{{0.5, 0.5}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := a.Observe([][]float64{{0.5}}, []float64{1}); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if err := a.Observe([][]float64{{0.5, 0.5}}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN response accepted")
	}
}

func TestSequentialRecoversAdditiveIndices(t *testing.T) {
	// f = 4*x0 + 1*x1 (+0*x2): S = (16, 1, 0)/17.
	space := unitSpace(3)
	a, err := New(fastOpts(space, 4))
	if err != nil {
		t.Fatal(err)
	}
	f := func(x []float64) (float64, error) { return 4*x[0] + x[1], nil }
	if err := RunSequential(a, f); err != nil {
		t.Fatal(err)
	}
	if !a.Done() {
		t.Fatal("sequential run did not exhaust budget")
	}
	idx, err := a.Indices()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{16.0 / 17, 1.0 / 17, 0}
	for i := range want {
		if math.Abs(idx[i]-want[i]) > 0.08 {
			t.Fatalf("S_%d = %v, want %v (all: %v)", i, idx[i], want[i], idx)
		}
	}
}

func TestHistoryGrowsWithObservations(t *testing.T) {
	space := unitSpace(2)
	a, _ := New(fastOpts(space, 5))
	if err := RunSequential(a, func(x []float64) (float64, error) { return x[0] * x[1], nil }); err != nil {
		t.Fatal(err)
	}
	h := a.History()
	// One snapshot at the initial design + one per refinement step.
	want := 1 + (45 - 20)
	if len(h) != want {
		t.Fatalf("history length %d, want %d", len(h), want)
	}
	if h[0].N != 20 || h[len(h)-1].N != 45 {
		t.Fatalf("history sample counts wrong: first %d last %d", h[0].N, h[len(h)-1].N)
	}
	for _, snap := range h {
		for _, s := range snap.Indices {
			if s < 0 || s > 1 {
				t.Fatalf("index %v outside [0,1]", s)
			}
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	space := unitSpace(2)
	run := func() []float64 {
		a, _ := New(fastOpts(space, 9))
		if err := RunSequential(a, func(x []float64) (float64, error) {
			return math.Sin(3*x[0]) + x[1], nil
		}); err != nil {
			t.Fatal(err)
		}
		idx, _ := a.Indices()
		return idx
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed MUSIC runs diverged")
		}
	}
}

func TestEIGFConcentratesSamplesWhereFunctionVaries(t *testing.T) {
	// Response varies only for x0 > 0.7 (a sharp ridge); EIGF should place
	// more refinement points in that region than uniform sampling would.
	space := unitSpace(2)
	opts := fastOpts(space, 11)
	opts.Budget = 60
	a, _ := New(opts)
	f := func(x []float64) (float64, error) {
		if x[0] > 0.7 {
			return math.Sin(20 * x[0]), nil
		}
		return 0, nil
	}
	if err := RunSequential(a, f); err != nil {
		t.Fatal(err)
	}
	inRidge := 0
	refinements := a.x[opts.InitialDesign:]
	for _, u := range refinements {
		if u[0] > 0.7 {
			inRidge++
		}
	}
	frac := float64(inRidge) / float64(len(refinements))
	if frac < 0.45 { // uniform would give 0.3
		t.Fatalf("EIGF placed only %.0f%% of refinements in the active region", frac*100)
	}
}

func TestAcquisitionAblationsRun(t *testing.T) {
	for _, acq := range []AcqKind{EIGF, Variance, Random} {
		space := unitSpace(2)
		opts := fastOpts(space, 13)
		opts.Acquisition = acq
		opts.Budget = 30
		a, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSequential(a, func(x []float64) (float64, error) { return x[0], nil }); err != nil {
			t.Fatalf("%v driver failed: %v", acq, err)
		}
		idx, err := a.Indices()
		if err != nil {
			t.Fatal(err)
		}
		if idx[0] < 0.8 {
			t.Fatalf("%v: dominant index %v too low", acq, idx[0])
		}
	}
}

func TestInterleavedInstancesMatchSequential(t *testing.T) {
	// Two instances pumped cooperatively must produce exactly the results
	// they produce when run back-to-back, because each owns its RNG.
	space := unitSpace(2)
	f := func(x []float64) (float64, error) { return x[0] + 2*x[1], nil }

	seq := make([][]float64, 2)
	for i := range seq {
		a, _ := New(fastOpts(space, uint64(20+i)))
		if err := RunSequential(a, f); err != nil {
			t.Fatal(err)
		}
		seq[i], _ = a.Indices()
	}

	insts := make([]*Algorithm, 2)
	for i := range insts {
		a, _ := New(fastOpts(space, uint64(20+i)))
		pts, _ := a.InitialDesign()
		vals := make([]float64, len(pts))
		for j, p := range pts {
			vals[j], _ = f(p)
		}
		if err := a.Observe(pts, vals); err != nil {
			t.Fatal(err)
		}
		insts[i] = a
	}
	for {
		active := false
		for _, a := range insts {
			if a.Done() {
				continue
			}
			active = true
			p, err := a.NextPoint()
			if err != nil {
				t.Fatal(err)
			}
			v, _ := f(p)
			if err := a.Observe([][]float64{p}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
		if !active {
			break
		}
	}
	for i, a := range insts {
		idx, _ := a.Indices()
		for j := range idx {
			if idx[j] != seq[i][j] {
				t.Fatalf("interleaved instance %d diverged from sequential run", i)
			}
		}
	}
}

func TestAcqKindString(t *testing.T) {
	if EIGF.String() != "eigf" || Variance.String() != "variance" || Random.String() != "random" {
		t.Fatal("AcqKind names wrong")
	}
}

func BenchmarkMUSICStep(b *testing.B) {
	space := unitSpace(5)
	opts := fastOpts(space, 1)
	opts.Budget = 1000000 // never done
	a, _ := New(opts)
	pts, _ := a.InitialDesign()
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[0] + p[1]*p[2]
	}
	if err := a.Observe(pts, vals); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.NextPoint()
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Observe([][]float64{p}, []float64{p[0]}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNextBatchRespectsBudget(t *testing.T) {
	space := unitSpace(2)
	opts := fastOpts(space, 31)
	opts.InitialDesign = 10
	opts.Budget = 13
	opts.BatchSize = 5
	a, _ := New(opts)
	pts, _ := a.InitialDesign()
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[0]
	}
	if err := a.Observe(pts, vals); err != nil {
		t.Fatal(err)
	}
	batch, err := a.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 { // budget 13 - 10 observed = 3 remaining
		t.Fatalf("batch size %d, want 3 (budget cap)", len(batch))
	}
	for _, p := range batch {
		if !space.Contains(p) {
			t.Fatal("batch point outside space")
		}
	}
}

func TestNextBatchPointsAreDistinct(t *testing.T) {
	space := unitSpace(2)
	opts := fastOpts(space, 32)
	opts.BatchSize = 4
	a, _ := New(opts)
	pts, _ := a.InitialDesign()
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[0] + p[1]
	}
	if err := a.Observe(pts, vals); err != nil {
		t.Fatal(err)
	}
	batch, err := a.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i := 0; i < len(batch); i++ {
		for j := i + 1; j < len(batch); j++ {
			same := true
			for k := range batch[i] {
				if batch[i][k] != batch[j][k] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("duplicate point in EIGF batch")
			}
		}
	}
}

func TestTrackTotalIndices(t *testing.T) {
	space := unitSpace(2)
	opts := fastOpts(space, 33)
	opts.TrackTotal = true
	opts.Budget = 30
	a, _ := New(opts)
	// Pure interaction: first-order ~0, total ~1 for both inputs.
	f := func(x []float64) (float64, error) { return (x[0] - 0.5) * (x[1] - 0.5), nil }
	if err := RunSequential(a, f); err != nil {
		t.Fatal(err)
	}
	h := a.History()
	last := h[len(h)-1]
	if last.Total == nil {
		t.Fatal("TrackTotal did not record totals")
	}
	for j := 0; j < 2; j++ {
		if last.Indices[j] > 0.25 {
			t.Fatalf("interaction leaked into S_%d = %v", j, last.Indices[j])
		}
		if last.Total[j] < 0.5 {
			t.Fatalf("ST_%d = %v, want high for pure interaction", j, last.Total[j])
		}
	}
}

func TestCheckpointResumeIsBitIdentical(t *testing.T) {
	space := unitSpace(2)
	f := func(x []float64) (float64, error) { return math.Sin(4*x[0]) + x[1]*x[1], nil }
	opts := fastOpts(space, 77)
	opts.Budget = 35

	// Reference: uninterrupted run.
	ref, _ := New(opts)
	if err := RunSequential(ref, f); err != nil {
		t.Fatal(err)
	}
	refIdx, _ := ref.Indices()

	// Interrupted run: stop halfway, checkpoint, resume, finish.
	a, _ := New(opts)
	pts, _ := a.InitialDesign()
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i], _ = f(p)
	}
	if err := a.Observe(pts, vals); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ { // part of the refinement phase
		p, err := a.NextPoint()
		if err != nil {
			t.Fatal(err)
		}
		v, _ := f(p)
		if err := a.Observe([][]float64{p}, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != a.N() {
		t.Fatalf("restored N = %d, want %d", b.N(), a.N())
	}
	for !b.Done() {
		p, err := b.NextPoint()
		if err != nil {
			t.Fatal(err)
		}
		v, _ := f(p)
		if err := b.Observe([][]float64{p}, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	gotIdx, _ := b.Indices()
	for j := range refIdx {
		if gotIdx[j] != refIdx[j] {
			t.Fatalf("resumed run diverged from uninterrupted run: %v vs %v", gotIdx, refIdx)
		}
	}
	// History is continuous across the checkpoint.
	h := b.History()
	if h[0].N != opts.InitialDesign || h[len(h)-1].N != opts.Budget {
		t.Fatalf("history boundaries wrong after resume: %d..%d", h[0].N, h[len(h)-1].N)
	}
}

// TestCheckpointRoundTripSurrogateKinds runs the interrupt-checkpoint-resume
// scheme under both surrogate implementations: for each kind, a run stopped
// mid-refinement and resumed from its checkpoint must finish with exactly the
// index estimates of an uninterrupted run. For the sparse kind this
// exercises the recorded inducing indices — re-selection at load time would
// diverge.
func TestCheckpointRoundTripSurrogateKinds(t *testing.T) {
	space := unitSpace(2)
	f := func(x []float64) (float64, error) { return math.Sin(4*x[0]) + x[1]*x[1], nil }
	for _, kind := range []gp.SurrogateKind{gp.DenseSurrogate, gp.SparseSurrogate} {
		opts := fastOpts(space, 81)
		opts.Budget = 32
		opts.Surrogate = kind
		if kind == gp.SparseSurrogate {
			opts.Inducing = 16
		}

		ref, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSequential(ref, f); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		refIdx, _ := ref.Indices()

		a, _ := New(opts)
		pts, _ := a.InitialDesign()
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i], _ = f(p)
		}
		if err := a.Observe(pts, vals); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			p, err := a.NextPoint()
			if err != nil {
				t.Fatal(err)
			}
			v, _ := f(p)
			if err := a.Observe([][]float64{p}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatal(err)
		}
		// A checkpoint must not load under a different surrogate kind.
		wrong := opts
		if kind == gp.DenseSurrogate {
			wrong.Surrogate = gp.SparseSurrogate
		} else {
			wrong.Surrogate = gp.DenseSurrogate
			wrong.Inducing = 0
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), wrong); err == nil {
			t.Fatalf("%v: checkpoint loaded under mismatched surrogate kind", kind)
		}
		b, err := Load(bytes.NewReader(buf.Bytes()), opts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for !b.Done() {
			p, err := b.NextPoint()
			if err != nil {
				t.Fatal(err)
			}
			v, _ := f(p)
			if err := b.Observe([][]float64{p}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
		gotIdx, _ := b.Indices()
		for j := range refIdx {
			if gotIdx[j] != refIdx[j] {
				t.Fatalf("%v: resumed run diverged: %v vs %v", kind, gotIdx, refIdx)
			}
		}
	}
}

func TestLoadValidation(t *testing.T) {
	space := unitSpace(2)
	opts := fastOpts(space, 78)
	a, _ := New(opts)
	pts, _ := a.InitialDesign()
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p[0]
	}
	a.Observe(pts, vals)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Wrong dimension.
	bad := fastOpts(unitSpace(3), 78)
	if _, err := Load(bytes.NewReader(buf.Bytes()), bad); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Wrong budget.
	bad2 := fastOpts(space, 78)
	bad2.Budget = 99
	if _, err := Load(bytes.NewReader(buf.Bytes()), bad2); err == nil {
		t.Fatal("budget mismatch accepted")
	}
	// Garbage.
	if _, err := Load(bytes.NewReader([]byte("nope")), opts); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

func TestStabilizedDetection(t *testing.T) {
	space := unitSpace(2)
	opts := fastOpts(space, 41)
	opts.Budget = 40
	a, _ := New(opts)
	// Before any history: not stabilized.
	if a.Stabilized(0.05, 3) {
		t.Fatal("empty algorithm reports stabilized")
	}
	if err := RunSequential(a, func(x []float64) (float64, error) { return 3 * x[0], nil }); err != nil {
		t.Fatal(err)
	}
	// A trivially additive function stabilizes fast.
	if !a.Stabilized(0.05, 5) {
		idx, _ := a.Indices()
		t.Fatalf("simple function did not stabilize: %v", idx)
	}
	// Degenerate parameters never report stabilized.
	if a.Stabilized(0, 5) || a.Stabilized(0.05, 1) {
		t.Fatal("degenerate stabilization parameters accepted")
	}
}
