// Package music implements the MUSIC (Minimize Uncertainty in Sobol Index
// Convergence) active-learning GSA algorithm of §3.1.2 (Chauhan et al.
// 2024): a Gaussian-process surrogate trained on a limited number of
// simulations, refined by the EIGF (Expected Improvement in Global Fit)
// acquisition function, from which first-order Sobol indices are estimated
// after every new sample.
//
// The algorithm is deliberately structured as a resumable state machine —
// InitialDesign / Observe / NextPoint — rather than a closed loop, because
// the paper's workflow interleaves 10 instances over one EMEWS worker pool:
// "each algorithm performs a submission of tasks, and gets the Futures for
// those task evaluations back ... ceding control to the next instance"
// (§3.2). Any driver (sequential, interleaved, EMEWS-backed) can pump it.
package music

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"osprey/internal/design"
	"osprey/internal/gp"
	"osprey/internal/parallel"
	"osprey/internal/rng"
	"osprey/internal/sobolidx"
)

// AcqKind selects the acquisition function.
type AcqKind int

const (
	// EIGF is the paper's choice: (mu(x)-y(nearest))^2 + s^2(x), using the
	// D1 distance formulation (nearest training point by Euclidean
	// distance in the unit cube).
	EIGF AcqKind = iota
	// Variance is the ALM ablation: pick the candidate with the largest
	// posterior variance.
	Variance
	// Random refills with uniform random points (the no-surrogate-guidance
	// ablation).
	Random
)

func (a AcqKind) String() string {
	switch a {
	case EIGF:
		return "eigf"
	case Variance:
		return "variance"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("AcqKind(%d)", int(a))
	}
}

// Options configures an Algorithm instance.
type Options struct {
	// Space defines the native parameter ranges (Table 1 for MetaRVM).
	Space *design.Space
	// InitialDesign is the LHS seed size (default 30).
	InitialDesign int
	// Budget is the total number of model evaluations, including the
	// initial design (default 300 — Figure 4's x-axis range).
	Budget int
	// CandidatePool is the size of the fresh LHS candidate set scored by
	// the acquisition function each iteration (default 200).
	CandidatePool int
	// RefitEvery re-optimizes GP hyperparameters every k observations
	// (default 20); between refits the factorization is updated with
	// hyperparameters held fixed.
	RefitEvery int
	// IndexSamples is the base sample size of the surrogate Sobol
	// estimator (default 512; the surrogate is cheap, the QMC design
	// makes this plenty).
	IndexSamples int
	// Acquisition selects the refinement criterion (default EIGF).
	Acquisition AcqKind
	// BatchSize is how many points NextBatch proposes per iteration
	// (default 1, the paper's setting). Larger batches trade a little
	// acquisition optimality for better worker-pool packing.
	BatchSize int
	// TrackTotal additionally estimates total-order indices at each
	// snapshot (the paper reports first-order; totals come nearly free
	// from the same pick–freeze design).
	TrackTotal bool
	// Seed drives all of the instance's randomness.
	Seed uint64
	// GP carries surrogate fitting options.
	GP gp.Options
	// Surrogate selects the surrogate implementation (default the exact
	// dense GP). SparseSurrogate switches to the inducing-point
	// approximation, which is what makes 10k-point budgets tractable.
	Surrogate gp.SurrogateKind
	// Inducing caps the sparse surrogate's inducing-point count (defaulted
	// to gp.DefaultInducing when sparse; ignored for dense).
	Inducing int
}

func (o *Options) defaults() error {
	if o.Space == nil || o.Space.Dim() == 0 {
		return errors.New("music: Options.Space is required")
	}
	if o.InitialDesign <= 0 {
		o.InitialDesign = 30
	}
	if o.Budget <= 0 {
		o.Budget = 300
	}
	if o.Budget <= o.InitialDesign {
		return errors.New("music: Budget must exceed InitialDesign")
	}
	if o.CandidatePool <= 0 {
		o.CandidatePool = 200
	}
	if o.RefitEvery <= 0 {
		o.RefitEvery = 20
	}
	if o.IndexSamples <= 0 {
		o.IndexSamples = 512
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.GP.MaxIter == 0 {
		o.GP.MaxIter = 80
	}
	if o.GP.Restarts == 0 {
		o.GP.Restarts = 1
	}
	if o.Surrogate == gp.SparseSurrogate && o.Inducing <= 0 {
		// Normalize here so checkpoints record the effective count and Load
		// can verify compatibility against defaulted options.
		o.Inducing = gp.DefaultInducing
	}
	return nil
}

// Snapshot records the Sobol index estimates after the N-th evaluation —
// one point of a Figure 4/5 convergence curve.
type Snapshot struct {
	N       int
	Indices []float64
	// Total holds total-order estimates when Options.TrackTotal is set.
	Total []float64
}

// Algorithm is one MUSIC instance. It is not safe for concurrent use; the
// interleaving pattern runs instances cooperatively.
type Algorithm struct {
	opts Options
	r    *rng.Stream

	// Training data in unit-cube coordinates and raw response values.
	x [][]float64
	y []float64

	surrogate   gp.Surrogate
	sinceRefit  int
	issuedInit  bool
	history     []Snapshot
	lastIndices []float64

	// Index-estimation fast path: the QMC pick–freeze design is identical
	// for every snapshot, so it is built once and its kernel columns against
	// the growing training set are cached across snapshots (see
	// gp.MeanCache). idxVals is the reused surrogate-mean buffer.
	idxDesign *sobolidx.Design
	idxCache  *gp.MeanCache
	idxVals   []float64
}

// New validates options and creates an instance.
func New(opts Options) (*Algorithm, error) {
	if err := (&opts).defaults(); err != nil {
		return nil, err
	}
	return &Algorithm{opts: opts, r: rng.New(opts.Seed).Split("music")}, nil
}

// Dim returns the parameter dimension.
func (a *Algorithm) Dim() int { return a.opts.Space.Dim() }

// N returns the number of observations so far.
func (a *Algorithm) N() int { return len(a.y) }

// Done reports whether the evaluation budget is exhausted.
func (a *Algorithm) Done() bool { return len(a.y) >= a.opts.Budget }

// InitialDesign returns the LHS seed points (native scale). It can be
// called once; subsequent points come from NextPoint.
func (a *Algorithm) InitialDesign() ([][]float64, error) {
	if a.issuedInit {
		return nil, errors.New("music: initial design already issued")
	}
	a.issuedInit = true
	return design.LatinHypercubeIn(a.r.Split("lhs"), a.opts.InitialDesign, a.opts.Space), nil
}

// Observe records evaluated points (native scale) and their responses,
// refits the surrogate, and appends an index snapshot. Points may arrive in
// any batch size, supporting both the initial design and one-at-a-time
// refinement.
func (a *Algorithm) Observe(points [][]float64, values []float64) error {
	if len(points) != len(values) {
		return errors.New("music: points/values length mismatch")
	}
	if len(points) == 0 {
		return nil
	}
	for i, p := range points {
		if len(p) != a.Dim() {
			return fmt.Errorf("music: point %d has dimension %d, want %d", i, len(p), a.Dim())
		}
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return fmt.Errorf("music: non-finite response at point %d", i)
		}
		a.x = append(a.x, a.opts.Space.Unscale(p))
		a.y = append(a.y, values[i])
	}
	if len(a.y) < a.opts.InitialDesign {
		return nil // wait for the full seed before fitting
	}
	if err := a.refit(len(points)); err != nil {
		return err
	}
	return a.snapshot()
}

func (a *Algorithm) refit(added int) error {
	a.sinceRefit += added
	if a.surrogate == nil || a.sinceRefit >= a.opts.RefitEvery {
		g, err := gp.FitSurrogate(a.x, a.y, a.opts.Surrogate, a.opts.Inducing, a.opts.GP)
		if err != nil {
			return fmt.Errorf("music: surrogate fit: %w", err)
		}
		a.surrogate = g
		a.sinceRefit = 0
		return nil
	}
	// Cheap path: append the new tail points with hyperparameters fixed.
	start := len(a.x) - added
	for i := start; i < len(a.x); i++ {
		if err := a.surrogate.Add(a.x[i], a.y[i], false); err != nil {
			return fmt.Errorf("music: surrogate update: %w", err)
		}
	}
	return nil
}

// snapshot estimates current first-order (and optionally total-order)
// indices from the surrogate mean. The pick–freeze design is cached across
// snapshots and the surrogate is scored through a kernel-column cache, so
// each snapshot after the first only computes kernel entries for training
// points added since — while producing the exact values a fresh
// sobolidx.Estimate over PredictMean would.
func (a *Algorithm) snapshot() error {
	if a.idxDesign == nil {
		dg, err := sobolidx.NewDesign(a.Dim(), a.opts.IndexSamples, nil)
		if err != nil {
			return err
		}
		a.idxDesign = dg
		a.idxCache = gp.NewMeanCache(dg.Points())
		a.idxVals = make([]float64, len(dg.Points()))
	}
	a.idxCache.Means(a.surrogate, a.idxVals)
	res := a.idxDesign.Estimate(a.idxVals, true)
	snap := Snapshot{N: len(a.y), Indices: res.First}
	if a.opts.TrackTotal {
		snap.Total = res.Total
	}
	a.lastIndices = append([]float64(nil), snap.Indices...)
	a.history = append(a.history, snap)
	return nil
}

// NextPoint selects the next evaluation location (native scale) by scoring
// a fresh candidate pool with the acquisition function.
func (a *Algorithm) NextPoint() ([]float64, error) {
	pts, err := a.nextBatch(1)
	if err != nil {
		return nil, err
	}
	return pts[0], nil
}

// NextBatch proposes Options.BatchSize points at once: the top-scoring
// candidates of the pool, capped to the remaining budget.
func (a *Algorithm) NextBatch() ([][]float64, error) {
	q := a.opts.BatchSize
	if rem := a.opts.Budget - len(a.y); q > rem {
		q = rem
	}
	return a.nextBatch(q)
}

func (a *Algorithm) nextBatch(q int) ([][]float64, error) {
	if a.Done() || q <= 0 {
		return nil, errors.New("music: budget exhausted")
	}
	if a.surrogate == nil {
		return nil, errors.New("music: observe the initial design first")
	}
	cands := design.LatinHypercube(a.r.Split(fmt.Sprintf("cand/%d", len(a.y))), a.opts.CandidatePool, a.Dim())
	if q > len(cands) {
		q = len(cands)
	}
	if a.opts.Acquisition == Random {
		out := make([][]float64, q)
		for i := range out {
			out[i] = a.opts.Space.Scale(cands[a.r.Intn(len(cands))])
		}
		return out, nil
	}
	type scored struct {
		score float64
		pt    []float64
	}
	// One parallel pass scores the whole pool: each worker chunk carries
	// its own prediction scratch and fuses the posterior query with the
	// nearest-observation scan. Scores land in per-candidate slots, so the
	// ranking below sees exactly what the serial loop produced.
	all := make([]scored, len(cands))
	parallel.ForChunk(len(cands), func(lo, hi int) {
		pred := a.surrogate.NewPredictor()
		for i := lo; i < hi; i++ {
			c := cands[i]
			var score float64
			switch a.opts.Acquisition {
			case Variance:
				_, v := pred.Predict(c)
				score = v
			default: // EIGF with the D1 nearest-observation formulation
				mu, v := pred.Predict(c)
				yNear := a.nearestY(c)
				d := mu - yNear
				score = d*d + v
			}
			all[i] = scored{score: score, pt: c}
		}
	})
	sort.Slice(all, func(i, j int) bool { return all[i].score > all[j].score })
	out := make([][]float64, q)
	for i := 0; i < q; i++ {
		out[i] = a.opts.Space.Scale(all[i].pt)
	}
	return out, nil
}

// nearestY returns the response at the training point closest to u
// (Euclidean distance in the unit cube) — the D1 distance term of EIGF.
func (a *Algorithm) nearestY(u []float64) float64 {
	bestD := math.MaxFloat64
	bestY := 0.0
	for i, xi := range a.x {
		d := 0.0
		for j := range u {
			diff := u[j] - xi[j]
			d += diff * diff
		}
		if d < bestD {
			bestD = d
			bestY = a.y[i]
		}
	}
	return bestY
}

// Indices returns the most recent first-order Sobol index estimates.
func (a *Algorithm) Indices() ([]float64, error) {
	if a.lastIndices == nil {
		return nil, errors.New("music: no surrogate fitted yet")
	}
	return append([]float64(nil), a.lastIndices...), nil
}

// History returns the convergence trajectory (index estimates vs sample
// size), the series plotted in Figures 4 and 5.
func (a *Algorithm) History() []Snapshot {
	out := make([]Snapshot, len(a.history))
	copy(out, a.history)
	return out
}

// Surrogate exposes the fitted surrogate (nil before the initial design is
// observed), for diagnostics and ablations.
func (a *Algorithm) Surrogate() gp.Surrogate { return a.surrogate }

// RunSequential drives one instance to completion against a synchronous
// evaluator — the single-instance reference driver used by tests and the
// PCE comparison. evaluate receives native-scale points.
func RunSequential(a *Algorithm, evaluate func([]float64) (float64, error)) error {
	pts, err := a.InitialDesign()
	if err != nil {
		return err
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		if vals[i], err = evaluate(p); err != nil {
			return err
		}
	}
	if err := a.Observe(pts, vals); err != nil {
		return err
	}
	for !a.Done() {
		p, err := a.NextPoint()
		if err != nil {
			return err
		}
		v, err := evaluate(p)
		if err != nil {
			return err
		}
		if err := a.Observe([][]float64{p}, []float64{v}); err != nil {
			return err
		}
	}
	return nil
}

// Stabilized reports whether every index estimate has stayed within tol of
// its current value over the last `window` snapshots — the convergence
// criterion behind Figure 4's "stabilizes by N samples" reading, usable as
// an early-stopping rule for expensive models.
func (a *Algorithm) Stabilized(tol float64, window int) bool {
	if tol <= 0 || window <= 1 || len(a.history) < window {
		return false
	}
	last := a.history[len(a.history)-1].Indices
	for _, snap := range a.history[len(a.history)-window:] {
		for j, v := range snap.Indices {
			if math.Abs(v-last[j]) > tol {
				return false
			}
		}
	}
	return true
}
