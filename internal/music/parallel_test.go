package music

import (
	"math"
	"testing"

	"osprey/internal/parallel"
)

// TestTrajectorySerialParallelEquality is the MUSIC leg of the
// repository-wide determinism contract: a full adaptive trajectory —
// initial design, candidate scoring, GP refits, and every per-snapshot
// Sobol' estimate — must be bit-identical at one worker and at eight.
func TestTrajectorySerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	space := unitSpace(3)
	f := func(x []float64) (float64, error) {
		return math.Sin(3*x[0]) + 2*x[1]*x[1] + 0.3*x[2], nil
	}
	run := func(workers int) ([]Snapshot, []float64) {
		parallel.SetWorkers(workers)
		opts := fastOpts(space, 17)
		opts.TrackTotal = true
		a, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunSequential(a, f); err != nil {
			t.Fatal(err)
		}
		idx, err := a.Indices()
		if err != nil {
			t.Fatal(err)
		}
		return a.History(), idx
	}
	ha, ia := run(1)
	hb, ib := run(8)
	if len(ha) != len(hb) {
		t.Fatalf("history lengths differ: %d vs %d", len(ha), len(hb))
	}
	for s := range ha {
		if ha[s].N != hb[s].N {
			t.Fatalf("snapshot %d: sample counts differ", s)
		}
		for d := range ha[s].Indices {
			if ha[s].Indices[d] != hb[s].Indices[d] {
				t.Fatalf("snapshot %d dim %d: first-order index %x (serial) vs %x (parallel)",
					s, d, ha[s].Indices[d], hb[s].Indices[d])
			}
			if ha[s].Total[d] != hb[s].Total[d] {
				t.Fatalf("snapshot %d dim %d: total index differs", s, d)
			}
		}
	}
	for d := range ia {
		if ia[d] != ib[d] {
			t.Fatalf("final index %d: serial and parallel runs differ", d)
		}
	}
}

// TestBatchSelectionSerialParallelEquality pins the parallel candidate
// scoring in nextBatch: the ranked batch must not depend on worker count.
func TestBatchSelectionSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	space := unitSpace(2)
	run := func(workers int) [][]float64 {
		parallel.SetWorkers(workers)
		opts := fastOpts(space, 23)
		opts.BatchSize = 5
		a, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := a.InitialDesign()
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p[0]*p[0] + 0.5*p[1]
		}
		if err := a.Observe(pts, vals); err != nil {
			t.Fatal(err)
		}
		batch, err := a.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		return batch
	}
	a := run(1)
	b := run(8)
	if len(a) != len(b) {
		t.Fatalf("batch sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatalf("batch point %d dim %d: serial and parallel selections differ", i, d)
			}
		}
	}
}
