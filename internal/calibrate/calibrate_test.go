package calibrate

import (
	"math"
	"testing"

	"osprey/internal/design"
	"osprey/internal/metarvm"
)

// quadratic test simulator: output is a constant series whose level depends
// on the parameters; the "observation" is generated at a known truth.
func toySim(truth []float64) Simulator {
	return func(x []float64, seed uint64) ([]float64, error) {
		level := 0.0
		for j := range x {
			d := x[j] - truth[j]
			level += d * d
		}
		out := make([]float64, 20)
		for i := range out {
			out[i] = 10 + 50*level + 0.3*float64(i)
		}
		return out, nil
	}
}

func toySpace() *design.Space {
	return design.NewSpace(
		design.Parameter{Name: "a", Lo: 0, Hi: 1},
		design.Parameter{Name: "b", Lo: 0, Hi: 1},
	)
}

func toyObserved() []float64 {
	out := make([]float64, 20)
	for i := range out {
		out[i] = 10 + 0.3*float64(i) // level at truth
	}
	return out
}

func TestDistanceFunctions(t *testing.T) {
	a := []float64{1, 2, 3}
	if RMSE(a, a) != 0 {
		t.Fatal("RMSE of identical series nonzero")
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if !math.IsInf(RMSE(nil, nil), 1) {
		t.Fatal("empty RMSE should be +Inf")
	}
	// Normalized version is scale-free.
	obs := []float64{10, 20, 30, 40}
	sim := []float64{11, 21, 31, 41}
	obs10 := []float64{100, 200, 300, 400}
	sim10 := []float64{110, 210, 310, 410}
	if math.Abs(NormalizedRMSE(sim, obs)-NormalizedRMSE(sim10, obs10)) > 1e-12 {
		t.Fatal("NormalizedRMSE not scale-free")
	}
}

func TestABCRejectionRecoversTruth(t *testing.T) {
	truth := []float64{0.3, 0.7}
	res, err := ABCRejection(toySim(truth), Options{
		Space: toySpace(), Observed: toyObserved(),
		Budget: 400, AcceptFraction: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 400 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if len(res.Samples) != 20 {
		t.Fatalf("kept %d samples, want 20", len(res.Samples))
	}
	mean := res.PosteriorMean()
	for j := range truth {
		if math.Abs(mean[j]-truth[j]) > 0.1 {
			t.Fatalf("posterior mean[%d] = %v, want %v", j, mean[j], truth[j])
		}
	}
	best := res.Best()
	if best.Distance > res.Threshold {
		t.Fatal("best sample exceeds the acceptance threshold")
	}
	lo := res.PosteriorQuantile(0.05)
	hi := res.PosteriorQuantile(0.95)
	for j := range truth {
		if lo[j] > truth[j] || hi[j] < truth[j] {
			t.Fatalf("90%% interval [%v,%v] misses truth %v", lo[j], hi[j], truth[j])
		}
	}
}

func TestABCValidation(t *testing.T) {
	if _, err := ABCRejection(nil, Options{Space: toySpace(), Observed: toyObserved()}); err == nil {
		t.Fatal("nil simulator accepted")
	}
	if _, err := ABCRejection(toySim([]float64{0.5, 0.5}), Options{Observed: toyObserved()}); err == nil {
		t.Fatal("missing space accepted")
	}
	if _, err := ABCRejection(toySim([]float64{0.5, 0.5}), Options{Space: toySpace()}); err == nil {
		t.Fatal("missing observations accepted")
	}
}

func TestSurrogateABCBeatsRejectionAtEqualBudget(t *testing.T) {
	truth := []float64{0.62, 0.38}
	budget := 120
	run := func(surrogate bool) float64 {
		if surrogate {
			res, err := SurrogateABC(toySim(truth), SurrogateABCOptions{
				Options: Options{
					Space: toySpace(), Observed: toyObserved(),
					Budget: budget, AcceptFraction: 0.1, Seed: 3,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Best().Distance
		}
		res, err := ABCRejection(toySim(truth), Options{
			Space: toySpace(), Observed: toyObserved(),
			Budget: budget, AcceptFraction: 0.1, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Best().Distance
	}
	plain := run(false)
	smart := run(true)
	t.Logf("best distance: rejection %.4f vs surrogate %.4f", plain, smart)
	if smart > plain*1.05 {
		t.Fatalf("surrogate screening (%.4f) did not improve on rejection (%.4f)", smart, plain)
	}
}

func TestSurrogateABCBudgetAccounting(t *testing.T) {
	truth := []float64{0.5, 0.5}
	res, err := SurrogateABC(toySim(truth), SurrogateABCOptions{
		Options: Options{
			Space: toySpace(), Observed: toyObserved(),
			Budget: 60, AcceptFraction: 0.1, Seed: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 60 {
		t.Fatalf("true simulator evaluations = %d, want exactly the budget", res.Evaluations)
	}
	if _, err := SurrogateABC(toySim(truth), SurrogateABCOptions{
		Options: Options{Space: toySpace(), Observed: toyObserved(), Budget: 4, Seed: 4},
	}); err == nil {
		t.Fatal("budget smaller than pilot accepted")
	}
}

func TestCalibrateMetaRVMTransmission(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Planted-truth recovery on the real simulator: calibrate ts against
	// a hospitalization curve generated at a known ts.
	const trueTS = 0.42
	space := design.NewSpace(design.Parameter{Name: "ts", Lo: 0.1, Hi: 0.9})
	gen := func(ts float64, seed uint64) []float64 {
		cfg := metarvm.DefaultConfig()
		cfg.Params.TS = ts
		cfg.Seed = seed
		res, err := metarvm.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res.Days))
		for i, d := range res.Days {
			out[i] = float64(d.NewHospitalizations)
		}
		return out
	}
	observed := gen(trueTS, 999)

	sim := func(x []float64, seed uint64) ([]float64, error) {
		return gen(x[0], seed), nil
	}
	res, err := ABCRejection(sim, Options{
		Space: space, Observed: observed,
		Budget: 80, AcceptFraction: 0.1, Replicates: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.PosteriorMean()
	if math.Abs(mean[0]-trueTS) > 0.08 {
		t.Fatalf("calibrated ts = %v, truth %v", mean[0], trueTS)
	}
}

func TestResultEmpty(t *testing.T) {
	r := &Result{}
	if r.PosteriorMean() != nil || r.Best() != nil || r.PosteriorQuantile(0.5) != nil {
		t.Fatal("empty result should return nils")
	}
}
