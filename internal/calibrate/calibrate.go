// Package calibrate fits MetaRVM-style simulator parameters to observed
// epidemic data. The paper motivates its GSA as a tool that "facilitates
// dimensional reduction to aid in model calibration efforts" (§3.1.1); this
// package supplies the calibration step itself, in two flavors:
//
//   - ABC rejection: simulate at many design points, keep the parameter
//     sets whose output is closest to the observations — assumption-free
//     and embarrassingly parallel (each evaluation is one EMEWS task).
//   - Surrogate-accelerated ABC: fit a Gaussian-process surrogate to the
//     simulator's distance surface on a small design, then screen a huge
//     candidate set through the surrogate and simulate only the promising
//     fraction — the same surrogate machinery MUSIC uses, pointed at
//     calibration.
//
// Both return weighted posterior samples over the parameter space that
// downstream flows (scenario projection, R(t) priors) can consume.
package calibrate

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"osprey/internal/design"
	"osprey/internal/gp"
	"osprey/internal/rng"
	"osprey/internal/stats"
)

// Simulator evaluates a parameter point (native scale) into an output
// series comparable with the observations (e.g. daily hospitalizations).
type Simulator func(x []float64, seed uint64) ([]float64, error)

// Distance measures discrepancy between a simulated and an observed
// series. Implementations must be nonnegative, 0 = perfect match.
type Distance func(sim, obs []float64) float64

// RMSE is the default distance: root mean squared error over the
// overlapping prefix.
func RMSE(sim, obs []float64) float64 {
	n := len(sim)
	if len(obs) < n {
		n = len(obs)
	}
	if n == 0 {
		return math.Inf(1)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := sim[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// NormalizedRMSE scales RMSE by the observation standard deviation, making
// tolerances comparable across data magnitudes.
func NormalizedRMSE(sim, obs []float64) float64 {
	sd := stats.StdDev(obs)
	if !(sd > 0) {
		return RMSE(sim, obs)
	}
	return RMSE(sim, obs) / sd
}

// Sample is one retained parameter set.
type Sample struct {
	X        []float64
	Distance float64
	Weight   float64
}

// Result is a calibration posterior.
type Result struct {
	Samples []Sample
	// Evaluations counts simulator runs performed.
	Evaluations int
	// Threshold is the distance cut that defined acceptance.
	Threshold float64
}

// PosteriorMean returns the weighted posterior mean parameter vector.
func (r *Result) PosteriorMean() []float64 {
	if len(r.Samples) == 0 {
		return nil
	}
	d := len(r.Samples[0].X)
	out := make([]float64, d)
	totalW := 0.0
	for _, s := range r.Samples {
		for j, v := range s.X {
			out[j] += s.Weight * v
		}
		totalW += s.Weight
	}
	if totalW <= 0 {
		return nil
	}
	for j := range out {
		out[j] /= totalW
	}
	return out
}

// PosteriorQuantile returns the weighted per-coordinate q-quantile.
func (r *Result) PosteriorQuantile(q float64) []float64 {
	if len(r.Samples) == 0 {
		return nil
	}
	d := len(r.Samples[0].X)
	out := make([]float64, d)
	xs := make([]float64, len(r.Samples))
	ws := make([]float64, len(r.Samples))
	for j := 0; j < d; j++ {
		for i, s := range r.Samples {
			xs[i] = s.X[j]
			ws[i] = s.Weight
		}
		out[j] = stats.WeightedQuantile(xs, ws, q)
	}
	return out
}

// Best returns the minimum-distance sample.
func (r *Result) Best() *Sample {
	if len(r.Samples) == 0 {
		return nil
	}
	best := &r.Samples[0]
	for i := range r.Samples[1:] {
		if r.Samples[i+1].Distance < best.Distance {
			best = &r.Samples[i+1]
		}
	}
	return best
}

// Options configures a calibration run.
type Options struct {
	// Space bounds the parameters (required).
	Space *design.Space
	// Observed is the target series (required).
	Observed []float64
	// Distance defaults to NormalizedRMSE.
	Distance Distance
	// Budget is the number of simulator evaluations (default 500).
	Budget int
	// AcceptFraction keeps the best fraction of evaluated points
	// (default 0.1); the acceptance threshold is implied.
	AcceptFraction float64
	// Replicates averages each point's distance over this many simulator
	// seeds to tame aleatoric noise (default 1).
	Replicates int
	// Seed drives the design and simulator seeds.
	Seed uint64
}

func (o *Options) defaults() error {
	if o.Space == nil || o.Space.Dim() == 0 {
		return errors.New("calibrate: Options.Space is required")
	}
	if len(o.Observed) == 0 {
		return errors.New("calibrate: Options.Observed is required")
	}
	if o.Distance == nil {
		o.Distance = NormalizedRMSE
	}
	if o.Budget <= 0 {
		o.Budget = 500
	}
	if o.AcceptFraction <= 0 || o.AcceptFraction > 1 {
		o.AcceptFraction = 0.1
	}
	if o.Replicates <= 0 {
		o.Replicates = 1
	}
	return nil
}

// evaluate runs the simulator (averaging replicates) and returns the
// distance at x.
func evaluate(sim Simulator, o *Options, x []float64, stream *rng.Stream) (float64, error) {
	total := 0.0
	for rep := 0; rep < o.Replicates; rep++ {
		out, err := sim(x, stream.Uint64()%1000000+1)
		if err != nil {
			return 0, err
		}
		total += o.Distance(out, o.Observed)
	}
	return total / float64(o.Replicates), nil
}

// ABCRejection runs plain rejection ABC over an LHS design of Budget
// points, keeping the best AcceptFraction as equally weighted posterior
// samples.
func ABCRejection(sim Simulator, opts Options) (*Result, error) {
	if err := (&opts).defaults(); err != nil {
		return nil, err
	}
	if sim == nil {
		return nil, errors.New("calibrate: nil simulator")
	}
	root := rng.New(opts.Seed)
	pts := design.LatinHypercubeIn(root.Split("design"), opts.Budget, opts.Space)
	seedStream := root.Split("sim-seeds")

	type scored struct {
		x []float64
		d float64
	}
	all := make([]scored, 0, len(pts))
	evals := 0
	for _, x := range pts {
		d, err := evaluate(sim, &opts, x, seedStream)
		if err != nil {
			return nil, fmt.Errorf("calibrate: simulator failed at %v: %w", x, err)
		}
		evals += opts.Replicates
		all = append(all, scored{x: x, d: d})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	keep := int(math.Ceil(opts.AcceptFraction * float64(len(all))))
	if keep < 1 {
		keep = 1
	}
	res := &Result{Evaluations: evals, Threshold: all[keep-1].d}
	for _, s := range all[:keep] {
		res.Samples = append(res.Samples, Sample{
			X: append([]float64(nil), s.x...), Distance: s.d, Weight: 1,
		})
	}
	return res, nil
}

// SurrogateABCOptions extends Options for the GP-screened variant.
type SurrogateABCOptions struct {
	Options
	// PilotFraction of the budget trains the surrogate (default 0.4).
	PilotFraction float64
	// ScreenPool is the size of the candidate set screened through the
	// surrogate (default 20x budget).
	ScreenPool int
	// GP carries surrogate fitting options.
	GP gp.Options
}

// SurrogateABC trains a GP on a pilot design of the distance surface,
// screens a large candidate pool through the surrogate's predicted
// distance, and spends the remaining simulator budget only on the
// candidates the surrogate ranks best. Returns the same Result shape as
// ABCRejection; Evaluations counts true simulator runs only.
func SurrogateABC(sim Simulator, opts SurrogateABCOptions) (*Result, error) {
	if err := (&opts.Options).defaults(); err != nil {
		return nil, err
	}
	if sim == nil {
		return nil, errors.New("calibrate: nil simulator")
	}
	if opts.PilotFraction <= 0 || opts.PilotFraction >= 1 {
		opts.PilotFraction = 0.4
	}
	if opts.ScreenPool <= 0 {
		opts.ScreenPool = 20 * opts.Budget
	}
	if opts.GP.MaxIter == 0 {
		opts.GP.MaxIter = 80
	}
	root := rng.New(opts.Seed)
	seedStream := root.Split("sim-seeds")

	nPilot := int(float64(opts.Budget) * opts.PilotFraction)
	if nPilot < opts.Space.Dim()+3 {
		nPilot = opts.Space.Dim() + 3
	}
	if nPilot >= opts.Budget {
		return nil, errors.New("calibrate: budget too small for a pilot design")
	}
	pilot := design.LatinHypercubeIn(root.Split("pilot"), nPilot, opts.Space)
	evals := 0

	type scored struct {
		x []float64
		d float64
	}
	var all []scored
	unit := make([][]float64, 0, nPilot)
	dist := make([]float64, 0, nPilot)
	for _, x := range pilot {
		d, err := evaluate(sim, &opts.Options, x, seedStream)
		if err != nil {
			return nil, err
		}
		evals += opts.Replicates
		all = append(all, scored{x: x, d: d})
		unit = append(unit, opts.Space.Unscale(x))
		// Model log distance: the surface spans orders of magnitude.
		dist = append(dist, math.Log1p(d))
	}
	surrogate, err := gp.Fit(unit, dist, opts.GP)
	if err != nil {
		return nil, fmt.Errorf("calibrate: surrogate fit: %w", err)
	}

	// Screen a large pool; simulate the surrogate's favorites.
	pool := design.LatinHypercube(root.Split("screen"), opts.ScreenPool, opts.Space.Dim())
	type cand struct {
		u    []float64
		pred float64
	}
	cands := make([]cand, len(pool))
	for i, u := range pool {
		m, _ := surrogate.Predict(u)
		cands[i] = cand{u: u, pred: m}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].pred < cands[j].pred })
	remaining := opts.Budget - nPilot
	for i := 0; i < remaining && i < len(cands); i++ {
		x := opts.Space.Scale(cands[i].u)
		d, err := evaluate(sim, &opts.Options, x, seedStream)
		if err != nil {
			return nil, err
		}
		evals += opts.Replicates
		all = append(all, scored{x: x, d: d})
	}

	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	keep := int(math.Ceil(opts.AcceptFraction * float64(len(all))))
	if keep < 1 {
		keep = 1
	}
	res := &Result{Evaluations: evals, Threshold: all[keep-1].d}
	for _, s := range all[:keep] {
		res.Samples = append(res.Samples, Sample{
			X: append([]float64(nil), s.x...), Distance: s.d, Weight: 1,
		})
	}
	return res, nil
}
