package design

import (
	"math"
	"testing"
	"testing/quick"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

func testSpace() *Space {
	return NewSpace(
		Parameter{Name: "a", Lo: 0, Hi: 10},
		Parameter{Name: "b", Lo: -1, Hi: 1},
		Parameter{Name: "c", Lo: 100, Hi: 200},
	)
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace()
	if s.Dim() != 3 {
		t.Fatal("Dim wrong")
	}
	if s.Index("b") != 1 || s.Index("zz") != -1 {
		t.Fatal("Index wrong")
	}
	names := s.Names()
	if names[0] != "a" || names[2] != "c" {
		t.Fatal("Names wrong")
	}
}

func TestSpaceScaleRoundTrip(t *testing.T) {
	s := testSpace()
	f := func(u1, u2, u3 float64) bool {
		u := []float64{
			math.Abs(math.Mod(u1, 1)),
			math.Abs(math.Mod(u2, 1)),
			math.Abs(math.Mod(u3, 1)),
		}
		x := s.Scale(u)
		if !s.Contains(x) {
			return false
		}
		back := s.Unscale(x)
		for i := range u {
			if math.Abs(back[i]-u[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceScaleEndpoints(t *testing.T) {
	s := testSpace()
	lo := s.Scale([]float64{0, 0, 0})
	hi := s.Scale([]float64{1, 1, 1})
	if lo[0] != 0 || lo[1] != -1 || lo[2] != 100 {
		t.Fatalf("low corner %v", lo)
	}
	if hi[0] != 10 || hi[1] != 1 || hi[2] != 200 {
		t.Fatalf("high corner %v", hi)
	}
}

func TestSpaceToMap(t *testing.T) {
	s := testSpace()
	m := s.ToMap([]float64{1, 0, 150})
	if m["a"] != 1 || m["b"] != 0 || m["c"] != 150 {
		t.Fatalf("ToMap wrong: %v", m)
	}
}

func TestNewSpaceRejectsEmptyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty range accepted")
		}
	}()
	NewSpace(Parameter{Name: "x", Lo: 1, Hi: 1})
}

func TestLatinHypercubeStratification(t *testing.T) {
	r := rng.New(1)
	n, d := 50, 4
	pts := LatinHypercube(r, n, d)
	if len(pts) != n {
		t.Fatalf("want %d points", n)
	}
	// Every 1-D projection must hit each of the n strata exactly once.
	for j := 0; j < d; j++ {
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := pts[i][j]
			if v < 0 || v >= 1 {
				t.Fatalf("LHS point out of range: %v", v)
			}
			stratum := int(v * float64(n))
			if seen[stratum] {
				t.Fatalf("dimension %d stratum %d hit twice", j, stratum)
			}
			seen[stratum] = true
		}
	}
}

func TestLatinHypercubeDeterministic(t *testing.T) {
	a := LatinHypercube(rng.New(9), 10, 3)
	b := LatinHypercube(rng.New(9), 10, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("LHS not deterministic under fixed seed")
			}
		}
	}
}

func TestLatinHypercubeIn(t *testing.T) {
	s := testSpace()
	pts := LatinHypercubeIn(rng.New(2), 20, s)
	for _, p := range pts {
		if !s.Contains(p) {
			t.Fatalf("scaled LHS point outside space: %v", p)
		}
	}
}

func TestUniformRange(t *testing.T) {
	pts := Uniform(rng.New(3), 100, 5)
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("uniform point out of range: %v", v)
			}
		}
	}
}

func TestGridShape(t *testing.T) {
	pts := Grid(3, 2)
	if len(pts) != 9 {
		t.Fatalf("Grid(3,2) has %d points", len(pts))
	}
	// Midpoints of 3 cells are 1/6, 1/2, 5/6.
	want := map[float64]bool{1.0 / 6: true, 0.5: true, 5.0 / 6: true}
	for _, p := range pts {
		for _, v := range p {
			if !want[v] {
				t.Fatalf("unexpected grid coordinate %v", v)
			}
		}
	}
}

func TestSobolFirstPoints(t *testing.T) {
	// The canonical base-2 sequence (after the skipped origin) starts
	// 0.5, then 0.75/0.25, 0.25/0.75 in the first two dimensions.
	s := NewSobolSeq(2)
	p1 := s.Next()
	if p1[0] != 0.5 || p1[1] != 0.5 {
		t.Fatalf("first Sobol point = %v, want [0.5 0.5]", p1)
	}
	p2 := s.Next()
	p3 := s.Next()
	got := [][]float64{p2, p3}
	want := [][]float64{{0.75, 0.25}, {0.25, 0.75}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Sobol point %d = %v, want %v", i+2, got[i], want[i])
			}
		}
	}
}

func TestSobolBalancedInDyadicBlocks(t *testing.T) {
	// In every dimension, the first 2^k points place half the points in
	// [0, 0.5) — a digital-net property that distinguishes Sobol from
	// plain pseudo-random sampling. Because the generator skips the
	// all-zeros origin, the window is shifted by one element, so counts
	// may differ from n/2 by at most one.
	for dim := 1; dim <= maxSobolDim; dim++ {
		s := NewSobolSeq(dim)
		n := 256
		pts := s.Sample(n)
		for j := 0; j < dim; j++ {
			low := 0
			for _, p := range pts {
				if p[j] < 0.5 {
					low++
				}
			}
			if low < n/2-1 || low > n/2+1 {
				t.Fatalf("dim %d coord %d: %d of %d points in lower half", dim, j, low, n)
			}
		}
	}
}

func TestSobolUniformMeans(t *testing.T) {
	s := NewSobolSeq(8)
	n := 4096
	sums := make([]float64, 8)
	for i := 0; i < n; i++ {
		p := s.Next()
		for j, v := range p {
			sums[j] += v
		}
	}
	for j, sum := range sums {
		mean := sum / float64(n)
		if math.Abs(mean-0.5) > 0.002 {
			t.Fatalf("Sobol dim %d mean %v far from 0.5", j, mean)
		}
	}
}

func TestSobolIntegratesBetterThanRandom(t *testing.T) {
	// Integrate f(x) = prod x_i over [0,1]^5 (true value 1/32); the QMC
	// error should beat plain Monte Carlo at the same n.
	f := func(p []float64) float64 {
		v := 1.0
		for _, x := range p {
			v *= x
		}
		return v
	}
	n := 2048
	s := NewSobolSeq(5)
	qmc := 0.0
	for i := 0; i < n; i++ {
		qmc += f(s.Next())
	}
	qmc /= float64(n)

	r := rng.New(7)
	vals := make([]float64, n)
	for i := range vals {
		p := make([]float64, 5)
		for j := range p {
			p[j] = r.Float64()
		}
		vals[i] = f(p)
	}
	mc := stats.Mean(vals)

	truth := 1.0 / 32
	if math.Abs(qmc-truth) > math.Abs(mc-truth)+1e-6 {
		t.Fatalf("QMC error %v worse than MC error %v", math.Abs(qmc-truth), math.Abs(mc-truth))
	}
	if math.Abs(qmc-truth) > 1e-3 {
		t.Fatalf("QMC estimate %v too far from %v", qmc, truth)
	}
}

func TestSobolSkip(t *testing.T) {
	a := NewSobolSeq(3)
	a.Skip(10)
	b := NewSobolSeq(3)
	for i := 0; i < 10; i++ {
		b.Next()
	}
	pa, pb := a.Next(), b.Next()
	for j := range pa {
		if pa[j] != pb[j] {
			t.Fatal("Skip diverged from explicit Next calls")
		}
	}
}

func TestSobolDimensionBounds(t *testing.T) {
	for _, d := range []int{0, 17, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSobolSeq(%d) did not panic", d)
				}
			}()
			NewSobolSeq(d)
		}()
	}
}

func BenchmarkSobolNext(b *testing.B) {
	s := NewSobolSeq(10)
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}

func BenchmarkLatinHypercube(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = LatinHypercube(r, 100, 5)
	}
}
