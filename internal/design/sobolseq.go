package design

import "fmt"

// SobolSeq generates the Sobol' low-discrepancy sequence in up to 16
// dimensions using Joe–Kuo direction numbers and the Antonov–Saleev
// Gray-code construction. Quasi-random designs give the pick–freeze Sobol
// index estimators (internal/sobolidx) much faster convergence than plain
// Monte Carlo.
type SobolSeq struct {
	dim   int
	count uint32
	x     []uint32   // current Gray-code state per dimension
	v     [][]uint32 // direction numbers, v[j][k], 32 bits
}

// maxSobolDim is the largest dimension supported by the embedded
// direction-number table.
const maxSobolDim = 16

// joeKuo holds primitive polynomial degree s, coefficient bits a, and
// initial direction integers m for dimensions 2..16 (dimension 1 is the van
// der Corput sequence in base 2).
var joeKuo = []struct {
	s int
	a uint32
	m []uint32
}{
	{1, 0, []uint32{1}},
	{2, 1, []uint32{1, 3}},
	{3, 1, []uint32{1, 3, 1}},
	{3, 2, []uint32{1, 1, 1}},
	{4, 1, []uint32{1, 1, 3, 3}},
	{4, 4, []uint32{1, 3, 5, 13}},
	{5, 2, []uint32{1, 1, 5, 5, 17}},
	{5, 4, []uint32{1, 1, 5, 5, 5}},
	{5, 7, []uint32{1, 1, 7, 11, 19}},
	{5, 11, []uint32{1, 1, 5, 1, 1}},
	{5, 13, []uint32{1, 1, 1, 3, 11}},
	{5, 14, []uint32{1, 3, 5, 5, 31}},
	{6, 1, []uint32{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint32{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint32{1, 3, 1, 13, 27, 49}},
}

// NewSobolSeq returns a generator of dim-dimensional Sobol' points.
// dim must be in [1, 16].
func NewSobolSeq(dim int) *SobolSeq {
	if dim < 1 || dim > maxSobolDim {
		panic(fmt.Sprintf("design: Sobol dimension %d outside [1,%d]", dim, maxSobolDim))
	}
	s := &SobolSeq{dim: dim, x: make([]uint32, dim), v: make([][]uint32, dim)}
	const bits = 32
	// Dimension 1: van der Corput.
	s.v[0] = make([]uint32, bits)
	for k := 0; k < bits; k++ {
		s.v[0][k] = 1 << (31 - k)
	}
	for j := 1; j < dim; j++ {
		jk := joeKuo[j-1]
		m := make([]uint32, bits)
		copy(m, jk.m)
		for k := jk.s; k < bits; k++ {
			mk := m[k-jk.s] ^ (m[k-jk.s] << uint(jk.s))
			for i := 1; i < jk.s; i++ {
				if (jk.a>>(uint(jk.s-1-i)))&1 == 1 {
					mk ^= m[k-i] << uint(i)
				}
			}
			m[k] = mk
		}
		s.v[j] = make([]uint32, bits)
		for k := 0; k < bits; k++ {
			s.v[j][k] = m[k] << uint(31-k)
		}
	}
	return s
}

// Next returns the next point of the sequence in [0,1)^dim. The first point
// returned is the second element of the canonical sequence (the all-zeros
// origin is skipped, as is conventional for integration).
func (s *SobolSeq) Next() []float64 {
	// Index of the rightmost zero bit of count.
	c := 0
	n := s.count
	for n&1 == 1 {
		n >>= 1
		c++
	}
	s.count++
	out := make([]float64, s.dim)
	for j := 0; j < s.dim; j++ {
		s.x[j] ^= s.v[j][c]
		out[j] = float64(s.x[j]) / (1 << 32)
	}
	return out
}

// Sample returns the next n points as a matrix.
func (s *SobolSeq) Sample(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Skip advances the sequence by n points without materializing them.
func (s *SobolSeq) Skip(n int) {
	for i := 0; i < n; i++ {
		s.Next()
	}
}

// Dim returns the dimensionality of the sequence.
func (s *SobolSeq) Dim() int { return s.dim }
