// Package design provides experimental-design primitives for the model
// exploration workflows: parameter spaces with named ranges (Table 1 of the
// paper), Latin hypercube sampling (the MUSIC initial design), a Sobol'
// low-discrepancy sequence (pick–freeze GSA sampling), and full-factorial
// grids.
package design

import (
	"fmt"

	"osprey/internal/rng"
)

// Parameter is one named, bounded model input.
type Parameter struct {
	Name        string
	Description string
	Lo, Hi      float64
}

// Space is an ordered collection of parameters defining a hyper-rectangle.
type Space struct {
	Params []Parameter
}

// NewSpace builds a Space, validating that every range is nonempty.
func NewSpace(params ...Parameter) *Space {
	for _, p := range params {
		if !(p.Lo < p.Hi) {
			panic(fmt.Sprintf("design: parameter %q has empty range [%v,%v]", p.Name, p.Lo, p.Hi))
		}
	}
	return &Space{Params: params}
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	for i, p := range s.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Scale maps a unit-cube point u in [0,1]^d to the space's native ranges.
func (s *Space) Scale(u []float64) []float64 {
	if len(u) != s.Dim() {
		panic("design: Scale dimension mismatch")
	}
	out := make([]float64, len(u))
	for i, p := range s.Params {
		out[i] = p.Lo + u[i]*(p.Hi-p.Lo)
	}
	return out
}

// Unscale maps a native-range point back to the unit cube.
func (s *Space) Unscale(x []float64) []float64 {
	if len(x) != s.Dim() {
		panic("design: Unscale dimension mismatch")
	}
	out := make([]float64, len(x))
	for i, p := range s.Params {
		out[i] = (x[i] - p.Lo) / (p.Hi - p.Lo)
	}
	return out
}

// Contains reports whether x lies within the space (inclusive bounds).
func (s *Space) Contains(x []float64) bool {
	if len(x) != s.Dim() {
		return false
	}
	for i, p := range s.Params {
		if x[i] < p.Lo || x[i] > p.Hi {
			return false
		}
	}
	return true
}

// ToMap converts an ordered point to a name->value map.
func (s *Space) ToMap(x []float64) map[string]float64 {
	m := make(map[string]float64, s.Dim())
	for i, p := range s.Params {
		m[p.Name] = x[i]
	}
	return m
}

// LatinHypercube returns n points in [0,1]^d arranged as a Latin hypercube:
// each one-dimensional projection hits every one of the n equal strata
// exactly once. The paper's MUSIC algorithm seeds its surrogate with an LHS
// initial design (§3.2).
func LatinHypercube(r *rng.Stream, n, d int) [][]float64 {
	if n <= 0 || d <= 0 {
		panic("design: LatinHypercube requires n > 0 and d > 0")
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for j := 0; j < d; j++ {
		perm := r.Perm(n)
		for i := 0; i < n; i++ {
			out[i][j] = (float64(perm[i]) + r.Float64()) / float64(n)
		}
	}
	return out
}

// LatinHypercubeIn returns an LHS design scaled into the space.
func LatinHypercubeIn(r *rng.Stream, n int, s *Space) [][]float64 {
	unit := LatinHypercube(r, n, s.Dim())
	out := make([][]float64, n)
	for i, u := range unit {
		out[i] = s.Scale(u)
	}
	return out
}

// Uniform returns n points drawn uniformly at random in [0,1]^d.
func Uniform(r *rng.Stream, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = r.Float64()
		}
	}
	return out
}

// Grid returns a full-factorial grid with k levels per dimension (cell
// midpoints), k^d points in total.
func Grid(k, d int) [][]float64 {
	if k <= 0 || d <= 0 {
		panic("design: Grid requires k > 0 and d > 0")
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= k
	}
	out := make([][]float64, total)
	for idx := 0; idx < total; idx++ {
		pt := make([]float64, d)
		rem := idx
		for j := 0; j < d; j++ {
			pt[j] = (float64(rem%k) + 0.5) / float64(k)
			rem /= k
		}
		out[idx] = pt
	}
	return out
}
