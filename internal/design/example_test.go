package design_test

import (
	"fmt"

	"osprey/internal/design"
	"osprey/internal/rng"
)

func ExampleNewSpace() {
	space := design.NewSpace(
		design.Parameter{Name: "ts", Lo: 0.1, Hi: 0.9},
		design.Parameter{Name: "phd", Lo: 0, Hi: 0.3},
	)
	x := space.Scale([]float64{0.5, 0.5}) // unit cube -> native ranges
	fmt.Println(x[0], x[1])
	fmt.Println(space.Contains(x))
	// Output:
	// 0.5 0.15
	// true
}

func ExampleLatinHypercube() {
	pts := design.LatinHypercube(rng.New(1), 4, 2)
	// Each 1-D projection hits each of the 4 strata exactly once.
	strata := make([]bool, 4)
	for _, p := range pts {
		strata[int(p[0]*4)] = true
	}
	fmt.Println(len(pts), strata[0] && strata[1] && strata[2] && strata[3])
	// Output: 4 true
}

func ExampleNewSobolSeq() {
	seq := design.NewSobolSeq(2)
	fmt.Println(seq.Next()) // the canonical first point after the origin
	// Output: [0.5 0.5]
}
