package metarvm

import (
	"fmt"
	"sort"
)

// Intervention is a time-windowed modification of the transmission process
// — the mechanism for representing NPIs (school closures, masking) and
// vaccination campaigns. The paper positions MetaRVM as the model public
// health stakeholders calibrate for policy questions; interventions are the
// knobs those questions turn.
type Intervention struct {
	Name string
	// FromDay (inclusive) and ToDay (exclusive) bound the window.
	FromDay, ToDay int
	// TransmissionScale multiplies ts and tv inside the window
	// (1 = no change, 0.5 = halved transmission). Zero means "unset" and
	// leaves transmission unchanged; use a small positive value for
	// near-total suppression.
	TransmissionScale float64
	// VaccRateAdd adds to the daily per-capita vaccination rate inside
	// the window (a campaign surge).
	VaccRateAdd float64
	// Groups restricts the intervention to the named groups
	// (empty = all groups).
	Groups []string
}

// Validate reports the first invalid field.
func (iv Intervention) Validate() error {
	if iv.FromDay < 0 || iv.ToDay <= iv.FromDay {
		return fmt.Errorf("metarvm: intervention %q has empty window [%d,%d)", iv.Name, iv.FromDay, iv.ToDay)
	}
	if iv.TransmissionScale < 0 {
		return fmt.Errorf("metarvm: intervention %q has negative transmission scale", iv.Name)
	}
	if iv.VaccRateAdd < 0 || iv.VaccRateAdd > 1 {
		return fmt.Errorf("metarvm: intervention %q has vacc rate add %v outside [0,1]", iv.Name, iv.VaccRateAdd)
	}
	return nil
}

// schedule resolves per-day, per-group multipliers from a set of
// interventions.
type schedule struct {
	// transScale[day][group], vaccAdd[day][group]
	transScale [][]float64
	vaccAdd    [][]float64
}

func buildSchedule(ivs []Intervention, days int, groups []Group) (*schedule, error) {
	byName := map[string]int{}
	for i, g := range groups {
		byName[g.Name] = i
	}
	s := &schedule{
		transScale: make([][]float64, days+1),
		vaccAdd:    make([][]float64, days+1),
	}
	for d := 0; d <= days; d++ {
		s.transScale[d] = make([]float64, len(groups))
		s.vaccAdd[d] = make([]float64, len(groups))
		for g := range groups {
			s.transScale[d][g] = 1
		}
	}
	for _, iv := range ivs {
		if err := iv.Validate(); err != nil {
			return nil, err
		}
		var targets []int
		if len(iv.Groups) == 0 {
			for g := range groups {
				targets = append(targets, g)
			}
		} else {
			for _, name := range iv.Groups {
				gi, ok := byName[name]
				if !ok {
					return nil, fmt.Errorf("metarvm: intervention %q targets unknown group %q", iv.Name, name)
				}
				targets = append(targets, gi)
			}
		}
		to := iv.ToDay
		if to > days {
			to = days + 1
		}
		for d := iv.FromDay; d < to && d <= days; d++ {
			for _, g := range targets {
				if iv.TransmissionScale > 0 {
					s.transScale[d][g] *= iv.TransmissionScale
				}
				s.vaccAdd[d][g] += iv.VaccRateAdd
			}
		}
	}
	return s, nil
}

// RunWithInterventions simulates the model with the given intervention set
// applied. It is Run plus per-day transmission/vaccination modifiers.
func RunWithInterventions(cfg Config, ivs []Intervention) (*Result, error) {
	if len(ivs) == 0 {
		return Run(cfg)
	}
	sched, err := buildSchedule(ivs, cfg.Days, cfg.Groups)
	if err != nil {
		return nil, err
	}
	return run(cfg, sched)
}

// DailyIncidence extracts the day-indexed regional infection incidence from
// a result — the series that couples MetaRVM to the wastewater observation
// model (see wastewater.GenerateFromIncidence).
func (r *Result) DailyIncidence() []float64 {
	out := make([]float64, len(r.Days))
	for i, d := range r.Days {
		out[i] = float64(d.NewInfections)
	}
	return out
}

// GroupSeries extracts compartment c's occupancy over time for one group.
func (r *Result) GroupSeries(c Compartment, group string) ([]float64, error) {
	gi := -1
	for i, g := range r.Config.Groups {
		if g.Name == group {
			gi = i
			break
		}
	}
	if gi < 0 {
		return nil, fmt.Errorf("metarvm: unknown group %q", group)
	}
	out := make([]float64, len(r.Days))
	for i, d := range r.Days {
		out[i] = float64(d.Counts[c][gi])
	}
	return out, nil
}

// AttackRate returns cumulative infections over total population.
func (r *Result) AttackRate() float64 {
	total := 0
	for _, g := range r.Config.Groups {
		total += g.N
	}
	if total == 0 {
		return 0
	}
	return float64(r.CumInfections) / float64(total)
}

// SortedInterventions returns ivs ordered by start day (stable), a
// convenience for reporting.
func SortedInterventions(ivs []Intervention) []Intervention {
	out := append([]Intervention(nil), ivs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].FromDay < out[j].FromDay })
	return out
}
