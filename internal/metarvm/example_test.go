package metarvm_test

import (
	"fmt"

	"osprey/internal/metarvm"
)

func ExampleTransitions() {
	edges := metarvm.Transitions()
	fmt.Println(len(edges), "transitions between", len(metarvm.CompartmentNames), "compartments")
	fmt.Println(edges[2].From, "->", edges[2].To, "governed by", edges[2].Label)
	// Output:
	// 13 transitions between 9 compartments
	// S -> E governed by ts (transmission)
}

func ExampleRun() {
	cfg := metarvm.DefaultConfig()
	res, err := metarvm.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Population is conserved on every day; the QoI is a count.
	last := res.Days[len(res.Days)-1]
	total := 0
	for c := metarvm.S; c <= metarvm.D; c++ {
		total += last.Total(c)
	}
	fmt.Println(total == 260000, res.CumHospitalizations >= 0)
	// Output: true true
}

func ExampleGSAParameterSpace() {
	space := metarvm.GSAParameterSpace()
	for _, p := range space.Params {
		fmt.Printf("%s (%g, %g)\n", p.Name, p.Lo, p.Hi)
	}
	// Output:
	// ts (0.1, 0.9)
	// tv (0.01, 0.5)
	// pea (0.4, 0.9)
	// psh (0.1, 0.4)
	// phd (0, 0.3)
}
