package metarvm

import (
	"math"
	"testing"
	"testing/quick"

	"osprey/internal/rng"
)

func TestFigure3CompartmentGraph(t *testing.T) {
	if len(CompartmentNames) != 9 {
		t.Fatalf("MetaRVM has 9 compartments, got %d", len(CompartmentNames))
	}
	edges := Transitions()
	// Every edge of Figure 3 must be present exactly once.
	want := map[[2]Compartment]bool{
		{S, V}: true, {V, S}: true, {S, E}: true, {V, E}: true,
		{E, Ia}: true, {E, Ip}: true, {Ia, R}: true, {Ip, Is}: true,
		{Is, R}: true, {Is, H}: true, {H, R}: true, {H, D}: true, {R, S}: true,
	}
	if len(edges) != len(want) {
		t.Fatalf("got %d transitions, want %d", len(edges), len(want))
	}
	for _, e := range edges {
		key := [2]Compartment{e.From, e.To}
		if !want[key] {
			t.Fatalf("unexpected or duplicate transition %v -> %v", e.From, e.To)
		}
		delete(want, key)
	}
	// D is absorbing: no outgoing edges.
	for _, e := range edges {
		if e.From == D {
			t.Fatal("Dead compartment must be absorbing")
		}
	}
}

func TestPopulationConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Params.DR = 120 // enable reinfection to exercise every edge
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	for _, g := range cfg.Groups {
		wantTotal += g.N
	}
	for _, day := range res.Days {
		got := 0
		for c := Compartment(0); c < numCompartments; c++ {
			for _, v := range day.Counts[c] {
				if v < 0 {
					t.Fatalf("negative count in %v on day %d", c, day.Day)
				}
				got += v
			}
		}
		if got != wantTotal {
			t.Fatalf("day %d population %d != %d", day.Day, got, wantTotal)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CumHospitalizations != b.CumHospitalizations || a.CumDeaths != b.CumDeaths {
		t.Fatal("same-seed runs differ")
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.CumHospitalizations == a.CumHospitalizations && c.CumInfections == a.CumInfections {
		t.Fatal("different seeds produced identical trajectories (suspicious)")
	}
}

func TestEpidemicGrowsWithTransmission(t *testing.T) {
	lo := DefaultConfig()
	lo.Params.TS = 0.15
	hi := DefaultConfig()
	hi.Params.TS = 0.85
	rLo, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if rHi.CumInfections <= rLo.CumInfections {
		t.Fatalf("higher ts produced fewer infections: %d vs %d", rHi.CumInfections, rLo.CumInfections)
	}
	if rHi.CumHospitalizations <= rLo.CumHospitalizations {
		t.Fatalf("higher ts produced fewer hospitalizations")
	}
}

func TestHospitalizationsScaleWithPSH(t *testing.T) {
	lo := DefaultConfig()
	lo.Params.PSH = 0.1
	hi := DefaultConfig()
	hi.Params.PSH = 0.4
	rLo, _ := Run(lo)
	rHi, _ := Run(hi)
	if rHi.CumHospitalizations <= rLo.CumHospitalizations {
		t.Fatal("psh=0.4 should hospitalize more than psh=0.1")
	}
}

func TestDeathsScaleWithPHD(t *testing.T) {
	lo := DefaultConfig()
	lo.Params.PHD = 0.0
	hi := DefaultConfig()
	hi.Params.PHD = 0.3
	rLo, _ := Run(lo)
	rHi, _ := Run(hi)
	if rLo.CumDeaths != 0 {
		t.Fatalf("phd=0 produced %d deaths", rLo.CumDeaths)
	}
	if rHi.CumDeaths == 0 {
		t.Fatal("phd=0.3 produced no deaths in a sizable epidemic")
	}
}

func TestAsymptomaticShareReducesHospitalizations(t *testing.T) {
	lo := DefaultConfig()
	lo.Params.PEA = 0.4
	hi := DefaultConfig()
	hi.Params.PEA = 0.9
	rLo, _ := Run(lo)
	rHi, _ := Run(hi)
	if rHi.CumHospitalizations >= rLo.CumHospitalizations {
		t.Fatal("more asymptomatic cases should mean fewer hospitalizations")
	}
}

func TestVaccinationProtects(t *testing.T) {
	none := DefaultConfig()
	none.Params.VaccRate = 0
	lots := DefaultConfig()
	lots.Params.VaccRate = 0.05
	lots.Params.TV = 0.02
	rNone, _ := Run(none)
	rLots, _ := Run(lots)
	if rLots.CumInfections >= rNone.CumInfections {
		t.Fatalf("vaccination did not reduce infections: %d vs %d", rLots.CumInfections, rNone.CumInfections)
	}
}

func TestNoEpidemicWithoutSeeds(t *testing.T) {
	cfg := DefaultConfig()
	for i := range cfg.Groups {
		cfg.Groups[i].InitialInfected = 0
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CumInfections != 0 || res.CumHospitalizations != 0 {
		t.Fatal("infections appeared from nowhere")
	}
}

func TestFlowAccountingConsistent(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative counters must equal the sum of daily flows.
	sumH, sumD, sumI := 0, 0, 0
	for _, d := range res.Days {
		sumH += d.NewHospitalizations
		sumD += d.NewDeaths
		sumI += d.NewInfections
	}
	if sumH != res.CumHospitalizations || sumD != res.CumDeaths || sumI != res.CumInfections {
		t.Fatal("daily flows do not sum to cumulative totals")
	}
	// Deaths are monotone in the absorbing compartment.
	prev := 0
	for _, d := range res.Days {
		tot := d.Total(D)
		if tot < prev {
			t.Fatal("Dead compartment decreased")
		}
		prev = tot
	}
	if prev != res.CumDeaths {
		t.Fatalf("final D occupancy %d != cumulative deaths %d", prev, res.CumDeaths)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Params.PEA = 1.5
	if _, err := Run(bad); err == nil {
		t.Fatal("pea > 1 accepted")
	}
	bad = DefaultConfig()
	bad.Params.DE = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("de = 0 accepted")
	}
	bad = DefaultConfig()
	bad.Days = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("0 days accepted")
	}
	bad = DefaultConfig()
	bad.Groups = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("no groups accepted")
	}
	bad = DefaultConfig()
	bad.Contact = [][]float64{{1}}
	if _, err := Run(bad); err == nil {
		t.Fatal("wrong contact shape accepted")
	}
	bad = DefaultConfig()
	bad.Groups[0].InitialInfected = bad.Groups[0].N + 1
	if _, err := Run(bad); err == nil {
		t.Fatal("seeds exceeding population accepted")
	}
}

func TestTable1ParameterRanges(t *testing.T) {
	sp := GSAParameterSpace()
	if sp.Dim() != 5 {
		t.Fatalf("Table 1 has 5 parameters, got %d", sp.Dim())
	}
	want := map[string][2]float64{
		"ts":  {0.1, 0.9},
		"tv":  {0.01, 0.5},
		"pea": {0.4, 0.9},
		"psh": {0.1, 0.4},
		"phd": {0, 0.3},
	}
	for _, p := range sp.Params {
		b, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected parameter %q", p.Name)
		}
		if p.Lo != b[0] || p.Hi != b[1] {
			t.Fatalf("%s range (%v,%v), want (%v,%v)", p.Name, p.Lo, p.Hi, b[0], b[1])
		}
	}
}

func TestApplyGSAPoint(t *testing.T) {
	p, err := ApplyGSAPoint(NominalParams(), []float64{0.5, 0.25, 0.7, 0.2, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if p.TS != 0.5 || p.TV != 0.25 || p.PEA != 0.7 || p.PSH != 0.2 || p.PHD != 0.15 {
		t.Fatalf("GSA point misapplied: %+v", p)
	}
	if _, err := ApplyGSAPoint(NominalParams(), []float64{1, 2}); err == nil {
		t.Fatal("short point accepted")
	}
}

func TestEvaluateGSAQoI(t *testing.T) {
	sp := GSAParameterSpace()
	r := rng.New(11)
	f := func(seed uint64) bool {
		u := make([]float64, 5)
		for i := range u {
			u[i] = r.Float64()
		}
		x := sp.Scale(u)
		y, err := EvaluateGSA(x, seed%10+1)
		if err != nil {
			return false
		}
		// QoI is a count: nonnegative and bounded by total population.
		return y >= 0 && y <= 260000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateGSADeterministicPerSeed(t *testing.T) {
	x := []float64{0.5, 0.2, 0.6, 0.25, 0.1}
	a, err := EvaluateGSA(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateGSA(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed gave different QoI")
	}
	c, err := EvaluateGSA(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-a) < 1e-12 {
		t.Log("warning: two replicate seeds gave identical QoI (possible but unlikely)")
	}
}

func TestHomogeneousMixingDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Contact = nil
	if _, err := Run(cfg); err != nil {
		t.Fatalf("nil contact matrix should default to homogeneous mixing: %v", err)
	}
}

func BenchmarkFigure3MetaRVMStep(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
