// Package metarvm implements the MetaRVM stochastic metapopulation model
// (Fadikar et al. 2025) as described in §3.1.1 and Figure 3 of the paper:
// an SEIR extension with Vaccinated, Asymptomatic/Presymptomatic/Symptomatic
// infectious stages, Hospitalized, and Dead compartments, heterogeneous
// mixing across demographic subgroups, vaccination, waning, and optional
// reinfection.
//
// The dynamics are discrete-time (daily) with exact binomial/multinomial
// transition draws, so every run conserves population and is reproducible
// from a seed — the property the paper's replicate-wise GSA depends on.
package metarvm

import (
	"errors"
	"fmt"
	"math"

	"osprey/internal/design"
	"osprey/internal/rng"
)

// Compartment indexes the nine MetaRVM compartments of Figure 3.
type Compartment int

const (
	S  Compartment = iota // Susceptible
	V                     // Vaccinated
	E                     // Exposed
	Ia                    // Infectious, asymptomatic
	Ip                    // Infectious, presymptomatic
	Is                    // Infectious, symptomatic
	H                     // Hospitalized
	R                     // Recovered
	D                     // Dead
	numCompartments
)

// CompartmentNames lists the compartments in Figure 3 order.
var CompartmentNames = []string{"S", "V", "E", "Ia", "Ip", "Is", "H", "R", "D"}

func (c Compartment) String() string {
	if c < 0 || int(c) >= len(CompartmentNames) {
		return fmt.Sprintf("Compartment(%d)", int(c))
	}
	return CompartmentNames[c]
}

// Transition is one directed edge of the compartment graph.
type Transition struct {
	From, To Compartment
	// Label names the parameter(s) governing the edge, matching the
	// annotations of Figure 3.
	Label string
}

// Transitions returns the full MetaRVM compartment graph of Figure 3.
func Transitions() []Transition {
	return []Transition{
		{S, V, "vaccination"},
		{V, S, "1/dv (waning)"},
		{S, E, "ts (transmission)"},
		{V, E, "tv (transmission, vaccinated)"},
		{E, Ia, "pea, 1/de"},
		{E, Ip, "1-pea, 1/de"},
		{Ia, R, "1/da"},
		{Ip, Is, "1/dp"},
		{Is, R, "psr=1-psh, 1/ds"},
		{Is, H, "psh, 1/ds"},
		{H, R, "1-phd, 1/dh"},
		{H, D, "phd, 1/dh"},
		{R, S, "1/dr (reinfection)"},
	}
}

// Params holds the MetaRVM rate and proportion parameters. Durations are in
// days; proportions in [0,1]. Fields mirror Figure 3's annotations.
type Params struct {
	TS  float64 // transmission rate for susceptible contacts
	TV  float64 // transmission rate for vaccinated contacts
	VE  float64 // additional vaccine efficacy multiplier on TV (0 = none)
	DV  float64 // mean days of vaccine-conferred immunity (waning 1/dv)
	DE  float64 // mean latent period (days in E)
	DA  float64 // mean days asymptomatic (Ia)
	DP  float64 // mean days presymptomatic (Ip)
	DS  float64 // mean days symptomatic (Is)
	DH  float64 // mean days hospitalized (H)
	DR  float64 // mean days of natural immunity; 0 disables reinfection
	PEA float64 // proportion of exposed who become asymptomatic
	PSH float64 // proportion of symptomatic who are hospitalized (psr = 1-psh)
	PHD float64 // proportion of hospitalized who die
	// VaccRate is the daily per-capita vaccination rate of susceptibles.
	VaccRate float64
}

// NominalParams returns the fixed nominal values used for parameters outside
// the GSA ranges of Table 1.
func NominalParams() Params {
	return Params{
		TS: 0.5, TV: 0.2, VE: 0,
		DV: 180, DE: 3, DA: 5, DP: 2, DS: 5, DH: 7, DR: 0,
		PEA: 0.6, PSH: 0.2, PHD: 0.1,
		VaccRate: 0.002,
	}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	type bound struct {
		name     string
		v        float64
		lo, hi   float64
		duration bool
	}
	checks := []bound{
		{"ts", p.TS, 0, 10, false},
		{"tv", p.TV, 0, 10, false},
		{"ve", p.VE, 0, 1, false},
		{"pea", p.PEA, 0, 1, false},
		{"psh", p.PSH, 0, 1, false},
		{"phd", p.PHD, 0, 1, false},
		{"vaccRate", p.VaccRate, 0, 1, false},
		{"de", p.DE, 0, 0, true},
		{"da", p.DA, 0, 0, true},
		{"dp", p.DP, 0, 0, true},
		{"ds", p.DS, 0, 0, true},
		{"dh", p.DH, 0, 0, true},
	}
	for _, c := range checks {
		if c.duration {
			if c.v <= 0 || math.IsNaN(c.v) {
				return fmt.Errorf("metarvm: duration %s must be positive, got %v", c.name, c.v)
			}
			continue
		}
		if c.v < c.lo || c.v > c.hi || math.IsNaN(c.v) {
			return fmt.Errorf("metarvm: %s = %v outside [%v,%v]", c.name, c.v, c.lo, c.hi)
		}
	}
	if p.DV < 0 || p.DR < 0 {
		return errors.New("metarvm: dv and dr must be nonnegative (0 disables)")
	}
	return nil
}

// Group is one demographic subpopulation.
type Group struct {
	Name            string
	N               int // total population
	InitialInfected int // seeded into Ip at day 0
	InitialVacc     int // seeded into V at day 0
}

// Config specifies a simulation run.
type Config struct {
	Groups []Group
	// Contact[g][h] is the mean daily contact rate of a member of group g
	// with members of group h. If nil, homogeneous mixing with rate 1 is
	// used.
	Contact [][]float64
	Days    int
	Params  Params
	// Seed drives the model's own random stream; the paper's GSA runs use
	// "a unique random stream seed value" per replicate.
	Seed uint64
}

// DefaultConfig returns the four-group configuration used by the GSA
// experiments: children, young adults, older adults, seniors with
// assortative mixing, 90 simulated days (the paper's horizon).
func DefaultConfig() Config {
	return Config{
		Groups: []Group{
			{Name: "0-17", N: 60000, InitialInfected: 12},
			{Name: "18-44", N: 90000, InitialInfected: 20},
			{Name: "45-64", N: 70000, InitialInfected: 12},
			{Name: "65+", N: 40000, InitialInfected: 6},
		},
		// Contact rates are calibrated so the Table 1 transmission range
		// spans sub- to super-critical dynamics over the 90-day horizon
		// (R0 roughly 0.7 at ts=0.1 up to ~6 at ts=0.9), which is what
		// makes the transmission parameters informative in the GSA.
		Contact: [][]float64{
			{0.60, 0.23, 0.13, 0.07},
			{0.23, 0.50, 0.23, 0.10},
			{0.13, 0.23, 0.40, 0.17},
			{0.07, 0.10, 0.17, 0.33},
		},
		Days:   90,
		Params: NominalParams(),
		Seed:   1,
	}
}

// DayRecord is one day's state (per-group compartment counts plus flows).
type DayRecord struct {
	Day int
	// Counts[c][g] is the occupancy of compartment c in group g.
	Counts [numCompartments][]int
	// Daily flow totals across groups.
	NewInfections, NewHospitalizations, NewDeaths int
}

// Total returns the day's total occupancy of compartment c across groups.
func (d *DayRecord) Total(c Compartment) int {
	t := 0
	for _, v := range d.Counts[c] {
		t += v
	}
	return t
}

// Result is a completed simulation.
type Result struct {
	Config Config
	Days   []DayRecord
	// CumHospitalizations is the QoI of the paper's GSA: total number of
	// hospitalizations over the simulation period.
	CumHospitalizations int
	CumDeaths           int
	CumInfections       int
	PeakHospitalized    int
	PeakHospitalizedDay int
}

// Run simulates the model. It is deterministic given Config.Seed.
func Run(cfg Config) (*Result, error) { return run(cfg, nil) }

// run is the engine behind Run and RunWithInterventions; sched may be nil.
func run(cfg Config, sched *schedule) (*Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Groups) == 0 {
		return nil, errors.New("metarvm: no groups configured")
	}
	if cfg.Days <= 0 {
		return nil, errors.New("metarvm: Days must be positive")
	}
	g := len(cfg.Groups)
	contact := cfg.Contact
	if contact == nil {
		contact = make([][]float64, g)
		for i := range contact {
			contact[i] = make([]float64, g)
			for j := range contact[i] {
				contact[i][j] = 1
			}
		}
	}
	if len(contact) != g {
		return nil, errors.New("metarvm: contact matrix rows != groups")
	}
	for _, row := range contact {
		if len(row) != g {
			return nil, errors.New("metarvm: contact matrix is not square")
		}
		for _, v := range row {
			if v < 0 {
				return nil, errors.New("metarvm: negative contact rate")
			}
		}
	}

	p := cfg.Params
	r := rng.New(cfg.Seed)

	// state[c][grp]
	var state [numCompartments][]int
	for c := range state {
		state[c] = make([]int, g)
	}
	for i, grp := range cfg.Groups {
		if grp.N <= 0 {
			return nil, fmt.Errorf("metarvm: group %q has nonpositive population", grp.Name)
		}
		if grp.InitialInfected+grp.InitialVacc > grp.N {
			return nil, fmt.Errorf("metarvm: group %q seeds exceed population", grp.Name)
		}
		state[Ip][i] = grp.InitialInfected
		state[V][i] = grp.InitialVacc
		state[S][i] = grp.N - grp.InitialInfected - grp.InitialVacc
	}

	exitProb := func(meanDays float64) float64 {
		if meanDays <= 0 {
			return 0
		}
		return 1 - math.Exp(-1/meanDays)
	}
	pExitE := exitProb(p.DE)
	pExitIa := exitProb(p.DA)
	pExitIp := exitProb(p.DP)
	pExitIs := exitProb(p.DS)
	pExitH := exitProb(p.DH)
	pWane := exitProb(p.DV)
	pReinf := exitProb(p.DR)

	res := &Result{Config: cfg}
	record := func(day, newInf, newHosp, newDeaths int) {
		var rec DayRecord
		rec.Day = day
		for c := range state {
			rec.Counts[c] = append([]int(nil), state[c]...)
		}
		rec.NewInfections = newInf
		rec.NewHospitalizations = newHosp
		rec.NewDeaths = newDeaths
		res.Days = append(res.Days, rec)
		if h := rec.Total(H); h > res.PeakHospitalized {
			res.PeakHospitalized = h
			res.PeakHospitalizedDay = day
		}
	}
	record(0, 0, 0, 0)

	tvEff := p.TV * (1 - p.VE)
	for day := 1; day <= cfg.Days; day++ {
		// Force of infection per group from current infectious prevalence.
		foi := make([]float64, g)
		for gi := 0; gi < g; gi++ {
			s := 0.0
			for gj := 0; gj < g; gj++ {
				prev := float64(state[Ia][gj]+state[Ip][gj]+state[Is][gj]) / float64(cfg.Groups[gj].N)
				s += contact[gi][gj] * prev
			}
			foi[gi] = s
		}

		newInf, newHosp, newDeaths := 0, 0, 0
		for gi := 0; gi < g; gi++ {
			transScale, vaccAdd := 1.0, 0.0
			if sched != nil {
				transScale = sched.transScale[day][gi]
				vaccAdd = sched.vaccAdd[day][gi]
			}
			// S: competing infection and vaccination hazards, then waning
			// arrivals are handled on the V side.
			hazInf := p.TS * transScale * foi[gi]
			hazVacc := p.VaccRate + vaccAdd
			pLeaveS := 1 - math.Exp(-(hazInf + hazVacc))
			leaveS := r.Binomial(state[S][gi], pLeaveS)
			var sInf int
			if hazInf+hazVacc > 0 {
				sInf = r.Binomial(leaveS, hazInf/(hazInf+hazVacc))
			}
			sVacc := leaveS - sInf

			// V: competing infection (reduced) and waning.
			hazInfV := tvEff * transScale * foi[gi]
			hazWane := -math.Log(1 - pWane) // back to a rate
			pLeaveV := 1 - math.Exp(-(hazInfV + hazWane))
			leaveV := r.Binomial(state[V][gi], pLeaveV)
			var vInf int
			if hazInfV+hazWane > 0 {
				vInf = r.Binomial(leaveV, hazInfV/(hazInfV+hazWane))
			}
			vWane := leaveV - vInf

			// E exits split pea / 1-pea.
			leaveE := r.Binomial(state[E][gi], pExitE)
			eToIa := r.Binomial(leaveE, p.PEA)
			eToIp := leaveE - eToIa

			leaveIa := r.Binomial(state[Ia][gi], pExitIa)
			leaveIp := r.Binomial(state[Ip][gi], pExitIp)

			leaveIs := r.Binomial(state[Is][gi], pExitIs)
			isToH := r.Binomial(leaveIs, p.PSH)
			isToR := leaveIs - isToH

			leaveH := r.Binomial(state[H][gi], pExitH)
			hToD := r.Binomial(leaveH, p.PHD)
			hToR := leaveH - hToD

			leaveR := r.Binomial(state[R][gi], pReinf)

			// Apply flows.
			state[S][gi] += -sInf - sVacc + vWane + leaveR
			state[V][gi] += sVacc - vInf - vWane
			state[E][gi] += sInf + vInf - leaveE
			state[Ia][gi] += eToIa - leaveIa
			state[Ip][gi] += eToIp - leaveIp
			state[Is][gi] += leaveIp - leaveIs
			state[H][gi] += isToH - leaveH
			state[R][gi] += leaveIa + isToR + hToR - leaveR
			state[D][gi] += hToD

			newInf += sInf + vInf
			newHosp += isToH
			newDeaths += hToD
		}
		res.CumInfections += newInf
		res.CumHospitalizations += newHosp
		res.CumDeaths += newDeaths
		record(day, newInf, newHosp, newDeaths)
	}
	return res, nil
}

// GSAParameterSpace returns Table 1 of the paper: the five MetaRVM
// parameters treated as uncertain in the GSA, with their ranges.
func GSAParameterSpace() *design.Space {
	return design.NewSpace(
		design.Parameter{Name: "ts", Description: "Transmission rate for susceptible", Lo: 0.1, Hi: 0.9},
		design.Parameter{Name: "tv", Description: "Transmission rate for vaccinated", Lo: 0.01, Hi: 0.5},
		design.Parameter{Name: "pea", Description: "Proportion of asymptomatic cases", Lo: 0.4, Hi: 0.9},
		design.Parameter{Name: "psh", Description: "Proportion of hospitalized", Lo: 0.1, Hi: 0.4},
		design.Parameter{Name: "phd", Description: "Proportion of dead", Lo: 0, Hi: 0.3},
	)
}

// ApplyGSAPoint overlays a Table 1 parameter vector (ordered as in
// GSAParameterSpace) onto base parameters.
func ApplyGSAPoint(base Params, x []float64) (Params, error) {
	if len(x) != 5 {
		return base, errors.New("metarvm: GSA point must have 5 coordinates")
	}
	base.TS, base.TV, base.PEA, base.PSH, base.PHD = x[0], x[1], x[2], x[3], x[4]
	return base, nil
}

// EvaluateGSA runs the model at a Table 1 point (native scale) with the
// given replicate seed and returns the paper's quantity of interest: total
// hospitalizations at the end of the 90-day simulation.
func EvaluateGSA(x []float64, seed uint64) (float64, error) {
	cfg := DefaultConfig()
	p, err := ApplyGSAPoint(cfg.Params, x)
	if err != nil {
		return 0, err
	}
	cfg.Params = p
	cfg.Seed = seed
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return float64(res.CumHospitalizations), nil
}
