package metarvm

import (
	"testing"
)

func TestInterventionValidation(t *testing.T) {
	cases := []Intervention{
		{Name: "empty-window", FromDay: 10, ToDay: 10, TransmissionScale: 0.5},
		{Name: "negative-from", FromDay: -1, ToDay: 10, TransmissionScale: 0.5},
		{Name: "neg-scale", FromDay: 0, ToDay: 10, TransmissionScale: -1},
		{Name: "bad-vacc", FromDay: 0, ToDay: 10, VaccRateAdd: 2},
	}
	for _, iv := range cases {
		if err := iv.Validate(); err == nil {
			t.Fatalf("intervention %q validated", iv.Name)
		}
	}
	good := Intervention{Name: "ok", FromDay: 0, ToDay: 30, TransmissionScale: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoInterventionsMatchesRun(t *testing.T) {
	cfg := DefaultConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWithInterventions(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.CumInfections != b.CumInfections || a.CumHospitalizations != b.CumHospitalizations {
		t.Fatal("empty intervention set changed the trajectory")
	}
}

func TestLockdownReducesInfections(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Params.TS = 0.7 // strong epidemic so the effect is unambiguous
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withNPI, err := RunWithInterventions(cfg, []Intervention{{
		Name: "lockdown", FromDay: 20, ToDay: 60, TransmissionScale: 0.3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if withNPI.CumInfections >= base.CumInfections {
		t.Fatalf("lockdown did not reduce infections: %d vs %d",
			withNPI.CumInfections, base.CumInfections)
	}
}

func TestVaccinationCampaignFillsV(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Params.VaccRate = 0
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	campaign, err := RunWithInterventions(cfg, []Intervention{{
		Name: "campaign", FromDay: 0, ToDay: 45, VaccRateAdd: 0.02,
	}})
	if err != nil {
		t.Fatal(err)
	}
	baseV := base.Days[45].Total(V)
	campV := campaign.Days[45].Total(V)
	if campV <= baseV {
		t.Fatalf("campaign did not fill V: %d vs %d", campV, baseV)
	}
}

func TestGroupTargetedIntervention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Params.TS = 0.7
	// Suppress transmission only for children; their share of infections
	// should drop relative to the untouched run.
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := RunWithInterventions(cfg, []Intervention{{
		Name: "school-closure", FromDay: 0, ToDay: 90,
		TransmissionScale: 0.2, Groups: []string{"0-17"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	baseKids, _ := base.GroupSeries(R, "0-17")
	targKids, _ := targeted.GroupSeries(R, "0-17")
	last := len(baseKids) - 1
	if targKids[last] >= baseKids[last] {
		t.Fatalf("targeted closure did not protect the group: %v vs %v",
			targKids[last], baseKids[last])
	}
}

func TestInterventionUnknownGroupRejected(t *testing.T) {
	cfg := DefaultConfig()
	_, err := RunWithInterventions(cfg, []Intervention{{
		Name: "x", FromDay: 0, ToDay: 10, TransmissionScale: 0.5, Groups: []string{"martians"},
	}})
	if err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestDailyIncidenceMatchesCumulative(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc := res.DailyIncidence()
	sum := 0.0
	for _, v := range inc {
		sum += v
	}
	if int(sum) != res.CumInfections {
		t.Fatalf("incidence sums to %v, cumulative is %d", sum, res.CumInfections)
	}
}

func TestGroupSeriesAndAttackRate(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.GroupSeries(S, "no-such-group"); err == nil {
		t.Fatal("unknown group accepted")
	}
	s, err := res.GroupSeries(S, "18-44")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != cfg.Days+1 {
		t.Fatalf("series length %d", len(s))
	}
	ar := res.AttackRate()
	if ar < 0 || ar > 1 {
		t.Fatalf("attack rate %v out of range", ar)
	}
}

func TestSortedInterventions(t *testing.T) {
	ivs := []Intervention{
		{Name: "b", FromDay: 30, ToDay: 40, TransmissionScale: 1},
		{Name: "a", FromDay: 10, ToDay: 20, TransmissionScale: 1},
	}
	sorted := SortedInterventions(ivs)
	if sorted[0].Name != "a" || sorted[1].Name != "b" {
		t.Fatal("not sorted by start day")
	}
	if ivs[0].Name != "b" {
		t.Fatal("input mutated")
	}
}
