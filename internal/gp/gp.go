// Package gp implements Gaussian-process regression: the surrogate model at
// the heart of the MUSIC active-learning GSA (§3.1.2 of the paper). The
// paper uses the R hetGP package; this implementation provides anisotropic
// squared-exponential and Matérn-5/2 kernels with a fitted nugget, trained
// by maximizing the log marginal likelihood with multi-start Nelder–Mead.
//
// The heteroskedastic extension of hetGP is not needed for the paper's
// experiment design — each GSA replicate fixes the model's random seed, so
// the response the surrogate sees is deterministic and a homoskedastic
// nugget suffices (see DESIGN.md substitution table).
package gp

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"osprey/internal/linalg"
	"osprey/internal/optim"
	"osprey/internal/parallel"
)

// KernelKind selects the covariance family.
type KernelKind int

const (
	// SquaredExponential is the infinitely smooth RBF kernel.
	SquaredExponential KernelKind = iota
	// Matern52 is the twice-differentiable Matérn nu=5/2 kernel.
	Matern52
)

func (k KernelKind) String() string {
	switch k {
	case SquaredExponential:
		return "squared-exponential"
	case Matern52:
		return "matern52"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// corr evaluates the correlation (unit-variance kernel) between points a
// and b under per-dimension lengthscales ls.
func corr(kind KernelKind, a, b, ls []float64) float64 {
	switch kind {
	case SquaredExponential:
		s := 0.0
		for i := range a {
			d := (a[i] - b[i]) / ls[i]
			s += d * d
		}
		return math.Exp(-0.5 * s)
	case Matern52:
		s := 0.0
		for i := range a {
			d := (a[i] - b[i]) / ls[i]
			s += d * d
		}
		r := math.Sqrt(5 * s)
		return (1 + r + 5*s/3) * math.Exp(-r)
	default:
		panic("gp: unknown kernel kind")
	}
}

// Options configures model fitting.
type Options struct {
	Kernel KernelKind
	// MaxIter bounds each Nelder–Mead run (default 200).
	MaxIter int
	// Restarts is the number of extra multi-start points (default 2).
	Restarts int
	// FixedNugget, when > 0, pins the nugget variance (on the
	// standardized-y scale) instead of fitting it.
	FixedNugget float64
}

// GP is a fitted Gaussian-process regression model. Construct with Fit; the
// zero value is not usable.
type GP struct {
	kind KernelKind
	x    [][]float64
	y    []float64 // standardized observations
	dim  int

	// Hyperparameters (on the standardized-y scale).
	ls     []float64 // per-dimension lengthscales
	sf2    float64   // signal variance
	nugget float64   // observation noise variance

	// Standardization of the raw targets.
	yMean, yStd float64

	chol   *linalg.Cholesky
	alpha  []float64 // K⁻¹ y
	lml    float64   // log marginal likelihood at the fitted parameters
	jitter float64   // diagonal jitter applied during factorization
	opts   Options

	// gen changes whenever the hyperparameters change, so kernel-column
	// caches (MeanCache) can tell "same GP, more training points" apart
	// from "refit with new lengthscales". Appending data without
	// reoptimizing leaves gen untouched.
	gen uint64
}

// genCounter hands out process-unique generation numbers so that a gen value
// is never reused, even across distinct GP instances at the same address.
var genCounter atomic.Uint64

// ErrNoData is returned when Fit receives an empty training set.
var ErrNoData = errors.New("gp: empty training set")

// Fit trains a GP on inputs x (n points of equal dimension) and targets y.
func Fit(x [][]float64, y []float64, opts Options) (*GP, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	d := len(x[0])
	for _, xi := range x {
		if len(xi) != d {
			return nil, errors.New("gp: ragged input points")
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Restarts < 0 {
		opts.Restarts = 0
	}

	g := &GP{kind: opts.Kernel, dim: d, opts: opts}
	g.x = make([][]float64, n)
	for i := range x {
		g.x[i] = append([]float64(nil), x[i]...)
	}

	// Standardize targets for stable hyperparameter scales.
	mean, sd := standardizeTargets(y)
	g.yMean, g.yStd = mean, sd
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - mean) / sd
	}

	if err := g.optimize(); err != nil {
		return nil, err
	}
	return g, nil
}

// theta packs log hyperparameters: [log ls_1..log ls_d, log sf2, (log nugget)].
func (g *GP) nTheta() int {
	if g.opts.FixedNugget > 0 {
		return g.dim + 1
	}
	return g.dim + 2
}

func (g *GP) applyTheta(theta []float64) {
	g.ls = make([]float64, g.dim)
	for i := 0; i < g.dim; i++ {
		g.ls[i] = math.Exp(theta[i])
	}
	g.sf2 = math.Exp(theta[g.dim])
	if g.opts.FixedNugget > 0 {
		g.nugget = g.opts.FixedNugget
	} else {
		g.nugget = math.Exp(theta[g.dim+1])
	}
	g.gen = genCounter.Add(1)
}

// buildK assembles the full covariance matrix with the current parameters.
// Rows are built across the worker pool; worker i owns row i's upper
// triangle plus its mirrored column, so no entry is written twice and the
// result is identical to the serial construction.
func (g *GP) buildK() *linalg.Dense {
	n := len(g.x)
	k := linalg.NewDense(n, n)
	parallel.ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k.Set(i, i, g.sf2+g.nugget)
			for j := i + 1; j < n; j++ {
				v := g.sf2 * corr(g.kind, g.x[i], g.x[j], g.ls)
				k.Set(i, j, v)
				k.Set(j, i, v)
			}
		}
	})
	return k
}

// factor refreshes the Cholesky factor and alpha = K⁻¹y; returns the log
// marginal likelihood.
func (g *GP) factor() (float64, error) {
	k := g.buildK()
	ch, jit, err := linalg.NewCholeskyJittered(k, 1e-10, 12)
	if err != nil {
		return math.Inf(-1), err
	}
	g.chol, g.jitter = ch, jit
	g.alpha = ch.SolveVec(g.y)
	n := float64(len(g.y))
	lml := -0.5*linalg.Dot(g.y, g.alpha) - 0.5*ch.LogDet() - 0.5*n*math.Log(2*math.Pi)
	g.lml = lml
	return lml, nil
}

func (g *GP) optimize() error {
	// Pack every pairwise per-dimension squared difference once; each of the
	// hundreds of Nelder–Mead likelihood evaluations then assembles K as a
	// fused multiply-add over the cached diffs instead of rebuilding scaled
	// distances from raw coordinates (see lml.go).
	sq := packSquaredDiffs(g.x, g.dim)
	starts := hyperStarts(g.dim, g.opts.Restarts, g.opts.FixedNugget)

	// Each restart gets its own evaluator (the evaluator carries the K and
	// solve scratch that the serial objective used to keep on g), so the
	// restarts run concurrently; the ordered reduction in MultiStartParallel
	// keeps the winner identical at any worker count.
	objFor := func(int) func([]float64) float64 {
		return newLMLEvaluator(g, sq).negLML
	}
	res := optim.MultiStartParallel(objFor, starts, optim.NelderMeadOptions{MaxIter: g.opts.MaxIter})
	if math.IsInf(res.F, 1) {
		return errors.New("gp: hyperparameter optimization failed to find a feasible point")
	}
	g.applyTheta(res.X)
	_, err := g.factor()
	return err
}

// predictScratch is the reusable working set of one prediction: the kernel
// cross-covariance vector and the forward-solve output. Pooling it makes
// Predict allocation-free in steady state while staying safe for concurrent
// callers (each in-flight prediction holds its own scratch).
type predictScratch struct{ k, v []float64 }

var scratchPool = sync.Pool{New: func() any { return new(predictScratch) }}

// grow returns buf resized to length n, reallocating only when the capacity
// is insufficient. Contents are not preserved.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// predictWith computes the posterior mean and variance at x using
// caller-owned scratch. This is the single prediction kernel behind Predict,
// PredictBatch, and Predictor, so all three are bit-identical by
// construction.
func (g *GP) predictWith(x []float64, s *predictScratch) (mean, variance float64) {
	if len(x) != g.dim {
		panic("gp: Predict dimension mismatch")
	}
	n := len(g.x)
	s.k = grow(s.k, n)
	s.v = grow(s.v, n)
	for i := 0; i < n; i++ {
		s.k[i] = g.sf2 * corr(g.kind, x, g.x[i], g.ls)
	}
	mu := linalg.Dot(s.k, g.alpha)
	g.chol.ForwardSolveTo(s.v, s.k)
	variance = g.sf2 - linalg.Dot(s.v, s.v)
	if variance < 0 {
		variance = 0
	}
	mean = g.yMean + g.yStd*mu
	variance *= g.yStd * g.yStd
	return mean, variance
}

// Predict returns the posterior mean and variance at point x (raw scale).
// The variance includes the latent-function uncertainty but not the nugget;
// use PredictNoisy for the predictive variance of a new noisy observation.
func (g *GP) Predict(x []float64) (mean, variance float64) {
	s := scratchPool.Get().(*predictScratch)
	mean, variance = g.predictWith(x, s)
	scratchPool.Put(s)
	return mean, variance
}

// PredictNoisy returns the predictive mean and variance for a new noisy
// observation at x (latent variance plus nugget).
func (g *GP) PredictNoisy(x []float64) (mean, variance float64) {
	m, v := g.Predict(x)
	return m, v + g.nugget*g.yStd*g.yStd
}

// PredictBatch evaluates Predict over many points across the worker pool.
// Each point is computed with the same kernel as Predict and written to its
// own output slot, so the result is bit-identical to the serial loop at any
// worker count.
func (g *GP) PredictBatch(xs [][]float64) (means, variances []float64) {
	means = make([]float64, len(xs))
	variances = make([]float64, len(xs))
	parallel.ForChunk(len(xs), func(lo, hi int) {
		s := scratchPool.Get().(*predictScratch)
		for i := lo; i < hi; i++ {
			means[i], variances[i] = g.predictWith(xs[i], s)
		}
		scratchPool.Put(s)
	})
	return means, variances
}

// Add appends a training observation. When reoptimize is true the
// hyperparameters are refit from scratch; otherwise only the factorization
// is refreshed with the existing hyperparameters (the cheap path used
// between MUSIC refit intervals).
func (g *GP) Add(x []float64, y float64, reoptimize bool) error {
	if len(x) != g.dim {
		return errors.New("gp: Add dimension mismatch")
	}
	g.x = append(g.x, append([]float64(nil), x...))
	g.y = append(g.y, (y-g.yMean)/g.yStd)
	if reoptimize {
		// Re-standardize from raw targets to keep scales honest.
		raw := make([]float64, len(g.y))
		for i, v := range g.y {
			raw[i] = g.yMean + g.yStd*v
		}
		ng, err := Fit(g.x, raw, g.opts)
		if err != nil {
			return err
		}
		*g = *ng
		return nil
	}
	_, err := g.factor()
	return err
}

// N returns the number of training points.
func (g *GP) N() int { return len(g.x) }

// Dim returns the input dimension.
func (g *GP) Dim() int { return g.dim }

// LogMarginalLikelihood returns the LML at the fitted hyperparameters.
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// Lengthscales returns a copy of the fitted per-dimension lengthscales.
func (g *GP) Lengthscales() []float64 { return append([]float64(nil), g.ls...) }

// Nugget returns the fitted (or fixed) nugget variance on the raw-y scale.
func (g *GP) Nugget() float64 { return g.nugget * g.yStd * g.yStd }

// TrainingInputs returns a deep copy of the training inputs. (It used to
// return the internal slice, which let callers mutate training data under a
// fitted factorization — predictions would silently diverge from the
// factor.)
func (g *GP) TrainingInputs() [][]float64 {
	out := make([][]float64, len(g.x))
	for i, xi := range g.x {
		out[i] = append([]float64(nil), xi...)
	}
	return out
}

// TrainingTargets returns the raw-scale training targets.
func (g *GP) TrainingTargets() []float64 {
	out := make([]float64, len(g.y))
	for i, v := range g.y {
		out[i] = g.yMean + g.yStd*v
	}
	return out
}

// Hyperparams is the exportable state of a fitted GP (excluding training
// data), used to checkpoint and restore surrogates without re-running the
// optimizer.
type Hyperparams struct {
	Kernel       KernelKind `json:"kernel"`
	Lengthscales []float64  `json:"lengthscales"`
	SignalVar    float64    `json:"signal_var"`
	NuggetVar    float64    `json:"nugget_var"`
	YMean        float64    `json:"y_mean"`
	YStd         float64    `json:"y_std"`
	// Surrogate records which implementation produced these hyperparameters.
	// Checkpoints written before the sparse path existed decode to the zero
	// value, DenseSurrogate, which is what they were.
	Surrogate SurrogateKind `json:"surrogate,omitempty"`
	// Inducing is the sparse surrogate's inducing-point budget (sparse only).
	Inducing int `json:"inducing,omitempty"`
	// InducingIdx are the training-set indices of the selected inducing
	// points (sparse only). Recording them — rather than re-selecting at
	// restore time over a possibly grown training set — is what keeps a
	// checkpoint resume bit-identical to an uninterrupted run.
	InducingIdx []int `json:"inducing_idx,omitempty"`
}

// Hyperparams exports the fitted hyperparameters.
func (g *GP) Hyperparams() Hyperparams {
	return Hyperparams{
		Kernel:       g.kind,
		Lengthscales: append([]float64(nil), g.ls...),
		SignalVar:    g.sf2,
		NuggetVar:    g.nugget,
		YMean:        g.yMean,
		YStd:         g.yStd,
	}
}

// Restore rebuilds a GP from training data and previously fitted
// hyperparameters, skipping optimization. The result predicts identically
// to the GP the hyperparameters came from (given the same data).
func Restore(x [][]float64, y []float64, hp Hyperparams, opts Options) (*GP, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	d := len(x[0])
	if len(hp.Lengthscales) != d {
		return nil, errors.New("gp: hyperparameter dimension mismatch")
	}
	if hp.YStd <= 0 || hp.SignalVar <= 0 {
		return nil, errors.New("gp: invalid hyperparameters")
	}
	g := &GP{
		kind: hp.Kernel, dim: d, opts: opts,
		ls:  append([]float64(nil), hp.Lengthscales...),
		sf2: hp.SignalVar, nugget: hp.NuggetVar,
		yMean: hp.YMean, yStd: hp.YStd,
	}
	g.x = make([][]float64, n)
	for i := range x {
		if len(x[i]) != d {
			return nil, errors.New("gp: ragged input points")
		}
		g.x[i] = append([]float64(nil), x[i]...)
	}
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - hp.YMean) / hp.YStd
	}
	g.gen = genCounter.Add(1)
	if _, err := g.factor(); err != nil {
		return nil, err
	}
	return g, nil
}

// PredictMean returns only the posterior mean at x. It skips the O(n²)
// triangular solve that the variance requires, which makes surrogate-based
// Sobol index estimation (thousands of mean evaluations per snapshot)
// roughly an order of magnitude cheaper.
func (g *GP) PredictMean(x []float64) float64 {
	if len(x) != g.dim {
		panic("gp: PredictMean dimension mismatch")
	}
	n := len(g.x)
	s := 0.0
	for i := 0; i < n; i++ {
		s += g.alpha[i] * corr(g.kind, x, g.x[i], g.ls)
	}
	return g.yMean + g.yStd*g.sf2*s
}
