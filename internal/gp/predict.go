package gp

import (
	"osprey/internal/parallel"
)

// Predictor carries reusable prediction scratch for repeated queries against
// one GP. It is cheaper than Predict in tight loops because the scratch
// never goes back through the pool, and it keeps working (resizing lazily)
// as training points are appended. A Predictor is not safe for concurrent
// use; give each worker its own.
type Predictor struct {
	g *GP
	s predictScratch
}

// NewPredictor returns a Predictor bound to g.
func (g *GP) NewPredictor() *Predictor {
	return &Predictor{g: g}
}

// Predict is equivalent to g.Predict(x) — same kernel, bit-identical
// results — without any steady-state allocation.
func (p *Predictor) Predict(x []float64) (mean, variance float64) {
	return p.g.predictWith(x, &p.s)
}

// PredictMean is equivalent to g.PredictMean(x).
func (p *Predictor) PredictMean(x []float64) float64 {
	return p.g.PredictMean(x)
}

// MeanCache caches the kernel cross-covariance columns between a fixed set
// of query points and a GP's training set, for workloads that re-predict the
// same design over and over (MUSIC evaluates one QMC Sobol design against
// the surrogate after every refit). The expensive part of PredictMean is the
// n·q transcendental kernel evaluations; those depend only on (query points,
// training inputs, hyperparameters), so:
//
//   - while the hyperparameters are unchanged (GP generation stable, e.g.
//     cheap Add calls between refit intervals), only the columns for newly
//     appended training points are computed;
//   - when the GP is refit (generation bump), all columns are rebuilt.
//
// Means then reduces each cached column against alpha in index order,
// reproducing g.PredictMean bit-for-bit.
type MeanCache struct {
	pts  [][]float64 // fixed query points (borrowed; do not mutate)
	g    *GP
	gen  uint64
	n    int         // training-set size the columns cover
	cols [][]float64 // cols[q][i] = corr(pts[q], x[i]) at the cached gen
}

// NewMeanCache creates a cache over the given fixed query points. The slice
// is borrowed, not copied.
func NewMeanCache(pts [][]float64) *MeanCache {
	return &MeanCache{pts: pts, cols: make([][]float64, len(pts))}
}

// Means writes g.PredictMean(pts[q]) for every query point into out, reusing
// cached kernel columns where the GP's hyperparameters allow. len(out) must
// equal the number of query points.
func (c *MeanCache) Means(g *GP, out []float64) {
	if len(out) != len(c.pts) {
		panic("gp: MeanCache output length mismatch")
	}
	n := len(g.x)
	fresh := c.g != g || c.gen != g.gen
	if fresh {
		c.g, c.gen = g, g.gen
		c.n = 0
	}
	lo := c.n
	if n < lo {
		// Training set shrank without a generation bump — cannot happen via
		// the public API, but recompute defensively.
		lo = 0
	}
	parallel.ForChunk(len(c.pts), func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			col := c.cols[q]
			if cap(col) < n {
				// Headroom for the steady drip of one-point Adds between
				// refits, so each snapshot does not reallocate every column.
				grown := make([]float64, n, n+64)
				copy(grown, col[:lo])
				col = grown
			} else {
				col = col[:n]
			}
			pt := c.pts[q]
			for i := lo; i < n; i++ {
				col[i] = corr(g.kind, pt, g.x[i], g.ls)
			}
			c.cols[q] = col
			// Ordered reduction, matching PredictMean's loop exactly.
			s := 0.0
			for i := 0; i < n; i++ {
				s += g.alpha[i] * col[i]
			}
			out[q] = g.yMean + g.yStd*g.sf2*s
		}
	})
	c.n = n
}
