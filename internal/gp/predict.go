package gp

import (
	"osprey/internal/parallel"
)

// Predictor carries reusable prediction scratch for repeated queries against
// one surrogate. It is cheaper than Predict in tight loops because the
// scratch never goes back through the pool, and it keeps working (resizing
// lazily) as training points are appended. A Predictor is not safe for
// concurrent use; give each worker its own. Obtain one from a Surrogate's
// NewPredictor; each implementation's Predictor is bit-identical to its
// Predict.
type Predictor interface {
	Predict(x []float64) (mean, variance float64)
	PredictMean(x []float64) float64
}

// densePredictor is the exact GP's Predictor.
type densePredictor struct {
	g *GP
	s predictScratch
}

// NewPredictor returns a Predictor bound to g.
func (g *GP) NewPredictor() Predictor {
	return &densePredictor{g: g}
}

// Predict is equivalent to g.Predict(x) — same kernel, bit-identical
// results — without any steady-state allocation.
func (p *densePredictor) Predict(x []float64) (mean, variance float64) {
	return p.g.predictWith(x, &p.s)
}

// PredictMean is equivalent to g.PredictMean(x).
func (p *densePredictor) PredictMean(x []float64) float64 {
	return p.g.PredictMean(x)
}

// MeanCache caches the kernel cross-covariance columns between a fixed set
// of query points and a surrogate's mean basis, for workloads that
// re-predict the same design over and over (MUSIC evaluates one QMC Sobol
// design against the surrogate after every refit). The expensive part of
// PredictMean is the transcendental kernel evaluations; those depend only on
// (query points, basis points, hyperparameters), so:
//
//   - while the hyperparameters are unchanged (surrogate generation stable,
//     e.g. cheap Add calls between refit intervals), only the columns for
//     newly appended basis points are computed — for the dense GP the basis
//     is the training set and grows with each Add, for the SparseGP it is
//     the inducing set and stays fixed, so cheap Adds recompute nothing;
//   - when the surrogate is refit (generation bump), all columns rebuild.
//
// Means then reduces each cached column against the surrogate's weights in
// index order, reproducing PredictMean bit-for-bit for either kind.
type MeanCache struct {
	pts  [][]float64 // fixed query points (borrowed; do not mutate)
	s    Surrogate
	gen  uint64
	n    int         // basis size the columns cover
	cols [][]float64 // cols[q][i] = corr(pts[q], basis[i]) at the cached gen
}

// NewMeanCache creates a cache over the given fixed query points. The slice
// is borrowed, not copied.
func NewMeanCache(pts [][]float64) *MeanCache {
	return &MeanCache{pts: pts, cols: make([][]float64, len(pts))}
}

// Means writes s.PredictMean(pts[q]) for every query point into out, reusing
// cached kernel columns where the surrogate's hyperparameters allow.
// len(out) must equal the number of query points.
func (c *MeanCache) Means(s Surrogate, out []float64) {
	if len(out) != len(c.pts) {
		panic("gp: MeanCache output length mismatch")
	}
	basis := s.meanBasis()
	weights := s.meanWeights()
	kind, ls := s.corrParams()
	offset, scale := s.meanScale()
	n := len(basis)
	fresh := c.s != s || c.gen != s.generation()
	if fresh {
		c.s, c.gen = s, s.generation()
		c.n = 0
	}
	lo := c.n
	if n < lo {
		// Basis shrank without a generation bump — cannot happen via the
		// public API, but recompute defensively.
		lo = 0
	}
	parallel.ForChunk(len(c.pts), func(qlo, qhi int) {
		for q := qlo; q < qhi; q++ {
			col := c.cols[q]
			if cap(col) < n {
				// Headroom for the steady drip of one-point Adds between
				// refits, so each snapshot does not reallocate every column.
				grown := make([]float64, n, n+64)
				copy(grown, col[:lo])
				col = grown
			} else {
				col = col[:n]
			}
			pt := c.pts[q]
			for i := lo; i < n; i++ {
				col[i] = corr(kind, pt, basis[i], ls)
			}
			c.cols[q] = col
			// Ordered reduction, matching PredictMean's loop exactly.
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += weights[i] * col[i]
			}
			out[q] = offset + scale*sum
		}
	})
	c.n = n
}
