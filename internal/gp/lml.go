package gp

import (
	"math"

	"osprey/internal/linalg"
	"osprey/internal/parallel"
)

// pairBase returns the index of pair (i, i+1) in the packed upper-triangle
// pair ordering (0,1), (0,2), …, (0,n-1), (1,2), …
func pairBase(i, n int) int {
	return i*(n-1) - i*(i-1)/2
}

// packSquaredDiffs precomputes (x[i][t]-x[j][t])² for every pair i<j and
// dimension t, pair-major: sq[p*d+t] for pair p. The tensor depends only on
// the training inputs, so it is built once per optimize() and shared
// read-only by every restart's evaluator.
func packSquaredDiffs(x [][]float64, d int) []float64 {
	n := len(x)
	if n < 2 {
		return nil
	}
	sq := make([]float64, (n*(n-1)/2)*d)
	parallel.ForChunk(n-1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x[i]
			p := pairBase(i, n)
			for j := i + 1; j < n; j++ {
				row := sq[p*d : p*d+d]
				xj := x[j]
				for t := 0; t < d; t++ {
					df := xi[t] - xj[t]
					row[t] = df * df
				}
				p++
			}
		}
	})
	return sq
}

// lmlEvaluator computes the negative log marginal likelihood for one
// hyperparameter vector. Each multi-start restart owns one evaluator: the
// covariance buffer and solve scratch that the old serial objective kept on
// the GP itself live here instead, so restarts can run concurrently without
// sharing mutable state. The training inputs are consumed through the packed
// squared-difference tensor, turning each kernel entry into a d-term
// multiply-add plus one transcendental instead of a coordinate-space
// distance rebuild.
type lmlEvaluator struct {
	kind        KernelKind
	n, d        int
	fixedNugget float64
	sq          []float64 // shared, read-only
	y           []float64 // shared, read-only

	invls2 []float64 // exp(-2θ_t) = 1/ls_t² per dimension
	k      *linalg.Dense
	w      []float64 // forward-solve output
}

func newLMLEvaluator(g *GP, sq []float64) *lmlEvaluator {
	return newLMLEvaluatorRaw(g.kind, g.dim, g.opts.FixedNugget, sq, g.y)
}

// newLMLEvaluatorRaw builds an evaluator from raw pieces — kernel family,
// dimension, the packed squared-diff tensor, and standardized targets — so
// the sparse surrogate's inducing-subset fit can reuse the exact dense
// likelihood machinery without a fitted GP in hand.
func newLMLEvaluatorRaw(kind KernelKind, d int, fixedNugget float64, sq, y []float64) *lmlEvaluator {
	n := len(y)
	return &lmlEvaluator{
		kind:        kind,
		n:           n,
		d:           d,
		fixedNugget: fixedNugget,
		sq:          sq,
		y:           y,
		invls2:      make([]float64, d),
		k:           linalg.NewDense(n, n),
		w:           make([]float64, n),
	}
}

// hyperStarts builds the deterministic multi-start grid shared by the dense
// fit and the sparse subset fit: a moderate-lengthscale base point (unit
// signal variance on standardized targets) plus `restarts` progressively
// rougher, lower-noise perturbations. theta layout:
// [log ls_1..log ls_d, log sf2, (log nugget)].
func hyperStarts(dim, restarts int, fixedNugget float64) [][]float64 {
	nt := dim + 2
	if fixedNugget > 0 {
		nt = dim + 1
	}
	starts := make([][]float64, 0, restarts+1)
	base := make([]float64, nt)
	for i := 0; i < dim; i++ {
		base[i] = math.Log(0.3) // moderate lengthscale on unit-cube inputs
	}
	base[dim] = 0 // sf2 = 1 on standardized targets
	if fixedNugget <= 0 {
		base[dim+1] = math.Log(1e-4)
	}
	starts = append(starts, base)
	for r := 1; r <= restarts; r++ {
		s := append([]float64(nil), base...)
		for i := 0; i < dim; i++ {
			s[i] = math.Log(0.1 * math.Pow(3, float64(r)))
		}
		if fixedNugget <= 0 {
			s[dim+1] = math.Log(math.Pow(10, float64(-2-r)))
		}
		starts = append(starts, s)
	}
	return starts
}

// negLML evaluates -log p(y | θ). Only the Cholesky factor and a forward
// solve are needed: yᵀK⁻¹y = ‖L⁻¹y‖², so the back substitution the full
// solve would do is skipped.
func (e *lmlEvaluator) negLML(theta []float64) float64 {
	for _, v := range theta {
		// Guard against absurd scales that destabilize Cholesky.
		if v < -14 || v > 14 {
			return math.Inf(1)
		}
	}
	d := e.d
	for t := 0; t < d; t++ {
		e.invls2[t] = math.Exp(-2 * theta[t])
	}
	sf2 := math.Exp(theta[d])
	nugget := e.fixedNugget
	if nugget <= 0 {
		nugget = math.Exp(theta[d+1])
	}

	n := e.n
	kind, sq, invls2 := e.kind, e.sq, e.invls2
	parallel.ForChunk(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.k.Set(i, i, sf2+nugget)
			p := pairBase(i, n)
			for j := i + 1; j < n; j++ {
				s := 0.0
				row := sq[p*d : p*d+d]
				for t := 0; t < d; t++ {
					s += row[t] * invls2[t]
				}
				var c float64
				switch kind {
				case SquaredExponential:
					c = math.Exp(-0.5 * s)
				case Matern52:
					r := math.Sqrt(5 * s)
					c = (1 + r + 5*s/3) * math.Exp(-r)
				default:
					panic("gp: unknown kernel kind")
				}
				v := sf2 * c
				e.k.Set(i, j, v)
				e.k.Set(j, i, v)
				p++
			}
		}
	})

	ch, _, err := linalg.NewCholeskyJittered(e.k, 1e-10, 12)
	if err != nil {
		return math.Inf(1)
	}
	ch.ForwardSolveTo(e.w, e.y)
	fn := float64(n)
	lml := -0.5*linalg.Dot(e.w, e.w) - 0.5*ch.LogDet() - 0.5*fn*math.Log(2*math.Pi)
	return -lml
}
