package gp

import (
	"errors"
	"math"
	"sync"

	"osprey/internal/linalg"
	"osprey/internal/optim"
	"osprey/internal/parallel"
)

// SparseGP is the subset-of-regressors (SoR) inducing-point approximation
// with the projected-process variance correction: m inducing points u are
// chosen from the training inputs by a deterministic greedy farthest-point
// traversal, hyperparameters are fitted by maximizing the dense log marginal
// likelihood on the inducing subset, and the predictive equations use only
// the m×m Gram matrices
//
//	A = σ²·Kmm + Kmn·Knm        (σ² = nugget, standardized-y scale)
//	α = A⁻¹ · Kmn·y
//	mean(x)  = yMean + yStd · k_m(x)ᵀ α
//	var(x)   = yStd² · max(0, sf2 − k_mᵀKmm⁻¹k_m + σ²·k_mᵀA⁻¹k_m)
//
// so fitting is O(n·m²) and a mean prediction O(m·d) — sub-cubic in n,
// which is what lets a 10k-point MUSIC campaign refit continuously where
// the dense GP caps out at a few hundred points.
//
// Determinism: inducing selection, Gram assembly, and prediction all write
// disjoint slots under internal/parallel's ForChunk contract, so every
// result is bit-identical at any worker count. A and Kmn·y are accumulated
// per entry in ascending training-point order starting from the σ²·Kmm
// base, which is exactly the sequence the cheap Add path appends to — so an
// interrupted-and-restored surrogate (RestoreSparse rebuilds from scratch)
// matches an uninterrupted one bit for bit.
//
// Construct with FitSparse or RestoreSparse; the zero value is not usable.
type SparseGP struct {
	kind KernelKind
	x    [][]float64
	y    []float64 // standardized observations
	dim  int

	inducing int   // effective inducing-point budget
	idx      []int // training-set indices of the inducing points
	u        [][]float64

	// Hyperparameters (standardized-y scale), fitted on the inducing subset.
	ls     []float64
	sf2    float64
	nugget float64

	yMean, yStd float64

	kmm    *linalg.Cholesky // factor of Kmm (jittered) for the variance term
	amat   *linalg.Dense    // A, accumulated in training-point order
	achol  *linalg.Cholesky
	bvec   []float64 // Kmn·y, accumulated alongside A
	alpha  []float64 // A⁻¹ · Kmn·y
	lml    float64   // subset log marginal likelihood at the fitted params
	jitter float64   // diagonal jitter applied when factoring A
	opts   Options

	gen uint64
}

// FitSparse trains a sparse GP on inputs x and targets y with at most
// `inducing` inducing points (<= 0 means DefaultInducing; more points than
// observations is clamped to n).
func FitSparse(x [][]float64, y []float64, inducing int, opts Options) (*SparseGP, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	d := len(x[0])
	for _, xi := range x {
		if len(xi) != d {
			return nil, errors.New("gp: ragged input points")
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200
	}
	if opts.Restarts < 0 {
		opts.Restarts = 0
	}
	if inducing <= 0 {
		inducing = DefaultInducing
	}

	g := &SparseGP{kind: opts.Kernel, dim: d, inducing: inducing, opts: opts}
	g.x = make([][]float64, n)
	for i := range x {
		g.x[i] = append([]float64(nil), x[i]...)
	}
	g.yMean, g.yStd = standardizeTargets(y)
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - g.yMean) / g.yStd
	}

	m := inducing
	if m > n {
		m = n
	}
	g.idx = greedyInducing(g.x, m)
	g.u = make([][]float64, len(g.idx))
	for i, id := range g.idx {
		g.u[i] = g.x[id]
	}

	if err := g.fitSubsetHypers(); err != nil {
		return nil, err
	}
	g.gen = genCounter.Add(1)
	if err := g.refactor(); err != nil {
		return nil, err
	}
	return g, nil
}

// RestoreSparse rebuilds a SparseGP from training data and previously fitted
// hyperparameters, skipping both inducing-point selection (the recorded
// indices are reused — re-selecting over a grown training set could pick
// different points) and hyperparameter optimization. The result predicts
// bit-identically to the surrogate the hyperparameters came from.
func RestoreSparse(x [][]float64, y []float64, hp Hyperparams, opts Options) (*SparseGP, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, ErrNoData
	}
	d := len(x[0])
	if len(hp.Lengthscales) != d {
		return nil, errors.New("gp: hyperparameter dimension mismatch")
	}
	if hp.YStd <= 0 || hp.SignalVar <= 0 {
		return nil, errors.New("gp: invalid hyperparameters")
	}
	if len(hp.InducingIdx) == 0 {
		return nil, errors.New("gp: sparse hyperparameters carry no inducing indices")
	}
	g := &SparseGP{
		kind: hp.Kernel, dim: d, opts: opts,
		ls:  append([]float64(nil), hp.Lengthscales...),
		sf2: hp.SignalVar, nugget: hp.NuggetVar,
		yMean: hp.YMean, yStd: hp.YStd,
		inducing: hp.Inducing,
	}
	if g.inducing <= 0 {
		g.inducing = len(hp.InducingIdx)
	}
	g.x = make([][]float64, n)
	for i := range x {
		if len(x[i]) != d {
			return nil, errors.New("gp: ragged input points")
		}
		g.x[i] = append([]float64(nil), x[i]...)
	}
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - hp.YMean) / hp.YStd
	}
	g.idx = append([]int(nil), hp.InducingIdx...)
	g.u = make([][]float64, len(g.idx))
	for i, id := range g.idx {
		if id < 0 || id >= n {
			return nil, errors.New("gp: inducing index out of range")
		}
		g.u[i] = g.x[id]
	}
	g.gen = genCounter.Add(1)
	if err := g.refactor(); err != nil {
		return nil, err
	}
	return g, nil
}

// greedyInducing picks m indices by farthest-point traversal: start at index
// 0, then repeatedly take the point with the largest squared distance to the
// set selected so far (ties break to the lowest index). Distance updates are
// slot-parallel, the argmax is a serial ordered scan, so the selection is a
// pure function of the inputs at any worker count. Exact duplicates of
// already-selected points are never picked; the result may therefore be
// shorter than m.
func greedyInducing(x [][]float64, m int) []int {
	n := len(x)
	if m > n {
		m = n
	}
	idx := make([]int, 0, m)
	idx = append(idx, 0)
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = math.Inf(1)
	}
	for len(idx) < m {
		newest := x[idx[len(idx)-1]]
		parallel.ForChunk(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				xi := x[i]
				d := 0.0
				for t := range newest {
					df := xi[t] - newest[t]
					d += df * df
				}
				if d < dists[i] {
					dists[i] = d
				}
			}
		})
		best, bestD := -1, 0.0
		for i, d := range dists {
			if d > bestD {
				best, bestD = i, d
			}
		}
		if best < 0 {
			break // every remaining point duplicates a selected one
		}
		idx = append(idx, best)
	}
	return idx
}

// fitSubsetHypers maximizes the dense log marginal likelihood on the
// inducing subset, reusing the packed squared-diff tensor and the evaluator
// behind the dense fit. The subset is standardized with the full-data scale,
// so the fitted (ls, sf2, nugget) transfer directly to the SoR equations.
// Fitting on m points instead of n keeps each likelihood evaluation O(m³)
// — the full SoR likelihood would cost O(n·m²) per evaluation, hundreds of
// times over.
func (g *SparseGP) fitSubsetHypers() error {
	m, d := len(g.idx), g.dim
	xu := make([][]float64, m)
	yu := make([]float64, m)
	for i, id := range g.idx {
		xu[i] = g.x[id]
		yu[i] = g.y[id]
	}
	sq := packSquaredDiffs(xu, d)
	starts := hyperStarts(d, g.opts.Restarts, g.opts.FixedNugget)
	objFor := func(int) func([]float64) float64 {
		return newLMLEvaluatorRaw(g.kind, d, g.opts.FixedNugget, sq, yu).negLML
	}
	res := optim.MultiStartParallel(objFor, starts, optim.NelderMeadOptions{MaxIter: g.opts.MaxIter})
	if math.IsInf(res.F, 1) {
		return errors.New("gp: sparse hyperparameter optimization failed to find a feasible point")
	}
	g.ls = make([]float64, d)
	for i := 0; i < d; i++ {
		g.ls[i] = math.Exp(res.X[i])
	}
	g.sf2 = math.Exp(res.X[d])
	if g.opts.FixedNugget > 0 {
		g.nugget = g.opts.FixedNugget
	} else {
		g.nugget = math.Exp(res.X[d+1])
	}
	g.lml = -res.F
	return nil
}

// refactor rebuilds Kmm, A, Kmn·y, and α from scratch with the current
// hyperparameters. The accumulation order (σ²·Kmm base first, then training
// points in ascending order, one rounding per step) is the contract the
// cheap Add path extends — see SparseGP's doc comment.
func (g *SparseGP) refactor() error {
	m, n := len(g.u), len(g.x)

	kmmRaw := linalg.NewDense(m, m)
	parallel.ForChunk(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			kmmRaw.Set(i, i, g.sf2)
			for j := i + 1; j < m; j++ {
				v := g.sf2 * corr(g.kind, g.u[i], g.u[j], g.ls)
				kmmRaw.Set(i, j, v)
				kmmRaw.Set(j, i, v)
			}
		}
	})
	ch, _, err := linalg.NewCholeskyJittered(kmmRaw, 1e-10, 12)
	if err != nil {
		return err
	}
	g.kmm = ch

	// Kmn, row-major m×n: row i is inducing point i's kernel against every
	// training point. Rows are disjoint slots.
	kmn := make([]float64, m*n)
	parallel.ForChunk(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := kmn[i*n : (i+1)*n]
			for t := 0; t < n; t++ {
				row[t] = g.sf2 * corr(g.kind, g.u[i], g.x[t], g.ls)
			}
		}
	})

	// A = σ²·Kmm + Kmn·Knm and b = Kmn·y. Each (i,j) pair owns its entry and
	// its mirror; the t-loop uses a single accumulator in ascending order so
	// the series matches what Add appends.
	g.amat = linalg.NewDense(m, m)
	g.bvec = make([]float64, m)
	pairs := make([][2]int, 0, m*(m+1)/2)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	parallel.ForChunk(len(pairs), func(lo, hi int) {
		for p := lo; p < hi; p++ {
			i, j := pairs[p][0], pairs[p][1]
			ri := kmn[i*n : (i+1)*n]
			rj := kmn[j*n : (j+1)*n]
			v := g.nugget * kmmRaw.At(i, j)
			for t := 0; t < n; t++ {
				v += ri[t] * rj[t]
			}
			g.amat.Set(i, j, v)
			if i != j {
				g.amat.Set(j, i, v)
			}
		}
	})
	parallel.ForChunk(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := kmn[i*n : (i+1)*n]
			v := 0.0
			for t := 0; t < n; t++ {
				v += ri[t] * g.y[t]
			}
			g.bvec[i] = v
		}
	})
	return g.solve()
}

// solve refreshes the factorization of A and α after A or b changed.
func (g *SparseGP) solve() error {
	ch, jit, err := linalg.NewCholeskyJittered(g.amat, 1e-10, 12)
	if err != nil {
		return err
	}
	g.achol, g.jitter = ch, jit
	g.alpha = ch.SolveVec(g.bvec)
	return nil
}

// Add appends a training observation. When reoptimize is true, inducing
// points and hyperparameters are refit from scratch on the grown set;
// otherwise the new point's inducing-kernel column is folded into A and
// Kmn·y — extending exactly the accumulation series refactor builds, so the
// incremental state is bit-identical to a from-scratch rebuild — and only
// the m×m factorization is refreshed (the cheap path used between MUSIC
// refit intervals).
func (g *SparseGP) Add(x []float64, y float64, reoptimize bool) error {
	if len(x) != g.dim {
		return errors.New("gp: Add dimension mismatch")
	}
	g.x = append(g.x, append([]float64(nil), x...))
	g.y = append(g.y, (y-g.yMean)/g.yStd)
	if reoptimize {
		raw := make([]float64, len(g.y))
		for i, v := range g.y {
			raw[i] = g.yMean + g.yStd*v
		}
		ng, err := FitSparse(g.x, raw, g.inducing, g.opts)
		if err != nil {
			return err
		}
		*g = *ng
		return nil
	}
	m := len(g.u)
	xt := g.x[len(g.x)-1]
	yt := g.y[len(g.y)-1]
	k := make([]float64, m)
	for i := 0; i < m; i++ {
		k[i] = g.sf2 * corr(g.kind, g.u[i], xt, g.ls)
	}
	for i := 0; i < m; i++ {
		ai := g.amat.Row(i)
		ki := k[i]
		for j := 0; j < m; j++ {
			ai[j] += ki * k[j]
		}
		g.bvec[i] += ki * yt
	}
	return g.solve()
}

// sparseScratch is the reusable working set of one sparse prediction: the
// inducing-kernel vector and the two forward-solve outputs.
type sparseScratch struct{ k, v, w []float64 }

var sparseScratchPool = sync.Pool{New: func() any { return new(sparseScratch) }}

// predictWith computes the posterior mean and variance at x using
// caller-owned scratch; the single kernel behind Predict, PredictBatch, and
// the sparse Predictor.
func (g *SparseGP) predictWith(x []float64, s *sparseScratch) (mean, variance float64) {
	if len(x) != g.dim {
		panic("gp: Predict dimension mismatch")
	}
	m := len(g.u)
	s.k = grow(s.k, m)
	s.v = grow(s.v, m)
	s.w = grow(s.w, m)
	for i := 0; i < m; i++ {
		s.k[i] = g.sf2 * corr(g.kind, x, g.u[i], g.ls)
	}
	mu := linalg.Dot(s.k, g.alpha)
	g.kmm.ForwardSolveTo(s.v, s.k)
	g.achol.ForwardSolveTo(s.w, s.k)
	variance = g.sf2 - linalg.Dot(s.v, s.v) + g.nugget*linalg.Dot(s.w, s.w)
	if variance < 0 {
		variance = 0
	}
	mean = g.yMean + g.yStd*mu
	variance *= g.yStd * g.yStd
	return mean, variance
}

// Predict returns the posterior mean and variance at x (raw scale).
func (g *SparseGP) Predict(x []float64) (mean, variance float64) {
	s := sparseScratchPool.Get().(*sparseScratch)
	mean, variance = g.predictWith(x, s)
	sparseScratchPool.Put(s)
	return mean, variance
}

// PredictBatch evaluates Predict over many points across the worker pool,
// each point into its own slot — bit-identical to the serial loop at any
// worker count.
func (g *SparseGP) PredictBatch(xs [][]float64) (means, variances []float64) {
	means = make([]float64, len(xs))
	variances = make([]float64, len(xs))
	parallel.ForChunk(len(xs), func(lo, hi int) {
		s := sparseScratchPool.Get().(*sparseScratch)
		for i := lo; i < hi; i++ {
			means[i], variances[i] = g.predictWith(xs[i], s)
		}
		sparseScratchPool.Put(s)
	})
	return means, variances
}

// PredictMean returns only the posterior mean at x: O(m·d), no solves.
func (g *SparseGP) PredictMean(x []float64) float64 {
	if len(x) != g.dim {
		panic("gp: PredictMean dimension mismatch")
	}
	s := 0.0
	for i := range g.u {
		s += g.alpha[i] * corr(g.kind, x, g.u[i], g.ls)
	}
	return g.yMean + g.yStd*g.sf2*s
}

// N returns the number of training points.
func (g *SparseGP) N() int { return len(g.x) }

// Dim returns the input dimension.
func (g *SparseGP) Dim() int { return g.dim }

// M returns the number of inducing points actually in use.
func (g *SparseGP) M() int { return len(g.u) }

// InducingIndices returns a copy of the selected training-set indices.
func (g *SparseGP) InducingIndices() []int { return append([]int(nil), g.idx...) }

// LogMarginalLikelihood returns the inducing-subset LML at the fitted
// hyperparameters (a diagnostic, not the full SoR likelihood).
func (g *SparseGP) LogMarginalLikelihood() float64 { return g.lml }

// Lengthscales returns a copy of the fitted per-dimension lengthscales.
func (g *SparseGP) Lengthscales() []float64 { return append([]float64(nil), g.ls...) }

// Nugget returns the fitted (or fixed) nugget variance on the raw-y scale.
func (g *SparseGP) Nugget() float64 { return g.nugget * g.yStd * g.yStd }

// TrainingInputs returns a deep copy of the training inputs.
func (g *SparseGP) TrainingInputs() [][]float64 {
	out := make([][]float64, len(g.x))
	for i, xi := range g.x {
		out[i] = append([]float64(nil), xi...)
	}
	return out
}

// TrainingTargets returns the raw-scale training targets.
func (g *SparseGP) TrainingTargets() []float64 {
	out := make([]float64, len(g.y))
	for i, v := range g.y {
		out[i] = g.yMean + g.yStd*v
	}
	return out
}

// Hyperparams exports the fitted state, including the inducing indices a
// RestoreSparse needs to rebuild bit-identically.
func (g *SparseGP) Hyperparams() Hyperparams {
	return Hyperparams{
		Kernel:       g.kind,
		Lengthscales: append([]float64(nil), g.ls...),
		SignalVar:    g.sf2,
		NuggetVar:    g.nugget,
		YMean:        g.yMean,
		YStd:         g.yStd,
		Surrogate:    SparseSurrogate,
		Inducing:     g.inducing,
		InducingIdx:  append([]int(nil), g.idx...),
	}
}

// sparsePredictor carries reusable scratch for repeated queries against one
// SparseGP. Not safe for concurrent use; give each worker its own.
type sparsePredictor struct {
	g *SparseGP
	s sparseScratch
}

// NewPredictor returns a Predictor bound to g.
func (g *SparseGP) NewPredictor() Predictor { return &sparsePredictor{g: g} }

func (p *sparsePredictor) Predict(x []float64) (mean, variance float64) {
	return p.g.predictWith(x, &p.s)
}

func (p *sparsePredictor) PredictMean(x []float64) float64 {
	return p.g.PredictMean(x)
}

// MeanCache hooks.

func (g *SparseGP) meanBasis() [][]float64              { return g.u }
func (g *SparseGP) meanWeights() []float64              { return g.alpha }
func (g *SparseGP) corrParams() (KernelKind, []float64) { return g.kind, g.ls }
func (g *SparseGP) meanScale() (offset, scale float64)  { return g.yMean, g.yStd * g.sf2 }
func (g *SparseGP) generation() uint64                  { return g.gen }
