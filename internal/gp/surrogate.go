package gp

import (
	"fmt"
	"math"
)

// SurrogateKind selects the surrogate implementation behind the Surrogate
// interface.
type SurrogateKind int

const (
	// DenseSurrogate is the exact GP: O(n³) fit, O(n) mean / O(n²) variance
	// per prediction. The right choice up to a few hundred training points.
	DenseSurrogate SurrogateKind = iota
	// SparseSurrogate is the subset-of-regressors inducing-point
	// approximation (SparseGP): O(n·m²) fit and O(m) mean for m inducing
	// points, opening 10k-point designs the dense path cannot reach.
	SparseSurrogate
)

func (k SurrogateKind) String() string {
	switch k {
	case DenseSurrogate:
		return "dense"
	case SparseSurrogate:
		return "sparse"
	default:
		return fmt.Sprintf("SurrogateKind(%d)", int(k))
	}
}

// DefaultInducing is the inducing-point budget used when a sparse surrogate
// is requested without an explicit count.
const DefaultInducing = 256

// Surrogate is the regression-model contract MUSIC and the other consumers
// program against: anything that can be fitted on (x, y), appended to, and
// queried for posterior means and variances. Both the exact GP and the
// SparseGP implement it; the unexported hooks let MeanCache reuse kernel
// columns across either implementation, which also seals the interface to
// this package.
type Surrogate interface {
	// Predict returns the posterior mean and variance at x (raw scale).
	Predict(x []float64) (mean, variance float64)
	// PredictMean returns only the posterior mean, skipping the triangular
	// solve the variance needs.
	PredictMean(x []float64) float64
	// PredictBatch evaluates Predict over many points across the worker
	// pool, bit-identical to the serial loop at any worker count.
	PredictBatch(xs [][]float64) (means, variances []float64)
	// Add appends one training observation; reoptimize=true refits the
	// hyperparameters, false refreshes only the factorization.
	Add(x []float64, y float64, reoptimize bool) error
	// N and Dim report training-set size and input dimension.
	N() int
	Dim() int
	// TrainingInputs returns a deep copy of the training inputs.
	TrainingInputs() [][]float64
	// TrainingTargets returns the raw-scale training targets.
	TrainingTargets() []float64
	// Hyperparams exports the fitted state for checkpointing; feed it back
	// through RestoreSurrogate to rebuild without reoptimizing.
	Hyperparams() Hyperparams
	// NewPredictor returns reusable per-worker prediction scratch.
	NewPredictor() Predictor

	// MeanCache hooks: every implementation's posterior mean has the form
	//   offset + scale · Σ_i weights[i] · corr(x, basis[i], ls)
	// (dense: basis = training inputs, weights = K⁻¹y; sparse: basis =
	// inducing points, weights = A⁻¹Kmn·y), so cached kernel columns
	// against basis reproduce PredictMean for either kind.
	meanBasis() [][]float64
	meanWeights() []float64
	corrParams() (KernelKind, []float64)
	meanScale() (offset, scale float64)
	generation() uint64
}

// FitSurrogate trains a surrogate of the requested kind. inducing caps the
// sparse surrogate's inducing-point count (<= 0 means DefaultInducing) and
// is ignored for the dense kind.
func FitSurrogate(x [][]float64, y []float64, kind SurrogateKind, inducing int, opts Options) (Surrogate, error) {
	switch kind {
	case DenseSurrogate:
		return Fit(x, y, opts)
	case SparseSurrogate:
		return FitSparse(x, y, inducing, opts)
	default:
		return nil, fmt.Errorf("gp: unknown surrogate kind %d", int(kind))
	}
}

// RestoreSurrogate rebuilds a surrogate of the kind recorded in hp from
// training data and previously fitted hyperparameters, skipping
// optimization. The result predicts bit-identically to the surrogate the
// hyperparameters came from (given the same data).
func RestoreSurrogate(x [][]float64, y []float64, hp Hyperparams, opts Options) (Surrogate, error) {
	switch hp.Surrogate {
	case DenseSurrogate:
		return Restore(x, y, hp, opts)
	case SparseSurrogate:
		return RestoreSparse(x, y, hp, opts)
	default:
		return nil, fmt.Errorf("gp: unknown surrogate kind %d in hyperparameters", int(hp.Surrogate))
	}
}

// MeanCache hooks for the dense GP.

func (g *GP) meanBasis() [][]float64              { return g.x }
func (g *GP) meanWeights() []float64              { return g.alpha }
func (g *GP) corrParams() (KernelKind, []float64) { return g.kind, g.ls }
func (g *GP) meanScale() (offset, scale float64)  { return g.yMean, g.yStd * g.sf2 }
func (g *GP) generation() uint64                  { return g.gen }

// standardizeTargets returns the mean and standard deviation used to put raw
// targets on the unit scale both surrogate kinds fit on. Constant targets
// keep the raw scale (sd = 1).
func standardizeTargets(y []float64) (mean, sd float64) {
	n := float64(len(y))
	for _, v := range y {
		mean += v
	}
	mean /= n
	for _, v := range y {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / n)
	if sd < 1e-12 {
		sd = 1
	}
	return mean, sd
}
