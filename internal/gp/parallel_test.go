package gp

import (
	"math"
	"testing"

	"osprey/internal/design"
	"osprey/internal/parallel"
	"osprey/internal/rng"
)

// fitTestData builds a smooth 3-D response over a Latin hypercube.
func fitTestData(n int, seed uint64) ([][]float64, []float64) {
	r := rng.New(seed)
	x := design.LatinHypercube(r, n, 3)
	y := make([]float64, n)
	for i, p := range x {
		y[i] = math.Sin(3*p[0]) + 2*p[1]*p[1] - p[2] + 0.1*p[0]*p[2]
	}
	return x, y
}

// TestFitSerialParallelEquality is the gp leg of the repository-wide
// determinism contract: the multi-start hyperparameter search, kernel
// assembly, and Cholesky factorization must give bit-identical models
// at one worker and at eight.
func TestFitSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	x, y := fitTestData(40, 7)
	run := func(workers int) *GP {
		parallel.SetWorkers(workers)
		g, err := Fit(x, y, Options{Kernel: Matern52, Restarts: 3, MaxIter: 80})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := run(1)
	b := run(8)
	for d := range a.ls {
		if a.ls[d] != b.ls[d] {
			t.Fatalf("lengthscale %d: %x (serial) vs %x (parallel)", d, a.ls[d], b.ls[d])
		}
	}
	if a.sf2 != b.sf2 || a.nugget != b.nugget || a.lml != b.lml {
		t.Fatalf("amplitude/nugget/lml differ: (%x,%x,%x) vs (%x,%x,%x)",
			a.sf2, a.nugget, a.lml, b.sf2, b.nugget, b.lml)
	}
	for i := range a.alpha {
		if a.alpha[i] != b.alpha[i] {
			t.Fatalf("alpha %d: serial and parallel weights differ", i)
		}
	}
}

// TestPredictBatchSerialParallelEquality checks the chunked batch
// prediction path against single-point Predict under both worker counts.
func TestPredictBatchSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	x, y := fitTestData(30, 8)
	g, err := Fit(x, y, Options{Kernel: SquaredExponential})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(101)
	qs := make([][]float64, 200)
	for i := range qs {
		qs[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}

	parallel.SetWorkers(1)
	m1, v1 := g.PredictBatch(qs)
	parallel.SetWorkers(8)
	m8, v8 := g.PredictBatch(qs)
	for i := range qs {
		if m1[i] != m8[i] || v1[i] != v8[i] {
			t.Fatalf("query %d: serial and parallel batch predictions differ", i)
		}
		mp, vp := g.Predict(qs[i])
		if mp != m1[i] || vp != v1[i] {
			t.Fatalf("query %d: batch and single-point predictions differ", i)
		}
	}
}

// TestPredictorMatchesPredict pins the reusable-scratch Predictor to the
// pooled Predict path.
func TestPredictorMatchesPredict(t *testing.T) {
	x, y := fitTestData(25, 9)
	g, err := Fit(x, y, Options{Kernel: Matern52})
	if err != nil {
		t.Fatal(err)
	}
	pred := g.NewPredictor()
	r := rng.New(55)
	for i := 0; i < 100; i++ {
		q := []float64{r.Float64(), r.Float64(), r.Float64()}
		m1, v1 := g.Predict(q)
		m2, v2 := pred.Predict(q)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("query %d: Predictor diverges from Predict", i)
		}
		if pm := pred.PredictMean(q); pm != g.PredictMean(q) {
			t.Fatalf("query %d: PredictMean diverges", i)
		}
	}
}

// TestMeanCacheMatchesPredictMean checks that the cached-correlation mean
// path reproduces PredictMean bit-for-bit, across cheap Adds (column
// extension) and refits (full rebuild).
func TestMeanCacheMatchesPredictMean(t *testing.T) {
	defer parallel.SetWorkers(0)
	x, y := fitTestData(20, 10)
	g, err := Fit(x, y, Options{Kernel: SquaredExponential})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{r.Float64(), r.Float64(), r.Float64()}
	}
	check := func(c *MeanCache, stage string) {
		out := make([]float64, len(pts))
		c.Means(g, out)
		for q, pt := range pts {
			if want := g.PredictMean(pt); out[q] != want {
				t.Fatalf("%s query %d: cache %x vs PredictMean %x", stage, q, out[q], want)
			}
		}
	}
	for _, workers := range []int{1, 8} {
		parallel.SetWorkers(workers)
		c := NewMeanCache(pts)
		check(c, "fresh")
		// Cheap appends extend cached columns.
		for k := 0; k < 3; k++ {
			p := []float64{r.Float64(), r.Float64(), r.Float64()}
			if err := g.Add(p, math.Sin(3*p[0])+2*p[1]*p[1]-p[2], false); err != nil {
				t.Fatal(err)
			}
		}
		check(c, "after add")
		// A refit bumps the generation and forces a rebuild.
		if err := g.Add([]float64{0.5, 0.5, 0.5}, 0.7, true); err != nil {
			t.Fatal(err)
		}
		check(c, "after refit")
	}
}
