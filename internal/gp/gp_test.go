package gp

import (
	"math"
	"testing"

	"osprey/internal/design"
	"osprey/internal/rng"
)

func sample1D(f func(float64) float64, xs []float64) ([][]float64, []float64) {
	x := make([][]float64, len(xs))
	y := make([]float64, len(xs))
	for i, v := range xs {
		x[i] = []float64{v}
		y[i] = f(v)
	}
	return x, y
}

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("Fit accepted empty data")
	}
}

func TestFitRaggedRejected(t *testing.T) {
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{0, 0}, Options{}); err == nil {
		t.Fatal("Fit accepted ragged inputs")
	}
}

func TestInterpolatesSmoothFunction(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	xs := make([]float64, 15)
	for i := range xs {
		xs[i] = float64(i) / 14
	}
	x, y := sample1D(f, xs)
	g, err := Fit(x, y, Options{Kernel: SquaredExponential, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range []float64{0.13, 0.42, 0.77} {
		m, _ := g.Predict([]float64{tx})
		if math.Abs(m-f(tx)) > 0.05 {
			t.Fatalf("prediction at %v: %v, want %v", tx, m, f(tx))
		}
	}
}

func TestVarianceShrinksAtData(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, y := sample1D(f, []float64{0, 0.25, 0.5, 0.75, 1})
	g, err := Fit(x, y, Options{Kernel: Matern52})
	if err != nil {
		t.Fatal(err)
	}
	_, vAt := g.Predict([]float64{0.5})
	_, vBetween := g.Predict([]float64{0.6})
	if vAt > vBetween {
		t.Fatalf("variance at a training point (%v) exceeds variance away from data (%v)", vAt, vBetween)
	}
}

func TestVarianceNonNegative(t *testing.T) {
	r := rng.New(1)
	x := design.LatinHypercube(r, 30, 3)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0] + 2*p[1]*p[1] - p[2]
	}
	g, err := Fit(x, y, Options{Kernel: SquaredExponential})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		pt := []float64{r.Float64(), r.Float64(), r.Float64()}
		_, v := g.Predict(pt)
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("negative or NaN predictive variance: %v", v)
		}
	}
}

func TestPredictNoisyAddsNugget(t *testing.T) {
	x, y := sample1D(func(x float64) float64 { return x }, []float64{0, 0.5, 1})
	g, err := Fit(x, y, Options{FixedNugget: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	_, v := g.Predict([]float64{0.25})
	_, vn := g.PredictNoisy([]float64{0.25})
	if vn <= v {
		t.Fatal("PredictNoisy should exceed latent variance")
	}
}

func TestRecoversAnisotropy(t *testing.T) {
	// Response depends strongly on x0 and not at all on x1; the fitted
	// lengthscale for x1 should be much larger.
	r := rng.New(2)
	x := design.LatinHypercube(r, 60, 2)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = math.Sin(4 * p[0])
	}
	g, err := Fit(x, y, Options{Kernel: SquaredExponential, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ls := g.Lengthscales()
	if ls[1] < 2*ls[0] {
		t.Fatalf("anisotropy not recovered: lengthscales %v", ls)
	}
}

func TestHandlesConstantTargets(t *testing.T) {
	x := [][]float64{{0}, {0.5}, {1}}
	y := []float64{3, 3, 3}
	g, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{0.25})
	if math.Abs(m-3) > 0.2 {
		t.Fatalf("constant function predicted as %v", m)
	}
}

func TestNoisyDataGetsNonTrivialNugget(t *testing.T) {
	r := rng.New(3)
	n := 80
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := r.Float64()
		x[i] = []float64{v}
		y[i] = math.Sin(2*math.Pi*v) + r.NormalMS(0, 0.3)
	}
	g, err := Fit(x, y, Options{Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	// True noise variance is 0.09; the fitted nugget should be within an
	// order of magnitude rather than collapsing to interpolation.
	if g.Nugget() < 0.01 {
		t.Fatalf("nugget %v too small for noisy data", g.Nugget())
	}
}

func TestAddWithoutReoptimize(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(3 * x) }
	x, y := sample1D(f, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0})
	g, err := Fit(x, y, Options{Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := g.Predict([]float64{0.5})
	if err := g.Add([]float64{0.5}, f(0.5), false); err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 {
		t.Fatalf("N = %d after Add", g.N())
	}
	after, vAfter := g.Predict([]float64{0.5})
	if math.Abs(after-f(0.5)) > math.Abs(before-f(0.5))+1e-9 {
		t.Fatal("adding an observation made the prediction there worse")
	}
	if vAfter > 1e-2 {
		t.Fatalf("variance at a new training point still large: %v", vAfter)
	}
}

func TestAddWithReoptimize(t *testing.T) {
	f := func(x float64) float64 { return x*x - x }
	x, y := sample1D(f, []float64{0, 0.3, 0.7, 1.0})
	g, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add([]float64{0.5}, f(0.5), true); err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{0.5})
	if math.Abs(m-f(0.5)) > 1e-3 {
		t.Fatalf("reoptimized GP mispredicts a training point: %v vs %v", m, f(0.5))
	}
}

func TestTrainingTargetsRoundTrip(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{5, -3}
	g, err := Fit(x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := g.TrainingTargets()
	for i := range y {
		if math.Abs(got[i]-y[i]) > 1e-9 {
			t.Fatalf("targets round trip: %v vs %v", got, y)
		}
	}
}

func TestMatern52Interpolates(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.5) }
	xs := make([]float64, 21)
	for i := range xs {
		xs[i] = float64(i) / 20
	}
	x, y := sample1D(f, xs)
	g, err := Fit(x, y, Options{Kernel: Matern52, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.Predict([]float64{0.33})
	if math.Abs(m-f(0.33)) > 0.05 {
		t.Fatalf("Matern prediction %v, want %v", m, f(0.33))
	}
}

func TestKernelKindString(t *testing.T) {
	if SquaredExponential.String() != "squared-exponential" || Matern52.String() != "matern52" {
		t.Fatal("kernel names wrong")
	}
}

func BenchmarkFit50(b *testing.B) {
	r := rng.New(1)
	x := design.LatinHypercube(r, 50, 5)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0] + p[1]*p[2] - math.Sin(p[3]) + p[4]*p[4]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y, Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	x := design.LatinHypercube(r, 100, 5)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0] + p[1]
	}
	g, err := Fit(x, y, Options{MaxIter: 60})
	if err != nil {
		b.Fatal(err)
	}
	pt := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Predict(pt)
	}
}

func TestRestorePredictsIdentically(t *testing.T) {
	r := rng.New(9)
	x := design.LatinHypercube(r, 40, 3)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0]*p[1] + math.Cos(3*p[2])
	}
	g, err := Fit(x, y, Options{Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(x, y, g.Hyperparams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pt := []float64{r.Float64(), r.Float64(), r.Float64()}
		m1, v1 := g.Predict(pt)
		m2, v2 := restored.Predict(pt)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("restored GP differs at %v: (%v,%v) vs (%v,%v)", pt, m1, v1, m2, v2)
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	x := [][]float64{{0.1}, {0.9}}
	y := []float64{1, 2}
	if _, err := Restore(nil, nil, Hyperparams{}, Options{}); err == nil {
		t.Fatal("empty restore accepted")
	}
	if _, err := Restore(x, y, Hyperparams{Lengthscales: []float64{1, 2}}, Options{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Restore(x, y, Hyperparams{Lengthscales: []float64{1}, YStd: 0, SignalVar: 1}, Options{}); err == nil {
		t.Fatal("invalid hyperparameters accepted")
	}
}

func TestPredictMeanMatchesPredict(t *testing.T) {
	r := rng.New(11)
	x := design.LatinHypercube(r, 30, 2)
	y := make([]float64, len(x))
	for i, p := range x {
		y[i] = p[0] + math.Sin(3*p[1])
	}
	g, err := Fit(x, y, Options{MaxIter: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pt := []float64{r.Float64(), r.Float64()}
		full, _ := g.Predict(pt)
		fast := g.PredictMean(pt)
		if math.Abs(full-fast) > 1e-10 {
			t.Fatalf("PredictMean %v != Predict %v at %v", fast, full, pt)
		}
	}
}
