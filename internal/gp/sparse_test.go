package gp

import (
	"math"
	"runtime"
	"testing"

	"osprey/internal/design"
	"osprey/internal/parallel"
	"osprey/internal/rng"
)

// sparseTestOpts keeps optimizer cost low without changing the contract
// under test.
var sparseTestOpts = Options{Kernel: SquaredExponential, MaxIter: 60, Restarts: 1}

func TestFitSparseEmpty(t *testing.T) {
	if _, err := FitSparse(nil, nil, 32, Options{}); err == nil {
		t.Fatal("FitSparse accepted empty data")
	}
}

// TestSparseMatchesDenseAccuracy checks the approximation quality the DESIGN
// doc promises: on a smooth response, sparse predictions with m << n stay
// close to the dense GP's on held-out points.
func TestSparseMatchesDenseAccuracy(t *testing.T) {
	x, y := fitTestData(300, 11)
	dense, err := Fit(x, y, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FitSparse(x, y, 64, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.M() != 64 {
		t.Fatalf("expected 64 inducing points, got %d", sparse.M())
	}
	test := design.LatinHypercube(rng.New(99), 200, 3)
	var sd, ss float64
	for _, p := range test {
		truth := math.Sin(3*p[0]) + 2*p[1]*p[1] - p[2] + 0.1*p[0]*p[2]
		md, _ := dense.Predict(p)
		ms, _ := sparse.Predict(p)
		sd += (md - truth) * (md - truth)
		ss += (ms - truth) * (ms - truth)
	}
	rmseDense := math.Sqrt(sd / float64(len(test)))
	rmseSparse := math.Sqrt(ss / float64(len(test)))
	// The documented tolerance: sparse RMSE within 0.05 absolute of dense on
	// a unit-scale response (dense itself sits well under 0.01 here).
	if rmseSparse > rmseDense+0.05 {
		t.Fatalf("sparse rmse %v too far above dense rmse %v", rmseSparse, rmseDense)
	}
	// Variances must be finite and non-negative.
	for _, p := range test[:20] {
		_, v := sparse.Predict(p)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad sparse variance %v", v)
		}
	}
}

// TestSparseSerialParallelEquality extends the repository determinism
// contract to the sparse surrogate: inducing selection, subset fit, Gram
// assembly, and batched prediction are bit-identical at workers
// ∈ {1, 4, GOMAXPROCS}.
func TestSparseSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	x, y := fitTestData(250, 7)
	queries := design.LatinHypercube(rng.New(5), 64, 3)
	type result struct {
		g      *SparseGP
		mu, va []float64
	}
	run := func(workers int) result {
		parallel.SetWorkers(workers)
		g, err := FitSparse(x, y, 48, sparseTestOpts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		mu, va := g.PredictBatch(queries)
		return result{g, mu, va}
	}
	ref := run(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		r := run(w)
		for i, id := range ref.g.idx {
			if r.g.idx[i] != id {
				t.Fatalf("workers=%d: inducing index %d differs", w, i)
			}
		}
		for d := range ref.g.ls {
			if r.g.ls[d] != ref.g.ls[d] {
				t.Fatalf("workers=%d: lengthscale %d differs", w, d)
			}
		}
		if r.g.sf2 != ref.g.sf2 || r.g.nugget != ref.g.nugget {
			t.Fatalf("workers=%d: variance hyperparameters differ", w)
		}
		for i := range ref.g.alpha {
			if r.g.alpha[i] != ref.g.alpha[i] {
				t.Fatalf("workers=%d: alpha[%d] differs", w, i)
			}
		}
		for i := range ref.mu {
			if r.mu[i] != ref.mu[i] || r.va[i] != ref.va[i] {
				t.Fatalf("workers=%d: prediction %d differs", w, i)
			}
		}
	}
}

// TestSparseAddMatchesRestore pins the resume contract: cheap Adds extend
// the Gram accumulation in exactly the order a from-scratch RestoreSparse
// rebuild produces, so an interrupted campaign continues bit-identically.
func TestSparseAddMatchesRestore(t *testing.T) {
	x, y := fitTestData(220, 3)
	g, err := FitSparse(x[:200], y[:200], 40, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 200; i < 220; i++ {
		if err := g.Add(x[i], y[i], false); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreSparse(x, y, g.Hyperparams(), sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.amat.MaxAbsDiff(restored.amat); d != 0 {
		t.Fatalf("restored Gram matrix differs by %g", d)
	}
	for i := range g.alpha {
		if g.alpha[i] != restored.alpha[i] {
			t.Fatalf("alpha[%d] differs after restore", i)
		}
	}
	queries := design.LatinHypercube(rng.New(17), 32, 3)
	for _, q := range queries {
		m1, v1 := g.Predict(q)
		m2, v2 := restored.Predict(q)
		if m1 != m2 || v1 != v2 {
			t.Fatal("restored sparse surrogate predicts differently")
		}
	}
}

// TestSurrogateRoundTrip exercises the kind-dispatching constructors both
// ways: fit via FitSurrogate, export Hyperparams, rebuild via
// RestoreSurrogate, and require bit-identical predictions.
func TestSurrogateRoundTrip(t *testing.T) {
	x, y := fitTestData(120, 21)
	queries := design.LatinHypercube(rng.New(8), 16, 3)
	for _, kind := range []SurrogateKind{DenseSurrogate, SparseSurrogate} {
		s, err := FitSurrogate(x, y, kind, 32, sparseTestOpts)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		hp := s.Hyperparams()
		if hp.Surrogate != kind {
			t.Fatalf("%v: hyperparams record kind %v", kind, hp.Surrogate)
		}
		r, err := RestoreSurrogate(x, y, hp, sparseTestOpts)
		if err != nil {
			t.Fatalf("%v: restore: %v", kind, err)
		}
		for _, q := range queries {
			m1, v1 := s.Predict(q)
			m2, v2 := r.Predict(q)
			if m1 != m2 || v1 != v2 {
				t.Fatalf("%v: restored surrogate predicts differently", kind)
			}
			if pm := s.NewPredictor().PredictMean(q); pm != s.PredictMean(q) {
				t.Fatalf("%v: Predictor.PredictMean diverges", kind)
			}
		}
	}
}

// TestMeanCacheSparse checks the kernel-column cache against the sparse
// surrogate, including the fixed-basis fast path: cheap Adds change the
// weights but not the inducing set, so the cache recomputes no columns and
// must still match PredictMean bit for bit.
func TestMeanCacheSparse(t *testing.T) {
	x, y := fitTestData(160, 13)
	g, err := FitSparse(x[:150], y[:150], 32, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	queries := design.LatinHypercube(rng.New(2), 40, 3)
	cache := NewMeanCache(queries)
	out := make([]float64, len(queries))
	check := func(stage string) {
		cache.Means(g, out)
		for q, p := range queries {
			if want := g.PredictMean(p); out[q] != want {
				t.Fatalf("%s: cached mean %d = %v, want %v", stage, q, out[q], want)
			}
		}
	}
	check("initial")
	for i := 150; i < 160; i++ {
		if err := g.Add(x[i], y[i], false); err != nil {
			t.Fatal(err)
		}
	}
	check("after cheap adds")
	if err := g.Add([]float64{0.5, 0.5, 0.5}, 1.0, true); err != nil {
		t.Fatal(err)
	}
	check("after reoptimize")
}

// TestTrainingInputsCopied is the regression test for the aliasing bug:
// TrainingInputs must return a deep copy, so mutating it cannot corrupt
// training data under a fitted factorization.
func TestTrainingInputsCopied(t *testing.T) {
	x, y := fitTestData(40, 31)
	dense, err := Fit(x, y, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FitSparse(x, y, 16, sparseTestOpts)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.6, 0.2}
	for _, s := range []Surrogate{dense, sparse} {
		before := s.PredictMean(probe)
		got := s.TrainingInputs()
		for i := range got {
			for j := range got[i] {
				got[i][j] = math.NaN()
			}
		}
		if after := s.PredictMean(probe); after != before || math.IsNaN(after) {
			t.Fatalf("%T: mutating TrainingInputs changed predictions", s)
		}
	}
}
