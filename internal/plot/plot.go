// Package plot renders the paper's figures as ASCII charts and CSV series.
// Figures 2, 4 and 5 are line/band plots with facets; this package provides
// just enough terminal plotting to eyeball the reproduced shapes and CSV
// output to regenerate them with any external plotting tool.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Band is a shaded interval (e.g. a 95% credible band).
type Band struct {
	X, Lower, Upper []float64
}

// Chart is a single panel.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Band   *Band
	Width  int // columns of the plotting area (default 64)
	Height int // rows of the plotting area (default 16)
}

var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart to w as ASCII.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	consider := func(xs, ys []float64) {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
				continue
			}
			xmin = math.Min(xmin, xs[i])
			xmax = math.Max(xmax, xs[i])
			ymin = math.Min(ymin, ys[i])
			ymax = math.Max(ymax, ys[i])
		}
	}
	for _, s := range c.Series {
		consider(s.X, s.Y)
	}
	if c.Band != nil {
		consider(c.Band.X, c.Band.Lower)
		consider(c.Band.X, c.Band.Upper)
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("plot: chart %q has no finite data", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	toCol := func(x float64) int {
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		return clampInt(col, 0, width-1)
	}
	toRow := func(y float64) int {
		row := int((ymax - y) / (ymax - ymin) * float64(height-1))
		return clampInt(row, 0, height-1)
	}

	// Band first so lines draw over it.
	if c.Band != nil {
		for i := range c.Band.X {
			if math.IsNaN(c.Band.Lower[i]) || math.IsNaN(c.Band.Upper[i]) {
				continue
			}
			col := toCol(c.Band.X[i])
			lo, hi := toRow(c.Band.Lower[i]), toRow(c.Band.Upper[i])
			if lo < hi {
				lo, hi = hi, lo
			}
			for r := hi; r <= lo; r++ {
				grid[r][col] = '.'
			}
		}
	}
	for si, s := range c.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			grid[toRow(s.Y[i])][toCol(s.X[i])] = glyph
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.3g ", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, row); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%10s+%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s%-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	if len(c.Series) > 1 || c.Band != nil {
		var legend []string
		for si, s := range c.Series {
			legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
		}
		if c.Band != nil {
			legend = append(legend, ".=95% band")
		}
		fmt.Fprintf(w, "%10s%s\n", "", strings.Join(legend, "  "))
	}
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%10sx: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Facets renders charts one after another with separators, approximating
// the paper's faceted panels.
func Facets(w io.Writer, charts []*Chart) error {
	for i, c := range charts {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := c.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the chart's series (long format: series,x,y) so any
// external tool can regenerate the figure.
func (c *Chart) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range c.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	if c.Band != nil {
		for i := range c.Band.X {
			if _, err := fmt.Fprintf(w, "band_lower,%g,%g\n", c.Band.X[i], c.Band.Lower[i]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "band_upper,%g,%g\n", c.Band.X[i], c.Band.Upper[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders an aligned text table (used for Table 1 and the experiment
// summaries).
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	total := len(headers) - 1
	for _, width := range widths {
		total += width + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
