package plot

import (
	"math"
	"strings"
	"testing"
)

func lineChart() *Chart {
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = float64(i)
		y[i] = math.Sin(float64(i) / 8)
	}
	return &Chart{
		Title: "test", XLabel: "day", YLabel: "R(t)",
		Series: []Series{{Name: "median", X: x, Y: y}},
	}
}

func TestRenderBasic(t *testing.T) {
	var sb strings.Builder
	if err := lineChart().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data glyphs plotted")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 17 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestRenderWithBand(t *testing.T) {
	c := lineChart()
	n := len(c.Series[0].X)
	band := &Band{X: c.Series[0].X, Lower: make([]float64, n), Upper: make([]float64, n)}
	for i := range band.X {
		band.Lower[i] = c.Series[0].Y[i] - 0.3
		band.Upper[i] = c.Series[0].Y[i] + 0.3
	}
	c.Band = band
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ".") {
		t.Fatal("band not drawn")
	}
	if !strings.Contains(sb.String(), "95% band") {
		t.Fatal("band legend missing")
	}
}

func TestRenderEmptyFails(t *testing.T) {
	c := &Chart{Title: "empty"}
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Fatal("empty chart rendered")
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	c := &Chart{Series: []Series{{
		Name: "s",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.NaN(), 2},
	}}}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSeriesLegend(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "music", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "pce", X: []float64{0, 1}, Y: []float64{1, 0}},
	}}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*=music") || !strings.Contains(out, "o=pce") {
		t.Fatalf("legend missing: %s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "a,b", X: []float64{1}, Y: []float64{2}}}}
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Fatal("CSV header missing")
	}
	if !strings.Contains(out, `"a,b",1,2`) {
		t.Fatalf("CSV escaping wrong: %s", out)
	}
}

func TestWriteCSVWithBand(t *testing.T) {
	c := &Chart{
		Series: []Series{{Name: "m", X: []float64{1}, Y: []float64{2}}},
		Band:   &Band{X: []float64{1}, Lower: []float64{0}, Upper: []float64{3}},
	}
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "band_lower,1,0") || !strings.Contains(sb.String(), "band_upper,1,3") {
		t.Fatal("band rows missing")
	}
}

func TestFacets(t *testing.T) {
	var sb strings.Builder
	if err := Facets(&sb, []*Chart{lineChart(), lineChart()}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "test") != 2 {
		t.Fatal("facets missing")
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	err := Table(&sb, []string{"Parameter", "Range"}, [][]string{
		{"ts", "(0.1, 0.9)"},
		{"phd", "(0, 0.3)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Parameter") || !strings.Contains(out, "(0.1, 0.9)") {
		t.Fatalf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}
