package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGammaIncPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaIncP(1, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; P(a, inf) -> 1.
	if GammaIncP(2.5, 0) != 0 {
		t.Fatal("P(a,0) != 0")
	}
	if math.Abs(GammaIncP(2.5, 1000)-1) > 1e-12 {
		t.Fatal("P(a,large) != 1")
	}
}

func TestGammaIncPMonotone(t *testing.T) {
	f := func(raw uint16) bool {
		a := 0.1 + float64(raw%500)/25.0
		prev := -1.0
		for x := 0.0; x < 30; x += 0.5 {
			v := GammaIncP(a, x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGammaQuantileRoundTrip(t *testing.T) {
	cases := []struct{ shape, rate float64 }{{1, 1}, {2.5, 0.5}, {10, 3}, {0.5, 2}}
	for _, c := range cases {
		for _, q := range []float64{0.025, 0.25, 0.5, 0.75, 0.975} {
			x := GammaQuantile(q, c.shape, c.rate)
			back := GammaCDF(x, c.shape, c.rate)
			if math.Abs(back-q) > 1e-8 {
				t.Fatalf("CDF(Quantile(%v)) = %v for shape=%v rate=%v", q, back, c.shape, c.rate)
			}
		}
	}
}

func TestGammaQuantileMedianOfExponential(t *testing.T) {
	// Median of Exp(1) = ln 2.
	if got := GammaQuantile(0.5, 1, 1); math.Abs(got-math.Ln2) > 1e-8 {
		t.Fatalf("median of Exp(1) = %v, want ln2", got)
	}
}

func TestGammaPDFLogIntegratesToOne(t *testing.T) {
	shape, rate := 3.0, 1.5
	sum := 0.0
	dx := 0.001
	for x := dx / 2; x < 40; x += dx {
		sum += math.Exp(GammaPDFLog(x, shape, rate)) * dx
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("gamma pdf integrates to %v", sum)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0, 0.5, 1, 1.96, 3} {
		if math.Abs(NormalCDF(x)+NormalCDF(-x)-1) > 1e-14 {
			t.Fatalf("CDF symmetry violated at %v", x)
		}
	}
	if math.Abs(NormalCDF(1.959964)-0.975) > 1e-6 {
		t.Fatalf("CDF(1.96) = %v", NormalCDF(1.959964))
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, q := range []float64{0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormalQuantile(q)
		if math.Abs(NormalCDF(x)-q) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", q, NormalCDF(x))
		}
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-12 {
		t.Fatal("median of standard normal should be 0")
	}
}

func TestLogNormalPDFLog(t *testing.T) {
	// Mode of LogNormal(0, 1) is exp(-1); density must be lower elsewhere.
	mode := math.Exp(-1.0)
	dMode := LogNormalPDFLog(mode, 0, 1)
	if LogNormalPDFLog(1.5, 0, 1) >= dMode || LogNormalPDFLog(0.1, 0, 1) >= dMode {
		t.Fatal("log-normal mode not at exp(-sigma^2+mu)")
	}
	if !math.IsInf(LogNormalPDFLog(-1, 0, 1), -1) {
		t.Fatal("negative support should give -Inf")
	}
}
