// Package stats provides the descriptive statistics, quantile machinery,
// and MCMC convergence diagnostics used across the OSPREY reproduction:
// posterior interval summaries for the R(t) estimator, variance
// decompositions for the GSA layer, and effective-sample-size / R-hat checks
// for the Goldstein-method chains.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance, or NaN if len < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// PopVariance returns the population (n) variance, or NaN for empty input.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs; NaNs for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default). The input
// is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// Quantiles returns multiple quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic("stats: quantile out of [0,1]")
		}
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// WeightedMean returns sum(w_i x_i)/sum(w_i). Weights must be nonnegative
// with a positive sum; otherwise NaN is returned.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	num, den := 0.0, 0.0
	for i, x := range xs {
		if ws[i] < 0 {
			return math.NaN()
		}
		num += ws[i] * x
		den += ws[i]
	}
	if den <= 0 {
		return math.NaN()
	}
	return num / den
}

// WeightedVariance returns the weighted population variance around the
// weighted mean, with weights interpreted as frequencies.
func WeightedVariance(xs, ws []float64) float64 {
	m := WeightedMean(xs, ws)
	if math.IsNaN(m) {
		return math.NaN()
	}
	num, den := 0.0, 0.0
	for i, x := range xs {
		d := x - m
		num += ws[i] * d * d
		den += ws[i]
	}
	return num / den
}

// Correlation returns the Pearson correlation of paired samples.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Correlation length mismatch")
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary bundles the five-number-plus summary used in experiment reports.
type Summary struct {
	N               int
	Mean, StdDev    float64
	Min, Max        float64
	Q025, Med, Q975 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	qs := Quantiles(xs, 0.025, 0.5, 0.975)
	return Summary{
		N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs),
		Min: min, Max: max, Q025: qs[0], Med: qs[1], Q975: qs[2],
	}
}

// ECDF returns the empirical CDF evaluated at x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := 0
	for _, v := range xs {
		if v <= x {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Autocorrelation returns the lag-k autocorrelation of the series.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// EffectiveSampleSize estimates ESS of an MCMC trace using Geyer's initial
// positive sequence estimator over paired autocorrelations.
func EffectiveSampleSize(xs []float64) float64 {
	n := len(xs)
	if n < 4 {
		return float64(n)
	}
	sum := 0.0
	for lag := 1; lag+1 < n/2; lag += 2 {
		pair := Autocorrelation(xs, lag) + Autocorrelation(xs, lag+1)
		if pair <= 0 || math.IsNaN(pair) {
			break
		}
		sum += pair
	}
	ess := float64(n) / (1 + 2*sum)
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}

// GelmanRubin computes the potential scale reduction factor (R-hat) over
// multiple chains of equal length. Values near 1 indicate convergence.
func GelmanRubin(chains [][]float64) float64 {
	m := len(chains)
	if m < 2 {
		return math.NaN()
	}
	n := len(chains[0])
	for _, c := range chains {
		if len(c) != n {
			panic("stats: GelmanRubin requires equal-length chains")
		}
	}
	if n < 2 {
		return math.NaN()
	}
	means := make([]float64, m)
	vars := make([]float64, m)
	for i, c := range chains {
		means[i] = Mean(c)
		vars[i] = Variance(c)
	}
	w := Mean(vars)
	b := float64(n) * Variance(means)
	if w <= 0 {
		return math.NaN()
	}
	vHat := (float64(n-1)/float64(n))*w + b/float64(n)
	return math.Sqrt(vHat / w)
}

// WeightedQuantile returns the q-quantile of the weighted empirical
// distribution defined by values xs and nonnegative weights ws, using the
// inverse of the weighted ECDF with midpoint convention. It is the
// aggregation primitive behind the population-weighted ensemble R(t).
func WeightedQuantile(xs, ws []float64, q float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedQuantile length mismatch")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	total := 0.0
	for _, w := range ws {
		if w < 0 {
			return math.NaN()
		}
		total += w
	}
	if total <= 0 {
		return math.NaN()
	}
	target := q * total
	cum := 0.0
	for _, i := range idx {
		cum += ws[i]
		if cum >= target {
			return xs[i]
		}
	}
	return xs[idx[len(idx)-1]]
}

// MAD returns the median absolute deviation of xs (a robust scale
// estimate), optionally scaled by 1.4826 to be consistent with the normal
// standard deviation.
func MAD(xs []float64, normalConsistent bool) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	m := Median(dev)
	if normalConsistent {
		m *= 1.4826
	}
	return m
}
