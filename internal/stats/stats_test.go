package stats

import (
	"math"
	"testing"
	"testing/quick"

	"osprey/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if math.Abs(PopVariance(xs)-4) > 1e-12 {
		t.Fatalf("PopVariance = %v", PopVariance(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty inputs should yield NaN")
	}
	min, max := MinMax(nil)
	if !math.IsNaN(min) || !math.IsNaN(max) {
		t.Fatal("MinMax of empty should be NaN")
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{10, 20}
	if got := Quantile(xs, 0.5); got != 15 {
		t.Fatalf("Quantile interp = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantilesMonotonic(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Normal()
		}
		qs := Quantiles(xs, 0.1, 0.5, 0.9)
		return qs[0] <= qs[1] && qs[1] <= qs[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestMedian(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("Median odd wrong")
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("Median even wrong")
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if got != 2.5 {
		t.Fatalf("WeightedMean = %v", got)
	}
	// Equal weights reduce to the plain mean.
	xs := []float64{2, 4, 9}
	if math.Abs(WeightedMean(xs, []float64{2, 2, 2})-Mean(xs)) > 1e-12 {
		t.Fatal("equal-weight mean mismatch")
	}
	if !math.IsNaN(WeightedMean(xs, []float64{0, 0, 0})) {
		t.Fatal("zero-weight mean should be NaN")
	}
	if !math.IsNaN(WeightedMean(xs, []float64{1, -1, 1})) {
		t.Fatal("negative weight should yield NaN")
	}
}

func TestWeightedVariance(t *testing.T) {
	// Weight 2 on x is the same as repeating x twice (population variance).
	v1 := WeightedVariance([]float64{1, 5}, []float64{2, 2})
	v2 := PopVariance([]float64{1, 1, 5, 5})
	if math.Abs(v1-v2) > 1e-12 {
		t.Fatalf("weighted variance %v vs repeated %v", v1, v2)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if math.Abs(Correlation(xs, ys)-1) > 1e-12 {
		t.Fatal("perfect positive correlation expected")
	}
	neg := []float64{8, 6, 4, 2}
	if math.Abs(Correlation(xs, neg)+1) > 1e-12 {
		t.Fatal("perfect negative correlation expected")
	}
	if !math.IsNaN(Correlation(xs, []float64{1, 1, 1, 1})) {
		t.Fatal("constant series should give NaN correlation")
	}
}

func TestSummarize(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormalMS(10, 2)
	}
	s := Summarize(xs)
	if s.N != 10000 {
		t.Fatal("N wrong")
	}
	if math.Abs(s.Mean-10) > 0.1 || math.Abs(s.StdDev-2) > 0.1 {
		t.Fatalf("Summary moments off: %+v", s)
	}
	// 95% interval of N(10,2) is about (6.08, 13.92).
	if math.Abs(s.Q025-6.08) > 0.3 || math.Abs(s.Q975-13.92) > 0.3 {
		t.Fatalf("Summary quantiles off: %+v", s)
	}
	if s.Min > s.Q025 || s.Max < s.Q975 || s.Med > s.Q975 || s.Med < s.Q025 {
		t.Fatalf("Summary ordering violated: %+v", s)
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if ECDF(xs, 2.5) != 0.5 {
		t.Fatalf("ECDF = %v", ECDF(xs, 2.5))
	}
	if ECDF(xs, 0) != 0 || ECDF(xs, 5) != 1 {
		t.Fatal("ECDF tails wrong")
	}
}

func TestAutocorrelationLagZeroIsOne(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Normal()
	}
	if math.Abs(Autocorrelation(xs, 0)-1) > 1e-12 {
		t.Fatal("lag-0 autocorrelation must be 1")
	}
}

func TestEffectiveSampleSizeIID(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	ess := EffectiveSampleSize(xs)
	if ess < 3000 {
		t.Fatalf("ESS of iid noise too low: %v", ess)
	}
}

func TestEffectiveSampleSizeCorrelated(t *testing.T) {
	r := rng.New(5)
	// AR(1) with phi = 0.95 has ESS ≈ n (1-phi)/(1+phi) ≈ n/39.
	n := 5000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = 0.95*xs[i-1] + r.Normal()
	}
	ess := EffectiveSampleSize(xs)
	if ess > float64(n)/10 {
		t.Fatalf("ESS of strongly correlated chain too high: %v", ess)
	}
}

func TestGelmanRubinConverged(t *testing.T) {
	r := rng.New(6)
	chains := make([][]float64, 4)
	for c := range chains {
		chains[c] = make([]float64, 2000)
		for i := range chains[c] {
			chains[c][i] = r.Normal()
		}
	}
	rh := GelmanRubin(chains)
	if math.Abs(rh-1) > 0.05 {
		t.Fatalf("R-hat of identical-distribution chains = %v", rh)
	}
}

func TestGelmanRubinDiverged(t *testing.T) {
	r := rng.New(7)
	chains := make([][]float64, 2)
	for c := range chains {
		chains[c] = make([]float64, 1000)
		for i := range chains[c] {
			chains[c][i] = r.Normal() + float64(c)*10 // separated modes
		}
	}
	if rh := GelmanRubin(chains); rh < 2 {
		t.Fatalf("R-hat should flag separated chains, got %v", rh)
	}
}

func TestGelmanRubinRequiresTwoChains(t *testing.T) {
	if !math.IsNaN(GelmanRubin([][]float64{{1, 2, 3}})) {
		t.Fatal("single chain should give NaN")
	}
}

func TestWeightedQuantileUnweightedMatchesOrder(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ws := []float64{1, 1, 1, 1, 1}
	if got := WeightedQuantile(xs, ws, 0.5); got != 3 {
		t.Fatalf("weighted median = %v, want 3", got)
	}
	if got := WeightedQuantile(xs, ws, 0); got != 1 {
		t.Fatalf("q=0 gives %v, want 1", got)
	}
	if got := WeightedQuantile(xs, ws, 1); got != 5 {
		t.Fatalf("q=1 gives %v, want 5", got)
	}
}

func TestWeightedQuantileRespectsWeights(t *testing.T) {
	// 90% of the mass at 10, 10% at 0: the median must be 10.
	xs := []float64{0, 10}
	ws := []float64{1, 9}
	if got := WeightedQuantile(xs, ws, 0.5); got != 10 {
		t.Fatalf("weighted median = %v, want 10", got)
	}
	if got := WeightedQuantile(xs, ws, 0.05); got != 0 {
		t.Fatalf("q=0.05 = %v, want 0", got)
	}
}

func TestWeightedQuantileDegenerate(t *testing.T) {
	if !math.IsNaN(WeightedQuantile(nil, nil, 0.5)) {
		t.Fatal("empty input should give NaN")
	}
	if !math.IsNaN(WeightedQuantile([]float64{1}, []float64{0}, 0.5)) {
		t.Fatal("zero total weight should give NaN")
	}
	if !math.IsNaN(WeightedQuantile([]float64{1, 2}, []float64{1, -1}, 0.5)) {
		t.Fatal("negative weight should give NaN")
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100} // outlier-heavy
	raw := MAD(xs, false)
	if raw != 1 {
		t.Fatalf("MAD = %v, want 1", raw)
	}
	if got := MAD(xs, true); math.Abs(got-1.4826) > 1e-12 {
		t.Fatalf("consistent MAD = %v", got)
	}
	if !math.IsNaN(MAD(nil, false)) {
		t.Fatal("empty MAD should be NaN")
	}
	// Robustness: the outlier barely moves MAD while it wrecks StdDev.
	if MAD(xs, true) > StdDev(xs)/5 {
		t.Fatal("MAD not robust relative to StdDev on outlier data")
	}
}
