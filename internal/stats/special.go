package stats

import "math"

// GammaIncP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0, via the series expansion for
// x < a+1 and the continued fraction otherwise (Numerical Recipes style).
func GammaIncP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaCDF returns P(X <= x) for X ~ Gamma(shape, rate).
func GammaCDF(x, shape, rate float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaIncP(shape, rate*x)
}

// GammaQuantile returns the q-quantile of Gamma(shape, rate) by bisection on
// the CDF (robust, and fast enough for posterior interval computation).
func GammaQuantile(q, shape, rate float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Inf(1)
	}
	mean := shape / rate
	sd := math.Sqrt(shape) / rate
	lo, hi := 0.0, mean+10*sd+10/rate
	for GammaCDF(hi, shape, rate) < q {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.NaN()
		}
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if GammaCDF(mid, shape, rate) < q {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}

// GammaPDFLog returns the log density of Gamma(shape, rate) at x.
func GammaPDFLog(x, shape, rate float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(shape)
	return shape*math.Log(rate) - lg + (shape-1)*math.Log(x) - rate*x
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile via the
// Beasley–Springer–Moro approximation refined by one Newton step.
func NormalQuantile(q float64) float64 {
	if q <= 0 {
		return math.Inf(-1)
	}
	if q >= 1 {
		return math.Inf(1)
	}
	// Rational approximation (Acklam).
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case q < pLow:
		u := math.Sqrt(-2 * math.Log(q))
		x = (((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	case q <= 1-pLow:
		u := q - 0.5
		r := u * u
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * u /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		u := math.Sqrt(-2 * math.Log(1-q))
		x = -(((((c[0]*u+c[1])*u+c[2])*u+c[3])*u+c[4])*u + c[5]) /
			((((d[0]*u+d[1])*u+d[2])*u+d[3])*u + 1)
	}
	// One Newton refinement.
	e := NormalCDF(x) - q
	pdf := math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
	if pdf > 0 {
		x -= e / pdf
	}
	return x
}

// LogNormalPDFLog returns the log density of LogNormal(mu, sigma) at x.
func LogNormalPDFLog(x, mu, sigma float64) float64 {
	if x <= 0 || sigma <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	z := (lx - mu) / sigma
	return -lx - math.Log(sigma) - 0.5*math.Log(2*math.Pi) - 0.5*z*z
}
