// Package chaos is the fault-injection machinery for exercising the
// OSPREY service stack under the failure modes of shared, reclaimable
// compute resources: refused connections, slow accepts, injected wire
// latency, and connections severed mid-flight.
//
// The central piece is Proxy, a TCP proxy placed between a client (an
// EMEWS worker pool, an ME algorithm process) and a backend (the task
// database server). Faults are toggled at runtime, so a test or the
// loadgen harness can interleave a declarative fault schedule with live
// traffic. The package grew out of the fault-proxy used by the EMEWS
// wire-protocol tests and is shared by those tests and internal/loadgen.
//
// Everything is stdlib-only and safe for concurrent use.
package chaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyStats counts what the proxy has done to traffic so far.
type ProxyStats struct {
	Accepted int64 `json:"accepted"` // connections bridged to the backend
	Refused  int64 `json:"refused"`  // connections dropped by a refuse window
	Killed   int64 `json:"killed"`   // live connections severed by KillActive
}

// Proxy is a TCP fault-injection proxy in front of a backend address.
// New connections can be refused or delayed, bridged traffic can have
// per-chunk latency injected, and live connections can be severed.
type Proxy struct {
	ln net.Listener
	wg sync.WaitGroup

	accepted atomic.Int64
	refused  atomic.Int64
	killed   atomic.Int64

	mu          sync.Mutex
	backend     string
	closed      bool
	refuse      bool
	acceptDelay time.Duration
	latency     time.Duration
	conns       map[net.Conn]struct{} // client-side conns of live pairs
}

// NewProxy listens on 127.0.0.1:0 and bridges connections to backend.
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, backend: backend, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial instead of
// the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetBackend retargets new connections to addr (existing pairs keep their
// old backend until killed). Used when the backend restarts on a new
// address.
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// SetRefuse makes the proxy drop new connections immediately (on) or
// accept them again (off) — the backend looks unreachable.
func (p *Proxy) SetRefuse(on bool) {
	p.mu.Lock()
	p.refuse = on
	p.mu.Unlock()
}

// SetAcceptDelay delays each new connection before bridging it,
// simulating a slow or overloaded accept path. Zero disables.
func (p *Proxy) SetAcceptDelay(d time.Duration) {
	p.mu.Lock()
	p.acceptDelay = d
	p.mu.Unlock()
}

// SetLatency injects d of delay before each chunk of proxied bytes, in
// both directions, on all current and future connections. Zero disables.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// KillActive severs every live proxied connection — worker death, node
// reclamation, network partition — and returns how many were killed.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	n := len(p.conns)
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.killed.Add(int64(n))
	return n
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Accepted: p.accepted.Load(),
		Refused:  p.refused.Load(),
		Killed:   p.killed.Load(),
	}
}

// Close stops the listener, severs all live pairs, and waits for the
// bridge goroutines to finish. Safe to call more than once.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillActive()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse, delay, backend := p.refuse, p.acceptDelay, p.backend
		p.mu.Unlock()
		if refuse {
			p.refused.Add(1)
			client.Close()
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if delay > 0 {
				time.Sleep(delay)
			}
			server, err := net.Dial("tcp", backend)
			if err != nil {
				client.Close()
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				client.Close()
				server.Close()
				return
			}
			p.conns[client] = struct{}{}
			p.mu.Unlock()
			p.accepted.Add(1)
			var pipe sync.WaitGroup
			pipe.Add(2)
			go func() { defer pipe.Done(); p.pump(server, client); server.Close() }()
			go func() { defer pipe.Done(); p.pump(client, server); client.Close() }()
			pipe.Wait()
			p.mu.Lock()
			delete(p.conns, client)
			p.mu.Unlock()
		}()
	}
}

// pump copies src to dst chunk by chunk, sleeping the configured latency
// before forwarding each chunk (a crude but effective slow-link model).
func (p *Proxy) pump(dst, src net.Conn) {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			lat := p.latency
			p.mu.Unlock()
			if lat > 0 {
				time.Sleep(lat)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
