package chaos

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes lines back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func roundTrip(conn net.Conn, msg string) (string, error) {
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	return bufio.NewReader(conn).ReadString('\n')
}

func TestProxyBridgesAndCounts(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if got, err := roundTrip(conn, "hello"); err != nil || got != "hello\n" {
		t.Fatalf("roundTrip = %q, %v", got, err)
	}
	if st := p.Stats(); st.Accepted != 1 {
		t.Fatalf("Accepted = %d, want 1", st.Accepted)
	}
}

func TestProxyRefuseAndRecover(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.SetRefuse(true)
	conn, err := net.Dial("tcp", p.Addr())
	if err == nil {
		// The dial may succeed before the proxy drops it; the read fails.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := roundTrip(conn, "x"); err == nil {
			t.Fatal("round trip succeeded through refusing proxy")
		}
		conn.Close()
	}
	p.SetRefuse(false)
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if got, err := roundTrip(conn2, "back"); err != nil || got != "back\n" {
		t.Fatalf("roundTrip after recover = %q, %v", got, err)
	}
	if st := p.Stats(); st.Refused == 0 {
		t.Fatalf("Refused = %d, want > 0", st.Refused)
	}
}

func TestProxyKillActive(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}
	if n := p.KillActive(); n != 1 {
		t.Fatalf("KillActive = %d, want 1", n)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := roundTrip(conn, "dead"); err == nil {
		t.Fatal("round trip succeeded on killed connection")
	}
	if st := p.Stats(); st.Killed != 1 {
		t.Fatalf("Killed = %d, want 1", st.Killed)
	}
}

func TestProxyLatencyInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := roundTrip(conn, "warm"); err != nil {
		t.Fatal(err)
	}
	p.SetLatency(30 * time.Millisecond)
	start := time.Now()
	if got, err := roundTrip(conn, "slow"); err != nil || got != "slow\n" {
		t.Fatalf("roundTrip = %q, %v", got, err)
	}
	// Two directions, each delayed at least once.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("latency not injected: round trip took %v", elapsed)
	}
	p.SetLatency(0)
}

func TestProxyRetarget(t *testing.T) {
	lnA := echoServer(t)
	p, err := NewProxy(lnA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	connA, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()
	if _, err := roundTrip(connA, "a"); err != nil {
		t.Fatal(err)
	}

	// "Restart" the backend elsewhere; new connections must reach it.
	lnB := echoServer(t)
	p.SetBackend(lnB.Addr().String())
	lnA.Close()
	p.KillActive()

	connB, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer connB.Close()
	if got, err := roundTrip(connB, "b"); err != nil || got != "b\n" {
		t.Fatalf("roundTrip after retarget = %q, %v", got, err)
	}
}

func TestProxyCloseIdempotentUnderLoad(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			roundTrip(conn, "spin")
		}()
	}
	wg.Wait()
	p.Close()
	p.Close()
}
