package rt

import (
	"math"
	"testing"

	"osprey/internal/rng"
	"osprey/internal/wastewater"
)

// fastOpts keeps test runtimes reasonable while remaining a real MCMC run.
func fastOpts(seed uint64) GoldsteinOptions {
	return GoldsteinOptions{
		Iterations: 400, BurnIn: 600, Thin: 2, Seed: seed,
	}
}

func genSeries(t *testing.T, days int, seed uint64) *wastewater.Series {
	t.Helper()
	sc := wastewater.DefaultScenario(days)
	return wastewater.Generate(wastewater.ChicagoPlants()[0], sc, rng.New(seed))
}

func TestGoldsteinValidation(t *testing.T) {
	s := genSeries(t, 60, 1)
	if _, err := EstimateGoldstein(s.Observations[:2], s.Plant, 60, fastOpts(1)); err == nil {
		t.Fatal("too few observations accepted")
	}
	bad := append([]wastewater.Observation(nil), s.Observations...)
	bad[0].Day = 200
	if _, err := EstimateGoldstein(bad, s.Plant, 60, fastOpts(1)); err == nil {
		t.Fatal("out-of-window observation accepted")
	}
	bad2 := append([]wastewater.Observation(nil), s.Observations...)
	bad2[0].Concentration = -1
	if _, err := EstimateGoldstein(bad2, s.Plant, 60, fastOpts(1)); err == nil {
		t.Fatal("negative concentration accepted")
	}
	if _, err := EstimateGoldstein(s.Observations, s.Plant, 5, fastOpts(1)); err == nil {
		t.Fatal("window shorter than knot spacing accepted")
	}
}

func TestGoldsteinRecoversTrend(t *testing.T) {
	days := 100
	s := genSeries(t, days, 2)
	est, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Shape check: truth starts ~1.4 and dips below 1; the posterior
	// median should start clearly above its mid-series minimum.
	early := est.Median[10]
	mid := est.Median[days/2]
	if early <= mid {
		t.Fatalf("declining R(t) not recovered: early %v vs mid %v", early, mid)
	}
	if mid > 1.15 {
		t.Fatalf("mid-series R estimate %v should be near or below 1", mid)
	}
	// Bands must be ordered and positive.
	for d := 0; d < days; d++ {
		if !(est.Lower[d] <= est.Median[d] && est.Median[d] <= est.Upper[d]) {
			t.Fatalf("band ordering violated at day %d", d)
		}
		if est.Lower[d] <= 0 {
			t.Fatalf("nonpositive R lower bound at day %d", d)
		}
	}
}

func TestGoldsteinCoverage(t *testing.T) {
	days := 100
	s := genSeries(t, days, 3)
	est, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	// Skip the seeded ramp-up week; expect decent coverage of the truth.
	cov := est.Coverage(s.TrueRt, 14, days-7)
	if cov < 0.6 {
		t.Fatalf("95%% band covers truth only %.0f%% of days", cov*100)
	}
	mae := est.MeanAbsError(s.TrueRt, 14, days-7)
	if mae > 0.3 {
		t.Fatalf("posterior median MAE %v too large", mae)
	}
}

func TestGoldsteinDeterministicGivenSeed(t *testing.T) {
	days := 70
	s := genSeries(t, days, 4)
	a, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.Median {
		if a.Median[d] != b.Median[d] {
			t.Fatal("same-seed estimates differ")
		}
	}
}

func TestGoldsteinScaleInvariance(t *testing.T) {
	// Multiplying all concentrations by a constant must not change R(t):
	// the seed parameter absorbs the scale.
	days := 80
	s := genSeries(t, days, 5)
	scaled := make([]wastewater.Observation, len(s.Observations))
	for i, o := range s.Observations {
		scaled[i] = wastewater.Observation{Day: o.Day, Concentration: o.Concentration * 1000}
	}
	a, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGoldstein(scaled, s.Plant, days, fastOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	for d := 10; d < days-7; d += 10 {
		if math.Abs(a.Median[d]-b.Median[d]) > 0.15 {
			t.Fatalf("scale changed R estimate at day %d: %v vs %v", d, a.Median[d], b.Median[d])
		}
	}
}

func makeEstimates(t *testing.T, days int) ([]*Estimate, *wastewater.Series) {
	t.Helper()
	sc := wastewater.DefaultScenario(days)
	plants := wastewater.ChicagoPlants()
	root := rng.New(77)
	var ests []*Estimate
	var first *wastewater.Series
	for i, p := range plants {
		s := wastewater.Generate(p, sc, root.Split(p.Name))
		if i == 0 {
			first = s
		}
		est, err := EstimateGoldstein(s.Observations, p, days, fastOpts(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, est)
	}
	return ests, first
}

func TestFigure2EnsembleCoverage(t *testing.T) {
	days := 90
	ests, s := makeEstimates(t, days)
	ens, err := EnsembleWeighted(ests, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cov := ens.Coverage(s.TrueRt, 14, days-7); cov < 0.6 {
		t.Fatalf("ensemble coverage %.0f%% too low", cov*100)
	}
	// The ensemble error should not exceed the worst single plant's, and
	// typically beats the mean plant error (signal-to-noise pooling).
	worst := 0.0
	sum := 0.0
	for _, e := range ests {
		mae := e.MeanAbsError(s.TrueRt, 14, days-7)
		sum += mae
		if mae > worst {
			worst = mae
		}
	}
	ensMAE := ens.MeanAbsError(s.TrueRt, 14, days-7)
	if ensMAE > worst {
		t.Fatalf("ensemble MAE %v worse than worst plant %v", ensMAE, worst)
	}
	t.Logf("ensemble MAE %.3f vs mean plant MAE %.3f", ensMAE, sum/4)
}

func TestEnsembleWeightsNormalized(t *testing.T) {
	ests, _ := makeEstimates(t, 70)
	ens, err := EnsembleWeighted(ests, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range ens.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// O'Brien (largest population) should carry the largest weight.
	if ens.Weights[0] <= ens.Weights[1] {
		t.Fatal("population weighting not applied")
	}
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := EnsembleWeighted(nil, nil); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	ests, _ := makeEstimates(t, 70)
	if _, err := EnsembleWeighted(ests, []float64{1}); err == nil {
		t.Fatal("short weights accepted")
	}
	if _, err := EnsembleWeighted(ests, []float64{-1, 1, 1, 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := EnsembleWeighted(ests, []float64{0, 0, 0, 0}); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestEnsembleBandOrdering(t *testing.T) {
	ests, _ := makeEstimates(t, 70)
	ens, err := EnsembleWeighted(ests, nil)
	if err != nil {
		t.Fatal(err)
	}
	for d := range ens.Days {
		if !(ens.Lower[d] <= ens.Median[d] && ens.Median[d] <= ens.Upper[d]) {
			t.Fatalf("ensemble band ordering violated at day %d", d)
		}
	}
	if bw := ens.BandWidth(14, 60); bw <= 0 || math.IsNaN(bw) {
		t.Fatalf("bad ensemble band width %v", bw)
	}
}
