package rt

import (
	"math"
	"testing"

	"osprey/internal/rng"
	"osprey/internal/wastewater"
)

func TestCoriFromWastewaterRuns(t *testing.T) {
	days := 100
	s := genSeries(t, days, 21)
	res, err := CoriFromWastewater(s.Observations, days, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: estimates exist and are positive after the window fills.
	for d := 20; d < days; d++ {
		if math.IsNaN(res.Mean[d]) || res.Mean[d] <= 0 {
			t.Fatalf("Cori mean at day %d = %v", d, res.Mean[d])
		}
	}
}

func TestCoriFromWastewaterValidation(t *testing.T) {
	if _, err := CoriFromWastewater(nil, 50, 7); err == nil {
		t.Fatal("empty observations accepted")
	}
	obs := []wastewater.Observation{{Day: 60, Concentration: 1}, {Day: 61, Concentration: 1}, {Day: 62, Concentration: 1}}
	if _, err := CoriFromWastewater(obs, 50, 7); err == nil {
		t.Fatal("out-of-window observation accepted")
	}
}

func TestGoldsteinBeatsCoriOnNoisyWastewater(t *testing.T) {
	// The paper's rationale for the expensive estimator: on the noisy
	// wastewater signal, the mechanistic Bayesian model produces a more
	// accurate R(t) than the naive concentration-as-incidence baseline.
	days := 100
	s := genSeries(t, days, 22)
	gold, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(22))
	if err != nil {
		t.Fatal(err)
	}
	cori, err := CoriFromWastewater(s.Observations, days, 7)
	if err != nil {
		t.Fatal(err)
	}
	gMAE := gold.MeanAbsError(s.TrueRt, 20, days-7)
	cMAE := CoriMeanAbsError(cori, s.TrueRt, 20, days-7)
	t.Logf("Goldstein MAE %.3f vs Cori-on-wastewater MAE %.3f", gMAE, cMAE)
	if gMAE >= cMAE {
		t.Fatalf("Goldstein (%.3f) did not beat the naive baseline (%.3f)", gMAE, cMAE)
	}
}

func TestEstimateGoldsteinChains(t *testing.T) {
	days := 80
	s := genSeries(t, days, 23)
	ce, err := EstimateGoldsteinChains(s.Observations, s.Plant, days, fastOpts(23), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ce.Chains != 3 {
		t.Fatalf("chains = %d", ce.Chains)
	}
	if len(ce.Draws) == 0 {
		t.Fatal("no pooled draws")
	}
	if len(ce.RHat) != days {
		t.Fatalf("RHat length %d", len(ce.RHat))
	}
	if ce.MaxRHat <= 0 {
		t.Fatal("MaxRHat not computed")
	}
	// Short chains may not fully converge, but R-hat should not explode
	// on this well-identified posterior.
	if ce.MaxRHat > 2 {
		t.Fatalf("chains badly diverged: max R-hat %v", ce.MaxRHat)
	}
	// Bands from the pooled draws are ordered.
	for d := 0; d < days; d++ {
		if !(ce.Lower[d] <= ce.Median[d] && ce.Median[d] <= ce.Upper[d]) {
			t.Fatalf("pooled band ordering violated at day %d", d)
		}
	}
	_ = ce.Converged(1.1) // smoke: must not panic
}

func TestEstimateGoldsteinChainsValidation(t *testing.T) {
	s := genSeries(t, 60, 24)
	if _, err := EstimateGoldsteinChains(s.Observations, s.Plant, 60, fastOpts(1), 1); err == nil {
		t.Fatal("single chain accepted")
	}
}

func TestInterpConcentration(t *testing.T) {
	obs := []wastewater.Observation{
		{Day: 10, Concentration: 100},
		{Day: 20, Concentration: 200},
	}
	if v := interpConcentration(obs, 5); v != 100 {
		t.Fatalf("clamp before first = %v", v)
	}
	if v := interpConcentration(obs, 25); v != 200 {
		t.Fatalf("clamp after last = %v", v)
	}
	if v := interpConcentration(obs, 15); v != 150 {
		t.Fatalf("midpoint = %v", v)
	}
	if v := interpConcentration(obs, 10); v != 100 {
		t.Fatalf("exact day = %v", v)
	}
}

func BenchmarkCoriFromWastewater(b *testing.B) {
	sc := wastewater.DefaultScenario(100)
	s := wastewater.Generate(wastewater.ChicagoPlants()[0], sc, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CoriFromWastewater(s.Observations, 100, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForecastBandsWidenWithHorizon(t *testing.T) {
	days := 80
	s := genSeries(t, days, 31)
	est, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(31))
	if err != nil {
		t.Fatal(err)
	}
	f, err := est.ForecastRt(14, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Days) != 14 || f.Days[0] != days {
		t.Fatalf("forecast axis wrong: first day %d, want %d", f.Days[0], days)
	}
	// Continuity: the first forecast median is near the last estimate.
	if math.Abs(f.Median[0]-est.Median[days-1]) > 0.25 {
		t.Fatalf("forecast discontinuous: %v vs %v", f.Median[0], est.Median[days-1])
	}
	// Compounding uncertainty: bands widen with horizon.
	if f.BandWidthAt(13) <= f.BandWidthAt(0) {
		t.Fatalf("bands did not widen: day0 %v vs day13 %v", f.BandWidthAt(0), f.BandWidthAt(13))
	}
	for d := range f.Days {
		if !(f.Lower[d] <= f.Median[d] && f.Median[d] <= f.Upper[d]) {
			t.Fatalf("forecast band ordering violated at step %d", d)
		}
		if f.Lower[d] <= 0 {
			t.Fatalf("nonpositive forecast lower bound at step %d", d)
		}
	}
}

func TestForecastValidation(t *testing.T) {
	est := &Estimate{Days: []int{0, 1}}
	if _, err := est.ForecastRt(5, 0, 1); err == nil {
		t.Fatal("forecast without draws accepted")
	}
	est.Draws = [][]float64{{1, 1}}
	if _, err := est.ForecastRt(0, 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestForecastDeterministicGivenSeed(t *testing.T) {
	days := 70
	s := genSeries(t, days, 32)
	est, err := EstimateGoldstein(s.Observations, s.Plant, days, fastOpts(32))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := est.ForecastRt(7, 0, 9)
	b, _ := est.ForecastRt(7, 0, 9)
	for d := range a.Median {
		if a.Median[d] != b.Median[d] {
			t.Fatal("same-seed forecasts differ")
		}
	}
}
