package rt

import (
	"errors"
	"math"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

// Forecast projects R(t) beyond the estimation window by continuing each
// posterior draw's log-R random walk for h more days — the "timely
// responses to urgent questions" capability the paper's conclusion calls
// for. Uncertainty compounds with horizon, so the bands widen; the output
// is a distributional nowcast, not a point prediction.
type Forecast struct {
	// Days are absolute day indices continuing the estimate's axis.
	Days                 []int
	Median, Lower, Upper []float64
}

// ForecastRt extends the estimate h days past its last day. rwSigma is the
// daily log-scale random-walk standard deviation; pass 0 to use the
// estimator's default weekly-knot prior rescaled to daily steps.
func (e *Estimate) ForecastRt(h int, rwSigma float64, seed uint64) (*Forecast, error) {
	if h <= 0 {
		return nil, errors.New("rt: forecast horizon must be positive")
	}
	if len(e.Draws) == 0 {
		return nil, errors.New("rt: estimate carries no posterior draws")
	}
	if rwSigma <= 0 {
		// Default knot prior is 0.18 per 7 days; scale to a daily step.
		rwSigma = 0.18 / 2.6457513110645906 // sqrt(7)
	}
	lastDay := e.Days[len(e.Days)-1]
	r := rng.New(seed).Split("forecast")

	// Each draw continues independently from its own endpoint.
	paths := make([][]float64, len(e.Draws))
	for k, draw := range e.Draws {
		cur := draw[len(draw)-1]
		path := make([]float64, h)
		stream := r.Split(intLabel(k))
		if cur <= 1e-12 {
			cur = 1e-12
		}
		logR := math.Log(cur)
		for d := 0; d < h; d++ {
			logR += stream.NormalMS(0, rwSigma)
			path[d] = math.Exp(logR)
		}
		paths[k] = path
	}

	f := &Forecast{
		Days:   make([]int, h),
		Median: make([]float64, h),
		Lower:  make([]float64, h),
		Upper:  make([]float64, h),
	}
	col := make([]float64, len(paths))
	for d := 0; d < h; d++ {
		f.Days[d] = lastDay + 1 + d
		for k := range paths {
			col[k] = paths[k][d]
		}
		qs := stats.Quantiles(col, 0.025, 0.5, 0.975)
		f.Lower[d], f.Median[d], f.Upper[d] = qs[0], qs[1], qs[2]
	}
	return f, nil
}

// BandWidthAt returns Upper-Lower at forecast step d (0-based).
func (f *Forecast) BandWidthAt(d int) float64 {
	return f.Upper[d] - f.Lower[d]
}

func intLabel(k int) string {
	// Small allocation-free-ish int label for stream splitting.
	const digits = "0123456789"
	if k == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%10]
		k /= 10
	}
	return string(buf[i:])
}
