package rt

import (
	"errors"
	"math"

	"osprey/internal/parallel"
	"osprey/internal/stats"
)

// EnsembleEstimate is the population-weighted aggregate R(t) across plants
// (the bottom panel of Figure 2).
type EnsembleEstimate struct {
	Days                 []int
	Median, Lower, Upper []float64
	// Weights records the normalized population weights used.
	Weights []float64
}

// EnsembleWeighted pools the posterior draws of several plant estimates
// into a single population-weighted mixture distribution per day and
// summarizes it with the median and 95% band. Weights default to each
// plant's population served; pass explicit weights to override (the
// unweighted ablation passes all-ones).
func EnsembleWeighted(estimates []*Estimate, weights []float64) (*EnsembleEstimate, error) {
	if len(estimates) == 0 {
		return nil, errors.New("rt: no estimates to aggregate")
	}
	days := len(estimates[0].Days)
	for _, e := range estimates {
		if len(e.Days) != days {
			return nil, errors.New("rt: estimates cover different windows")
		}
		if len(e.Draws) == 0 {
			return nil, errors.New("rt: estimate has no posterior draws")
		}
	}
	if weights == nil {
		weights = make([]float64, len(estimates))
		for i, e := range estimates {
			weights[i] = float64(e.Plant.Population)
		}
	}
	if len(weights) != len(estimates) {
		return nil, errors.New("rt: weights length mismatch")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, errors.New("rt: negative weight")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("rt: weights sum to zero")
	}

	out := &EnsembleEstimate{
		Days:    append([]int(nil), estimates[0].Days...),
		Median:  make([]float64, days),
		Lower:   make([]float64, days),
		Upper:   make([]float64, days),
		Weights: make([]float64, len(weights)),
	}
	for i, w := range weights {
		out.Weights[i] = w / total
	}

	// Per-day weighted mixture of all plants' draws: each draw carries its
	// plant's weight divided by the plant's draw count, so plants with
	// more retained draws are not over-represented. Days are independent —
	// each worker chunk pools into its own buffers and writes only its own
	// day slots, so the summaries match the serial loop exactly.
	parallel.ForChunk(days, func(lo, hi int) {
		var pool []float64
		var poolW []float64
		for d := lo; d < hi; d++ {
			pool = pool[:0]
			poolW = poolW[:0]
			for pi, e := range estimates {
				w := out.Weights[pi] / float64(len(e.Draws))
				for _, draw := range e.Draws {
					pool = append(pool, draw[d])
					poolW = append(poolW, w)
				}
			}
			out.Lower[d] = stats.WeightedQuantile(pool, poolW, 0.025)
			out.Median[d] = stats.WeightedQuantile(pool, poolW, 0.5)
			out.Upper[d] = stats.WeightedQuantile(pool, poolW, 0.975)
		}
	})
	return out, nil
}

// Coverage reports the fraction of days in [from, to) whose ensemble band
// contains the truth.
func (e *EnsembleEstimate) Coverage(truth []float64, from, to int) float64 {
	if to > len(truth) {
		to = len(truth)
	}
	if to > len(e.Lower) {
		to = len(e.Lower)
	}
	n, hit := 0, 0
	for d := from; d < to; d++ {
		n++
		if truth[d] >= e.Lower[d] && truth[d] <= e.Upper[d] {
			hit++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(n)
}

// MeanAbsError reports the mean absolute error of the ensemble median.
func (e *EnsembleEstimate) MeanAbsError(truth []float64, from, to int) float64 {
	if to > len(truth) {
		to = len(truth)
	}
	if to > len(e.Median) {
		to = len(e.Median)
	}
	n, s := 0, 0.0
	for d := from; d < to; d++ {
		n++
		s += math.Abs(e.Median[d] - truth[d])
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// BandWidth returns the mean width of the 95% band over [from, to), the
// smoothness/precision metric used to show the ensemble beats single plants.
func (e *EnsembleEstimate) BandWidth(from, to int) float64 {
	if to > len(e.Lower) {
		to = len(e.Lower)
	}
	n, s := 0, 0.0
	for d := from; d < to; d++ {
		n++
		s += e.Upper[d] - e.Lower[d]
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// BandWidth is the single-plant analogue of EnsembleEstimate.BandWidth.
func (e *Estimate) BandWidth(from, to int) float64 {
	if to > len(e.Lower) {
		to = len(e.Lower)
	}
	n, s := 0, 0.0
	for d := from; d < to; d++ {
		n++
		s += e.Upper[d] - e.Lower[d]
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
