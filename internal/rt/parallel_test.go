package rt

import (
	"math"
	"testing"

	"osprey/internal/epi"
	"osprey/internal/mcmc"
	"osprey/internal/parallel"
	"osprey/internal/rng"
	"osprey/internal/wastewater"
)

// buildTestModel mirrors EstimateGoldstein's model construction so the
// incremental target can be exercised against the plain posterior.
func buildTestModel(obs []wastewater.Observation, days int) *goldsteinModel {
	m := &goldsteinModel{
		days:     days,
		obs:      obs,
		genPMF:   epi.DiscretizedGamma(5.2, 1.9, 20),
		shedPMF:  wastewater.SheddingKernel(6, 3, 28),
		seedDays: 7,
		rwSigma:  0.18,
	}
	for d := 0; d < days; d += 7 {
		m.knots = append(m.knots, d)
	}
	if last := m.knots[len(m.knots)-1]; last != days-1 {
		m.knots = append(m.knots, days-1)
	}
	return m
}

// TestGoldsteinIncrementalMatchesFull drives a full componentwise chain
// through both the plain posterior and the incremental ComponentTarget and
// requires every retained draw and log density to be bit-identical. This is
// the contract that lets EstimateGoldstein use the incremental path without
// changing any figure.
func TestGoldsteinIncrementalMatchesFull(t *testing.T) {
	days := 70
	s := genSeries(t, days, 11)
	m := buildTestModel(s.Observations, days)

	meanConc := 0.0
	for _, o := range s.Observations {
		meanConc += o.Concentration
	}
	meanConc /= float64(len(s.Observations))

	x0 := make([]float64, m.nParams())
	x0[len(m.knots)] = math.Log(0.5)
	x0[len(m.knots)+1] = math.Log(meanConc)
	scales := make([]float64, m.nParams())
	for i := range m.knots {
		scales[i] = 0.08
	}
	scales[len(m.knots)] = 0.1
	scales[len(m.knots)+1] = 0.15
	mkOpts := func() mcmc.Options {
		return mcmc.Options{
			Iterations: 150, BurnIn: 200, Thin: 2,
			Scales: scales,
			Rand:   rng.New(99).Split("goldstein"),
		}
	}

	scratch := &goldsteinScratch{logR: make([]float64, days), inc: make([]float64, days)}
	full, err := mcmc.RunComponentwise(func(theta []float64) float64 {
		return m.logPosterior(theta, scratch)
	}, x0, mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	incr, err := mcmc.RunComponentwiseTarget(newGoldsteinTarget(m), x0, mkOpts())
	if err != nil {
		t.Fatal(err)
	}

	if len(full.Samples) != len(incr.Samples) {
		t.Fatalf("draw counts differ: %d vs %d", len(full.Samples), len(incr.Samples))
	}
	for k := range full.Samples {
		if full.LogDens[k] != incr.LogDens[k] {
			t.Fatalf("draw %d: log density %x (full) vs %x (incremental)", k, full.LogDens[k], incr.LogDens[k])
		}
		for j := range full.Samples[k] {
			if full.Samples[k][j] != incr.Samples[k][j] {
				t.Fatalf("draw %d coord %d: %x (full) vs %x (incremental)", k, j, full.Samples[k][j], incr.Samples[k][j])
			}
		}
	}
	if full.AcceptanceRate != incr.AcceptanceRate {
		t.Fatalf("acceptance rates differ: %v vs %v", full.AcceptanceRate, incr.AcceptanceRate)
	}
}

// TestGoldsteinSerialParallelEquality is the rt leg of the repository-wide
// determinism contract: one worker vs eight must give bit-identical
// estimates.
func TestGoldsteinSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	days := 70
	s := genSeries(t, days, 12)
	run := func(workers int) *Estimate {
		parallel.SetWorkers(workers)
		est, err := EstimateGoldstein(s.Observations, s.Plant, days, GoldsteinOptions{
			Iterations: 150, BurnIn: 200, Thin: 2, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	a := run(1)
	b := run(8)
	for d := range a.Median {
		if a.Median[d] != b.Median[d] || a.Lower[d] != b.Lower[d] || a.Upper[d] != b.Upper[d] {
			t.Fatalf("day %d: serial and parallel summaries differ", d)
		}
	}
	for k := range a.Draws {
		for d := range a.Draws[k] {
			if a.Draws[k][d] != b.Draws[k][d] {
				t.Fatalf("draw %d day %d: serial and parallel draws differ", k, d)
			}
		}
	}
}

// TestChainsSerialParallelEquality checks the pooled multi-chain estimator
// (the ported fan-out) under both worker counts.
func TestChainsSerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	days := 63
	s := genSeries(t, days, 13)
	opt := GoldsteinOptions{Iterations: 100, BurnIn: 150, Thin: 2, Seed: 21}
	run := func(workers int) *ChainsEstimate {
		parallel.SetWorkers(workers)
		ce, err := EstimateGoldsteinChains(s.Observations, s.Plant, days, opt, 3)
		if err != nil {
			t.Fatal(err)
		}
		return ce
	}
	a := run(1)
	b := run(8)
	for d := range a.Median {
		if a.Median[d] != b.Median[d] || a.RHat[d] != b.RHat[d] {
			t.Fatalf("day %d: serial and parallel pooled estimates differ", d)
		}
	}
	if a.MaxRHat != b.MaxRHat || a.MinESS != b.MinESS {
		t.Fatal("serial and parallel diagnostics differ")
	}
}
