package rt

import (
	"errors"
	"math"
	"sort"

	"osprey/internal/epi"
	"osprey/internal/parallel"
	"osprey/internal/stats"
	"osprey/internal/wastewater"
)

// CoriFromWastewater is the "more standard" baseline (§2.1, citing Cori et
// al. 2013) adapted to wastewater input: the concentration series is
// interpolated to a daily grid and rescaled into a crude infection proxy,
// which the sliding-window gamma-posterior estimator then consumes. It is
// orders of magnitude cheaper than the Goldstein method but inherits the
// raw noise of the signal — the trade-off that motivates running the
// Bayesian estimator on HPC.
func CoriFromWastewater(obs []wastewater.Observation, days int, window int) (*epi.CoriResult, error) {
	if len(obs) < 3 {
		return nil, errors.New("rt: need at least 3 observations")
	}
	sorted := append([]wastewater.Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Day < sorted[j].Day })
	if sorted[len(sorted)-1].Day >= days {
		return nil, errors.New("rt: observation outside the window")
	}

	// Linear interpolation of concentration onto the daily grid.
	daily := make([]float64, days)
	for d := 0; d < days; d++ {
		daily[d] = interpConcentration(sorted, d)
	}
	// Rescale to a pseudo-incidence with a plausible magnitude; the Cori
	// posterior is invariant to a global scale only in the limit of a
	// flat prior, so pick a scale giving O(100) daily counts.
	mean := stats.Mean(daily)
	if !(mean > 0) {
		return nil, errors.New("rt: degenerate concentration series")
	}
	scale := 100.0 / mean
	for d := range daily {
		daily[d] *= scale
	}
	w := epi.DiscretizedGamma(5.2, 1.9, 20)
	if window <= 0 {
		window = 7
	}
	return epi.CoriEstimate(daily, w, window, 1, 0.2)
}

func interpConcentration(sorted []wastewater.Observation, day int) float64 {
	// Before the first or after the last observation: clamp.
	if day <= sorted[0].Day {
		return sorted[0].Concentration
	}
	last := sorted[len(sorted)-1]
	if day >= last.Day {
		return last.Concentration
	}
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i].Day >= day })
	if sorted[hi].Day == day {
		return sorted[hi].Concentration
	}
	lo := hi - 1
	frac := float64(day-sorted[lo].Day) / float64(sorted[hi].Day-sorted[lo].Day)
	return sorted[lo].Concentration*(1-frac) + sorted[hi].Concentration*frac
}

// CoriMeanAbsError scores a Cori result against the truth over [from, to),
// skipping NaN (pre-window) days.
func CoriMeanAbsError(res *epi.CoriResult, truth []float64, from, to int) float64 {
	if to > len(truth) {
		to = len(truth)
	}
	if to > len(res.Mean) {
		to = len(res.Mean)
	}
	n, s := 0, 0.0
	for d := from; d < to; d++ {
		if math.IsNaN(res.Mean[d]) {
			continue
		}
		n++
		s += math.Abs(res.Mean[d] - truth[d])
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

// ChainsEstimate is a multi-chain Goldstein run with convergence
// diagnostics, pooling draws from independent chains.
type ChainsEstimate struct {
	*Estimate
	// RHat is the Gelman–Rubin statistic per day (computed on R(t) at
	// each day across chains); values near 1 indicate convergence.
	RHat []float64
	// MaxRHat is the worst R-hat across days.
	MaxRHat float64
	Chains  int
}

// EstimateGoldsteinChains runs n independent Goldstein chains (differing
// only in their sampler seeds), pools their posterior draws, and reports
// Gelman–Rubin diagnostics — the reproducibility check a production
// deployment runs before publishing an estimate to stakeholders.
func EstimateGoldsteinChains(obs []wastewater.Observation, plant wastewater.Plant, days int, opt GoldsteinOptions, nChains int) (*ChainsEstimate, error) {
	if nChains < 2 {
		return nil, errors.New("rt: need at least 2 chains for diagnostics")
	}
	// Chains run across the shared worker pool (each writing only its own
	// slot) instead of one unbounded goroutine apiece; errors are collected
	// in chain order, so the reported failure is deterministic.
	type chainOut struct {
		est *Estimate
		err error
	}
	outs := make([]chainOut, nChains)
	parallel.For(nChains, func(c int) {
		o := opt
		o.Seed = opt.Seed + uint64(c)*104729
		est, err := EstimateGoldstein(obs, plant, days, o)
		outs[c] = chainOut{est: est, err: err}
	})
	ests := make([]*Estimate, nChains)
	for c, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		ests[c] = o.est
	}

	// Pool draws.
	pooled := &Estimate{
		Plant: plant,
		Days:  append([]int(nil), ests[0].Days...),
	}
	for _, e := range ests {
		pooled.Draws = append(pooled.Draws, e.Draws...)
		pooled.AcceptanceRate += e.AcceptanceRate / float64(nChains)
	}
	nDays := len(pooled.Days)
	pooled.Median = make([]float64, nDays)
	pooled.Lower = make([]float64, nDays)
	pooled.Upper = make([]float64, nDays)
	col := make([]float64, len(pooled.Draws))
	rhat := make([]float64, nDays)
	maxR := 0.0
	for d := 0; d < nDays; d++ {
		for k := range pooled.Draws {
			col[k] = pooled.Draws[k][d]
		}
		qs := stats.Quantiles(col, 0.025, 0.5, 0.975)
		pooled.Lower[d], pooled.Median[d], pooled.Upper[d] = qs[0], qs[1], qs[2]

		chains := make([][]float64, nChains)
		for c, e := range ests {
			tr := make([]float64, len(e.Draws))
			for k, draw := range e.Draws {
				tr[k] = draw[d]
			}
			chains[c] = tr
		}
		rhat[d] = stats.GelmanRubin(chains)
		if !math.IsNaN(rhat[d]) && rhat[d] > maxR {
			maxR = rhat[d]
		}
	}
	pooled.MinESS = ests[0].MinESS
	for _, e := range ests[1:] {
		if e.MinESS < pooled.MinESS {
			pooled.MinESS = e.MinESS
		}
	}
	return &ChainsEstimate{Estimate: pooled, RHat: rhat, MaxRHat: maxR, Chains: nChains}, nil
}

// Converged reports whether every day's R-hat is below the threshold
// (1.1 is the conventional cut).
func (c *ChainsEstimate) Converged(threshold float64) bool {
	if threshold <= 0 {
		threshold = 1.1
	}
	for _, r := range c.RHat {
		if math.IsNaN(r) || r > threshold {
			return false
		}
	}
	return true
}
