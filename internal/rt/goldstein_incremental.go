package rt

import (
	"math"

	"osprey/internal/stats"
)

// goldsteinState is the full intermediate state of one posterior evaluation:
// the interpolated daily log-R series, its exponentials, the renewal
// incidence, and the per-observation shedding loads and log-likelihood
// terms.
type goldsteinState struct {
	logR, expLogR, inc []float64
	load, term         []float64
}

func newGoldsteinState(days, nObs int) *goldsteinState {
	return &goldsteinState{
		logR:    make([]float64, days),
		expLogR: make([]float64, days),
		inc:     make([]float64, days),
		load:    make([]float64, nObs),
		term:    make([]float64, nObs),
	}
}

// goldsteinTarget is the mcmc.ComponentTarget form of the Goldstein
// posterior. The component-at-a-time sampler changes one coordinate per
// proposal, so most of the evaluation is unchanged from the committed point:
//
//   - a log-R knot move only perturbs the interpolated series between its
//     neighboring knots, and the renewal recursion only diverges from that
//     day forward;
//   - a noise-scale (sigma) move leaves the entire latent epidemic and the
//     shedding loads untouched — only the observation densities rerun;
//   - a seed move leaves log-R (and its exponentials, the expensive part of
//     the renewal loop) untouched.
//
// Everything that is recomputed uses the same operations on the same inputs,
// in the same order, as goldsteinModel.logPosterior; everything else is
// copied bit-for-bit from the committed point. The chain this target
// produces is therefore bit-identical to running the plain posterior — which
// TestGoldsteinIncrementalMatchesFull enforces.
type goldsteinTarget struct {
	m         *goldsteinModel
	cur, prop *goldsteinState
	committed bool
	propOK    bool
}

func newGoldsteinTarget(m *goldsteinModel) *goldsteinTarget {
	return &goldsteinTarget{
		m:    m,
		cur:  newGoldsteinState(m.days, len(m.obs)),
		prop: newGoldsteinState(m.days, len(m.obs)),
	}
}

func (t *goldsteinTarget) LogDensityAt(theta []float64, changed int) float64 {
	m := t.m
	nk := len(m.knots)
	t.propOK = false
	knotVals := theta[:nk]
	logSigma := theta[nk]
	logSeed := theta[nk+1]
	if logSigma < -5 || logSigma > 3 || logSeed < -25 || logSeed > 25 {
		return math.Inf(-1)
	}
	sigma := math.Exp(logSigma)

	// Priors — always recomputed, in logPosterior's exact order.
	lp := 0.0
	lp += -0.5 * (knotVals[0] / 0.5) * (knotVals[0] / 0.5)
	for i := 1; i < nk; i++ {
		d := (knotVals[i] - knotVals[i-1]) / m.rwSigma
		lp += -0.5 * d * d
	}
	lp += -0.5 * ((logSigma - math.Log(0.5)) / 1.0) * ((logSigma - math.Log(0.5)) / 1.0)
	lp += -0.5 * (logSeed / 10.0) * (logSeed / 10.0)

	// Influence range of the changed coordinate.
	logRFrom, logRTo := 0, m.days // segment of logR to rebuild
	incFrom := 0                  // first day of the renewal suffix to rebuild
	sigmaMoved := true
	if t.committed && changed >= 0 {
		sigmaMoved = changed == nk
		switch {
		case changed < nk: // a log-R knot
			if changed > 0 {
				logRFrom = m.knots[changed-1] + 1
			}
			if changed+1 < nk {
				logRTo = m.knots[changed+1] + 1
				if logRTo > m.days {
					logRTo = m.days
				}
			}
			incFrom = logRFrom
			if incFrom < m.seedDays {
				incFrom = m.seedDays
			}
		case changed == nk: // observation noise: latent epidemic untouched
			logRFrom, logRTo, incFrom = m.days, m.days, m.days
		default: // seed: logR untouched, renewal rebuilt from day 0
			logRFrom, logRTo = m.days, m.days
		}
	}
	cur, p := t.cur, t.prop

	// Interpolated logR and its exponentials.
	copy(p.logR[:logRFrom], cur.logR[:logRFrom])
	copy(p.logR[logRTo:], cur.logR[logRTo:])
	copy(p.expLogR[:logRFrom], cur.expLogR[:logRFrom])
	copy(p.expLogR[logRTo:], cur.expLogR[logRTo:])
	if logRFrom < logRTo {
		m.dailyLogRRange(knotVals, p.logR, logRFrom, logRTo)
		for d := logRFrom; d < logRTo; d++ {
			p.expLogR[d] = math.Exp(p.logR[d])
		}
	}

	// Renewal recursion over the affected suffix.
	seed := math.Exp(logSeed)
	copy(p.inc[:incFrom], cur.inc[:incFrom])
	maxLag := len(m.genPMF) - 1
	for d := incFrom; d < m.days; d++ {
		if d < m.seedDays {
			p.inc[d] = seed
			continue
		}
		lambda := 0.0
		for lag := 1; lag <= maxLag && lag <= d; lag++ {
			lambda += p.inc[d-lag] * m.genPMF[lag]
		}
		p.inc[d] = p.expLogR[d] * lambda
	}

	// Observation model: loads rerun only where the incidence moved, the
	// log-normal densities additionally when sigma moved.
	for oi := range m.obs {
		o := &m.obs[oi]
		if o.Day >= incFrom {
			load := 0.0
			for lag := 0; lag < len(m.shedPMF) && lag <= o.Day; lag++ {
				load += p.inc[o.Day-lag] * m.shedPMF[lag]
			}
			p.load[oi] = load
		} else {
			p.load[oi] = cur.load[oi]
		}
		if p.load[oi] <= 0 {
			return math.Inf(-1)
		}
		if o.Day >= incFrom || sigmaMoved {
			p.term[oi] = stats.LogNormalPDFLog(o.Concentration, math.Log(p.load[oi]), sigma)
		} else {
			p.term[oi] = cur.term[oi]
		}
		lp += p.term[oi]
	}
	if math.IsNaN(lp) {
		return math.Inf(-1)
	}
	t.propOK = true
	return lp
}

func (t *goldsteinTarget) Commit() {
	if !t.propOK {
		panic("rt: Commit of an invalid Goldstein proposal")
	}
	t.cur, t.prop = t.prop, t.cur
	t.committed = true
	t.propOK = false
}
