// Package rt implements effective reproduction number estimation from
// wastewater pathogen concentrations: the semi-parametric Bayesian
// Goldstein method of §2.1 (Goldstein et al. 2024), the cheap Cori-method
// baseline (via internal/epi), and the population-weighted multi-plant
// ensemble of §2.2 that the paper's third workflow step computes.
//
// The Goldstein model here follows the paper's description: a mechanistic
// epidemic model (renewal-equation infection process driven by a
// semi-parametric log-R(t) random walk on weekly knots) combined with a
// separate statistical observation model of the pathogen genome
// concentration (shedding-load convolution with log-normal noise). R(t) is
// returned as a posterior distribution sampled by adaptive MCMC — the
// "significantly more computationally expensive" path that the paper
// schedules onto an HPC compute node.
package rt

import (
	"errors"
	"math"

	"osprey/internal/epi"
	"osprey/internal/mcmc"
	"osprey/internal/parallel"
	"osprey/internal/rng"
	"osprey/internal/stats"
	"osprey/internal/wastewater"
)

// GoldsteinOptions configures the estimator.
type GoldsteinOptions struct {
	// KnotEvery is the spacing in days of the log-R(t) spline knots
	// (default 7).
	KnotEvery int
	// Iterations is the number of retained MCMC draws (default 1500).
	Iterations int
	// BurnIn iterations are discarded (default 2000).
	BurnIn int
	// Thin keeps every Thin-th draw (default 2).
	Thin int
	// RWSigma is the random-walk prior standard deviation between
	// adjacent log-R knots (default 0.18).
	RWSigma float64
	// GenerationMean/SD parameterize the generation interval (defaults
	// 5.2 / 1.9 days).
	GenerationMean, GenerationSD float64
	// SheddingMean/SD parameterize the shedding-load kernel (defaults
	// 6 / 3 days).
	SheddingMean, SheddingSD float64
	// Seed drives the sampler's random stream.
	Seed uint64
}

func (o *GoldsteinOptions) defaults() {
	if o.KnotEvery <= 0 {
		o.KnotEvery = 7
	}
	if o.Iterations <= 0 {
		o.Iterations = 1500
	}
	if o.BurnIn <= 0 {
		o.BurnIn = 2000
	}
	if o.Thin <= 0 {
		o.Thin = 2
	}
	if o.RWSigma <= 0 {
		o.RWSigma = 0.18
	}
	if o.GenerationMean <= 0 {
		o.GenerationMean = 5.2
	}
	if o.GenerationSD <= 0 {
		o.GenerationSD = 1.9
	}
	if o.SheddingMean <= 0 {
		o.SheddingMean = 6
	}
	if o.SheddingSD <= 0 {
		o.SheddingSD = 3
	}
}

// Estimate is a posterior summary of R(t) for one plant.
type Estimate struct {
	Plant wastewater.Plant
	// Days indexes the estimate; Median/Lower/Upper are the posterior
	// median and 95% credible band per day.
	Days                 []int
	Median, Lower, Upper []float64
	// Draws[k][d] is the k-th retained posterior draw of R at day d,
	// kept so downstream flows (the ensemble aggregation) can propagate
	// full uncertainty rather than summaries.
	Draws [][]float64
	// Diagnostics.
	AcceptanceRate float64
	MinESS         float64
}

// goldsteinModel holds the fixed data and precomputed kernels for the
// likelihood.
type goldsteinModel struct {
	days     int
	obs      []wastewater.Observation
	genPMF   []float64
	shedPMF  []float64
	knots    []int // day index of each knot
	seedDays int
	rwSigma  float64
}

// parameter vector layout: [logR at knots..., logSigma, logSeed]
func (m *goldsteinModel) nParams() int { return len(m.knots) + 2 }

// dailyLogR expands knot values to a day-indexed series by linear
// interpolation.
func (m *goldsteinModel) dailyLogR(knotVals []float64, out []float64) {
	m.dailyLogRRange(knotVals, out, 0, m.days)
}

// dailyLogRRange interpolates only days [from, to). The per-day arithmetic
// is identical to a full expansion — the knot cursor is advanced to `from`
// exactly as the sequential loop would have left it — which is what lets the
// incremental likelihood rebuild just the segment a knot move touches.
func (m *goldsteinModel) dailyLogRRange(knotVals []float64, out []float64, from, to int) {
	k := 0
	for k+1 < len(m.knots) && m.knots[k+1] < from {
		k++
	}
	for d := from; d < to; d++ {
		for k+1 < len(m.knots) && m.knots[k+1] < d {
			k++
		}
		if k+1 >= len(m.knots) || d <= m.knots[0] {
			if d <= m.knots[0] {
				out[d] = knotVals[0]
			} else {
				out[d] = knotVals[len(knotVals)-1]
			}
			continue
		}
		lo, hi := m.knots[k], m.knots[k+1]
		frac := float64(d-lo) / float64(hi-lo)
		out[d] = knotVals[k]*(1-frac) + knotVals[k+1]*frac
	}
}

// logPosterior evaluates the unnormalized log posterior at theta.
func (m *goldsteinModel) logPosterior(theta []float64, scratch *goldsteinScratch) float64 {
	nk := len(m.knots)
	knotVals := theta[:nk]
	logSigma := theta[nk]
	logSeed := theta[nk+1]
	if logSigma < -5 || logSigma > 3 || logSeed < -25 || logSeed > 25 {
		return math.Inf(-1)
	}
	sigma := math.Exp(logSigma)

	// Priors.
	lp := 0.0
	// logR_0 ~ N(0, 0.5^2) — centered on R = 1.
	lp += -0.5 * (knotVals[0] / 0.5) * (knotVals[0] / 0.5)
	// Random-walk increments.
	for i := 1; i < nk; i++ {
		d := (knotVals[i] - knotVals[i-1]) / m.rwSigma
		lp += -0.5 * d * d
	}
	// Weak priors on observation parameters.
	lp += -0.5 * ((logSigma - math.Log(0.5)) / 1.0) * ((logSigma - math.Log(0.5)) / 1.0)
	lp += -0.5 * (logSeed / 10.0) * (logSeed / 10.0)

	// Latent epidemic: deterministic renewal given R(t).
	m.dailyLogR(knotVals, scratch.logR)
	seed := math.Exp(logSeed)
	inc := scratch.inc
	for d := 0; d < m.days; d++ {
		if d < m.seedDays {
			inc[d] = seed
			continue
		}
		lambda := 0.0
		maxLag := len(m.genPMF) - 1
		for lag := 1; lag <= maxLag && lag <= d; lag++ {
			lambda += inc[d-lag] * m.genPMF[lag]
		}
		inc[d] = math.Exp(scratch.logR[d]) * lambda
	}

	// Observation model: log-normal around log expected concentration.
	for _, o := range m.obs {
		load := 0.0
		for lag := 0; lag < len(m.shedPMF) && lag <= o.Day; lag++ {
			load += inc[o.Day-lag] * m.shedPMF[lag]
		}
		if load <= 0 {
			return math.Inf(-1)
		}
		lp += stats.LogNormalPDFLog(o.Concentration, math.Log(load), sigma)
	}
	if math.IsNaN(lp) {
		return math.Inf(-1)
	}
	return lp
}

type goldsteinScratch struct {
	logR, inc []float64
}

// EstimateGoldstein runs the estimator over observations spanning days
// [0, days). Observations outside the window are rejected.
func EstimateGoldstein(obs []wastewater.Observation, plant wastewater.Plant, days int, opt GoldsteinOptions) (*Estimate, error) {
	opt.defaults()
	if days <= opt.KnotEvery {
		return nil, errors.New("rt: window too short for the knot spacing")
	}
	if len(obs) < 5 {
		return nil, errors.New("rt: need at least 5 observations")
	}
	meanConc := 0.0
	for _, o := range obs {
		if o.Day < 0 || o.Day >= days {
			return nil, errors.New("rt: observation outside the estimation window")
		}
		if o.Concentration <= 0 {
			return nil, errors.New("rt: nonpositive concentration")
		}
		meanConc += o.Concentration
	}
	meanConc /= float64(len(obs))

	m := &goldsteinModel{
		days:     days,
		obs:      obs,
		genPMF:   epi.DiscretizedGamma(opt.GenerationMean, opt.GenerationSD, 20),
		shedPMF:  wastewater.SheddingKernel(opt.SheddingMean, opt.SheddingSD, 28),
		seedDays: 7,
		rwSigma:  opt.RWSigma,
	}
	for d := 0; d < days; d += opt.KnotEvery {
		m.knots = append(m.knots, d)
	}
	if last := m.knots[len(m.knots)-1]; last != days-1 {
		m.knots = append(m.knots, days-1)
	}

	// Initialization: R = 1 everywhere, sigma = 0.5, seed matched to the
	// observed concentration scale (the scale parameter is absorbed into
	// the seed — they are confounded through the linear renewal process).
	x0 := make([]float64, m.nParams())
	x0[len(m.knots)] = math.Log(0.5)
	x0[len(m.knots)+1] = math.Log(meanConc)

	scales := make([]float64, m.nParams())
	for i := range m.knots {
		scales[i] = 0.08
	}
	scales[len(m.knots)] = 0.1
	scales[len(m.knots)+1] = 0.15

	// The componentwise sampler moves one coordinate per proposal, so the
	// posterior is evaluated through the incremental target: it reuses the
	// committed renewal/observation state and recomputes only the suffix a
	// coordinate influences, bit-identically to the full logPosterior.
	chain, err := mcmc.RunComponentwiseTarget(newGoldsteinTarget(m), x0, mcmc.Options{
		Iterations: opt.Iterations,
		BurnIn:     opt.BurnIn,
		Thin:       opt.Thin,
		Scales:     scales,
		Rand:       rng.New(opt.Seed).Split("goldstein"),
	})
	if err != nil {
		return nil, err
	}

	est := &Estimate{
		Plant:          plant,
		Days:           make([]int, days),
		Median:         make([]float64, days),
		Lower:          make([]float64, days),
		Upper:          make([]float64, days),
		AcceptanceRate: chain.AcceptanceRate,
	}
	for d := range est.Days {
		est.Days[d] = d
	}

	// Expand each retained draw to daily R(t). Each draw writes only its own
	// row and each day only its own summary slot, so both passes parallelize
	// without changing a bit of the output.
	est.Draws = make([][]float64, len(chain.Samples))
	parallel.ForChunk(len(chain.Samples), func(lo, hi int) {
		logR := make([]float64, days)
		for k := lo; k < hi; k++ {
			m.dailyLogR(chain.Samples[k][:len(m.knots)], logR)
			row := make([]float64, days)
			for d := 0; d < days; d++ {
				row[d] = math.Exp(logR[d])
			}
			est.Draws[k] = row
		}
	})
	parallel.ForChunk(days, func(lo, hi int) {
		col := make([]float64, len(est.Draws))
		for d := lo; d < hi; d++ {
			for k := range est.Draws {
				col[k] = est.Draws[k][d]
			}
			qs := stats.Quantiles(col, 0.025, 0.5, 0.975)
			est.Lower[d], est.Median[d], est.Upper[d] = qs[0], qs[1], qs[2]
		}
	})

	// Minimum knot ESS as a convergence diagnostic.
	est.MinESS = math.Inf(1)
	for i := range m.knots {
		if e := chain.ESS(i); e < est.MinESS {
			est.MinESS = e
		}
	}
	return est, nil
}

// Coverage reports the fraction of days in [from, to) whose 95% band
// contains the truth — the validation metric the synthetic substitution
// makes possible.
func (e *Estimate) Coverage(truth []float64, from, to int) float64 {
	if to > len(truth) {
		to = len(truth)
	}
	if to > len(e.Lower) {
		to = len(e.Lower)
	}
	n, hit := 0, 0
	for d := from; d < to; d++ {
		n++
		if truth[d] >= e.Lower[d] && truth[d] <= e.Upper[d] {
			hit++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(hit) / float64(n)
}

// MeanAbsError reports the mean absolute error of the posterior median
// against the truth over [from, to).
func (e *Estimate) MeanAbsError(truth []float64, from, to int) float64 {
	if to > len(truth) {
		to = len(truth)
	}
	if to > len(e.Median) {
		to = len(e.Median)
	}
	n, s := 0, 0.0
	for d := from; d < to; d++ {
		n++
		s += math.Abs(e.Median[d] - truth[d])
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
