package mcmc

import (
	"math"
	"testing"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

func stdNormalLogp(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return -0.5 * s
}

func TestRequiresRand(t *testing.T) {
	if _, err := Run(stdNormalLogp, []float64{0}, Options{}); err == nil {
		t.Fatal("missing Rand accepted")
	}
}

func TestRejectsEmptyStart(t *testing.T) {
	if _, err := Run(stdNormalLogp, nil, Options{Rand: rng.New(1)}); err == nil {
		t.Fatal("empty start accepted")
	}
}

func TestRejectsInfeasibleStart(t *testing.T) {
	logp := func(x []float64) float64 { return math.Inf(-1) }
	if _, err := Run(logp, []float64{0}, Options{Rand: rng.New(1)}); err == nil {
		t.Fatal("infeasible start accepted")
	}
}

func TestRecoversStandardNormal(t *testing.T) {
	ch, err := Run(stdNormalLogp, []float64{3}, Options{
		Iterations: 8000, BurnIn: 3000, Rand: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := ch.Coordinate(0)
	if m := stats.Mean(tr); math.Abs(m) > 0.1 {
		t.Fatalf("posterior mean %v, want ~0", m)
	}
	if v := stats.Variance(tr); math.Abs(v-1) > 0.15 {
		t.Fatalf("posterior variance %v, want ~1", v)
	}
}

func TestAdaptationHitsTargetAcceptance(t *testing.T) {
	ch, err := Run(stdNormalLogp, []float64{0, 0, 0}, Options{
		Iterations: 6000, BurnIn: 6000, Rand: rng.New(2),
		Scales: []float64{5, 5, 5}, // deliberately terrible initial scale
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.AcceptanceRate-0.234) > 0.12 {
		t.Fatalf("acceptance rate %v far from target 0.234", ch.AcceptanceRate)
	}
}

func TestComponentwiseRecoversCorrelatedGaussian(t *testing.T) {
	// Bivariate normal with correlation 0.8.
	rho := 0.8
	logp := func(x []float64) float64 {
		return -(x[0]*x[0] - 2*rho*x[0]*x[1] + x[1]*x[1]) / (2 * (1 - rho*rho))
	}
	ch, err := RunComponentwise(logp, []float64{2, -2}, Options{
		Iterations: 6000, BurnIn: 3000, Rand: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	x0, x1 := ch.Coordinate(0), ch.Coordinate(1)
	if c := stats.Correlation(x0, x1); math.Abs(c-rho) > 0.1 {
		t.Fatalf("posterior correlation %v, want %v", c, rho)
	}
	if m := stats.Mean(x0); math.Abs(m) > 0.15 {
		t.Fatalf("posterior mean %v, want 0", m)
	}
}

func TestHardConstraintRespected(t *testing.T) {
	// Truncated normal: x >= 0.
	logp := func(x []float64) float64 {
		if x[0] < 0 {
			return math.Inf(-1)
		}
		return -0.5 * x[0] * x[0]
	}
	ch, err := Run(logp, []float64{1}, Options{Iterations: 4000, Rand: rng.New(4)})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ch.Samples {
		if s[0] < 0 {
			t.Fatal("sample violated hard constraint")
		}
	}
	// Mean of half-normal is sqrt(2/pi) ~ 0.798.
	if m := stats.Mean(ch.Coordinate(0)); math.Abs(m-0.798) > 0.1 {
		t.Fatalf("half-normal mean %v, want ~0.798", m)
	}
}

func TestThinning(t *testing.T) {
	ch, err := Run(stdNormalLogp, []float64{0}, Options{
		Iterations: 100, BurnIn: 100, Thin: 5, Rand: rng.New(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Samples) != 100 {
		t.Fatalf("thinned chain kept %d draws, want 100", len(ch.Samples))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *Chain {
		ch, err := Run(stdNormalLogp, []float64{0, 0}, Options{Iterations: 200, Rand: rng.New(6)})
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	a, b := run(), run()
	for i := range a.Samples {
		for j := range a.Samples[i] {
			if a.Samples[i][j] != b.Samples[i][j] {
				t.Fatal("same-seed chains diverged")
			}
		}
	}
}

func TestQuantileAndMean(t *testing.T) {
	ch, err := Run(stdNormalLogp, []float64{0}, Options{Iterations: 8000, BurnIn: 2000, Rand: rng.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	lo := ch.Quantile(0.025)[0]
	hi := ch.Quantile(0.975)[0]
	if math.Abs(lo+1.96) > 0.25 || math.Abs(hi-1.96) > 0.25 {
		t.Fatalf("95%% interval (%v, %v), want ~(-1.96, 1.96)", lo, hi)
	}
}

func TestESSPositive(t *testing.T) {
	ch, err := Run(stdNormalLogp, []float64{0}, Options{Iterations: 2000, Rand: rng.New(8)})
	if err != nil {
		t.Fatal(err)
	}
	if ess := ch.ESS(0); ess <= 1 || ess > 2000 {
		t.Fatalf("ESS = %v out of sensible range", ess)
	}
}

func TestMultiChainGelmanRubinConverges(t *testing.T) {
	chains := make([][]float64, 3)
	for c := range chains {
		ch, err := Run(stdNormalLogp, []float64{float64(c) * 2}, Options{
			Iterations: 4000, BurnIn: 3000, Rand: rng.New(uint64(100 + c)),
		})
		if err != nil {
			t.Fatal(err)
		}
		chains[c] = ch.Coordinate(0)
	}
	if rh := stats.GelmanRubin(chains); rh > 1.1 {
		t.Fatalf("R-hat %v > 1.1 for a simple target", rh)
	}
}

func BenchmarkRunBlockwise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(stdNormalLogp, make([]float64, 10), Options{
			Iterations: 1000, BurnIn: 500, Rand: rng.New(1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunComponentwise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunComponentwise(stdNormalLogp, make([]float64, 10), Options{
			Iterations: 200, BurnIn: 100, Rand: rng.New(1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
