// Package mcmc implements adaptive random-walk Metropolis samplers. The
// Goldstein-method R(t) estimator (§2.1 of the paper) is "a semi-parametric
// Bayesian sampling framework" that is "significantly more computationally
// expensive than more standard R(t) estimation methods"; this package
// provides the sampling engine it runs on, with both blockwise and
// component-wise kernels plus convergence summaries.
package mcmc

import (
	"errors"
	"math"

	"osprey/internal/rng"
	"osprey/internal/stats"
)

// LogDensity evaluates an unnormalized log posterior. It may return -Inf to
// reject a point outright (hard constraint violations).
type LogDensity func(x []float64) float64

// Options configures a sampler run.
type Options struct {
	// Iterations is the number of post-burn-in kept iterations after
	// thinning (default 1000).
	Iterations int
	// BurnIn iterations are discarded (default Iterations/2).
	BurnIn int
	// Thin keeps every Thin-th draw (default 1).
	Thin int
	// Scales are per-coordinate initial proposal standard deviations
	// (default 0.1 for every coordinate).
	Scales []float64
	// Adapt enables Robbins–Monro scale adaptation during burn-in toward
	// the target acceptance rate (default true unless DisableAdapt).
	DisableAdapt bool
	// TargetAcceptance defaults to 0.234 for blockwise and 0.44 for
	// component-wise kernels.
	TargetAcceptance float64
	// Rand supplies randomness; required.
	Rand *rng.Stream
}

// Chain holds the retained posterior draws.
type Chain struct {
	// Samples[i] is the i-th retained draw.
	Samples [][]float64
	// LogDens[i] is the log density at Samples[i].
	LogDens []float64
	// AcceptanceRate is measured after burn-in.
	AcceptanceRate float64
	// FinalScales are the (possibly adapted) proposal scales.
	FinalScales []float64
}

func (o *Options) defaults(dim int, componentwise bool) error {
	if o.Rand == nil {
		return errors.New("mcmc: Options.Rand is required")
	}
	if o.Iterations <= 0 {
		o.Iterations = 1000
	}
	if o.BurnIn <= 0 {
		o.BurnIn = o.Iterations / 2
	}
	if o.Thin <= 0 {
		o.Thin = 1
	}
	if len(o.Scales) == 0 {
		o.Scales = make([]float64, dim)
		for i := range o.Scales {
			o.Scales[i] = 0.1
		}
	} else if len(o.Scales) != dim {
		return errors.New("mcmc: Scales length does not match dimension")
	} else {
		o.Scales = append([]float64(nil), o.Scales...)
	}
	if o.TargetAcceptance <= 0 || o.TargetAcceptance >= 1 {
		if componentwise {
			o.TargetAcceptance = 0.44
		} else {
			o.TargetAcceptance = 0.234
		}
	}
	return nil
}

// Run draws from logp with a blockwise Gaussian random-walk Metropolis
// kernel: all coordinates move together, with a global adapted step
// multiplier over the per-coordinate scales.
func Run(logp LogDensity, x0 []float64, opts Options) (*Chain, error) {
	dim := len(x0)
	if dim == 0 {
		return nil, errors.New("mcmc: empty initial point")
	}
	if err := opts.defaults(dim, false); err != nil {
		return nil, err
	}
	r := opts.Rand

	x := append([]float64(nil), x0...)
	lp := logp(x)
	if math.IsInf(lp, -1) || math.IsNaN(lp) {
		return nil, errors.New("mcmc: initial point has zero posterior density")
	}

	logMult := 0.0 // adapted log step multiplier
	total := opts.BurnIn + opts.Iterations*opts.Thin
	kept := make([][]float64, 0, opts.Iterations)
	keptLp := make([]float64, 0, opts.Iterations)
	prop := make([]float64, dim)
	accPost, nPost := 0, 0

	for it := 0; it < total; it++ {
		mult := math.Exp(logMult)
		for i := range prop {
			prop[i] = x[i] + mult*opts.Scales[i]*r.Normal()
		}
		lpProp := logp(prop)
		accepted := false
		if !math.IsNaN(lpProp) && math.Log(r.Float64Open()) < lpProp-lp {
			copy(x, prop)
			lp = lpProp
			accepted = true
		}
		if it < opts.BurnIn {
			if !opts.DisableAdapt {
				// Robbins–Monro: nudge the log multiplier toward the
				// target acceptance rate with decaying gain.
				gain := math.Min(0.5, 10.0/float64(it+10))
				if accepted {
					logMult += gain * (1 - opts.TargetAcceptance)
				} else {
					logMult -= gain * opts.TargetAcceptance
				}
			}
			continue
		}
		nPost++
		if accepted {
			accPost++
		}
		if (it-opts.BurnIn)%opts.Thin == 0 {
			kept = append(kept, append([]float64(nil), x...))
			keptLp = append(keptLp, lp)
		}
	}

	scales := make([]float64, dim)
	mult := math.Exp(logMult)
	for i := range scales {
		scales[i] = mult * opts.Scales[i]
	}
	rate := 0.0
	if nPost > 0 {
		rate = float64(accPost) / float64(nPost)
	}
	return &Chain{Samples: kept, LogDens: keptLp, AcceptanceRate: rate, FinalScales: scales}, nil
}

// ComponentTarget is a log density that can exploit the structure of
// component-at-a-time proposals. Between Commit calls, every LogDensityAt
// receives an x that differs from the last committed point in at most the
// one coordinate `changed` (changed < 0 means "assume everything moved" —
// used for the initial full evaluation). An implementation may therefore
// cache intermediate state of the committed point and recompute only what
// coordinate `changed` influences, as the Goldstein R(t) likelihood does
// with its renewal recursion. Commit declares the most recently evaluated
// proposal accepted, promoting its cached state.
//
// Implementations must return bit-identical values to their full evaluation
// for the sampler to remain reproducible across the incremental and plain
// paths.
type ComponentTarget interface {
	LogDensityAt(x []float64, changed int) float64
	Commit()
}

// densityTarget adapts a memoryless LogDensity to ComponentTarget.
type densityTarget struct{ f LogDensity }

func (t densityTarget) LogDensityAt(x []float64, _ int) float64 { return t.f(x) }
func (t densityTarget) Commit()                                 {}

// RunComponentwise draws from logp with a component-at-a-time random-walk
// kernel: each iteration sweeps every coordinate with its own adapted
// scale. This mixes far better than the blockwise kernel for the
// high-dimensional latent log-R(t) increments of the Goldstein model.
func RunComponentwise(logp LogDensity, x0 []float64, opts Options) (*Chain, error) {
	return RunComponentwiseTarget(densityTarget{f: logp}, x0, opts)
}

// RunComponentwiseTarget is RunComponentwise for targets that track the
// committed/proposed distinction (see ComponentTarget). The sampling
// protocol — proposal order, RNG consumption, accept/reject arithmetic — is
// exactly that of RunComponentwise, so a target whose incremental evaluation
// is bit-faithful to its full evaluation yields an identical chain.
func RunComponentwiseTarget(target ComponentTarget, x0 []float64, opts Options) (*Chain, error) {
	dim := len(x0)
	if dim == 0 {
		return nil, errors.New("mcmc: empty initial point")
	}
	if err := opts.defaults(dim, true); err != nil {
		return nil, err
	}
	r := opts.Rand

	x := append([]float64(nil), x0...)
	lp := target.LogDensityAt(x, -1)
	if math.IsInf(lp, -1) || math.IsNaN(lp) {
		return nil, errors.New("mcmc: initial point has zero posterior density")
	}
	target.Commit()

	logScale := make([]float64, dim) // per-coordinate adapted log multipliers
	total := opts.BurnIn + opts.Iterations*opts.Thin
	kept := make([][]float64, 0, opts.Iterations)
	keptLp := make([]float64, 0, opts.Iterations)
	accPost, nPost := 0, 0

	for it := 0; it < total; it++ {
		for i := 0; i < dim; i++ {
			old := x[i]
			x[i] = old + math.Exp(logScale[i])*opts.Scales[i]*r.Normal()
			lpProp := target.LogDensityAt(x, i)
			accepted := false
			if !math.IsNaN(lpProp) && math.Log(r.Float64Open()) < lpProp-lp {
				lp = lpProp
				accepted = true
				target.Commit()
			} else {
				x[i] = old
			}
			if it < opts.BurnIn {
				if !opts.DisableAdapt {
					gain := math.Min(0.5, 10.0/float64(it+10))
					if accepted {
						logScale[i] += gain * (1 - opts.TargetAcceptance)
					} else {
						logScale[i] -= gain * opts.TargetAcceptance
					}
				}
			} else {
				nPost++
				if accepted {
					accPost++
				}
			}
		}
		if it >= opts.BurnIn && (it-opts.BurnIn)%opts.Thin == 0 {
			kept = append(kept, append([]float64(nil), x...))
			keptLp = append(keptLp, lp)
		}
	}

	scales := make([]float64, dim)
	for i := range scales {
		scales[i] = math.Exp(logScale[i]) * opts.Scales[i]
	}
	rate := 0.0
	if nPost > 0 {
		rate = float64(accPost) / float64(nPost)
	}
	return &Chain{Samples: kept, LogDens: keptLp, AcceptanceRate: rate, FinalScales: scales}, nil
}

// Coordinate extracts the trace of coordinate i.
func (c *Chain) Coordinate(i int) []float64 {
	out := make([]float64, len(c.Samples))
	for j, s := range c.Samples {
		out[j] = s[i]
	}
	return out
}

// Mean returns the posterior mean vector.
func (c *Chain) Mean() []float64 {
	if len(c.Samples) == 0 {
		return nil
	}
	dim := len(c.Samples[0])
	out := make([]float64, dim)
	for _, s := range c.Samples {
		for i, v := range s {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(c.Samples))
	}
	return out
}

// Quantile returns the per-coordinate posterior q-quantile.
func (c *Chain) Quantile(q float64) []float64 {
	if len(c.Samples) == 0 {
		return nil
	}
	dim := len(c.Samples[0])
	out := make([]float64, dim)
	for i := 0; i < dim; i++ {
		out[i] = stats.Quantile(c.Coordinate(i), q)
	}
	return out
}

// ESS returns the effective sample size of coordinate i.
func (c *Chain) ESS(i int) float64 {
	return stats.EffectiveSampleSize(c.Coordinate(i))
}
