package wal

import "osprey/internal/obs"

// Per-log metrics in the process-wide obs registry, prefixed with the
// log's Options.Name so the daemon's two engines ("wal.aero",
// "wal.emews") stay distinguishable on /metrics:
//
//	<name>.appends         records appended
//	<name>.bytes           framed bytes written
//	<name>.fsyncs          fsync syscalls issued
//	<name>.snapshots       snapshots written (compactions)
//	<name>.truncated_tail  damaged tails truncated + segments dropped
//	<name>.replays         recoveries performed
//	<name>.last_replay_ms  duration of the most recent replay
//	<name>.segments        live segment count
type metrics struct {
	appends      *obs.Counter
	bytes        *obs.Counter
	fsyncs       *obs.Counter
	snapshots    *obs.Counter
	truncated    *obs.Counter
	replays      *obs.Counter
	lastReplayMS *obs.Gauge
	segments     *obs.Gauge
}

func newMetrics(name string) *metrics {
	return &metrics{
		appends:      obs.GetCounter(name + ".appends"),
		bytes:        obs.GetCounter(name + ".bytes"),
		fsyncs:       obs.GetCounter(name + ".fsyncs"),
		snapshots:    obs.GetCounter(name + ".snapshots"),
		truncated:    obs.GetCounter(name + ".truncated_tail"),
		replays:      obs.GetCounter(name + ".replays"),
		lastReplayMS: obs.GetGauge(name + ".last_replay_ms"),
		segments:     obs.GetGauge(name + ".segments"),
	}
}
