package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseRecord hammers the record decoder with arbitrary bytes: it must
// never panic, never read past the input, and always round-trip a frame it
// produced itself. This is the parser that decides, at boot, where a
// crash-damaged log ends — it has to be unconditionally safe.
func FuzzParseRecord(f *testing.F) {
	f.Add([]byte(nil), 0)
	f.Add(EncodeRecord(nil, []byte("hello")), 0)
	f.Add(EncodeRecord(nil, nil), 64)
	f.Add(EncodeRecord(nil, bytes.Repeat([]byte{0xAB}, 300)), 128) // over maxLen
	torn := EncodeRecord(nil, []byte("torn-tail-record"))
	f.Add(torn[:len(torn)-3], 0) // cut mid-payload
	f.Add(torn[:headerSize-2], 0)
	badCRC := EncodeRecord(nil, []byte("checksummed"))
	badCRC[headerSize] ^= 0xFF
	f.Add(badCRC, 0)
	hugeLen := make([]byte, headerSize)
	binary.LittleEndian.PutUint32(hugeLen, 0xFFFFFFFF)
	f.Add(hugeLen, 1<<20)

	f.Fuzz(func(t *testing.T, b []byte, maxLen int) {
		payload, n, err := ParseRecord(b, maxLen)
		if err != nil {
			if payload != nil || n != 0 {
				t.Fatalf("error return leaked payload=%v n=%d", payload, n)
			}
			return
		}
		if n < headerSize || n > len(b) {
			t.Fatalf("consumed %d bytes of %d", n, len(b))
		}
		if len(payload) != n-headerSize {
			t.Fatalf("payload length %d inconsistent with n=%d", len(payload), n)
		}
		if maxLen > 0 && len(payload) > maxLen {
			t.Fatalf("payload of %d bytes exceeds maxLen %d", len(payload), maxLen)
		}
		// A successfully parsed frame re-encodes to the exact bytes consumed.
		if enc := EncodeRecord(nil, payload); !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, b[:n])
		}
	})
}
