package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openReplay opens a log and replays it, collecting the records.
func openReplay(t *testing.T, dir string, opts Options) (*Log, [][]byte) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var recs [][]byte
	if _, err := l.Replay(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return l, recs
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, recs [][]byte, start, n int) {
	t.Helper()
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		want := fmt.Sprintf("record-%04d", start+i)
		if string(r) != want {
			t.Fatalf("record %d = %q, want %q", i, r, want)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs := openReplay(t, dir, Options{Name: "wal.test.rt"})
	wantRecords(t, recs, 0, 0)
	appendN(t, l, 0, 25)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	l2, recs := openReplay(t, dir, Options{Name: "wal.test.rt"})
	defer l2.Close()
	wantRecords(t, recs, 0, 25)
	// The reopened log keeps appending where the first left off.
	appendN(t, l2, 25, 5)
	l2.Close()
	l3, recs := openReplay(t, dir, Options{Name: "wal.test.rt"})
	defer l3.Close()
	wantRecords(t, recs, 0, 30)
}

func TestAppendBeforeReplay(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Name: "wal.test.norpl"})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("Append before Replay succeeded, want error")
	}
	if err := l.WriteSnapshot([]byte("s")); err == nil {
		t.Fatal("WriteSnapshot before Replay succeeded, want error")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.rot", SegmentBytes: 128, Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 40) // 40 * (8+11) bytes >> several 128-byte segments
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want >= 3 after rotation", len(segs))
	}
	l2, recs := openReplay(t, dir, opts)
	defer l2.Close()
	wantRecords(t, recs, 0, 40)
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.snap", SegmentBytes: 128, Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 40)
	state := []byte("state-after-40")
	if err := l.WriteSnapshot(state); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Everything before the snapshot is compacted away.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("got %d segments after compaction, want 1", len(segs))
	}
	appendN(t, l, 40, 3)
	l.Close()

	l2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snap, ok := l2.Snapshot()
	if !ok || !bytes.Equal(snap, state) {
		t.Fatalf("Snapshot = %q, %v; want %q, true", snap, ok, state)
	}
	var recs [][]byte
	if _, err := l2.Replay(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Only the records after the snapshot replay.
	wantRecords(t, recs, 40, 3)

	// A second compaction supersedes the first snapshot file.
	if err := l2.WriteSnapshot([]byte("state-after-43")); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("got %d snapshot files, want 1", len(snaps))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.torn"}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 10)
	l.Close()

	// Tear the tail: cut the last record short mid-payload.
	seg := filepath.Join(dir, "seg-00000001.wal")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	var warns []string
	opts.Logf = func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	l2, recs := openReplay(t, dir, opts)
	wantRecords(t, recs, 0, 9)
	if len(warns) == 0 || !strings.Contains(warns[0], "truncating") {
		t.Fatalf("want truncation warning, got %q", warns)
	}
	// The damaged suffix is gone from disk (the file ends at the start of
	// the torn record) and appends continue cleanly.
	if st2, _ := os.Stat(seg); st2.Size() != st.Size()-int64(headerSize+11) {
		t.Fatalf("torn tail not truncated: size %d", st2.Size())
	}
	appendN(t, l2, 9, 1)
	l2.Close()
	l3, recs := openReplay(t, dir, opts)
	defer l3.Close()
	wantRecords(t, recs, 0, 10)
}

func TestCorruptRecordTruncatesAndDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.crc", SegmentBytes: 128, Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 40)
	l.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}

	// Flip a payload byte in the SECOND segment: replay must keep segment
	// one, truncate segment two at the damage, and drop every later
	// segment (ordering past the damage is unsafe).
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0xFF
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warns []string
	opts.Logf = func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	l2, recs := openReplay(t, dir, opts)
	defer l2.Close()

	// All of segment one's records survive; segment two contributes none
	// (the damage is in its first record).
	perSeg := 128/(headerSize+11) + 1 // records per full segment (rotation is post-append)
	wantRecords(t, recs, 0, perSeg)
	if len(warns) < 2 {
		t.Fatalf("want corrupt + drop warnings, got %q", warns)
	}
	for _, p := range segs[2:] {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("segment %s written after damage should be dropped", filepath.Base(p))
		}
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.badsnap", Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 5)
	if err := l.WriteSnapshot([]byte("full-state")); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 2)
	l.Close()

	// Corrupt the snapshot body; boot must fall back to replay-only
	// rather than refusing to start.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	data, _ := os.ReadFile(snaps[0])
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var warns []string
	opts.Logf = func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}
	l2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open with corrupt snapshot: %v", err)
	}
	defer l2.Close()
	if _, ok := l2.Snapshot(); ok {
		t.Fatal("corrupt snapshot should not be served")
	}
	if len(warns) == 0 || !strings.Contains(warns[0], "unreadable snapshot") {
		t.Fatalf("want unreadable-snapshot warning, got %q", warns)
	}
	recs := 0
	if _, err := l2.Replay(func([]byte) error { recs++; return nil }); err != nil {
		t.Fatal(err)
	}
	// The compacted prefix is gone with the snapshot; only post-snapshot
	// records remain.
	if recs != 2 {
		t.Fatalf("replayed %d records, want 2", recs)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"never", SyncNever, true},
		{"bogus", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}

	// SyncAlways fsyncs per append; SyncNever does not fsync on append.
	la, _ := openReplay(t, t.TempDir(), Options{Name: "wal.test.fsalways", Policy: SyncAlways})
	defer la.Close()
	base := la.met.fsyncs.Value()
	appendN(t, la, 0, 3)
	if got := la.met.fsyncs.Value() - base; got != 3 {
		t.Errorf("SyncAlways: %d fsyncs for 3 appends, want 3", got)
	}
	ln, _ := openReplay(t, t.TempDir(), Options{Name: "wal.test.fsnever", Policy: SyncNever})
	defer ln.Close()
	base = ln.met.fsyncs.Value()
	appendN(t, ln, 0, 3)
	if got := ln.met.fsyncs.Value() - base; got != 0 {
		t.Errorf("SyncNever: %d fsyncs for 3 appends, want 0", got)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l, _ := openReplay(t, t.TempDir(), Options{Name: "wal.test.oversize", MaxRecordBytes: 16})
	defer l.Close()
	if err := l.Append(make([]byte, 17)); err == nil {
		t.Fatal("oversize append succeeded, want error")
	}
	if err := l.Append(make([]byte, 16)); err != nil {
		t.Fatalf("at-limit append failed: %v", err)
	}
}

func TestMetricsCounters(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.metrics", Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 4)
	if err := l.WriteSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if got := l.met.appends.Value(); got != 4 {
		t.Errorf("appends = %d, want 4", got)
	}
	if got := l.met.snapshots.Value(); got != 1 {
		t.Errorf("snapshots = %d, want 1", got)
	}
	if got := l.met.bytes.Value(); got != 4*(headerSize+11) {
		t.Errorf("bytes = %d, want %d", got, 4*(headerSize+11))
	}
	l.Close()
}

func TestSizeTracksLiveSegments(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Name: "wal.test.size", SegmentBytes: 128, Policy: SyncNever}
	l, _ := openReplay(t, dir, opts)
	appendN(t, l, 0, 40)
	sz := l.Size()
	if want := int64(40 * (headerSize + 11)); sz != want {
		t.Fatalf("Size = %d, want %d", sz, want)
	}
	if err := l.WriteSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	if sz := l.Size(); sz != 0 {
		t.Fatalf("Size after compaction = %d, want 0", sz)
	}
	l.Close()
}
