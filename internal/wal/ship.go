package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// WAL shipping: the read-side API replication is built on. A follower
// tracks a cursor (segment index, byte offset) into the primary's record
// stream and repeatedly asks for the framed records after it. The primary
// answers from its live *Log via ReadAt; a coordinator catching a
// follower up from a dead primary's directory uses ReadDirAt, which needs
// no open Log. Both return raw framed bytes — only whole records, never a
// partial frame — so the receiver can ParseRecord its way through and
// append the identical payloads to its own log.

// ErrCompacted reports a shipping cursor that points before the oldest
// live segment (compaction deleted it) or past the newest one (the
// primary's history was truncated or replaced). Either way the follower's
// incremental position is useless and it must re-bootstrap from a
// snapshot.
var ErrCompacted = errors.New("wal: cursor outside live segments (re-bootstrap required)")

// DefaultShipBytes bounds one shipping read when the caller passes
// maxBytes <= 0.
const DefaultShipBytes = 256 << 10

// ShipBootstrap returns the starting state for a new follower: the newest
// snapshot payload on disk (nil if the log has never been compacted) and
// the cursor the follower should tail from after applying it.
func (l *Log) ShipBootstrap() (snapshot []byte, seg int, off int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, 0, ErrClosed
	}
	if !l.replayed {
		return nil, 0, 0, errors.New("wal: ShipBootstrap before Replay")
	}
	if l.snapIdx > 0 {
		payload, rerr := readSnapshotFile(l.snapPath(l.snapIdx))
		if rerr != nil {
			return nil, 0, 0, fmt.Errorf("wal: bootstrap snapshot: %w", rerr)
		}
		return payload, l.snapIdx, 0, nil
	}
	return nil, l.segs[0], 0, nil
}

// ReadAt returns the framed records at cursor (seg, off), advancing
// across sealed segment boundaries as needed, up to roughly maxBytes per
// call (at least one whole record when any is available). The returned
// cursor addresses the byte after the last returned record; an empty
// result means the follower is caught up with the active tail (the
// cursor may still normalize past sealed segment boundaries — always
// tail from the returned cursor). A cursor outside the live segments
// returns ErrCompacted.
func (l *Log) ReadAt(seg int, off int64, maxBytes int) (data []byte, nextSeg int, nextOff int64, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, 0, 0, ErrClosed
	}
	if !l.replayed {
		l.mu.Unlock()
		return nil, 0, 0, errors.New("wal: ReadAt before Replay")
	}
	first := l.segs[0]
	active := l.seg
	activeSize := l.size
	maxRec := l.opts.MaxRecordBytes
	l.mu.Unlock()

	// Sealed segments are immutable and the active segment is append-only,
	// so the files can be read without the lock; the active segment is
	// clamped to the size captured above so a concurrent append is never
	// observed half-written. A segment deleted by concurrent compaction
	// reads as ErrCompacted, which is exactly what it means.
	return shipRead(l.segPath, first, active, activeSize, seg, off, maxBytes, maxRec)
}

// ReadDirAt is ReadAt over a log directory with no open Log — the
// coordinator's catch-up path from a dead primary's data dir. The caller
// must know the process that owned the directory is gone. maxRecordBytes
// <= 0 uses DefaultMaxRecordBytes.
func ReadDirAt(dir string, seg int, off int64, maxBytes, maxRecordBytes int) (data []byte, nextSeg int, nextOff int64, err error) {
	if maxRecordBytes <= 0 {
		maxRecordBytes = DefaultMaxRecordBytes
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	var segIdx []int
	for _, e := range entries {
		if idx, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok {
			segIdx = append(segIdx, idx)
		}
	}
	if len(segIdx) == 0 {
		return nil, 0, 0, fmt.Errorf("wal: no segments in %s", dir)
	}
	sort.Ints(segIdx)
	segPath := func(idx int) string {
		return filepath.Join(dir, fmt.Sprintf("seg-%08d.wal", idx))
	}
	// No size clamp on the last segment: the writer is dead.
	return shipRead(segPath, segIdx[0], segIdx[len(segIdx)-1], -1, seg, off, maxBytes, maxRecordBytes)
}

// shipRead walks segments from (seg, off) collecting whole framed
// records. activeSize >= 0 clamps reads of the active segment.
func shipRead(segPath func(int) string, first, active int, activeSize int64, seg int, off int64, maxBytes, maxRec int) ([]byte, int, int64, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultShipBytes
	}
	if seg < first || seg > active {
		return nil, 0, 0, ErrCompacted
	}
	for {
		limit := int64(-1)
		if seg == active && activeSize >= 0 {
			limit = activeSize
		}
		data, consumed, err := readSegmentAt(segPath(seg), off, limit, maxBytes, maxRec)
		if err != nil {
			if os.IsNotExist(err) {
				return nil, 0, 0, ErrCompacted
			}
			return nil, 0, 0, err
		}
		if len(data) > 0 {
			return data, seg, off + consumed, nil
		}
		if seg < active {
			// Sealed and exhausted at this offset; every record in a sealed
			// segment is a complete frame, so move to the next one.
			seg, off = seg+1, 0
			continue
		}
		return nil, seg, off, nil // caught up with the active tail
	}
}

// readSegmentAt reads the whole framed records of one segment file
// starting at off, up to roughly maxBytes (always at least one record
// when a complete one is present, even if it alone exceeds maxBytes).
// limit >= 0 caps the readable file size. A trailing partial frame is
// left for the next call; a corrupt frame is an error.
func readSegmentAt(path string, off, limit int64, maxBytes, maxRec int) (data []byte, consumed int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	size := limit
	if size < 0 {
		st, err := f.Stat()
		if err != nil {
			return nil, 0, err
		}
		size = st.Size()
	}
	if off >= size {
		return nil, 0, nil
	}
	want := size - off
	if want > int64(maxBytes) {
		want = int64(maxBytes)
	}
	buf := make([]byte, want)
	n, err := readFullAt(f, buf, off)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: ship read %s: %w", path, err)
	}
	buf = buf[:n]

	parsed := 0
	for parsed < len(buf) {
		_, rn, perr := ParseRecord(buf[parsed:], maxRec)
		if perr != nil {
			if errors.Is(perr, ErrShortRecord) {
				break
			}
			return nil, 0, fmt.Errorf("wal: ship parse %s at %d: %w", path, off+int64(parsed), perr)
		}
		parsed += rn
	}
	if parsed == 0 && off+int64(len(buf)) < size {
		// A single record longer than maxBytes straddles the window: read
		// exactly that record so the cursor always makes progress.
		if len(buf) >= headerSize {
			ln := int64(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
			if maxRec > 0 && ln > int64(maxRec) {
				return nil, 0, fmt.Errorf("wal: ship parse %s at %d: %w", path, off, ErrCorruptRecord)
			}
			need := headerSize + ln
			if off+need <= size {
				big := make([]byte, need)
				if _, err := readFullAt(f, big, off); err != nil {
					return nil, 0, fmt.Errorf("wal: ship read %s: %w", path, err)
				}
				if _, rn, perr := ParseRecord(big, maxRec); perr == nil {
					return big[:rn], int64(rn), nil
				} else if !errors.Is(perr, ErrShortRecord) {
					return nil, 0, fmt.Errorf("wal: ship parse %s at %d: %w", path, off, perr)
				}
			}
		}
	}
	return buf[:parsed], int64(parsed), nil
}

// readFullAt reads len(buf) bytes at off, tolerating a short read at EOF.
func readFullAt(f *os.File, buf []byte, off int64) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := f.ReadAt(buf[total:], off+int64(total))
		total += n
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, nil
			}
			return total, err
		}
	}
	return total, nil
}
