package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: every entry in a segment (and the single entry of a
// snapshot file) is
//
//	[4-byte LE payload length][4-byte LE CRC32(payload, IEEE)][payload]
//
// The frame is deliberately minimal: the length bounds the read, the CRC
// detects both bit rot and the partial write of a crash. A decoder that
// hits either problem reports it as a typed error so recovery can
// truncate the damaged tail instead of refusing to boot.

// headerSize is the framed-record prefix: 4 length bytes + 4 CRC bytes.
const headerSize = 8

// ErrShortRecord reports a record cut off before its declared end — the
// torn tail a crash mid-append leaves behind.
var ErrShortRecord = errors.New("wal: short record (torn tail)")

// ErrCorruptRecord reports a record whose checksum does not match its
// payload, or whose declared length is implausible.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// EncodeRecord appends the framed form of payload to dst and returns the
// extended slice.
func EncodeRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ParseRecord decodes the first framed record in b, returning the payload
// (aliasing b, not copied) and the total number of bytes consumed.
// maxLen > 0 rejects records declaring a longer payload as corrupt (a
// garbage length field would otherwise read as a huge torn tail). The
// parser never panics and never reads past len(b), whatever the input.
func ParseRecord(b []byte, maxLen int) (payload []byte, n int, err error) {
	if len(b) < headerSize {
		return nil, 0, ErrShortRecord
	}
	ln := binary.LittleEndian.Uint32(b[0:4])
	if maxLen > 0 && int64(ln) > int64(maxLen) {
		return nil, 0, fmt.Errorf("%w: declared length %d exceeds limit %d", ErrCorruptRecord, ln, maxLen)
	}
	if int64(ln) > int64(len(b)-headerSize) {
		return nil, 0, ErrShortRecord
	}
	payload = b[headerSize : headerSize+int(ln)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	return payload, headerSize + int(ln), nil
}
