// Package wal is the durable storage engine shared by the AERO metadata
// store and the EMEWS task database: a segmented append-only log of
// length-prefixed, CRC32-checksummed records, plus point-in-time snapshots
// with log compaction.
//
// Layout of a log directory:
//
//	seg-00000001.wal    framed mutation records, oldest live segment
//	seg-00000002.wal    newer segments, rotated at Options.SegmentBytes
//	snap-00000002.snap  one framed record holding a full state snapshot
//
// A snapshot's index N means "state as of everything before segment N":
// recovery loads the newest readable snapshot and replays segments >= N in
// order. Writing a snapshot rotates the log to segment N and deletes the
// older segments and snapshots (compaction), so replay cost is bounded by
// the snapshot cadence, not by process lifetime.
//
// Recovery tolerates a torn tail. A record cut short by a crash — or one
// whose checksum no longer matches — ends replay at the last good record;
// the damaged suffix is truncated, a warning is logged, and the store
// boots with every fsynced record intact. Tail damage never refuses a
// boot.
//
// Appends are framed with EncodeRecord and written with a single write
// syscall; the fsync policy (SyncAlways, SyncInterval, SyncNever) trades
// durability of the most recent records for throughput. Everything is
// stdlib-only.
package wal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Backend is the minimal persistence hook a store routes its mutation
// records through. The in-memory default is no backend at all (a nil
// interface); *Log is the durable implementation.
type Backend interface {
	// Append durably records one serialized mutation. A mutation must not
	// be applied to in-memory state unless Append succeeded (fail-stop).
	Append(rec []byte) error
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no committed mutation is ever
	// lost to a crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncEvery (checked on
	// the append path): a crash can lose the records of the last
	// interval, never corrupt older ones.
	SyncInterval
	// SyncNever leaves flushing to the OS: fastest, weakest.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag spellings "always", "interval", "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
	}
}

// Option defaults.
const (
	DefaultSegmentBytes   = 8 << 20  // rotate segments at 8 MiB
	DefaultMaxRecordBytes = 16 << 20 // reject longer records as corrupt
	DefaultSyncEvery      = 100 * time.Millisecond
)

// Options configures a Log. The zero value is usable: 8 MiB segments,
// fsync on every append, 16 MiB record cap, warnings to the standard
// logger, metrics under the "wal" prefix.
type Options struct {
	// Name prefixes this log's obs metrics ("wal.aero" yields
	// "wal.aero.appends", ...). Default "wal".
	Name string
	// SegmentBytes rotates the active segment once it reaches this size.
	SegmentBytes int64
	// Policy selects the fsync cadence.
	Policy SyncPolicy
	// SyncEvery bounds staleness under SyncInterval.
	SyncEvery time.Duration
	// MaxRecordBytes bounds a single record; longer declared lengths are
	// treated as corruption during replay.
	MaxRecordBytes int
	// Logf receives recovery warnings (torn tails, dropped segments).
	// Default log.Printf.
	Logf func(format string, args ...any)
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is one durable, single-writer storage engine instance. All methods
// are safe for concurrent use, though the intended callers (the stores)
// serialize appends under their own mutation lock anyway.
type Log struct {
	dir  string
	opts Options
	met  *metrics

	mu       sync.Mutex
	f        *os.File // active segment (nil until Replay finishes)
	seg      int      // active segment index
	size     int64    // active segment size
	segs     []int    // live segment indices, ascending; last is active
	snapIdx  int      // newest readable snapshot index (0 = none)
	snap     []byte   // snapshot payload, released after Replay
	buf      []byte   // append scratch buffer
	lastSync time.Time
	replayed bool
	closed   bool
}

// Open scans (creating if necessary) a log directory and returns the log
// positioned for recovery: Snapshot exposes the newest readable snapshot,
// and Replay must be called once — even on a fresh directory — before
// Append or WriteSnapshot.
func Open(dir string, opts Options) (*Log, error) {
	if opts.Name == "" {
		opts.Name = "wal"
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	if opts.MaxRecordBytes <= 0 {
		opts.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, met: newMetrics(opts.Name)}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segIdx, snapIdx []int
	for _, e := range entries {
		if idx, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok {
			segIdx = append(segIdx, idx)
		}
		if idx, ok := parseIndexed(e.Name(), "snap-", ".snap"); ok {
			snapIdx = append(snapIdx, idx)
		}
	}
	sort.Ints(segIdx)
	sort.Sort(sort.Reverse(sort.IntSlice(snapIdx)))

	// Newest readable snapshot wins; an unreadable one is warned about and
	// skipped, falling back to an older snapshot or a full replay — tail
	// or snapshot damage must never refuse a boot.
	for _, idx := range snapIdx {
		payload, err := readSnapshotFile(l.snapPath(idx))
		if err != nil {
			l.opts.Logf("wal: ignoring unreadable snapshot %s: %v", filepath.Base(l.snapPath(idx)), err)
			continue
		}
		l.snapIdx = idx
		l.snap = payload
		break
	}

	prev := 0
	for _, idx := range segIdx {
		if idx < l.snapIdx {
			// Covered by the snapshot; normally deleted at compaction
			// time, so any leftover is stale and can go.
			_ = os.Remove(l.segPath(idx))
			continue
		}
		if prev != 0 && idx != prev+1 {
			l.opts.Logf("wal: segment gap between %d and %d; recovered state may be incomplete", prev, idx)
		}
		prev = idx
		l.segs = append(l.segs, idx)
	}
	return l, nil
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// maxLen 0: snapshots hold full store state and may legitimately
	// exceed the per-record cap.
	payload, _, err := ParseRecord(data, 0)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), payload...), nil
}

// parseIndexed extracts the numeric index from names like seg-00000012.wal.
func parseIndexed(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	idx, err := strconv.Atoi(mid)
	if err != nil || idx < 1 {
		return 0, false
	}
	return idx, true
}

func (l *Log) segPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%08d.wal", idx))
}

func (l *Log) snapPath(idx int) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%08d.snap", idx))
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Snapshot returns the newest readable snapshot payload, if any. Valid
// until Replay is called (recovery loads the snapshot first, then
// replays).
func (l *Log) Snapshot() ([]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap, l.snap != nil
}

// Replay invokes apply for every record after the snapshot, oldest first,
// then opens the log for appending. A torn or corrupt tail is truncated
// with a warning (and any segments after the damage are dropped, since
// ordering past it is unsafe); an apply error aborts recovery. Replay
// must be called exactly once, even on a fresh directory.
func (l *Log) Replay(apply func(rec []byte) error) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.replayed {
		return 0, errors.New("wal: already replayed")
	}
	start := time.Now()
	count := 0
	for si, idx := range l.segs {
		path := l.segPath(idx)
		data, err := os.ReadFile(path)
		if err != nil {
			return count, fmt.Errorf("wal: %w", err)
		}
		off, damaged := 0, false
		for off < len(data) {
			payload, n, err := ParseRecord(data[off:], l.opts.MaxRecordBytes)
			if err != nil {
				l.opts.Logf("wal: %s: %v at offset %d; truncating %d damaged byte(s)",
					filepath.Base(path), err, off, len(data)-off)
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return count, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
				l.met.truncated.Inc()
				damaged = true
				break
			}
			if err := apply(payload); err != nil {
				return count, fmt.Errorf("wal: apply record %d of %s: %w", count+1, filepath.Base(path), err)
			}
			count++
			off += n
		}
		if damaged {
			for _, later := range l.segs[si+1:] {
				l.opts.Logf("wal: dropping segment %s written after damaged tail", filepath.Base(l.segPath(later)))
				_ = os.Remove(l.segPath(later))
				l.met.truncated.Inc()
			}
			l.segs = l.segs[:si+1]
			break
		}
	}

	active := l.snapIdx
	if len(l.segs) > 0 {
		active = l.segs[len(l.segs)-1]
	}
	if active < 1 {
		active = 1
	}
	f, err := os.OpenFile(l.segPath(active), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return count, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return count, fmt.Errorf("wal: %w", err)
	}
	if len(l.segs) == 0 {
		l.segs = []int{active}
		l.syncDir()
	}
	l.f, l.seg, l.size = f, active, st.Size()
	l.snap = nil
	l.replayed = true
	l.lastSync = time.Now()
	l.met.lastReplayMS.Set(time.Since(start).Milliseconds())
	l.met.replays.Inc()
	l.met.segments.Set(int64(len(l.segs)))
	return count, nil
}

// Append durably appends one record (implementing Backend). The write is
// a single syscall; fsync follows the configured policy.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.replayed {
		return errors.New("wal: Append before Replay")
	}
	if len(rec) > l.opts.MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes %d", len(rec), l.opts.MaxRecordBytes)
	}
	l.buf = EncodeRecord(l.buf[:0], rec)
	if _, err := l.f.Write(l.buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(l.buf))
	l.met.appends.Inc()
	l.met.bytes.Add(int64(len(l.buf)))
	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			if err := l.syncLocked(); err != nil {
				return err
			}
		}
	}
	if l.size >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = time.Now()
	l.met.fsyncs.Inc()
	return nil
}

// rotateLocked closes the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	next := l.seg + 1
	f, err := os.OpenFile(l.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.seg, l.size = f, next, 0
	l.segs = append(l.segs, next)
	l.syncDir()
	l.met.segments.Set(int64(len(l.segs)))
	return nil
}

// WriteSnapshot atomically records a full-state snapshot and compacts the
// log: the snapshot is written (tmp + rename), the log rotates to a fresh
// segment, and every older segment and snapshot is deleted. The caller
// must hold its own mutation lock across the state serialization AND this
// call, so no record can land in a segment that compaction deletes.
func (l *Log) WriteSnapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if !l.replayed {
		return errors.New("wal: WriteSnapshot before Replay")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	newIdx := l.seg + 1

	tmp := filepath.Join(l.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(EncodeRecord(nil, state)); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, l.snapPath(newIdx)); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	l.syncDir()

	// The snapshot is durable; rotate onto its segment index and drop
	// everything it covers.
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	nf, err := os.OpenFile(l.segPath(newIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, idx := range l.segs {
		if idx < newIdx {
			_ = os.Remove(l.segPath(idx))
		}
	}
	if olds, err := filepath.Glob(filepath.Join(l.dir, "snap-*.snap")); err == nil {
		for _, p := range olds {
			if idx, ok := parseIndexed(filepath.Base(p), "snap-", ".snap"); ok && idx < newIdx {
				_ = os.Remove(p)
			}
		}
	}
	l.f, l.seg, l.size = nf, newIdx, 0
	l.segs = []int{newIdx}
	l.snapIdx = newIdx
	l.syncDir()
	l.met.snapshots.Inc()
	l.met.segments.Set(1)
	return nil
}

// Size returns the total bytes of live segments — the replay debt a crash
// right now would incur. Callers use it to decide when to compact.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, idx := range l.segs {
		if idx == l.seg {
			total += l.size
			continue
		}
		if st, err := os.Stat(l.segPath(idx)); err == nil {
			total += st.Size()
		}
	}
	return total
}

// Close fsyncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// syncDir fsyncs the directory so renames and new files survive a crash.
// Best-effort: some platforms reject fsync on directories.
func (l *Log) syncDir() {
	d, err := os.Open(l.dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
