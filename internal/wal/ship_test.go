package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// shipDrain pulls every record after (seg, off) via ReadAt, returning the
// parsed payloads and the final cursor.
func shipDrain(t *testing.T, l *Log, seg int, off int64, maxBytes int) ([][]byte, int, int64) {
	t.Helper()
	var out [][]byte
	for {
		data, nseg, noff, err := l.ReadAt(seg, off, maxBytes)
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", seg, off, err)
		}
		if len(data) == 0 {
			// The cursor may still normalize past sealed segment
			// boundaries on an empty read.
			return out, nseg, noff
		}
		for p := 0; p < len(data); {
			payload, n, err := ParseRecord(data[p:], 0)
			if err != nil {
				t.Fatalf("parse shipped frame: %v", err)
			}
			out = append(out, append([]byte(nil), payload...))
			p += n
		}
		seg, off = nseg, noff
	}
}

func TestShipReadAtAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Name: "wal.shiptest", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var want [][]byte
	for i := 0; i < 40; i++ {
		rec := []byte(fmt.Sprintf("rec-%03d-%s", i, string(bytes.Repeat([]byte{'x'}, 20))))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}

	_, bseg, boff, err := l.ShipBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny maxBytes forces multi-call paging and the straddling-record path.
	got, seg, off := shipDrain(t, l, bseg, boff, 64)
	if len(got) != len(want) {
		t.Fatalf("shipped %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, got[i], want[i])
		}
	}

	// New appends are visible from the saved cursor.
	extra := []byte("tail-record")
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	more, _, _ := shipDrain(t, l, seg, off, 0)
	if len(more) != 1 || !bytes.Equal(more[0], extra) {
		t.Fatalf("tail read = %q, want [%q]", more, extra)
	}
}

func TestShipBootstrapWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Name: "wal.shipsnap"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte(`{"compacted":"state"}`)
	if err := l.WriteSnapshot(state); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("post-0")); err != nil {
		t.Fatal(err)
	}

	snap, seg, off, err := l.ShipBootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, state) {
		t.Fatalf("bootstrap snapshot = %q, want %q", snap, state)
	}
	got, _, _ := shipDrain(t, l, seg, off, 0)
	if len(got) != 1 || string(got[0]) != "post-0" {
		t.Fatalf("post-snapshot records = %q", got)
	}

	// A cursor from before the compaction is gone.
	if _, _, _, err := l.ReadAt(1, 0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pre-compaction cursor: err = %v, want ErrCompacted", err)
	}
	// So is one pointing past the active segment.
	if _, _, _, err := l.ReadAt(seg+10, 0, 0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("future cursor: err = %v, want ErrCompacted", err)
	}
}

func TestShipReadDirAt(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Name: "wal.shipdir", SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 12; i++ {
		rec := []byte(fmt.Sprintf("dead-primary-record-%02d", i))
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil { // the primary "dies"
		t.Fatal(err)
	}

	var got [][]byte
	seg, off := 1, int64(0)
	for {
		data, nseg, noff, err := ReadDirAt(dir, seg, off, 96, 0)
		if err != nil {
			t.Fatalf("ReadDirAt(%d,%d): %v", seg, off, err)
		}
		if len(data) == 0 {
			break
		}
		for p := 0; p < len(data); {
			payload, n, err := ParseRecord(data[p:], 0)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, append([]byte(nil), payload...))
			p += n
		}
		seg, off = nseg, noff
	}
	if len(got) != len(want) {
		t.Fatalf("dir catch-up got %d records, want %d (files: %v)", len(got), len(want), globNames(t, dir))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func globNames(t *testing.T, dir string) []string {
	t.Helper()
	names, _ := filepath.Glob(filepath.Join(dir, "*"))
	return names
}
