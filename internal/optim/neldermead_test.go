package optim

import (
	"math"
	"testing"
)

func TestQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	r := NelderMead(f, []float64{0, 0}, NelderMeadOptions{MaxIter: 1000})
	if math.Abs(r.X[0]-3) > 1e-4 || math.Abs(r.X[1]+1) > 1e-4 {
		t.Fatalf("minimum at %v, want (3,-1)", r.X)
	}
	if !r.Converged {
		t.Fatal("did not converge on a quadratic")
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	r := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, TolF: 1e-12, TolX: 1e-12})
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum at %v, want (1,1)", r.X)
	}
}

func TestHigherDimensionSphere(t *testing.T) {
	f := func(x []float64) float64 {
		s := 0.0
		for _, v := range x {
			s += v * v
		}
		return s
	}
	x0 := []float64{2, -3, 1, 4, -2}
	r := NelderMead(f, x0, NelderMeadOptions{MaxIter: 4000})
	if r.F > 1e-6 {
		t.Fatalf("5-D sphere minimum value %v too large", r.F)
	}
}

func TestRespectsInfBarrier(t *testing.T) {
	// Feasible region x >= 0.5; minimum of (x-0)^2 there is at 0.5.
	f := func(x []float64) float64 {
		if x[0] < 0.5 {
			return math.Inf(1)
		}
		return x[0] * x[0]
	}
	r := NelderMead(f, []float64{2}, NelderMeadOptions{MaxIter: 1000})
	if r.X[0] < 0.5-1e-9 {
		t.Fatalf("left feasible region: %v", r.X)
	}
	if math.Abs(r.X[0]-0.5) > 1e-3 {
		t.Fatalf("constrained minimum at %v, want 0.5", r.X[0])
	}
}

func TestEmptyInput(t *testing.T) {
	r := NelderMead(func(x []float64) float64 { return 7 }, nil, NelderMeadOptions{})
	if r.F != 7 || !r.Converged {
		t.Fatal("empty input should evaluate once and converge")
	}
}

func TestCustomStep(t *testing.T) {
	f := func(x []float64) float64 { return (x[0] - 100) * (x[0] - 100) }
	r := NelderMead(f, []float64{0}, NelderMeadOptions{MaxIter: 2000, Step: []float64{50}})
	if math.Abs(r.X[0]-100) > 1e-3 {
		t.Fatalf("large-step search found %v, want 100", r.X[0])
	}
}

func TestMultiStartEscapesLocalMinimum(t *testing.T) {
	// Double well: local min near x=2 (value 1), global near x=-2 (value 0).
	f := func(x []float64) float64 {
		v := x[0]
		return math.Min((v-2)*(v-2)+1, (v+2)*(v+2))
	}
	r := MultiStart(f, [][]float64{{3}, {-3}}, NelderMeadOptions{MaxIter: 500})
	if math.Abs(r.X[0]+2) > 1e-3 {
		t.Fatalf("MultiStart stuck at %v, want -2", r.X[0])
	}
}

func TestIterationBudgetHonored(t *testing.T) {
	calls := 0
	f := func(x []float64) float64 {
		calls++
		return x[0] * x[0]
	}
	NelderMead(f, []float64{1000}, NelderMeadOptions{MaxIter: 5})
	if calls > 40 {
		t.Fatalf("budget of 5 iterations made %d calls", calls)
	}
}

func BenchmarkNelderMeadRosenbrock(b *testing.B) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		c := x[1] - x[0]*x[0]
		return a*a + 100*c*c
	}
	for i := 0; i < b.N; i++ {
		NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 2000})
	}
}
