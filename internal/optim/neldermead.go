// Package optim provides derivative-free optimization used to fit surrogate
// model hyperparameters (Gaussian-process marginal likelihood maximization)
// and to tune estimator settings where gradients are unavailable.
package optim

import (
	"math"

	"osprey/internal/parallel"
)

// Result reports the outcome of an optimization run.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective value at X
	Iterations int
	Converged  bool
}

// NelderMeadOptions configures Minimize.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations (default 400).
	MaxIter int
	// TolF stops when the simplex objective spread falls below it
	// (default 1e-9).
	TolF float64
	// TolX stops when the simplex diameter falls below it (default 1e-9).
	TolX float64
	// Step is the initial simplex edge length per coordinate
	// (default 0.5 in every coordinate).
	Step []float64
}

// NelderMead minimizes f starting from x0 using the downhill simplex method
// with adaptive parameters (Gao & Han) for robustness in moderate dimension.
// f may return +Inf to reject infeasible points.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) Result {
	n := len(x0)
	if n == 0 {
		return Result{X: nil, F: f(nil), Converged: true}
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 400
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-9
	}
	if opt.TolX <= 0 {
		opt.TolX = 1e-9
	}
	step := opt.Step
	if len(step) == 0 {
		step = make([]float64, n)
		for i := range step {
			step[i] = 0.5
		}
	}

	// Adaptive coefficients.
	alpha := 1.0
	beta := 1.0 + 2.0/float64(n)
	gamma := 0.75 - 1.0/(2.0*float64(n))
	delta := 1.0 - 1.0/float64(n)

	// Build initial simplex.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	pts[0] = append([]float64(nil), x0...)
	vals[0] = f(pts[0])
	for i := 0; i < n; i++ {
		p := append([]float64(nil), x0...)
		p[i] += step[i]
		pts[i+1] = p
		vals[i+1] = f(p)
	}

	order := func() {
		// Insertion sort by value; simplex is small.
		for i := 1; i <= n; i++ {
			pv, pp := vals[i], pts[i]
			j := i - 1
			for j >= 0 && vals[j] > pv {
				vals[j+1], pts[j+1] = vals[j], pts[j]
				j--
			}
			vals[j+1], pts[j+1] = pv, pp
		}
	}
	centroid := make([]float64, n)
	computeCentroid := func() {
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < n; i++ { // exclude worst
			for j := range centroid {
				centroid[j] += pts[i][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
	}
	affine := func(t float64) ([]float64, float64) {
		// centroid + t*(centroid - worst)
		p := make([]float64, n)
		for j := range p {
			p[j] = centroid[j] + t*(centroid[j]-pts[n][j])
		}
		return p, f(p)
	}

	order()
	iter := 0
	for ; iter < opt.MaxIter; iter++ {
		// Convergence checks.
		if math.Abs(vals[n]-vals[0]) < opt.TolF {
			break
		}
		diam := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				d := math.Abs(pts[i][j] - pts[0][j])
				if d > diam {
					diam = d
				}
			}
		}
		if diam < opt.TolX {
			break
		}

		computeCentroid()
		xr, fr := affine(alpha)
		switch {
		case fr < vals[0]:
			// Try expansion.
			xe, fe := affine(alpha * beta)
			if fe < fr {
				pts[n], vals[n] = xe, fe
			} else {
				pts[n], vals[n] = xr, fr
			}
		case fr < vals[n-1]:
			pts[n], vals[n] = xr, fr
		default:
			// Contraction.
			var xc []float64
			var fc float64
			if fr < vals[n] {
				xc, fc = affine(alpha * gamma) // outside
			} else {
				xc, fc = affine(-gamma) // inside
			}
			if fc < math.Min(fr, vals[n]) {
				pts[n], vals[n] = xc, fc
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + delta*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
		order()
	}
	return Result{
		X:          append([]float64(nil), pts[0]...),
		F:          vals[0],
		Iterations: iter,
		Converged:  iter < opt.MaxIter,
	}
}

// MultiStart runs NelderMead from each start point and returns the best
// result, a cheap way to dodge bad local optima in GP likelihood surfaces.
func MultiStart(f func([]float64) float64, starts [][]float64, opt NelderMeadOptions) Result {
	best := Result{F: math.Inf(1)}
	for _, s := range starts {
		r := NelderMead(f, s, opt)
		if r.F < best.F {
			best = r
		}
	}
	return best
}

// MultiStartParallel runs NelderMead from each start point concurrently
// under the process-wide worker bound. objFor(i) must return an objective
// for exclusive use by start i (restart objectives typically carry scratch
// state, so they cannot be shared). The winner is chosen by an ordered
// reduction over start index with the same strictly-less rule as
// MultiStart, so the result is bit-identical to the serial path at any
// worker count.
func MultiStartParallel(objFor func(i int) func([]float64) float64, starts [][]float64, opt NelderMeadOptions) Result {
	results := make([]Result, len(starts))
	parallel.For(len(starts), func(i int) {
		results[i] = NelderMead(objFor(i), starts[i], opt)
	})
	best := Result{F: math.Inf(1)}
	for _, r := range results {
		if r.F < best.F {
			best = r
		}
	}
	return best
}
