// Package obs is the OSPREY observability layer: process-wide counters,
// gauges, and latency histograms, plus lightweight span tracing (span.go).
// Everything is stdlib-only and safe for concurrent use; the hot-path cost
// of a metric update is one or two atomic adds, so the instrumented
// subsystems (EMEWS, the scheduler, AERO) can record every operation
// without measurable overhead.
//
// Metrics live in a Registry, keyed by dotted names ("emews.tasks.popped").
// Instrumented packages hold their metric handles in package-level vars
// obtained from the Default registry at init time:
//
//	var popped = obs.GetCounter("emews.tasks.popped")
//
// A Registry serializes to a JSON Snapshot and exposes itself as an
// http.Handler (the /metrics endpoint of the aero server and
// osprey-daemon); `ospreyctl metrics` pretty-prints the same snapshot.
package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, open connections).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram buckets: fixed log-scale (powers of two) over microseconds.
// Bucket i counts observations with ceil(d/1µs) in (2^(i-1), 2^i]; bucket 0
// takes everything at or under 1µs and the last bucket is the +Inf
// overflow. 2^26 µs ≈ 67 s, so the covered range is 1 µs .. ~67 s — wide
// enough for lock waits and multi-second batch jobs alike.
const (
	histBuckets = 28 // bucket 0 .. 26 plus overflow
)

// bucketUpperSeconds returns the inclusive upper bound of bucket i in
// seconds (+Inf for the overflow bucket).
func bucketUpperSeconds(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) * 1e-6
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	i := bits.Len64(us - 1) // smallest i with 2^i >= us
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// Histogram records a latency distribution in fixed log-scale buckets. All
// methods are lock-free; a concurrent snapshot may be torn by at most the
// observations in flight, which is fine for monitoring.
type Histogram struct {
	buckets  [histBuckets]atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
	minNanos atomic.Int64 // 0 = unset (no observations yet)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	for {
		cur := h.maxNanos.Load()
		if int64(d) <= cur || h.maxNanos.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.minNanos.Load()
		// minNanos stores d+1 so that 0 means "unset" and a genuine
		// zero-duration observation is still representable.
		if cur != 0 && int64(d)+1 >= cur {
			break
		}
		if h.minNanos.CompareAndSwap(cur, int64(d)+1) {
			break
		}
	}
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// BucketCount is one (upper bound, count) pair of a histogram snapshot.
// Only non-empty buckets are serialized.
type BucketCount struct {
	// LeSeconds is the bucket's inclusive upper bound in seconds;
	// the overflow bucket serializes it as the string "+Inf" via
	// HistogramSnapshot's custom marshaling below (JSON has no Inf), so
	// it is typed float64 here and handled at encode time.
	LeSeconds float64 `json:"le_seconds"`
	Count     int64   `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	MinSeconds float64       `json:"min_seconds"`
	MaxSeconds float64       `json:"max_seconds"`
	P50Seconds float64       `json:"p50_seconds"`
	P90Seconds float64       `json:"p90_seconds"`
	P99Seconds float64       `json:"p99_seconds"`
	Buckets    []BucketCount `json:"buckets,omitempty"`
}

// MarshalJSON clamps non-finite bucket bounds (the +Inf overflow bucket) to
// -1, since JSON cannot represent infinities.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	type alias HistogramSnapshot // strip the method to avoid recursion
	a := alias(s)
	a.Buckets = append([]BucketCount(nil), s.Buckets...)
	for i := range a.Buckets {
		if math.IsInf(a.Buckets[i].LeSeconds, 1) {
			a.Buckets[i].LeSeconds = -1
		}
	}
	return json.Marshal(a)
}

// snapshot freezes the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count:      total,
		SumSeconds: float64(h.sumNanos.Load()) / 1e9,
		MaxSeconds: float64(h.maxNanos.Load()) / 1e9,
	}
	if min := h.minNanos.Load(); min > 0 {
		s.MinSeconds = float64(min-1) / 1e9
	}
	for i, n := range counts {
		if n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LeSeconds: bucketUpperSeconds(i), Count: n})
		}
	}
	s.P50Seconds = quantile(counts[:], total, 0.50)
	s.P90Seconds = quantile(counts[:], total, 0.90)
	s.P99Seconds = quantile(counts[:], total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by linear
// interpolation inside the containing bucket. The overflow bucket reports
// its lower bound (the estimate is then a floor, not an interpolation).
func quantile(counts []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		upper := bucketUpperSeconds(i)
		var lower float64
		if i > 0 {
			lower = bucketUpperSeconds(i - 1)
		}
		if math.IsInf(upper, 1) {
			return lower
		}
		frac := (rank - float64(prev)) / float64(n)
		return lower + frac*(upper-lower)
	}
	return bucketUpperSeconds(len(counts) - 1)
}

// Snapshot is a frozen, JSON-serializable view of a Registry.
type Snapshot struct {
	Time       time.Time                    `json:"time"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use the package Default).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. The handle
// is stable: callers cache it in a var and update lock-free thereafter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot freezes every metric in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Time:       time.Now(),
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// Handler serves the registry as a JSON snapshot — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// SortedCounterNames returns the snapshot's counter names in order — a
// convenience for deterministic pretty-printing (ospreyctl metrics).
func (s Snapshot) SortedCounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SortedGaugeNames returns the snapshot's gauge names in order.
func (s Snapshot) SortedGaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// SortedHistogramNames returns the snapshot's histogram names in order.
func (s Snapshot) SortedHistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// defaultRegistry is the process-wide registry every OSPREY subsystem
// records into (mirroring expvar's package-level default).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// GetCounter returns a counter from the Default registry.
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge returns a gauge from the Default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram returns a histogram from the Default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }
