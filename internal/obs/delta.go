package obs

// Snapshot deltas: the report-export path of the load-generation harness.
// Metrics in the Default registry are process-cumulative, so a harness
// that wants "what happened during this run" snapshots the registry
// before and after and subtracts. Counters and histogram buckets
// subtract cleanly; gauges are levels and keep their end-of-run value;
// histogram quantiles are re-derived from the bucket deltas by the same
// interpolation the live snapshot uses.

// Sub returns the histogram activity between prev and s: bucket counts,
// count, and sum are subtracted, and the quantiles are recomputed from
// the delta buckets. Min/Max cannot be windowed from bucket data alone
// and keep s's whole-lifetime values.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	var counts [histBuckets]int64
	for _, b := range s.Buckets {
		counts[bucketIndexForBound(b.LeSeconds)] += b.Count
	}
	for _, b := range prev.Buckets {
		counts[bucketIndexForBound(b.LeSeconds)] -= b.Count
	}
	out := HistogramSnapshot{
		SumSeconds: s.SumSeconds - prev.SumSeconds,
		MinSeconds: s.MinSeconds,
		MaxSeconds: s.MaxSeconds,
	}
	var total int64
	for i, n := range counts {
		if n < 0 {
			// A torn concurrent snapshot can momentarily under-read a
			// bucket; clamp rather than emit a negative count.
			n = 0
			counts[i] = 0
		}
		total += n
		if n > 0 {
			out.Buckets = append(out.Buckets, BucketCount{LeSeconds: bucketUpperSeconds(i), Count: n})
		}
	}
	out.Count = total
	if out.SumSeconds < 0 {
		out.SumSeconds = 0
	}
	out.P50Seconds = quantile(counts[:], total, 0.50)
	out.P90Seconds = quantile(counts[:], total, 0.90)
	out.P99Seconds = quantile(counts[:], total, 0.99)
	return out
}

// bucketIndexForBound maps a serialized bucket upper bound back to its
// index in the fixed ladder. The overflow bucket may arrive as +Inf
// (in-process snapshot) or as the JSON stand-in -1 (decoded snapshot).
func bucketIndexForBound(le float64) int {
	if le < 0 || le > bucketUpperSeconds(histBuckets-2) {
		return histBuckets - 1
	}
	for i := 0; i < histBuckets-1; i++ {
		if le <= bucketUpperSeconds(i) {
			return i
		}
	}
	return histBuckets - 1
}

// Delta returns the activity between prev and s: counters subtract
// (clamped at zero; a counter absent from prev keeps its full value),
// histograms subtract bucket-wise with re-derived quantiles, and gauges —
// instantaneous levels — keep their s values. The Time is s's.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Time:       s.Time,
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		d := v - prev.Counters[k]
		if d < 0 {
			d = 0
		}
		out.Counters[k] = d
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v.Sub(prev.Histograms[k])
	}
	return out
}
