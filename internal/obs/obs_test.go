package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// The name must resolve to the same handle.
	if r.Counter("test.counter") != c {
		t.Fatal("get-or-create returned a different handle for the same name")
	}
}

func TestGaugeOps(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramConcurrentCountAndSum(t *testing.T) {
	h := NewRegistry().Histogram("h")
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(time.Duration(i+1) * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketTotal, s.Count)
	}
	// Sum = perG * (1+2+...+goroutines) ms.
	wantSum := float64(perG) * float64(goroutines*(goroutines+1)/2) * 1e-3
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Fatalf("sum = %v s, want %v s", s.SumSeconds, wantSum)
	}
	if s.MinSeconds > s.MaxSeconds {
		t.Fatalf("min %v > max %v", s.MinSeconds, s.MaxSeconds)
	}
}

func TestHistogramBucketBoundsAndQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("h")
	// 100 observations of 1ms: every quantile must land in the bucket
	// containing 1ms, i.e. (512µs, 1024µs].
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.snapshot()
	for _, q := range []float64{s.P50Seconds, s.P90Seconds, s.P99Seconds} {
		if q < 512e-6 || q > 1024e-6 {
			t.Fatalf("quantile %v outside the 1ms bucket (512µs, 1024µs]", q)
		}
	}
	if s.MinSeconds != 1e-3 || s.MaxSeconds != 1e-3 {
		t.Fatalf("min/max = %v/%v, want 1ms/1ms", s.MinSeconds, s.MaxSeconds)
	}
	// Quantiles are monotone.
	if s.P50Seconds > s.P90Seconds || s.P90Seconds > s.P99Seconds {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50Seconds, s.P90Seconds, s.P99Seconds)
	}
}

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's bound must exceed its predecessor's.
	for i := 1; i < histBuckets; i++ {
		if bucketUpperSeconds(i) <= bucketUpperSeconds(i-1) {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(5)
	r.Gauge("g.one").Set(-2)
	r.Histogram("h.one").Observe(3 * time.Millisecond)
	r.Histogram("h.one").Observe(40 * time.Second)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Time     time.Time        `json:"time"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Hists    map[string]struct {
			Count      int64   `json:"count"`
			SumSeconds float64 `json:"sum_seconds"`
			P50        float64 `json:"p50_seconds"`
			Buckets    []struct {
				Le    float64 `json:"le_seconds"`
				Count int64   `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON of the documented shape: %v\n%s", err, raw)
	}
	if decoded.Counters["c.one"] != 5 {
		t.Fatalf("counters = %v", decoded.Counters)
	}
	if decoded.Gauges["g.one"] != -2 {
		t.Fatalf("gauges = %v", decoded.Gauges)
	}
	h, ok := decoded.Hists["h.one"]
	if !ok || h.Count != 2 {
		t.Fatalf("histograms = %v", decoded.Hists)
	}
	if len(h.Buckets) != 2 {
		t.Fatalf("want 2 non-empty buckets, got %v", h.Buckets)
	}
	if decoded.Time.IsZero() {
		t.Fatal("snapshot time missing")
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["hits"] != 1 {
		t.Fatalf("handler snapshot = %+v", snap)
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	h := NewRegistry().Histogram("h")
	if s := h.snapshot(); s.P50Seconds != 0 || s.Count != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	// An observation beyond the covered range lands in the overflow bucket;
	// the quantile estimate must be finite (the bucket's lower bound).
	h.Observe(10 * time.Minute)
	s := h.snapshot()
	if math.IsInf(s.P99Seconds, 1) || math.IsNaN(s.P99Seconds) {
		t.Fatalf("overflow quantile = %v, want finite", s.P99Seconds)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("overflow bucket is not JSON-serializable: %v", err)
	}
	var rt map[string]any
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	c := GetCounter("obs_test.default.counter")
	before := c.Value()
	c.Inc()
	if GetCounter("obs_test.default.counter").Value() != before+1 {
		t.Fatal("GetCounter did not resolve to the same default-registry handle")
	}
	GetGauge("obs_test.default.gauge").Set(7)
	GetHistogram("obs_test.default.hist").Observe(time.Millisecond)
	snap := Default().Snapshot()
	if snap.Gauges["obs_test.default.gauge"] != 7 {
		t.Fatalf("default snapshot gauges = %v", snap.Gauges)
	}
	if snap.Histograms["obs_test.default.hist"].Count < 1 {
		t.Fatal("default snapshot histogram missing")
	}
}
