package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSpanParenting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartSpan("root")
	child := root.StartChild("child")
	grandchild := child.StartChild("grandchild")
	grandchild.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child.Parent = %d, want root ID %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Fatalf("grandchild.Parent = %d, want child ID %d", byName["grandchild"].Parent, byName["child"].ID)
	}
}

func TestRingBufferEviction(t *testing.T) {
	const capacity = 4
	tr := NewTracer(capacity)
	for i := 0; i < 10; i++ {
		s := tr.StartSpan(fmt.Sprintf("span-%d", i))
		s.End()
	}
	spans := tr.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	// The newest `capacity` spans survive, oldest first.
	for i, s := range spans {
		want := fmt.Sprintf("span-%d", 10-capacity+i)
		if s.Name != want {
			t.Fatalf("spans[%d] = %q, want %q", i, s.Name, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestSpanEndErrAndIdempotence(t *testing.T) {
	tr := NewTracer(8)
	s := tr.StartSpan("failing")
	s.SetDetail("unit test")
	s.EndErr(errors.New("boom"))
	s.End() // second End must be a no-op
	s.End()
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans after duplicate End, want 1", len(spans))
	}
	if spans[0].Err != "boom" || spans[0].Detail != "unit test" {
		t.Fatalf("record = %+v", spans[0])
	}
	if spans[0].DurationMS < 0 {
		t.Fatalf("negative duration %v", spans[0].DurationMS)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := tr.StartSpan("worker")
				s.StartChild("op").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*100*2 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*100*2)
	}
	if got := len(tr.Snapshot()); got != 64 {
		t.Fatalf("retained %d, want ring capacity 64", got)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	tr.StartSpan("visible").End()
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total != 1 || len(snap.Spans) != 1 || snap.Spans[0].Name != "visible" {
		t.Fatalf("trace snapshot = %+v", snap)
	}
}

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(8)
	rootCtx, root := StartSpanCtx(context.Background(), "ctx-root")
	_ = tr // package-default tracer is used by StartSpanCtx
	childCtx, child := StartSpanCtx(rootCtx, "ctx-child")
	if SpanFromContext(childCtx) != child {
		t.Fatal("child span not carried by derived context")
	}
	child.End()
	root.End()
	// Find the two spans in the default tracer and confirm parenting.
	var rootRec, childRec *SpanRecord
	for _, s := range DefaultTracer().Snapshot() {
		s := s
		switch s.Name {
		case "ctx-root":
			rootRec = &s
		case "ctx-child":
			childRec = &s
		}
	}
	if rootRec == nil || childRec == nil {
		t.Fatal("ctx spans not recorded in default tracer")
	}
	if childRec.Parent != rootRec.ID {
		t.Fatalf("ctx child parent = %d, want %d", childRec.Parent, rootRec.ID)
	}
}
