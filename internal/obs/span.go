// Span tracing: the per-task timeline complement to the aggregate metrics
// in obs.go. A Span marks one timed operation; child spans carry their
// parent's ID so a request's fan-out (poll → transform → store, or job
// submit → run) reconstructs as a tree. Finished spans land in a fixed
// ring buffer of recent history — tracing is a flight recorder, not a
// durable log — queryable as JSON from the /trace endpoint.
package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is a finished span as stored in the ring and serialized by
// the /trace endpoint.
type SpanRecord struct {
	ID         uint64    `json:"id"`
	Parent     uint64    `json:"parent,omitempty"`
	Name       string    `json:"name"`
	Detail     string    `json:"detail,omitempty"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Err        string    `json:"err,omitempty"`
}

// Span is one in-flight timed operation. End (or EndErr) exactly once;
// a Span is not safe for concurrent use, but distinct spans are.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	detail string
	start  time.Time
	ended  bool
}

// ID returns the span's process-unique ID.
func (s *Span) ID() uint64 { return s.id }

// SetDetail attaches a free-form annotation serialized with the record.
func (s *Span) SetDetail(detail string) { s.detail = detail }

// StartChild opens a sub-span parented to s.
func (s *Span) StartChild(name string) *Span {
	child := s.tracer.StartSpan(name)
	child.parent = s.id
	return child
}

// End finishes the span successfully and records it.
func (s *Span) End() { s.end("") }

// EndErr finishes the span, recording err's message if non-nil.
func (s *Span) EndErr(err error) {
	if err != nil {
		s.end(err.Error())
		return
	}
	s.end("")
}

func (s *Span) end(errMsg string) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tracer.record(SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		Detail:     s.detail,
		Start:      s.start,
		DurationMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Err:        errMsg,
	})
}

// Tracer is a ring buffer of recently finished spans.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanRecord
	next  int // write cursor into ring
	total uint64
}

// DefaultTraceCapacity is the ring size of the package-default tracer.
const DefaultTraceCapacity = 512

// NewTracer creates a tracer retaining the last capacity finished spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string) *Span {
	return &Span{tracer: t, id: t.nextID.Add(1), name: name, start: time.Now()}
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
}

// Total reports how many spans have finished since the tracer started
// (including those already evicted from the ring).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSnapshot is the JSON body of the /trace endpoint.
type TraceSnapshot struct {
	Time  time.Time    `json:"time"`
	Total uint64       `json:"total"`
	Spans []SpanRecord `json:"spans"`
}

// Handler serves the ring as JSON — the /trace endpoint.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		t.mu.Lock()
		total := t.total
		t.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(TraceSnapshot{Time: time.Now(), Total: total, Spans: t.Snapshot()})
	})
}

// defaultTracer backs the package-level StartSpan, like defaultRegistry
// for metrics.
var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// StartSpan opens a root span on the default tracer.
func StartSpan(name string) *Span { return defaultTracer.StartSpan(name) }

// spanKey is the context key for span propagation.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s for downstream StartSpanCtx calls.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpanCtx opens a span parented to the one in ctx (a root span if ctx
// carries none) and returns a derived context carrying the new span.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *Span) {
	var s *Span
	if parent := SpanFromContext(ctx); parent != nil {
		s = parent.StartChild(name)
	} else {
		s = StartSpan(name)
	}
	return ContextWithSpan(ctx, s), s
}
