package obs

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// Delta must isolate the activity of a window: counters subtract,
// histogram quantiles are recomputed from the bucket deltas, gauges keep
// their end-of-window level.
func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")

	c.Add(5)
	g.Set(2)
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Millisecond) // pre-window noise
	}
	pre := r.Snapshot()

	c.Add(7)
	g.Set(9)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // the window's real activity
	}
	post := r.Snapshot()

	d := post.Delta(pre)
	if d.Counters["c"] != 7 {
		t.Fatalf("counter delta = %d, want 7", d.Counters["c"])
	}
	if d.Gauges["g"] != 9 {
		t.Fatalf("gauge level = %d, want 9", d.Gauges["g"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 100 {
		t.Fatalf("histogram delta count = %d, want 100", hd.Count)
	}
	// All 100 delta observations are ~1ms; without the delta the p50 would
	// sit near 100ms (200 observations, half at 100ms).
	if hd.P50Seconds > 0.002 {
		t.Fatalf("delta p50 = %v, want ~1ms (pre-window noise leaked in)", hd.P50Seconds)
	}
	if full := post.Histograms["h"]; full.P90Seconds < 0.01 {
		t.Fatalf("sanity: full-histogram p90 = %v, expected to reach the noise", full.P90Seconds)
	}
	if math.Abs(hd.SumSeconds-0.1) > 0.02 {
		t.Fatalf("delta sum = %v, want ~0.1", hd.SumSeconds)
	}
}

// A counter that first appears inside the window keeps its full value,
// and deltas survive a JSON round trip (the overflow bucket's +Inf bound
// is serialized as -1).
func TestSnapshotDeltaJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(90 * time.Second) // overflow bucket
	h.Observe(time.Millisecond)
	pre := r.Snapshot()

	r.Counter("late").Add(3)
	h.Observe(90 * time.Second)
	post := r.Snapshot()

	// Round-trip both snapshots through JSON, as a scrape-based consumer
	// would see them.
	var pre2, post2 Snapshot
	for src, dst := range map[*Snapshot]*Snapshot{&pre: &pre2, &post: &post2} {
		b, err := json.Marshal(*src)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(b, dst); err != nil {
			t.Fatal(err)
		}
	}

	d := post2.Delta(pre2)
	if d.Counters["late"] != 3 {
		t.Fatalf("late counter delta = %d, want 3", d.Counters["late"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 1 {
		t.Fatalf("delta count = %d, want 1 (the second overflow observation)", hd.Count)
	}
	if len(hd.Buckets) != 1 {
		t.Fatalf("delta buckets = %+v, want exactly the overflow bucket", hd.Buckets)
	}
}
