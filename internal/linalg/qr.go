package linalg

import (
	"errors"
	"math"
)

// ErrRankDeficient is returned by least-squares solves when the design
// matrix has (numerically) linearly dependent columns.
var ErrRankDeficient = errors.New("linalg: rank-deficient least squares system")

// QR holds a Householder QR factorization of an m x n matrix with m >= n.
// The factor R is stored in the upper triangle of qr; the Householder
// vectors occupy the lower triangle, with their leading coefficients in
// rdiag implicit.
type QR struct {
	qr    *Dense
	rdiag []float64
}

// NewQR factors a (m >= n required). The input matrix is not modified.
func NewQR(a *Dense) *QR {
	if a.Rows < a.Cols {
		panic("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	f := &QR{qr: a.Clone(), rdiag: make([]float64, n)}
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, f.qr.At(i, k))
		}
		if nrm != 0 {
			if f.qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				f.qr.Set(i, k, f.qr.At(i, k)/nrm)
			}
			f.qr.Set(k, k, f.qr.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += f.qr.At(i, k) * f.qr.At(i, j)
				}
				s = -s / f.qr.At(k, k)
				for i := k; i < m; i++ {
					f.qr.Set(i, j, f.qr.At(i, j)+s*f.qr.At(i, k))
				}
			}
		}
		f.rdiag[k] = -nrm
	}
	return f
}

// Rank reports the numerical rank based on the R diagonal relative to the
// largest diagonal entry.
func (f *QR) Rank(tol float64) int {
	if tol <= 0 {
		tol = 1e-12
	}
	max := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > max {
			max = a
		}
	}
	r := 0
	for _, d := range f.rdiag {
		if math.Abs(d) > tol*max {
			r++
		}
	}
	return r
}

// Solve returns the least-squares solution x minimizing ||A x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QR Solve dimension mismatch")
	}
	max := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > max {
			max = a
		}
	}
	for _, d := range f.rdiag {
		if math.Abs(d) <= 1e-13*max {
			return nil, ErrRankDeficient
		}
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y <- Qᵀ b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		if f.qr.At(k, k) == 0 {
			continue
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ||A x - b||₂ in one call.
func LeastSquares(a *Dense, b []float64) ([]float64, error) {
	return NewQR(a).Solve(b)
}

// RidgeLeastSquares solves the Tikhonov-regularized problem
// min ||A x - b||² + lambda ||x||² by augmenting the system, which keeps the
// QR path well conditioned for nearly collinear PCE design matrices.
func RidgeLeastSquares(a *Dense, b []float64, lambda float64) ([]float64, error) {
	if lambda <= 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows, a.Cols
	aug := NewDense(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.Row(i), a.Row(i))
	}
	s := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, s)
	}
	bb := make([]float64, m+n)
	copy(bb, b)
	return LeastSquares(aug, bb)
}
