package linalg

import (
	"errors"
	"math"

	"osprey/internal/obs"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization fails.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// mCholJitterRetries counts NewCholeskyJittered retry attempts (one per
// jitter rung actually tried), surfacing surrogate-fit instability in
// /metrics.
var mCholJitterRetries = obs.GetCounter("linalg.chol.jitter_retries")

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPositiveDefinite when a
// pivot is non-positive (within a small tolerance for numerical noise).
//
// Matrices of cholBlockedMin rows or more go through the cache-tiled
// blocked factorization (see cholesky_blocked.go), which is bit-identical
// at any worker count; smaller matrices use the scalar loop directly. The
// two paths fix different (both deterministic) summation orders, so they
// agree to rounding error, not bitwise; the crossover depends only on n.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	if a.Rows >= cholBlockedMin {
		return newCholeskyBlocked(a)
	}
	return newCholeskyScalar(a)
}

// NewCholeskyJittered retries the factorization with a deterministic
// exponential jitter ladder (jitter0, 10·jitter0, 100·jitter0, …) until it
// succeeds or maxTries is exhausted. Each rung sets the working copy's
// diagonal to exactly original+jitter, so the attempt sequence depends only
// on (a, jitter0, maxTries). Every retry increments the
// linalg.chol.jitter_retries counter, making surrogate-fit instability
// visible in /metrics. It returns the factor along with the jitter that was
// finally applied. This is the standard guard for Gaussian-process
// covariance matrices that are numerically semi-definite.
func NewCholeskyJittered(a *Dense, jitter0 float64, maxTries int) (*Cholesky, float64, error) {
	if jitter0 <= 0 {
		jitter0 = 1e-10
	}
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	n := a.Rows
	b := a.Clone()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a.At(i, i)
	}
	j := jitter0
	for try := 0; try < maxTries; try++ {
		mCholJitterRetries.Inc()
		for i := 0; i < n; i++ {
			b.Set(i, i, diag[i]+j)
		}
		if ch, err := NewCholesky(b); err == nil {
			return ch, j, nil
		}
		j *= 10
	}
	return nil, 0, ErrNotPositiveDefinite
}

// SolveVec solves A x = b given the factorization, overwriting nothing.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.ForwardSolve(b)
	return c.BackSolve(y)
}

// ForwardSolve solves L y = b.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	y := make([]float64, c.L.Rows)
	c.ForwardSolveTo(y, b)
	return y
}

// ForwardSolveTo solves L y = b into the caller-supplied slice dst, which
// may alias b. It allocates nothing, which is what makes batched GP
// prediction allocation-free in steady state.
//
// Large factors use a tiled traversal that keeps each cholTile-wide slice
// of the solution hot while every row of a block consumes it. The
// subtraction sequence per element is exactly the scalar one (ascending k),
// so the result is bit-identical to the scalar loop for every n.
func (c *Cholesky) ForwardSolveTo(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: ForwardSolveTo dimension mismatch")
	}
	if n < cholBlockedMin {
		for i := 0; i < n; i++ {
			s := b[i]
			li := c.L.Row(i)
			for k := 0; k < i; k++ {
				s -= li[k] * dst[k]
			}
			dst[i] = s / li[i]
		}
		return
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	for ib := 0; ib < n; ib += cholTile {
		ie := min(ib+cholTile, n)
		for kb := 0; kb < ib; kb += cholTile {
			ke := kb + cholTile // kb < ib implies a full tile
			for i := ib; i < ie; i++ {
				li := c.L.Row(i)
				s := dst[i]
				for k := kb; k < ke; k++ {
					s -= li[k] * dst[k]
				}
				dst[i] = s
			}
		}
		for i := ib; i < ie; i++ {
			li := c.L.Row(i)
			s := dst[i]
			for k := ib; k < i; k++ {
				s -= li[k] * dst[k]
			}
			dst[i] = s / li[i]
		}
	}
}

// BackSolve solves Lᵀ x = y.
func (c *Cholesky) BackSolve(y []float64) []float64 {
	x := make([]float64, c.L.Rows)
	c.BackSolveTo(x, y)
	return x
}

// BackSolveTo solves Lᵀ x = y into the caller-supplied slice dst, which may
// alias y. It allocates nothing.
//
// The scalar back substitution walks a column of the row-major factor — a
// stride-n access per element — so factors of cholBlockedMin rows or more
// use a blocked traversal instead: each cholTile-row block first absorbs
// the already-solved trailing blocks' contributions row-contiguously
// (ascending k), then back-substitutes its diagonal tile. Trailing
// contributions land before in-tile ones, so the blocked result can differ
// from the scalar path in the last ulp; both paths are serial and
// deterministic, and the crossover depends only on n.
func (c *Cholesky) BackSolveTo(dst, y []float64) {
	n := c.L.Rows
	if len(y) != n || len(dst) != n {
		panic("linalg: BackSolveTo dimension mismatch")
	}
	if n < cholBlockedMin {
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= c.L.At(k, i) * dst[k]
			}
			dst[i] = s / c.L.At(i, i)
		}
		return
	}
	copy(dst, y)
	first := ((n - 1) / cholTile) * cholTile
	for ib := first; ib >= 0; ib -= cholTile {
		ie := min(ib+cholTile, n)
		for k := ie; k < n; k++ {
			lk := c.L.Row(k)
			xk := dst[k]
			for i := ib; i < ie; i++ {
				dst[i] -= lk[i] * xk
			}
		}
		for i := ie - 1; i >= ib; i-- {
			s := dst[i]
			for k := i + 1; k < ie; k++ {
				s -= c.L.At(k, i) * dst[k]
			}
			dst[i] = s / c.L.At(i, i)
		}
	}
}

// SolveMat solves A X = B column by column.
func (c *Cholesky) SolveMat(b *Dense) *Dense {
	if b.Rows != c.L.Rows {
		panic("linalg: SolveMat dimension mismatch")
	}
	out := NewDense(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// LogDet returns log |A| = 2 * sum(log L_ii).
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
