package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization fails.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factors the symmetric positive-definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPositiveDefinite when a
// pivot is non-positive (within a small tolerance for numerical noise).
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		dj := math.Sqrt(d)
		lj[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / dj
		}
	}
	return &Cholesky{L: l}, nil
}

// NewCholeskyJittered retries the factorization with exponentially growing
// diagonal jitter until it succeeds or maxTries is exhausted. It returns the
// factor along with the jitter that was finally applied. This is the
// standard guard for Gaussian-process covariance matrices that are
// numerically semi-definite.
func NewCholeskyJittered(a *Dense, jitter0 float64, maxTries int) (*Cholesky, float64, error) {
	if jitter0 <= 0 {
		jitter0 = 1e-10
	}
	if ch, err := NewCholesky(a); err == nil {
		return ch, 0, nil
	}
	j := jitter0
	for try := 0; try < maxTries; try++ {
		b := a.Clone().AddDiag(j)
		if ch, err := NewCholesky(b); err == nil {
			return ch, j, nil
		}
		j *= 10
	}
	return nil, 0, ErrNotPositiveDefinite
}

// SolveVec solves A x = b given the factorization, overwriting nothing.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	y := c.ForwardSolve(b)
	return c.BackSolve(y)
}

// ForwardSolve solves L y = b.
func (c *Cholesky) ForwardSolve(b []float64) []float64 {
	y := make([]float64, c.L.Rows)
	c.ForwardSolveTo(y, b)
	return y
}

// ForwardSolveTo solves L y = b into the caller-supplied slice dst, which
// may alias b. It allocates nothing, which is what makes batched GP
// prediction allocation-free in steady state.
func (c *Cholesky) ForwardSolveTo(dst, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(dst) != n {
		panic("linalg: ForwardSolveTo dimension mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		li := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * dst[k]
		}
		dst[i] = s / li[i]
	}
}

// BackSolve solves Lᵀ x = y.
func (c *Cholesky) BackSolve(y []float64) []float64 {
	n := c.L.Rows
	if len(y) != n {
		panic("linalg: BackSolve dimension mismatch")
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// SolveMat solves A X = B column by column.
func (c *Cholesky) SolveMat(b *Dense) *Dense {
	if b.Rows != c.L.Rows {
		panic("linalg: SolveMat dimension mismatch")
	}
	out := NewDense(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := c.SolveVec(col)
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// LogDet returns log |A| = 2 * sum(log L_ii).
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}
