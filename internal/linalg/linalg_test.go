package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"osprey/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMulIdentity(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	got := a.Mul(Identity(2))
	if got.MaxAbsDiff(a) != 0 {
		t.Fatal("A * I != A")
	}
	got2 := Identity(3).Mul(a)
	if got2.MaxAbsDiff(a) != 0 {
		t.Fatal("I * A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if a.Mul(b).MaxAbsDiff(want) > 1e-15 {
		t.Fatal("matrix multiply wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewDense(3+r.Intn(5), 2+r.Intn(5))
		for i := range m.Data {
			m.Data[i] = r.Normal()
		}
		return m.T().T().MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {0, 3, 1}})
	got := a.MulVec([]float64{2, 1, 1})
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("MulVec got %v", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2 of empty should be 0")
	}
	// Overflow safety.
	if math.IsInf(Norm2([]float64{1e300, 1e300}), 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY got %v", y)
	}
}

func randomSPD(r *rng.Stream, n int) *Dense {
	b := NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = r.Normal()
	}
	a := b.Mul(b.T())
	a.AddDiag(float64(n)) // ensure well conditioned
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		a := randomSPD(r, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		recon := ch.L.Mul(ch.L.T())
		if recon.MaxAbsDiff(a) > 1e-9 {
			t.Fatalf("L Lᵀ differs from A by %v", recon.MaxAbsDiff(a))
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		a := randomSPD(r, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Normal()
		}
		b := a.MulVec(xTrue)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		x := ch.SolveVec(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
}

func TestCholeskyJittered(t *testing.T) {
	// Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	ch, jit, err := NewCholeskyJittered(a, 1e-10, 20)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	if jit <= 0 {
		t.Fatal("expected nonzero jitter on a singular matrix")
	}
	if ch == nil {
		t.Fatal("nil factor")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Fatalf("LogDet = %v, want %v", ch.LogDet(), math.Log(36))
	}
}

func TestCholeskySolveMat(t *testing.T) {
	r := rng.New(3)
	a := randomSPD(r, 4)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.SolveMat(Identity(4))
	if a.Mul(inv).MaxAbsDiff(Identity(4)) > 1e-9 {
		t.Fatal("A * A⁻¹ != I")
	}
}

func TestQRSolveExact(t *testing.T) {
	// Square nonsingular system should be solved exactly.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("QR solve got %v", x)
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	r := rng.New(4)
	m, n := 30, 5
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = r.Normal()
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = r.Normal()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Residual must be orthogonal to the column space: Aᵀ(Ax - b) ≈ 0.
	res := a.MulVec(x)
	for i := range res {
		res[i] -= b[i]
	}
	g := a.T().MulVec(res)
	for _, v := range g {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("normal equations not satisfied: %v", g)
		}
	}
}

func TestQRRecoversPlantedCoefficients(t *testing.T) {
	r := rng.New(5)
	m, n := 200, 4
	a := NewDense(m, n)
	for i := range a.Data {
		a.Data[i] = r.Normal()
	}
	xTrue := []float64{1.5, -2, 0.25, 3}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("coefficient %d: got %v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected rank-deficiency error")
	}
	if got := NewQR(a).Rank(1e-10); got != 1 {
		t.Fatalf("Rank = %d, want 1", got)
	}
}

func TestRidgeLeastSquaresHandlesCollinearity(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3.0000001}})
	x, err := RidgeLeastSquares(a, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge shrinks toward the symmetric solution x0 ≈ x1 ≈ 1.
	pred := a.MulVec(x)
	for i, want := range []float64{2, 4, 6} {
		if !almostEq(pred[i], want, 1e-3) {
			t.Fatalf("ridge prediction %v at %d, want %v", pred[i], i, want)
		}
	}
}

func TestAddScaleDiag(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Add(a)
	if b.At(1, 0) != 6 {
		t.Fatal("Add wrong")
	}
	c := a.Scale(0.5)
	if c.At(0, 1) != 1 {
		t.Fatal("Scale wrong")
	}
	d := a.Clone().AddDiag(10)
	if d.At(0, 0) != 11 || d.At(1, 1) != 14 || d.At(0, 1) != 2 {
		t.Fatal("AddDiag wrong")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows accepted ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func BenchmarkCholesky100(b *testing.B) {
	r := rng.New(1)
	a := randomSPD(r, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQRLeastSquares(b *testing.B) {
	r := rng.New(1)
	a := NewDense(200, 20)
	for i := range a.Data {
		a.Data[i] = r.Normal()
	}
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = r.Normal()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
