package linalg

import (
	"math"

	"osprey/internal/parallel"
)

// Blocked Cholesky: the right-looking, cache-tiled factorization behind
// NewCholesky for matrices at or above cholBlockedMin. The matrix is
// processed in cholTile-wide column panels; each step factors the diagonal
// tile, forward-substitutes the panel rows below it, and then subtracts the
// panel's outer product from the trailing submatrix tile by tile across the
// worker pool.
//
// Determinism: the blocked path fixes its own summation order — panel
// contributions in ascending column-panel order, and within each panel a
// 4-lane strided partial-sum dot (see dot4) whose lanes combine in one
// fixed tree — and tiles are disjoint index ranges written by exactly one
// ForChunk iteration (slot-write contract). The factor is therefore
// bit-identical at any worker count. It is NOT bit-identical to the scalar
// path (the lanes reassociate the sums to break the one-accumulator
// dependency chain that latency-binds the scalar loop); the crossover in
// NewCholesky depends only on n, so any given problem size always takes
// one path.
const (
	// cholTile is the panel/tile width. 64 columns of float64 is 512 bytes
	// per row strip — two tiles of interacting rows fit comfortably in L1
	// while the panel strip stays resident across the trailing update.
	cholTile = 64
	// cholBlockedMin is the size-based crossover: below it the scalar
	// factorization wins (no pair-list or goroutine overhead), above it the
	// tiled traversal's locality and lane-parallel dots dominate. The
	// crossover is a pure function of n, so a given problem size always
	// takes the same path and stays reproducible.
	cholBlockedMin = 128
)

// newCholeskyScalar is the reference factorization for small matrices,
// kept as the sub-crossover fast path and as the oracle the blocked-path
// tests compare against.
func newCholeskyScalar(a *Dense) (*Cholesky, error) {
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		dj := math.Sqrt(d)
		lj[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / dj
		}
	}
	return &Cholesky{L: l}, nil
}

// dot4 returns Σ a[k]·b[k] over [0, n) with four independent accumulator
// lanes (k ≡ 0..3 mod 4) combined as (s0+s1)+(s2+s3). The lanes break the
// single-accumulator add-latency chain that bounds a sequential dot; the
// order is a pure function of n, so results are reproducible everywhere.
func dot4(a, b []float64, n int) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= n; k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	for ; k < n; k++ {
		s0 += a[k] * b[k]
	}
	return (s0 + s1) + (s2 + s3)
}

// factorDiagTile factors columns [kb, ke) of the diagonal tile in place,
// assuming all contributions from columns < kb have already been subtracted
// by earlier trailing updates.
func factorDiagTile(l *Dense, kb, ke int) error {
	for j := kb; j < ke; j++ {
		lj := l.Row(j)
		ljp := lj[kb:j]
		d := lj[j] - dot4(ljp, ljp, j-kb)
		if d <= 0 || math.IsNaN(d) {
			return ErrNotPositiveDefinite
		}
		dj := math.Sqrt(d)
		lj[j] = dj
		for i := j + 1; i < ke; i++ {
			li := l.Row(i)
			li[j] = (li[j] - dot4(li[kb:j], ljp, j-kb)) / dj
		}
	}
	return nil
}

// newCholeskyBlocked factors a with the tiled right-looking algorithm.
func newCholeskyBlocked(a *Dense) (*Cholesky, error) {
	n := a.Rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(l.Row(i)[:i+1], a.Row(i)[:i+1])
	}
	// Reused trailing-tile pair list: {rowTileStart, colTileStart}.
	var pairs [][2]int
	for kb := 0; kb < n; kb += cholTile {
		ke := min(kb+cholTile, n)
		if err := factorDiagTile(l, kb, ke); err != nil {
			return nil, err
		}
		// Panel: forward-substitute every row below the diagonal tile
		// against it. Each row is owned by one iteration.
		parallel.ForChunk(n-ke, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				i := ke + r
				li := l.Row(i)
				for j := kb; j < ke; j++ {
					lj := l.Row(j)
					li[j] = (li[j] - dot4(li[kb:j], lj[kb:j], j-kb)) / lj[j]
				}
			}
		})
		// Trailing update: subtract the panel's outer product from every
		// remaining lower-triangle tile. Tiles are disjoint slots.
		pairs = pairs[:0]
		for jb := ke; jb < n; jb += cholTile {
			for ib := jb; ib < n; ib += cholTile {
				pairs = append(pairs, [2]int{ib, jb})
			}
		}
		parallel.ForChunk(len(pairs), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				ib, jb := pairs[p][0], pairs[p][1]
				ie := min(ib+cholTile, n)
				je := min(jb+cholTile, n)
				w := ke - kb
				for i := ib; i < ie; i++ {
					li := l.Row(i)
					lip := li[kb:ke]
					jmax := je
					if i+1 < jmax {
						jmax = i + 1 // diagonal tile: lower triangle only
					}
					for j := jb; j < jmax; j++ {
						li[j] -= dot4(lip, l.Row(j)[kb:ke], w)
					}
				}
			}
		})
	}
	return &Cholesky{L: l}, nil
}
