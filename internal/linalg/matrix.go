// Package linalg implements the dense linear algebra needed by the
// Gaussian-process surrogate, polynomial chaos expansion, and MCMC layers:
// matrix/vector arithmetic, Cholesky factorization, triangular solves, and
// Householder QR least squares. It is deliberately small, allocation-aware,
// and dependency-free.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a Rows x Cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share one length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m * v.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add dimension mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Scale returns c * m.
func (m *Dense) Scale(c float64) *Dense {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= c
	}
	return out
}

// AddDiag adds v to every diagonal element in place and returns m.
func (m *Dense) AddDiag(v float64) *Dense {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// MaxAbsDiff returns the max absolute elementwise difference between m and b.
func (m *Dense) MaxAbsDiff(b *Dense) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: MaxAbsDiff dimension mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		fmt.Fprintf(&sb, "%v\n", m.Row(i))
	}
	return sb.String()
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled to avoid overflow for extreme values.
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		r := x / max
		s += r * r
	}
	return max * math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}
