package linalg

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"osprey/internal/obs"
	"osprey/internal/parallel"
)

// spdMatrix builds a deterministic symmetric positive-definite matrix with
// the structure of a GP covariance: a squared-exponential kernel over a
// scrambled 1-D design plus a small nugget.
func spdMatrix(n int) *Dense {
	a := NewDense(n, n)
	pts := make([]float64, n)
	for i := range pts {
		// Low-discrepancy-ish deterministic scatter in [0, 1).
		pts[i] = math.Mod(float64(i)*0.6180339887498949, 1.0)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			d := (pts[i] - pts[j]) / 0.3
			v := math.Exp(-0.5 * d * d)
			if i == j {
				v += 1e-6
			}
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// TestBlockedMatchesScalar is the crossover-safety property: the blocked
// factorization agrees with the scalar oracle to rounding error at sizes
// on, under, and over tile boundaries. (The two paths fix different
// summation orders — the blocked one uses 4-lane dots — so exact equality
// is not expected; each path is individually deterministic.)
func TestBlockedMatchesScalar(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 127, 128, 129, 200, 257} {
		a := spdMatrix(n)
		sc, err := newCholeskyScalar(a)
		if err != nil {
			t.Fatalf("n=%d scalar: %v", n, err)
		}
		bl, err := newCholeskyBlocked(a)
		if err != nil {
			t.Fatalf("n=%d blocked: %v", n, err)
		}
		if d := sc.L.MaxAbsDiff(bl.L); d > 1e-11 {
			t.Fatalf("n=%d: blocked factor differs from scalar by %g", n, d)
		}
	}
}

// TestBlockedCholeskySerialParallelEquality pins the determinism contract:
// the blocked factor is bit-identical at workers ∈ {1, 4, GOMAXPROCS}.
func TestBlockedCholeskySerialParallelEquality(t *testing.T) {
	defer parallel.SetWorkers(0)
	a := spdMatrix(300)
	var ref *Cholesky
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		parallel.SetWorkers(w)
		ch, err := newCholeskyBlocked(a)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = ch
			continue
		}
		for i := range ref.L.Data {
			if ref.L.Data[i] != ch.L.Data[i] {
				t.Fatalf("workers=%d: factor differs at flat index %d", w, i)
			}
		}
	}
}

// TestBlockedCholeskyReconstruction checks L·Lᵀ ≈ A through the public
// dispatching API at a size above the crossover.
func TestBlockedCholeskyReconstruction(t *testing.T) {
	n := 200
	a := spdMatrix(n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	recon := ch.L.Mul(ch.L.T())
	if d := recon.MaxAbsDiff(a); d > 1e-10 {
		t.Fatalf("reconstruction error %g", d)
	}
}

// TestBlockedCholeskyRejectsIndefinite checks the blocked path reports
// non-positive pivots like the scalar path does.
func TestBlockedCholeskyRejectsIndefinite(t *testing.T) {
	n := 192
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	a.Set(n-1, n-1, -1) // indefinite in the last tile
	if _, err := newCholeskyBlocked(a); err != ErrNotPositiveDefinite {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
}

// TestBlockedSolvesMatchScalar checks both triangular solves above the
// crossover: the forward solve must match the scalar loop bit for bit (it
// preserves the scalar operation order), the back solve within last-ulp
// tolerance (trailing-block contributions are applied first), and both must
// invert the factor.
func TestBlockedSolvesMatchScalar(t *testing.T) {
	for _, n := range []int{129, 200, 256} {
		a := spdMatrix(n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = math.Sin(float64(i))
		}
		// Scalar references computed directly from the factor.
		fwdRef := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			li := ch.L.Row(i)
			for k := 0; k < i; k++ {
				s -= li[k] * fwdRef[k]
			}
			fwdRef[i] = s / li[i]
		}
		backRef := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := fwdRef[i]
			for k := i + 1; k < n; k++ {
				s -= ch.L.At(k, i) * backRef[k]
			}
			backRef[i] = s / ch.L.At(i, i)
		}
		fwd := ch.ForwardSolve(b)
		for i := range fwd {
			if fwd[i] != fwdRef[i] {
				t.Fatalf("n=%d: forward solve differs at %d: %v vs %v", n, i, fwd[i], fwdRef[i])
			}
		}
		back := ch.BackSolve(fwd)
		for i := range back {
			if math.Abs(back[i]-backRef[i]) > 1e-9*(1+math.Abs(backRef[i])) {
				t.Fatalf("n=%d: back solve differs at %d: %v vs %v", n, i, back[i], backRef[i])
			}
		}
		// x = A⁻¹ b must satisfy A x ≈ b.
		ax := a.MulVec(back)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-7 {
				t.Fatalf("n=%d: residual %g at %d", n, math.Abs(ax[i]-b[i]), i)
			}
		}
		// BackSolveTo must support aliasing dst with y.
		alias := append([]float64(nil), fwd...)
		ch.BackSolveTo(alias, alias)
		for i := range alias {
			if alias[i] != back[i] {
				t.Fatalf("n=%d: aliased back solve differs at %d", n, i)
			}
		}
	}
}

// TestJitterRetriesCounted checks the deterministic jitter ladder and its
// obs counter: an indefinite-but-fixable matrix increments
// linalg.chol.jitter_retries once per rung tried, and equal inputs take the
// same ladder.
func TestJitterRetriesCounted(t *testing.T) {
	n := 50
	a := NewDense(n, n)
	// Rank-1 Gram matrix: PSD but singular, so the first unjittered attempt
	// fails and the ladder must climb.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1)*1e-4)
		}
	}
	before := obs.GetCounter("linalg.chol.jitter_retries").Value()
	ch, jit, err := NewCholeskyJittered(a, 1e-10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if jit <= 0 {
		t.Fatalf("expected nonzero jitter, got %v", jit)
	}
	retries := obs.GetCounter("linalg.chol.jitter_retries").Value() - before
	if retries <= 0 {
		t.Fatalf("expected jitter retries to be counted, got %d", retries)
	}
	// Determinism: the same input climbs the same ladder to the same rung.
	ch2, jit2, err := NewCholeskyJittered(a, 1e-10, 12)
	if err != nil {
		t.Fatal(err)
	}
	if jit2 != jit {
		t.Fatalf("ladder not deterministic: %v vs %v", jit2, jit)
	}
	retries2 := obs.GetCounter("linalg.chol.jitter_retries").Value() - before - retries
	if retries2 != retries {
		t.Fatalf("retry count not deterministic: %d vs %d", retries2, retries)
	}
	if d := ch.L.MaxAbsDiff(ch2.L); d != 0 {
		t.Fatalf("jittered factors differ by %g", d)
	}
}

func BenchmarkCholeskyBlockedInternal(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		a := spdMatrix(n)
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := newCholeskyBlocked(a); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scalar/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := newCholeskyScalar(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
