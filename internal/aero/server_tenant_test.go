package aero

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"osprey/internal/globus"
)

// authedRig is an HTTP server with auth enabled and one token per tenant.
type authedRig struct {
	srv    *httptest.Server
	auth   *globus.Auth
	tokens map[string]*globus.Token
	aero   *Server
	store  *Store
}

func newAuthedRig(t *testing.T, tenants ...string) *authedRig {
	t.Helper()
	store := NewStore()
	s := NewServer(store)
	auth := globus.NewAuth()
	s.SetAuth(auth)
	rig := &authedRig{auth: auth, tokens: map[string]*globus.Token{}, aero: s, store: store}
	for _, tn := range tenants {
		rig.tokens[tn] = auth.Issue(tn, 0, globus.ScopeAero)
	}
	rig.srv = httptest.NewServer(s)
	t.Cleanup(rig.srv.Close)
	return rig
}

// request sends a JSON body with an optional bearer token and returns the
// response (caller closes nothing; body is drained into out).
func (rig *authedRig) request(t *testing.T, method, path, token string, body, out any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, rig.srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestAuthMatrix(t *testing.T) {
	rig := newAuthedRig(t, "alice")
	wrongScope := rig.auth.Issue("carol", 0, globus.ScopeTransfer)
	expired := &globus.Token{ID: "tok-expired", Identity: "dave",
		Scopes: map[globus.Scope]bool{globus.ScopeAero: true},
		Expiry: time.Now().Add(-time.Minute)}
	if err := rig.auth.RegisterToken(expired); err != nil {
		t.Fatal(err)
	}
	revoked := rig.auth.Issue("erin", 0, globus.ScopeAero)
	rig.auth.Revoke(revoked.ID)

	cases := []struct {
		name  string
		token string
		want  int
	}{
		{"valid", rig.tokens["alice"].ID, http.StatusCreated},
		{"missing", "", http.StatusUnauthorized},
		{"unknown", "tok-bogus", http.StatusUnauthorized},
		{"expired", expired.ID, http.StatusUnauthorized},
		{"revoked", revoked.ID, http.StatusUnauthorized},
		{"wrong-scope", wrongScope.ID, http.StatusForbidden},
	}
	for _, tc := range cases {
		resp := rig.request(t, http.MethodPost, "/data", tc.token,
			map[string]string{"name": "probe-" + tc.name}, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s token: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	// Open routes need no credential even with auth on.
	for _, path := range []string{"/healthz", "/metrics", "/trace"} {
		resp := rig.request(t, http.MethodGet, path, "", nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("open route %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestTenantIsolationEndToEnd(t *testing.T) {
	rig := newAuthedRig(t, "alice", "bob")
	var rec DataRecord
	resp := rig.request(t, http.MethodPost, "/data", rig.tokens["alice"].ID,
		map[string]string{"name": "private"}, &rec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if !strings.HasPrefix(rec.UUID, "alice:") {
		t.Fatalf("UUID %s not in alice's namespace", rec.UUID)
	}
	// Bob's token cannot see it; Alice's can.
	if resp := rig.request(t, http.MethodGet, "/data/"+rec.UUID, rig.tokens["bob"].ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant GET = %d, want 404", resp.StatusCode)
	}
	if resp := rig.request(t, http.MethodGet, "/data/"+rec.UUID, rig.tokens["alice"].ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("own GET = %d, want 200", resp.StatusCode)
	}
	// The Client type plumbs the token the same way.
	c := NewClient(rig.srv.URL)
	c.Token = rig.tokens["bob"].ID
	if _, err := c.GetData(rec.UUID); err == nil {
		t.Fatal("client cross-tenant read succeeded")
	}
	c.Token = rig.tokens["alice"].ID
	if _, err := c.GetData(rec.UUID); err != nil {
		t.Fatalf("client own read: %v", err)
	}
}

func TestOversizedBodyRejected413(t *testing.T) {
	// Regression: an oversized ingest body must be refused with 413, not
	// buffered into memory. Exercised on every POST route.
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	d, _ := store.CreateData("target", "")

	huge := strings.Repeat("x", maxBodyBytes+1024)
	body := fmt.Sprintf("{\"checksum\": %q}", huge)
	for _, path := range []string{"/data", "/data/" + d.UUID + "/versions", "/flows", "/provenance"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: %d, want 413", path, resp.StatusCode)
		}
	}
}

func TestTrailingJSONRejected(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/data", "application/json",
		strings.NewReader(`{"name":"a"}{"name":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing JSON: %d, want 400", resp.StatusCode)
	}
	// The first value must not have been applied either.
	if recs, _ := store.ListData(); len(recs) != 0 {
		t.Fatalf("trailing-data request partially applied: %d records", len(recs))
	}
}

func TestQuotaEndToEnd429(t *testing.T) {
	rig := newAuthedRig(t, "noisy", "quiet")
	clk := newFakeClock()
	q := NewQuotas()
	q.SetNow(clk.now)
	q.SetLimit(QuotaIngest, QuotaLimit{Rate: 1, Burst: 2})
	rig.aero.SetQuotas(q)

	post := func(token string) *http.Response {
		return rig.request(t, http.MethodPost, "/data", token,
			map[string]string{"name": "n"}, nil)
	}
	tok := rig.tokens["noisy"].ID
	for i := 0; i < 2; i++ {
		if resp := post(tok); resp.StatusCode != http.StatusCreated {
			t.Fatalf("burst create %d: %d", i, resp.StatusCode)
		}
	}
	resp := post(tok)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	// The quiet tenant is unaffected, and reads are never metered.
	if resp := post(rig.tokens["quiet"].ID); resp.StatusCode != http.StatusCreated {
		t.Fatalf("quiet tenant throttled: %d", resp.StatusCode)
	}
	if resp := rig.request(t, http.MethodGet, "/data", tok, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("read metered: %d", resp.StatusCode)
	}
	// Honoring Retry-After admits the request.
	clk.advance(time.Duration(ra) * time.Second)
	if resp := post(tok); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post-backoff create: %d", resp.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses frames off an event-stream body until fn returns false.
func readSSE(t *testing.T, sc *bufio.Scanner, fn func(sseEvent) bool) {
	t.Helper()
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				if !fn(ev) {
					return
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
	}
	t.Fatal("SSE stream ended early")
}

func TestWatchSSEStreamsUpdates(t *testing.T) {
	rig := newAuthedRig(t, "alice")
	c := NewClient(rig.srv.URL)
	c.Token = rig.tokens["alice"].ID
	rec, err := c.CreateData("feed", "")
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, rig.srv.URL+"/watch?uuid="+rec.UUID, nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Authorization", "Bearer "+c.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	// The ready frame arrives before any update can be missed.
	readSSE(t, sc, func(ev sseEvent) bool {
		if ev.event != "ready" {
			t.Fatalf("first frame = %q", ev.event)
		}
		return false
	})
	for i := 0; i < 3; i++ {
		if _, err := c.AppendVersion(rec.UUID, Version{Checksum: fmt.Sprintf("c%d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []sseUpdate
	readSSE(t, sc, func(ev sseEvent) bool {
		if ev.event != "update" {
			return true // skip keep-alives
		}
		var u sseUpdate
		if err := json.Unmarshal([]byte(ev.data), &u); err != nil {
			t.Fatal(err)
		}
		got = append(got, u)
		return len(got) < 3
	})
	for i, u := range got {
		if u.UUID != rec.UUID || u.Version != i+1 || u.Dropped != 0 {
			t.Fatalf("update %d = %+v", i, u)
		}
		if i > 0 && got[i].Seq <= got[i-1].Seq {
			t.Fatalf("seq not increasing: %+v", got)
		}
	}
}

func TestWatchSSETenantScoped(t *testing.T) {
	rig := newAuthedRig(t, "alice", "bob")
	ca := NewClient(rig.srv.URL)
	ca.Token = rig.tokens["alice"].ID
	cb := NewClient(rig.srv.URL)
	cb.Token = rig.tokens["bob"].ID
	ar, _ := ca.CreateData("a", "")
	br, _ := cb.CreateData("b", "")

	req, _ := http.NewRequest(http.MethodGet, rig.srv.URL+"/watch", nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Authorization", "Bearer "+ca.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	readSSE(t, sc, func(ev sseEvent) bool { return ev.event != "ready" })

	if _, err := cb.AppendVersion(br.UUID, Version{Checksum: "bob1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.AppendVersion(ar.UUID, Version{Checksum: "alice1"}); err != nil {
		t.Fatal(err)
	}
	// The first (and only) update Alice's stream carries is her own:
	// Bob's earlier publish never crossed the namespace.
	readSSE(t, sc, func(ev sseEvent) bool {
		if ev.event != "update" {
			return true
		}
		var u sseUpdate
		if err := json.Unmarshal([]byte(ev.data), &u); err != nil {
			t.Fatal(err)
		}
		if u.UUID != ar.UUID {
			t.Fatalf("alice's stream carried %s", u.UUID)
		}
		return false
	})
}

func TestWatchLongPollSession(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	d, _ := store.CreateData("polled", "")

	poll := func(params string) (events []DataUpdate, dropped int64) {
		resp, err := http.Get(srv.URL + "/watch?" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Events  []DataUpdate `json:"events"`
			Dropped int64        `json:"dropped"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Events, out.Dropped
	}

	// Session poll: an empty first poll registers the subscription, so the
	// append between polls is captured, not lost.
	if events, _ := poll("sub=s1&timeout=50ms"); len(events) != 0 {
		t.Fatalf("first poll returned %d events", len(events))
	}
	if _, err := store.AppendVersion(d.UUID, Version{Checksum: "c1"}); err != nil {
		t.Fatal(err)
	}
	events, _ := poll("sub=s1&timeout=1s")
	if len(events) != 1 || events[0].Version != 1 {
		t.Fatalf("session poll = %+v", events)
	}
	// Delivered exactly once: the next poll is empty again.
	if events, _ := poll("sub=s1&timeout=50ms"); len(events) != 0 {
		t.Fatalf("event delivered twice: %+v", events)
	}
}
