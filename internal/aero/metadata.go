// Package aero implements the Automated Event-based Research Orchestration
// platform of §2: a central metadata service plus distributed, user-owned
// storage and compute ("bring your own storage and compute"). Ingestion
// flows poll external data sources, validate/transform updates on a compute
// endpoint, store raw and derived data on storage endpoints, and version
// everything (checksum, timestamp, version number) in the metadata store.
// Analysis flows register data UUIDs as inputs and are triggered when those
// inputs update, with either any- or all-inputs policies. Data never passes
// through the AERO server — only metadata does.
package aero

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"osprey/internal/wal"
)

// Version records one immutable version of a data item.
type Version struct {
	Num       int       `json:"num"`
	Checksum  string    `json:"checksum"`
	Timestamp time.Time `json:"timestamp"`
	Size      int       `json:"size"`
	// Storage coordinates (endpoint/collection/path) of the bytes. The
	// metadata store never holds the data itself.
	Endpoint   string `json:"endpoint"`
	Collection string `json:"collection"`
	Path       string `json:"path"`
}

// DataRecord is the metadata identity of a data item across its versions.
type DataRecord struct {
	UUID      string    `json:"uuid"`
	Name      string    `json:"name"`
	SourceURL string    `json:"source_url,omitempty"` // set for ingested raw data
	Versions  []Version `json:"versions"`
}

// Latest returns the newest version, or nil if none exist.
func (d *DataRecord) Latest() *Version {
	if len(d.Versions) == 0 {
		return nil
	}
	return &d.Versions[len(d.Versions)-1]
}

// FlowKind distinguishes ingestion from analysis flows.
type FlowKind int

const (
	// IngestionKind flows poll an external source.
	IngestionKind FlowKind = iota
	// AnalysisKind flows consume registered data UUIDs.
	AnalysisKind
)

func (k FlowKind) String() string {
	if k == IngestionKind {
		return "ingestion"
	}
	return "analysis"
}

// FlowRecord is the metadata registration of a flow.
type FlowRecord struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Kind        FlowKind  `json:"kind"`
	InputUUIDs  []string  `json:"input_uuids,omitempty"`
	OutputUUIDs []string  `json:"output_uuids"`
	Runs        int       `json:"runs"`
	LastRun     time.Time `json:"last_run,omitempty"`
}

// ProvenanceEdge records that an output version was derived from an input
// version by a flow run.
type ProvenanceEdge struct {
	FlowID        string    `json:"flow_id"`
	InputUUID     string    `json:"input_uuid"`
	InputVersion  int       `json:"input_version"`
	OutputUUID    string    `json:"output_uuid"`
	OutputVersion int       `json:"output_version"`
	Timestamp     time.Time `json:"timestamp"`
}

// Metadata is the API surface of the AERO metadata service. It is
// implemented by the in-process Store and by the HTTP Client, so platforms
// can run against a local or remote server interchangeably.
type Metadata interface {
	CreateData(name, sourceURL string) (*DataRecord, error)
	GetData(uuid string) (*DataRecord, error)
	AppendVersion(uuid string, v Version) (*DataRecord, error)
	ListData() ([]*DataRecord, error)

	CreateFlow(rec FlowRecord) (*FlowRecord, error)
	GetFlow(id string) (*FlowRecord, error)
	ListFlows() ([]*FlowRecord, error)
	RecordRun(flowID string, at time.Time) error

	AddProvenance(edge ProvenanceEdge) error
	Provenance(uuid string) ([]ProvenanceEdge, error)
}

// ErrNotFound is returned for unknown UUIDs and flow IDs.
var ErrNotFound = errors.New("aero: not found")

// Store is the in-process metadata database. It is safe for concurrent use
// and serializable to JSON for persistence. Every mutation flows through a
// typed mutation record (see durable.go); when a wal.Backend is attached
// the record is persisted before it is applied, and crash recovery replays
// the same records through the same transition function.
type Store struct {
	mu      sync.RWMutex
	next    int
	data    map[string]*DataRecord
	flows   map[string]*FlowRecord
	prov    []ProvenanceEdge
	backend wal.Backend // nil = in-memory only (the default)
	wal     *wal.Log    // set by OpenStore; enables Compact
}

// NewStore creates an empty, in-memory metadata store.
func NewStore() *Store {
	return &Store{data: map[string]*DataRecord{}, flows: map[string]*FlowRecord{}}
}

// idFor renders the ID a create op with counter value seq is assigned.
func idFor(prefix string, seq int) string {
	return fmt.Sprintf("%s-%08d", prefix, seq)
}

// CreateData registers a new data identity and returns its record.
func (s *Store) CreateData(name, sourceURL string) (*DataRecord, error) {
	if name == "" {
		return nil, errors.New("aero: data name required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.next + 1
	m := &mutation{Op: opCreateData, Seq: seq, UUID: idFor("data", seq), Name: name, SourceURL: sourceURL}
	if err := s.commitLocked(m); err != nil {
		return nil, err
	}
	return cloneData(s.data[m.UUID]), nil
}

// GetData returns a copy of the record for uuid.
func (s *Store) GetData(uuid string) (*DataRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.data[uuid]
	if !ok {
		return nil, fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	return cloneData(rec), nil
}

// AppendVersion adds a version with the next version number. The Num field
// of v is assigned by the store.
func (s *Store) AppendVersion(uuid string, v Version) (*DataRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.data[uuid]
	if !ok {
		return nil, fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	v.Num = len(rec.Versions) + 1
	if v.Timestamp.IsZero() {
		v.Timestamp = time.Now()
	}
	if err := s.commitLocked(&mutation{Op: opAppendVersion, UUID: uuid, Version: &v}); err != nil {
		return nil, err
	}
	return cloneData(rec), nil
}

// ListData returns copies of all records sorted by UUID.
func (s *Store) ListData() ([]*DataRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*DataRecord, 0, len(s.data))
	for _, rec := range s.data {
		out = append(out, cloneData(rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UUID < out[j].UUID })
	return out, nil
}

// CreateFlow registers a flow; the ID is assigned by the store.
func (s *Store) CreateFlow(rec FlowRecord) (*FlowRecord, error) {
	if rec.Name == "" {
		return nil, errors.New("aero: flow name required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.next + 1
	rec.ID = idFor("flow", seq)
	if err := s.commitLocked(&mutation{Op: opCreateFlow, Seq: seq, Flow: &rec}); err != nil {
		return nil, err
	}
	out := rec
	return &out, nil
}

// GetFlow returns a copy of the flow record.
func (s *Store) GetFlow(id string) (*FlowRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.flows[id]
	if !ok {
		return nil, fmt.Errorf("%w: flow %s", ErrNotFound, id)
	}
	cp := *f
	return &cp, nil
}

// ListFlows returns copies of all flows sorted by ID.
func (s *Store) ListFlows() ([]*FlowRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*FlowRecord, 0, len(s.flows))
	for _, f := range s.flows {
		cp := *f
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RecordRun increments a flow's run counter.
func (s *Store) RecordRun(flowID string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.flows[flowID]; !ok {
		return fmt.Errorf("%w: flow %s", ErrNotFound, flowID)
	}
	return s.commitLocked(&mutation{Op: opRecordRun, FlowID: flowID, At: at})
}

// AddProvenance appends a derivation edge.
func (s *Store) AddProvenance(edge ProvenanceEdge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked(&mutation{Op: opAddProvenance, Edge: &edge})
}

// Provenance returns the edges touching uuid (as input or output).
func (s *Store) Provenance(uuid string) ([]ProvenanceEdge, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ProvenanceEdge
	for _, e := range s.prov {
		if e.InputUUID == uuid || e.OutputUUID == uuid {
			out = append(out, e)
		}
	}
	return out, nil
}

// Lineage walks provenance edges backward from uuid, returning every
// ancestor data UUID (deduplicated, breadth-first).
func (s *Store) Lineage(uuid string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{uuid: true}
	queue := []string{uuid}
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range s.prov {
			if e.OutputUUID == cur && !seen[e.InputUUID] {
				seen[e.InputUUID] = true
				out = append(out, e.InputUUID)
				queue = append(queue, e.InputUUID)
			}
		}
	}
	return out, nil
}

type storeSnapshot struct {
	Next  int              `json:"next"`
	Data  []*DataRecord    `json:"data"`
	Flows []*FlowRecord    `json:"flows"`
	Prov  []ProvenanceEdge `json:"provenance"`
}

// snapshotLocked captures the full store state. The caller holds s.mu (at
// least for reading).
func (s *Store) snapshotLocked() storeSnapshot {
	snap := storeSnapshot{Next: s.next, Prov: append([]ProvenanceEdge(nil), s.prov...)}
	for _, d := range s.data {
		snap.Data = append(snap.Data, cloneData(d))
	}
	for _, f := range s.flows {
		cp := *f
		snap.Flows = append(snap.Flows, &cp)
	}
	sort.Slice(snap.Data, func(i, j int) bool { return snap.Data[i].UUID < snap.Data[j].UUID })
	sort.Slice(snap.Flows, func(i, j int) bool { return snap.Flows[i].ID < snap.Flows[j].ID })
	return snap
}

// Save serializes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := s.snapshotLocked()
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the store contents from a JSON snapshot.
func (s *Store) Load(r io.Reader) error {
	var snap storeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("aero: load: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = snap.Next
	s.data = map[string]*DataRecord{}
	for _, d := range snap.Data {
		s.data[d.UUID] = cloneData(d)
	}
	s.flows = map[string]*FlowRecord{}
	for _, f := range snap.Flows {
		cp := *f
		s.flows[f.ID] = &cp
	}
	s.prov = append([]ProvenanceEdge(nil), snap.Prov...)
	return nil
}

func cloneData(d *DataRecord) *DataRecord {
	cp := *d
	cp.Versions = append([]Version(nil), d.Versions...)
	return &cp
}
