// Package aero implements the Automated Event-based Research Orchestration
// platform of §2: a central metadata service plus distributed, user-owned
// storage and compute ("bring your own storage and compute"). Ingestion
// flows poll external data sources, validate/transform updates on a compute
// endpoint, store raw and derived data on storage endpoints, and version
// everything (checksum, timestamp, version number) in the metadata store.
// Analysis flows register data UUIDs as inputs and are triggered when those
// inputs update, with either any- or all-inputs policies. Data never passes
// through the AERO server — only metadata does.
package aero

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"osprey/internal/wal"
)

// Version records one immutable version of a data item.
type Version struct {
	Num       int       `json:"num"`
	Checksum  string    `json:"checksum"`
	Timestamp time.Time `json:"timestamp"`
	Size      int       `json:"size"`
	// Storage coordinates (endpoint/collection/path) of the bytes. The
	// metadata store never holds the data itself.
	Endpoint   string `json:"endpoint"`
	Collection string `json:"collection"`
	Path       string `json:"path"`
}

// DataRecord is the metadata identity of a data item across its versions.
type DataRecord struct {
	UUID      string    `json:"uuid"`
	Name      string    `json:"name"`
	SourceURL string    `json:"source_url,omitempty"` // set for ingested raw data
	Versions  []Version `json:"versions"`
}

// Latest returns the newest version, or nil if none exist.
func (d *DataRecord) Latest() *Version {
	if len(d.Versions) == 0 {
		return nil
	}
	return &d.Versions[len(d.Versions)-1]
}

// FlowKind distinguishes ingestion from analysis flows.
type FlowKind int

const (
	// IngestionKind flows poll an external source.
	IngestionKind FlowKind = iota
	// AnalysisKind flows consume registered data UUIDs.
	AnalysisKind
)

func (k FlowKind) String() string {
	if k == IngestionKind {
		return "ingestion"
	}
	return "analysis"
}

// FlowRecord is the metadata registration of a flow.
type FlowRecord struct {
	ID          string    `json:"id"`
	Name        string    `json:"name"`
	Kind        FlowKind  `json:"kind"`
	InputUUIDs  []string  `json:"input_uuids,omitempty"`
	OutputUUIDs []string  `json:"output_uuids"`
	Runs        int       `json:"runs"`
	LastRun     time.Time `json:"last_run,omitempty"`
}

// ProvenanceEdge records that an output version was derived from an input
// version by a flow run.
type ProvenanceEdge struct {
	FlowID        string    `json:"flow_id"`
	InputUUID     string    `json:"input_uuid"`
	InputVersion  int       `json:"input_version"`
	OutputUUID    string    `json:"output_uuid"`
	OutputVersion int       `json:"output_version"`
	Timestamp     time.Time `json:"timestamp"`
}

// Metadata is the API surface of the AERO metadata service. It is
// implemented by the in-process Store and by the HTTP Client, so platforms
// can run against a local or remote server interchangeably.
type Metadata interface {
	CreateData(name, sourceURL string) (*DataRecord, error)
	GetData(uuid string) (*DataRecord, error)
	AppendVersion(uuid string, v Version) (*DataRecord, error)
	ListData() ([]*DataRecord, error)

	CreateFlow(rec FlowRecord) (*FlowRecord, error)
	GetFlow(id string) (*FlowRecord, error)
	ListFlows() ([]*FlowRecord, error)
	RecordRun(flowID string, at time.Time) error

	AddProvenance(edge ProvenanceEdge) error
	Provenance(uuid string) ([]ProvenanceEdge, error)
}

// ErrNotFound is returned for unknown UUIDs and flow IDs.
var ErrNotFound = errors.New("aero: not found")

// Store is the in-process metadata database. It is safe for concurrent use
// and serializable to JSON for persistence. Every mutation flows through a
// typed mutation record (see durable.go); when a wal.Backend is attached
// the record is persisted before it is applied, and crash recovery replays
// the same records through the same transition function.
type Store struct {
	mu      sync.RWMutex
	next    int            // legacy-tenant ("") ID counter
	nextT   map[string]int // per-tenant ID counters (see tenant.go)
	data    map[string]*DataRecord
	flows   map[string]*FlowRecord
	prov    []ProvenanceEdge
	backend wal.Backend // nil = in-memory only (the default)
	wal     *wal.Log    // set by OpenStore; enables Compact
	hub     *watchHub   // streaming watch fan-out, fed by live AppendVersion
}

// NewStore creates an empty, in-memory metadata store.
func NewStore() *Store {
	return &Store{
		data:  map[string]*DataRecord{},
		flows: map[string]*FlowRecord{},
		nextT: map[string]int{},
		hub:   newWatchHub(),
	}
}

// idFor renders the ID a create op with counter value seq is assigned.
func idFor(prefix string, seq int) string {
	return fmt.Sprintf("%s-%08d", prefix, seq)
}

// The public Store methods are the legacy-tenant ("") view of the
// tenant-parameterized core in tenant.go — the single place namespace
// isolation is enforced. They keep their historical signatures and
// behavior exactly.

// CreateData registers a new data identity and returns its record.
func (s *Store) CreateData(name, sourceURL string) (*DataRecord, error) {
	return s.createData("", name, sourceURL)
}

// GetData returns a copy of the record for uuid.
func (s *Store) GetData(uuid string) (*DataRecord, error) {
	return s.getData("", uuid)
}

// AppendVersion adds a version with the next version number. The Num field
// of v is assigned by the store.
func (s *Store) AppendVersion(uuid string, v Version) (*DataRecord, error) {
	return s.appendVersion("", uuid, v)
}

// ListData returns copies of all records sorted by UUID.
func (s *Store) ListData() ([]*DataRecord, error) {
	return s.listData("")
}

// CreateFlow registers a flow; the ID is assigned by the store.
func (s *Store) CreateFlow(rec FlowRecord) (*FlowRecord, error) {
	return s.createFlow("", rec)
}

// GetFlow returns a copy of the flow record.
func (s *Store) GetFlow(id string) (*FlowRecord, error) {
	return s.getFlow("", id)
}

// ListFlows returns copies of all flows sorted by ID.
func (s *Store) ListFlows() ([]*FlowRecord, error) {
	return s.listFlows("")
}

// RecordRun increments a flow's run counter.
func (s *Store) RecordRun(flowID string, at time.Time) error {
	return s.recordRun("", flowID, at)
}

// AddProvenance appends a derivation edge.
func (s *Store) AddProvenance(edge ProvenanceEdge) error {
	return s.addProvenance("", edge)
}

// Provenance returns the edges touching uuid (as input or output).
func (s *Store) Provenance(uuid string) ([]ProvenanceEdge, error) {
	return s.provenance("", uuid)
}

// Lineage walks provenance edges backward from uuid, returning every
// ancestor data UUID (deduplicated, breadth-first).
func (s *Store) Lineage(uuid string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{uuid: true}
	queue := []string{uuid}
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range s.prov {
			if e.OutputUUID == cur && !seen[e.InputUUID] {
				seen[e.InputUUID] = true
				out = append(out, e.InputUUID)
				queue = append(queue, e.InputUUID)
			}
		}
	}
	return out, nil
}

type storeSnapshot struct {
	Next int `json:"next"`
	// NextT holds per-tenant ID counters; omitted while empty so legacy
	// single-tenant snapshots stay byte-identical.
	NextT map[string]int   `json:"next_tenants,omitempty"`
	Data  []*DataRecord    `json:"data"`
	Flows []*FlowRecord    `json:"flows"`
	Prov  []ProvenanceEdge `json:"provenance"`
}

// snapshotLocked captures the full store state. The caller holds s.mu (at
// least for reading).
func (s *Store) snapshotLocked() storeSnapshot {
	snap := storeSnapshot{Next: s.next, Prov: append([]ProvenanceEdge(nil), s.prov...)}
	if len(s.nextT) > 0 {
		snap.NextT = make(map[string]int, len(s.nextT))
		for t, n := range s.nextT {
			snap.NextT[t] = n
		}
	}
	for _, d := range s.data {
		snap.Data = append(snap.Data, cloneData(d))
	}
	for _, f := range s.flows {
		cp := *f
		snap.Flows = append(snap.Flows, &cp)
	}
	sort.Slice(snap.Data, func(i, j int) bool { return snap.Data[i].UUID < snap.Data[j].UUID })
	sort.Slice(snap.Flows, func(i, j int) bool { return snap.Flows[i].ID < snap.Flows[j].ID })
	return snap
}

// Save serializes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := s.snapshotLocked()
	s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load replaces the store contents from a JSON snapshot.
func (s *Store) Load(r io.Reader) error {
	var snap storeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("aero: load: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = snap.Next
	s.nextT = map[string]int{}
	for t, n := range snap.NextT {
		s.nextT[t] = n
	}
	s.data = map[string]*DataRecord{}
	for _, d := range snap.Data {
		s.data[d.UUID] = cloneData(d)
	}
	s.flows = map[string]*FlowRecord{}
	for _, f := range snap.Flows {
		cp := *f
		s.flows[f.ID] = &cp
	}
	s.prov = append([]ProvenanceEdge(nil), snap.Prov...)
	return nil
}

func cloneData(d *DataRecord) *DataRecord {
	cp := *d
	cp.Versions = append([]Version(nil), d.Versions...)
	return &cp
}
