package aero

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"osprey/internal/wal"
)

func openStoreAt(t *testing.T, dir string) *Store {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{Name: "wal.aerotest", Policy: wal.SyncNever})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s, err := OpenStore(l)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

// saveJSON snapshots a store through its public Save for comparison.
func saveJSON(t *testing.T, s *Store) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// populate drives every mutation kind through the store.
func populate(t *testing.T, s *Store) (dataUUID, flowID string) {
	t.Helper()
	d, err := s.CreateData("ww/raw", "http://example/ww.csv")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.CreateData("ww/clean", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion(d.UUID, Version{Checksum: "aa", Size: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendVersion(d.UUID, Version{Checksum: "bb", Size: 11}); err != nil {
		t.Fatal(err)
	}
	f, err := s.CreateFlow(FlowRecord{Name: "ingest-ww", Kind: IngestionKind, OutputUUIDs: []string{d.UUID, out.UUID}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordRun(f.ID, time.Unix(1700000000, 0).UTC()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProvenance(ProvenanceEdge{FlowID: f.ID, InputUUID: d.UUID, InputVersion: 2, OutputUUID: out.UUID, OutputVersion: 1}); err != nil {
		t.Fatal(err)
	}
	return d.UUID, f.ID
}

func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStoreAt(t, dir)
	dataUUID, flowID := populate(t, s)
	want := saveJSON(t, s)
	// Crash: close only the log (no clean shutdown logic), then recover.
	if err := s.wal.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStoreAt(t, dir)
	if got := saveJSON(t, s2); got != want {
		t.Fatalf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The ID counter continues — no UUID reuse after recovery.
	d, err := s2.CreateData("ww/extra", "")
	if err != nil {
		t.Fatal(err)
	}
	if d.UUID != "data-00000004" {
		t.Fatalf("post-recovery UUID = %s, want data-00000004", d.UUID)
	}
	if _, err := s2.GetData(dataUUID); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.GetFlow(flowID); err != nil {
		t.Fatal(err)
	}
	s2.wal.Close()
}

func TestStoreCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStoreAt(t, dir)
	populate(t, s)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Mutations after the snapshot replay on top of it.
	if _, err := s.CreateData("ww/post-snap", ""); err != nil {
		t.Fatal(err)
	}
	want := saveJSON(t, s)
	s.wal.Close()

	s2 := openStoreAt(t, dir)
	defer s2.wal.Close()
	if got := saveJSON(t, s2); got != want {
		t.Fatalf("recovered state differs after compaction:\n got %s\nwant %s", got, want)
	}
}

func TestEventRingBuffer(t *testing.T) {
	p, err := NewPlatform(Config{Meta: NewStore(), Identity: "alice", EventBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.logEvent("test", "flow", fmt.Sprintf("e%d", i))
	}
	evs := p.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("e%d", 6+i); ev.Detail != want {
			t.Fatalf("event %d = %q, want %q (oldest-first, newest retained)", i, ev.Detail, want)
		}
	}
	if got := p.EventsDropped(); got != 6 {
		t.Fatalf("EventsDropped = %d, want 6", got)
	}
}

// TestRegistrationAdoption re-registers the same flows against a shared
// store — the restart-with-recovered-state path — and expects the existing
// identities to be adopted instead of duplicated.
func TestRegistrationAdoption(t *testing.T) {
	store := NewStore()
	src := &mutableSource{}
	src.set("day,conc\n1,5\n")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()

	register := func(rig *testRig) (*IngestionFlow, *AnalysisFlow) {
		t.Helper()
		tid, err := rig.compute.RegisterFunction(rig.token.ID, "upper", func(ctx context.Context, b []byte) ([]byte, error) {
			return bytes.ToUpper(b), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		st := StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"}
		ing, err := rig.platform.RegisterIngestion(IngestionSpec{
			Name: "plant", URL: srv.URL, Compute: rig.compute, TransformID: tid, Storage: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		aid, err := rig.compute.RegisterFunction(rig.token.ID, "rt", func(ctx context.Context, b []byte) ([]byte, error) {
			return EncodeOutputs(map[string][]byte{"rt": []byte("1.0")})
		})
		if err != nil {
			t.Fatal(err)
		}
		an, err := rig.platform.RegisterAnalysis(AnalysisSpec{
			Name: "plant-rt", InputUUIDs: []string{ing.OutputUUID},
			Compute: rig.compute, AnalyzeID: aid,
			OutputNames: []string{"rt"}, Storage: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ing, an
	}

	ing1, an1 := register(newRig(t, store))
	flows, _ := store.ListFlows()
	if len(flows) != 2 {
		t.Fatalf("first registration created %d flows, want 2", len(flows))
	}

	// "Restart": a fresh platform over the same (recovered) store.
	ing2, an2 := register(newRig(t, store))
	if ing2.ID != ing1.ID || ing2.RawUUID != ing1.RawUUID || ing2.OutputUUID != ing1.OutputUUID {
		t.Fatalf("ingestion not adopted: %+v vs %+v", ing2, ing1)
	}
	if an2.ID != an1.ID || an2.OutputUUIDs[0] != an1.OutputUUIDs[0] {
		t.Fatalf("analysis not adopted: %+v vs %+v", an2, an1)
	}
	flows, _ = store.ListFlows()
	if len(flows) != 2 {
		t.Fatalf("re-registration duplicated flows: %d, want 2", len(flows))
	}
	data, _ := store.ListData()
	if len(data) != 3 {
		t.Fatalf("re-registration duplicated data identities: %d, want 3", len(data))
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStoreAt(t, dir)
	populate(t, s)
	want := saveJSON(t, s)
	// This last mutation gets torn and must disappear on recovery.
	if _, err := s.CreateData("ww/torn", ""); err != nil {
		t.Fatal(err)
	}
	s.wal.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	s2 := openStoreAt(t, dir)
	defer s2.wal.Close()
	if got := saveJSON(t, s2); got != want {
		t.Fatalf("torn-tail recovery differs:\n got %s\nwant %s", got, want)
	}
}
