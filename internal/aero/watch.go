package aero

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DataUpdate is delivered to subscribers when a data identity gains a new
// version — the push-style counterpart of registering an analysis flow,
// used by dashboards and external notification hooks.
type DataUpdate struct {
	UUID    string
	Version int
	Time    time.Time
}

// subscriber holds one watch channel.
type subscriber struct {
	uuid string // empty = all data
	ch   chan DataUpdate
}

// watchHub fans data-update events out to subscribers. Delivery is
// non-blocking: a subscriber that does not drain its channel misses events
// (and the drop is counted) rather than stalling the platform.
type watchHub struct {
	mu      sync.Mutex
	subs    map[int]*subscriber
	next    int
	dropped int
}

func newWatchHub() *watchHub { return &watchHub{subs: map[int]*subscriber{}} }

func (h *watchHub) subscribe(uuid string, buffer int) (int, <-chan DataUpdate) {
	if buffer <= 0 {
		buffer = 16
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.next++
	s := &subscriber{uuid: uuid, ch: make(chan DataUpdate, buffer)}
	h.subs[h.next] = s
	mWatchSubscribers.Inc()
	return h.next, s.ch
}

func (h *watchHub) unsubscribe(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s, ok := h.subs[id]; ok {
		close(s.ch)
		delete(h.subs, id)
		mWatchSubscribers.Dec()
	}
}

func (h *watchHub) publish(u DataUpdate) {
	mWatchPublished.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		if s.uuid != "" && s.uuid != u.UUID {
			continue
		}
		select {
		case s.ch <- u:
		default:
			h.dropped++
			mWatchDropped.Inc()
		}
	}
}

func (h *watchHub) droppedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Subscribe returns a channel receiving an event for every new version of
// uuid (empty uuid = every data identity). Call the returned cancel
// function to release the subscription; the channel is closed on cancel.
func (p *Platform) Subscribe(uuid string, buffer int) (<-chan DataUpdate, func()) {
	id, ch := p.watch.subscribe(uuid, buffer)
	return ch, func() { p.watch.unsubscribe(id) }
}

// DroppedUpdates reports how many watch events were discarded because a
// subscriber's buffer was full.
func (p *Platform) DroppedUpdates() int { return p.watch.droppedCount() }

// RetentionPolicy bounds per-identity version history.
type RetentionPolicy struct {
	// KeepLast retains only the most recent n versions' storage objects
	// (metadata rows are kept; their storage coordinates are cleared).
	KeepLast int
}

// ErrBadPolicy is returned for non-positive retention windows.
var ErrBadPolicy = errors.New("aero: retention policy must keep at least one version")

// PruneVersions applies a retention policy to one data identity: storage
// objects older than the window are deleted from the endpoint and their
// metadata marked pruned. It returns the number of storage objects
// removed. Provenance and version numbering are untouched — lineage is
// never rewritten, only bulk data reclaimed.
func (p *Platform) PruneVersions(uuid string, policy RetentionPolicy) (int, error) {
	if policy.KeepLast < 1 {
		return 0, ErrBadPolicy
	}
	rec, err := p.Meta.GetData(uuid)
	if err != nil {
		return 0, err
	}
	cut := len(rec.Versions) - policy.KeepLast
	if cut <= 0 {
		return 0, nil
	}
	pruner, ok := p.Meta.(versionPruner)
	if !ok {
		return 0, fmt.Errorf("aero: metadata backend does not support pruning")
	}
	removed := 0
	for i := 0; i < cut; i++ {
		v := rec.Versions[i]
		if v.Path == "" {
			continue // already pruned
		}
		ep := p.endpointByName(v.Endpoint)
		if ep != nil {
			if err := ep.Delete(v.Collection, v.Path, p.identity); err == nil {
				removed++
			}
		}
		if err := pruner.MarkPruned(uuid, v.Num); err != nil {
			return removed, err
		}
	}
	p.logEvent("prune", uuid, fmt.Sprintf("removed %d of %d versions", removed, len(rec.Versions)))
	return removed, nil
}

// versionPruner is the optional metadata capability behind PruneVersions.
type versionPruner interface {
	MarkPruned(uuid string, versionNum int) error
}

// MarkPruned clears the storage coordinates of one version, recording that
// its bytes were reclaimed.
func (s *Store) MarkPruned(uuid string, versionNum int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.data[uuid]
	if !ok {
		return fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	for i := range rec.Versions {
		if rec.Versions[i].Num == versionNum {
			rec.Versions[i].Endpoint = ""
			rec.Versions[i].Collection = ""
			rec.Versions[i].Path = ""
			return nil
		}
	}
	return fmt.Errorf("%w: version %d of %s", ErrNotFound, versionNum, uuid)
}

// RegisterEndpoint makes a storage endpoint resolvable by name for
// retention operations.
func (p *Platform) RegisterEndpoint(ep endpointHandle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.endpoints == nil {
		p.endpoints = map[string]endpointHandle{}
	}
	p.endpoints[ep.EndpointName()] = ep
}

func (p *Platform) endpointByName(name string) endpointHandle {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.endpoints[name]
}

// endpointHandle is the minimal storage capability retention needs.
type endpointHandle interface {
	EndpointName() string
	Delete(collection, path, identity string) error
}
