package aero

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DataUpdate is delivered to subscribers when a data identity gains a new
// version — the push-style counterpart of registering an analysis flow,
// used by dashboards, streaming /watch clients, and external notification
// hooks. Seq is a per-hub monotone publish sequence (assigned under the
// hub lock, so sequence order matches version-append order); subscribers
// use it to reconcile delivery against drops.
type DataUpdate struct {
	UUID    string    `json:"uuid"`
	Version int       `json:"version"`
	Time    time.Time `json:"time"`
	Seq     int64     `json:"seq"`
}

// Subscription is one streaming watch: a bounded queue of updates drained
// by Next. Publishing never blocks — when the queue is full the OLDEST
// queued update is discarded to make room (drop-oldest backpressure), the
// drop is counted on the subscription and on aero.watch.dropped, and the
// newest update always lands. A slow consumer therefore converges to the
// most recent events plus an honest count of what it missed, instead of
// stalling the platform or silently losing the tail.
type Subscription struct {
	hub  *watchHub
	id   int
	uuid string // empty = all data the subscription's tenant can see
	// tenant scoping: when scoped, only updates whose UUID belongs to
	// tenant are delivered. The store-level hub subscribes scoped (the
	// /watch API boundary); the platform hub is single-user and does not.
	tenant string
	scoped bool

	mu      sync.Mutex
	queue   []DataUpdate
	cap     int
	dropped int64
	closed  bool
	notify  chan struct{} // 1-buffered wakeup for Next
}

func (s *Subscription) matches(u DataUpdate) bool {
	if s.uuid != "" && s.uuid != u.UUID {
		return false
	}
	return !s.scoped || tenantOf(u.UUID) == s.tenant
}

// offer enqueues u, dropping the oldest queued update when full. Never
// blocks; called by the hub under its own lock (ordering), taking only the
// subscription lock inside.
func (s *Subscription) offer(u DataUpdate) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.queue) >= s.cap {
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		s.dropped++
		s.hub.addDropped(1)
	}
	s.queue = append(s.queue, u)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next drains the queue: it returns every queued update (delivery order)
// plus the cumulative drop count, waiting up to timeout for the first one.
// A non-positive timeout polls without waiting. ok is false once the
// subscription is canceled and its queue has fully drained.
func (s *Subscription) Next(timeout time.Duration) (events []DataUpdate, dropped int64, ok bool) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			events = s.queue
			s.queue = nil
			dropped = s.dropped
			s.mu.Unlock()
			return events, dropped, true
		}
		closed := s.closed
		dropped = s.dropped
		s.mu.Unlock()
		if closed {
			return nil, dropped, false
		}
		if timeout <= 0 {
			return nil, dropped, true
		}
		select {
		case <-s.notify:
		case <-deadline:
			return nil, dropped, true
		}
	}
}

// Dropped reports how many updates this subscription discarded under
// backpressure.
func (s *Subscription) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Cancel releases the subscription. Queued updates remain readable via
// Next until drained; further publishes are discarded without counting.
func (s *Subscription) Cancel() {
	s.hub.unsubscribe(s.id)
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// watchHub fans data-update events out to bounded-queue subscriptions and
// assigns the publish sequence.
type watchHub struct {
	mu      sync.Mutex
	subs    map[int]*Subscription
	next    int
	seq     int64
	dropped atomic.Int64 // atomic: bumped from offer while publish holds mu
}

func newWatchHub() *watchHub { return &watchHub{subs: map[int]*Subscription{}} }

func (h *watchHub) subscribe(tenant, uuid string, buffer int, scoped bool) *Subscription {
	if buffer <= 0 {
		buffer = 16
	}
	s := &Subscription{
		hub: h, uuid: uuid, tenant: tenant, scoped: scoped,
		cap: buffer, notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	h.next++
	s.id = h.next
	h.subs[s.id] = s
	h.mu.Unlock()
	mWatchSubscribers.Inc()
	return s
}

func (h *watchHub) unsubscribe(id int) {
	h.mu.Lock()
	_, ok := h.subs[id]
	delete(h.subs, id)
	h.mu.Unlock()
	if ok {
		mWatchSubscribers.Dec()
	}
}

// publish assigns the next sequence number and fans u out. Holding the hub
// lock across the fan-out keeps sequence order and delivery order aligned
// for every subscriber; each offer is non-blocking, so the hold is bounded.
func (h *watchHub) publish(u DataUpdate) {
	mWatchPublished.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	u.Seq = h.seq
	for _, s := range h.subs {
		if s.matches(u) {
			s.offer(u)
		}
	}
}

func (h *watchHub) addDropped(n int64) {
	mWatchDropped.Add(n)
	h.dropped.Add(n)
}

func (h *watchHub) droppedCount() int { return int(h.dropped.Load()) }

// Subscribe returns a channel receiving an event for every new version of
// uuid (empty uuid = every data identity). Call the returned cancel
// function to release the subscription; the channel is closed on cancel.
// The channel is a pump over a bounded drop-oldest Subscription, so a
// consumer that stops draining loses the oldest undelivered events (the
// drop is counted) rather than stalling the publisher.
func (p *Platform) Subscribe(uuid string, buffer int) (<-chan DataUpdate, func()) {
	sub := p.watch.subscribe("", uuid, buffer, false)
	ch := make(chan DataUpdate, buffer)
	go func() {
		defer close(ch)
		for {
			events, _, ok := sub.Next(time.Hour)
			for _, u := range events {
				ch <- u
			}
			if !ok {
				return
			}
		}
	}()
	return ch, sub.Cancel
}

// DroppedUpdates reports how many watch events were discarded because a
// subscriber's buffer was full.
func (p *Platform) DroppedUpdates() int { return p.watch.droppedCount() }

// RetentionPolicy bounds per-identity version history.
type RetentionPolicy struct {
	// KeepLast retains only the most recent n versions' storage objects
	// (metadata rows are kept; their storage coordinates are cleared).
	KeepLast int
}

// ErrBadPolicy is returned for non-positive retention windows.
var ErrBadPolicy = errors.New("aero: retention policy must keep at least one version")

// PruneVersions applies a retention policy to one data identity: storage
// objects older than the window are deleted from the endpoint and their
// metadata marked pruned. It returns the number of storage objects
// removed. Provenance and version numbering are untouched — lineage is
// never rewritten, only bulk data reclaimed.
func (p *Platform) PruneVersions(uuid string, policy RetentionPolicy) (int, error) {
	if policy.KeepLast < 1 {
		return 0, ErrBadPolicy
	}
	rec, err := p.Meta.GetData(uuid)
	if err != nil {
		return 0, err
	}
	cut := len(rec.Versions) - policy.KeepLast
	if cut <= 0 {
		return 0, nil
	}
	pruner, ok := p.Meta.(versionPruner)
	if !ok {
		return 0, fmt.Errorf("aero: metadata backend does not support pruning")
	}
	removed := 0
	for i := 0; i < cut; i++ {
		v := rec.Versions[i]
		if v.Path == "" {
			continue // already pruned
		}
		ep := p.endpointByName(v.Endpoint)
		if ep != nil {
			if err := ep.Delete(v.Collection, v.Path, p.identity); err == nil {
				removed++
			}
		}
		if err := pruner.MarkPruned(uuid, v.Num); err != nil {
			return removed, err
		}
	}
	p.logEvent("prune", uuid, fmt.Sprintf("removed %d of %d versions", removed, len(rec.Versions)))
	return removed, nil
}

// versionPruner is the optional metadata capability behind PruneVersions.
type versionPruner interface {
	MarkPruned(uuid string, versionNum int) error
}

// MarkPruned clears the storage coordinates of one version, recording that
// its bytes were reclaimed.
func (s *Store) MarkPruned(uuid string, versionNum int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.data[uuid]
	if !ok {
		return fmt.Errorf("%w: data %s", ErrNotFound, uuid)
	}
	for i := range rec.Versions {
		if rec.Versions[i].Num == versionNum {
			rec.Versions[i].Endpoint = ""
			rec.Versions[i].Collection = ""
			rec.Versions[i].Path = ""
			return nil
		}
	}
	return fmt.Errorf("%w: version %d of %s", ErrNotFound, versionNum, uuid)
}

// RegisterEndpoint makes a storage endpoint resolvable by name for
// retention operations.
func (p *Platform) RegisterEndpoint(ep endpointHandle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.endpoints == nil {
		p.endpoints = map[string]endpointHandle{}
	}
	p.endpoints[ep.EndpointName()] = ep
}

func (p *Platform) endpointByName(name string) endpointHandle {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.endpoints[name]
}

// endpointHandle is the minimal storage capability retention needs.
type endpointHandle interface {
	EndpointName() string
	Delete(collection, path, identity string) error
}
