package aero

import (
	"fmt"
	"math"
	"sync"
	"time"

	"osprey/internal/obs"
)

// Per-tenant fairness quotas for the AERO server. Each (tenant, class)
// pair owns a token bucket: requests spend one token, the bucket refills
// at Rate tokens/second up to Burst. A dry bucket denies with the time
// until one token refills — the server turns that into 429 + Retry-After,
// so a well-behaved client backs off by exactly the advertised amount and
// a noisy neighbor is throttled without starving anyone else (buckets are
// independent; one tenant's burst never consumes another's tokens).
//
// Time is injected (SetNow) so tests and the deterministic loadgen drive
// the buckets with a fake clock; refill is computed lazily on Allow, so an
// idle Quotas does no background work.

// Request classes the server meters. Reads are unmetered — the quota
// protects the mutation paths, where one tenant's load costs the others.
const (
	// QuotaIngest covers data creation and version appends.
	QuotaIngest = "ingest"
	// QuotaAnalysis covers flow registration, run records, and provenance.
	QuotaAnalysis = "analysis"
)

// QuotaLimit is one bucket's shape: sustained Rate tokens/second with
// bursts up to Burst. A zero or negative Rate means the class is
// unlimited for that tenant.
type QuotaLimit struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
}

func (l QuotaLimit) unlimited() bool { return l.Rate <= 0 }

// bucket is the live token state of one (tenant, class).
type bucket struct {
	tokens float64
	last   time.Time
}

// Quotas meters request admission per tenant and class.
type Quotas struct {
	mu        sync.Mutex
	defaults  map[string]QuotaLimit            // class -> limit for every tenant
	overrides map[string]map[string]QuotaLimit // tenant -> class -> limit
	buckets   map[string]*bucket               // tenant+"\x00"+class -> state
	now       func() time.Time
}

// NewQuotas returns an empty meter: every class unlimited until a limit is
// set. The wall clock is the default time source.
func NewQuotas() *Quotas {
	return &Quotas{
		defaults:  map[string]QuotaLimit{},
		overrides: map[string]map[string]QuotaLimit{},
		buckets:   map[string]*bucket{},
		now:       time.Now,
	}
}

// SetNow replaces the time source (fake clocks in tests and the loadgen).
func (q *Quotas) SetNow(now func() time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = now
}

// SetLimit applies a limit to class for every tenant without an override.
func (q *Quotas) SetLimit(class string, l QuotaLimit) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.defaults[class] = l
}

// SetTenantLimit overrides class for one tenant.
func (q *Quotas) SetTenantLimit(tenant, class string, l QuotaLimit) {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := q.overrides[tenant]
	if m == nil {
		m = map[string]QuotaLimit{}
		q.overrides[tenant] = m
	}
	m[class] = l
}

// limitFor resolves the effective limit. The caller holds q.mu.
func (q *Quotas) limitFor(tenant, class string) (QuotaLimit, bool) {
	if m, ok := q.overrides[tenant]; ok {
		if l, ok := m[class]; ok {
			return l, true
		}
	}
	l, ok := q.defaults[class]
	return l, ok
}

// Allow spends one token from (tenant, class). Denials return how long
// until a token refills — the Retry-After the server advertises. The
// request and any throttle are counted on the aero.tenant.* metrics.
func (q *Quotas) Allow(tenant, class string) (bool, time.Duration) {
	mTenantRequests.Inc()
	q.mu.Lock()
	defer q.mu.Unlock()
	l, ok := q.limitFor(tenant, class)
	if !ok || l.unlimited() {
		return true, 0
	}
	key := tenant + "\x00" + class
	b := q.buckets[key]
	now := q.now()
	if b == nil {
		b = &bucket{tokens: l.Burst, last: now}
		q.buckets[key] = b
		mTenantBuckets.Set(int64(len(q.buckets)))
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.Burst, b.tokens+l.Rate*dt)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	mTenantThrottled.Inc()
	obs.GetCounter(fmt.Sprintf("aero.tenant.%s.throttled", metricTenant(tenant))).Inc()
	wait := time.Duration((1 - b.tokens) / l.Rate * float64(time.Second))
	if wait <= 0 {
		wait = time.Millisecond
	}
	return false, wait
}

// metricTenant renders a tenant for metric names; the legacy empty tenant
// gets a stable placeholder.
func metricTenant(t string) string {
	if t == "" {
		return "default"
	}
	return t
}
