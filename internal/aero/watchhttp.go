package aero

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Streaming watch over HTTP: GET /watch delivers DataUpdate events for
// the request's tenant namespace, as a Server-Sent Events stream when the
// client accepts text/event-stream, or as a long-poll batch otherwise.
//
// Query parameters:
//
//	uuid=     watch one identity (default: the whole namespace)
//	buffer=   per-subscriber queue bound (default 64; drop-oldest past it)
//	timeout=  long-poll wait / SSE keep-alive interval (default 30s, cap 5m)
//	sub=      long-poll session ID: reuse one server-side subscription
//	          across polls so no event between polls is lost
//
// SSE frames:
//
//	event: ready              sent once, before any update — subscribers
//	data: {"dropped":0}       that need every event wait for it before
//	                          causing the writes they want to observe
//	event: update
//	data: {"uuid":...,"version":N,"time":...,"seq":S,"dropped":D}
//
// where dropped is the subscription's cumulative drop-oldest count — the
// honest record of what a slow consumer missed.

// watchDefaultBuffer bounds a subscriber queue when buffer= is absent.
const watchDefaultBuffer = 64

// watchSessionTTL reclaims a long-poll session no poll has touched.
const watchSessionTTL = 2 * time.Minute

type watchSession struct {
	sub      *Subscription
	lastPoll time.Time
}

// sseUpdate is the wire form of one update event.
type sseUpdate struct {
	UUID    string    `json:"uuid"`
	Version int       `json:"version"`
	Time    time.Time `json:"time"`
	Seq     int64     `json:"seq"`
	Dropped int64     `json:"dropped"`
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	uuid := q.Get("uuid")
	buffer := watchDefaultBuffer
	if b, err := strconv.Atoi(q.Get("buffer")); err == nil && b > 0 {
		buffer = b
	}
	timeout := 30 * time.Second
	if d, err := time.ParseDuration(q.Get("timeout")); err == nil && d > 0 {
		timeout = d
	}
	if timeout > 5*time.Minute {
		timeout = 5 * time.Minute
	}
	tenant := tenantFrom(r)

	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.watchSSE(w, r, tenant, uuid, buffer, timeout)
		return
	}
	s.watchPoll(w, r, tenant, uuid, buffer, timeout, q.Get("sub"))
}

// watchSSE streams updates until the client disconnects. The subscription
// lives exactly as long as the connection.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, tenant, uuid string, buffer int, keepAlive time.Duration) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	sub, err := s.store.SubscribeUpdates(tenant, uuid, buffer)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// The ready frame commits the subscription: every update published
	// after the client reads it is either delivered or counted dropped.
	fmt.Fprintf(w, "event: ready\ndata: {\"dropped\":0}\n\n")
	flusher.Flush()

	ctx := r.Context()
	// Wake at least this often to notice client disconnects and to send
	// keep-alive comments through idle proxies.
	wait := keepAlive
	if wait > time.Second {
		wait = time.Second
	}
	idle := time.Duration(0)
	for {
		events, dropped, ok := sub.Next(wait)
		if ctx.Err() != nil || !ok {
			return
		}
		if len(events) == 0 {
			idle += wait
			if idle >= keepAlive {
				fmt.Fprint(w, ": keep-alive\n\n")
				flusher.Flush()
				idle = 0
			}
			continue
		}
		idle = 0
		for _, u := range events {
			b, err := json.Marshal(sseUpdate{UUID: u.UUID, Version: u.Version, Time: u.Time, Seq: u.Seq, Dropped: dropped})
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: update\ndata: %s\n\n", b)
		}
		flusher.Flush()
	}
}

// watchPoll is the long-poll fallback: wait up to timeout for events and
// return them as one JSON batch. With sub= the subscription persists
// server-side between polls (events between polls queue, bounded,
// drop-oldest); without it the subscription lives for this poll only.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, tenant, uuid string, buffer int, timeout time.Duration, sessID string) {
	var sub *Subscription
	if sessID != "" {
		var err error
		if sub, err = s.watchSessionSub(tenant, uuid, buffer, sessID); err != nil {
			writeErr(w, err)
			return
		}
	} else {
		var err error
		if sub, err = s.store.SubscribeUpdates(tenant, uuid, buffer); err != nil {
			writeErr(w, err)
			return
		}
		defer sub.Cancel()
	}
	events, dropped, _ := sub.Next(timeout)
	if events == nil {
		events = []DataUpdate{}
	}
	writeJSON(w, http.StatusOK, struct {
		Events  []DataUpdate `json:"events"`
		Dropped int64        `json:"dropped"`
	}{events, dropped})
}

// watchSessionSub finds or creates the persistent subscription behind a
// long-poll session, expiring idle sessions as a side effect.
func (s *Server) watchSessionSub(tenant, uuid string, buffer int, sessID string) (*Subscription, error) {
	key := tenant + "\x00" + sessID
	now := time.Now()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for k, sess := range s.sessions {
		if now.Sub(sess.lastPoll) > watchSessionTTL {
			sess.sub.Cancel()
			delete(s.sessions, k)
		}
	}
	if sess, ok := s.sessions[key]; ok {
		sess.lastPoll = now
		return sess.sub, nil
	}
	sub, err := s.store.SubscribeUpdates(tenant, uuid, buffer)
	if err != nil {
		return nil, err
	}
	s.sessions[key] = &watchSession{sub: sub, lastPoll: now}
	return sub, nil
}
