package aero

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"osprey/internal/wal"
)

// Event-sourced core of the metadata Store. Every mutation of the store —
// on the live API path and during crash recovery alike — is a typed,
// serializable mutation record routed through applyLocked, the single
// state-transition function. The live path builds the record (assigning
// IDs, version numbers, and timestamps so the transition is fully
// deterministic), persists it through the optional wal.Backend, and only
// then applies it; recovery replays the same records through the same
// applyLocked, rebuilding identical state without re-firing side effects
// (metrics, watch notifications) because those live in the API wrappers,
// not in the transition.

// Mutation ops of the AERO metadata store.
const (
	opCreateData    = "data.create"
	opAppendVersion = "data.version"
	opCreateFlow    = "flow.create"
	opRecordRun     = "flow.run"
	opAddProvenance = "prov.add"
)

// mutation is one serialized state transition. Exactly the fields of its
// op are set; everything the transition needs (assigned UUID/ID, version
// number, timestamps) is recorded so replay is deterministic.
type mutation struct {
	Op        string          `json:"op"`
	Seq       int             `json:"seq,omitempty"` // ID counter value consumed by create ops
	UUID      string          `json:"uuid,omitempty"`
	Name      string          `json:"name,omitempty"`
	SourceURL string          `json:"source_url,omitempty"`
	Version   *Version        `json:"version,omitempty"`
	Flow      *FlowRecord     `json:"flow,omitempty"`
	FlowID    string          `json:"flow_id,omitempty"`
	At        time.Time       `json:"at,omitempty"`
	Edge      *ProvenanceEdge `json:"edge,omitempty"`
}

// applyLocked is the pure state transition: it mutates only the store's
// in-memory structures and fires no side effects, so it is equally
// correct on the live path and during replay. The caller holds s.mu.
func (s *Store) applyLocked(m *mutation) error {
	switch m.Op {
	case opCreateData:
		// The consumed counter value rides in m.Seq and the owning tenant
		// in the ID prefix, so replay restores per-tenant allocation state.
		s.bumpSeqLocked(tenantOf(m.UUID), m.Seq)
		s.data[m.UUID] = &DataRecord{UUID: m.UUID, Name: m.Name, SourceURL: m.SourceURL}
	case opAppendVersion:
		rec, ok := s.data[m.UUID]
		if !ok {
			return fmt.Errorf("%w: data %s", ErrNotFound, m.UUID)
		}
		rec.Versions = append(rec.Versions, *m.Version)
	case opCreateFlow:
		s.bumpSeqLocked(tenantOf(m.Flow.ID), m.Seq)
		cp := *m.Flow
		s.flows[cp.ID] = &cp
	case opRecordRun:
		f, ok := s.flows[m.FlowID]
		if !ok {
			return fmt.Errorf("%w: flow %s", ErrNotFound, m.FlowID)
		}
		f.Runs++
		f.LastRun = m.At
	case opAddProvenance:
		s.prov = append(s.prov, *m.Edge)
	default:
		return fmt.Errorf("aero: unknown wal op %q", m.Op)
	}
	return nil
}

// commitLocked persists m through the backend (if any) and applies it.
// Fail-stop: a persistence error leaves the in-memory state untouched, so
// memory never runs ahead of the log. The caller holds s.mu.
func (s *Store) commitLocked(m *mutation) error {
	if s.backend != nil {
		rec, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("aero: encode mutation: %w", err)
		}
		if err := s.backend.Append(rec); err != nil {
			return fmt.Errorf("aero: wal append: %w", err)
		}
	}
	return s.applyLocked(m)
}

// OpenStore recovers a metadata store from a WAL: the newest snapshot is
// loaded, the remaining mutation records are replayed through the same
// applyLocked the live path uses, and the log becomes the store's
// persistence backend. The log must come straight from wal.Open (not yet
// replayed).
func OpenStore(l *wal.Log) (*Store, error) {
	s := NewStore()
	if snap, ok := l.Snapshot(); ok {
		if err := s.loadSnapshot(snap); err != nil {
			return nil, err
		}
	}
	if _, err := l.Replay(func(rec []byte) error {
		var m mutation
		if err := json.Unmarshal(rec, &m); err != nil {
			return fmt.Errorf("aero: decode mutation: %w", err)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.applyLocked(&m)
	}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.backend = l
	s.wal = l
	s.mu.Unlock()
	return s, nil
}

// Compact writes a full-state snapshot and truncates the log behind it,
// bounding the next boot's replay. The store's write lock is held across
// serialization and the snapshot write so no mutation can slip into a
// segment the compaction deletes.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("aero: store has no WAL (not opened with OpenStore)")
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(s.snapshotLocked()); err != nil {
		return fmt.Errorf("aero: encode snapshot: %w", err)
	}
	return s.wal.WriteSnapshot(buf.Bytes())
}

// loadSnapshot replaces the store contents from snapshot bytes (the
// storeSnapshot JSON also used by Save/Load).
func (s *Store) loadSnapshot(b []byte) error {
	return s.Load(bytes.NewReader(b))
}
