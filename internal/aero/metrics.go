package aero

import "osprey/internal/obs"

// Process-wide AERO metrics (obs.Default registry): the event-ingestion
// and flow-trigger path of §2.2 — how many polls ran, how many turned into
// new data versions, how quickly a data update fanned out into an analysis
// dispatch, and the HTTP surface of the metadata server.
var (
	mEventsLogged  = obs.GetCounter("aero.events.logged")
	mEventsDropped = obs.GetCounter("aero.events.dropped")

	mIngestPolls    = obs.GetCounter("aero.ingest.polls")
	mIngestUpdates  = obs.GetCounter("aero.ingest.updates")
	mIngestNoChange = obs.GetCounter("aero.ingest.nochange")
	mIngestErrors   = obs.GetCounter("aero.ingest.errors")
	mIngestPoll     = obs.GetHistogram("aero.ingest.poll_seconds")

	mFlowsTriggered = obs.GetCounter("aero.flows.triggered")
	mAnalysisRuns   = obs.GetCounter("aero.analysis.runs")
	mAnalysisErrors = obs.GetCounter("aero.analysis.errors")
	mWatchTrigger   = obs.GetHistogram("aero.watch.trigger_seconds")

	mWatchPublished   = obs.GetCounter("aero.watch.published")
	mWatchDropped     = obs.GetCounter("aero.watch.dropped")
	mWatchSubscribers = obs.GetGauge("aero.watch.subscribers")

	mHTTPRequests = obs.GetCounter("aero.http.requests")
	mHTTPRequest  = obs.GetHistogram("aero.http.request_seconds")

	// Multi-tenant service surface: admission metering (quota.go) and
	// auth rejections (server.go middleware). Per-tenant throttle counts
	// live under aero.tenant.<tenant>.throttled, created on demand.
	mTenantRequests  = obs.GetCounter("aero.tenant.requests")
	mTenantThrottled = obs.GetCounter("aero.tenant.throttled")
	mTenantBuckets   = obs.GetGauge("aero.tenant.buckets")
	mAuthRejected    = obs.GetCounter("aero.auth.rejected")
)
