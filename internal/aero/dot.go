package aero

import (
	"fmt"
	"sort"
	"strings"
)

// ExportDOT renders the registered flow/data topology as a GraphViz DOT
// document — the machine-generated counterpart of the paper's Figure 1
// diagram. Flow nodes are boxes (ingestion doubled), data identities are
// ellipses, and edges follow the data: source URL → ingestion flow →
// outputs; inputs → analysis flow → outputs.
func ExportDOT(meta Metadata, title string) (string, error) {
	flows, err := meta.ListFlows()
	if err != nil {
		return "", err
	}
	data, err := meta.ListData()
	if err != nil {
		return "", err
	}
	names := map[string]string{}
	for _, d := range data {
		names[d.UUID] = d.Name
	}
	label := func(uuid string) string {
		if n := names[uuid]; n != "" {
			return n
		}
		return uuid
	}

	var sb strings.Builder
	sb.WriteString("digraph osprey {\n")
	fmt.Fprintf(&sb, "  label=%q;\n", title)
	sb.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")

	sort.Slice(flows, func(i, j int) bool { return flows[i].ID < flows[j].ID })
	seenData := map[string]bool{}
	declareData := func(uuid string) {
		if seenData[uuid] {
			return
		}
		seenData[uuid] = true
		fmt.Fprintf(&sb, "  %q [shape=ellipse,label=%q];\n", uuid, label(uuid))
	}
	for _, f := range flows {
		shape := "box"
		if f.Kind == IngestionKind {
			shape = "box,peripheries=2"
		}
		// %q renders the embedded newline as \n, which GraphViz treats
		// as a line break inside the label.
		fmt.Fprintf(&sb, "  %q [shape=%s,label=%q];\n", f.ID, shape,
			fmt.Sprintf("%s\n(%s, %d runs)", f.Name, f.Kind, f.Runs))
		for _, in := range f.InputUUIDs {
			declareData(in)
			fmt.Fprintf(&sb, "  %q -> %q;\n", in, f.ID)
		}
		for _, out := range f.OutputUUIDs {
			declareData(out)
			fmt.Fprintf(&sb, "  %q -> %q;\n", f.ID, out)
		}
	}
	sb.WriteString("}\n")
	return sb.String(), nil
}
