package aero

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"osprey/internal/globus"
)

func TestStoreDataLifecycle(t *testing.T) {
	s := NewStore()
	rec, err := s.CreateData("ww/raw", "http://example/ww.csv")
	if err != nil {
		t.Fatal(err)
	}
	if rec.UUID == "" || rec.Latest() != nil {
		t.Fatalf("fresh record malformed: %+v", rec)
	}
	r2, err := s.AppendVersion(rec.UUID, Version{Checksum: "abc", Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Latest().Num != 1 {
		t.Fatalf("first version num = %d", r2.Latest().Num)
	}
	r3, _ := s.AppendVersion(rec.UUID, Version{Checksum: "def", Size: 12})
	if r3.Latest().Num != 2 || r3.Latest().Checksum != "def" {
		t.Fatalf("second version wrong: %+v", r3.Latest())
	}
	if _, err := s.GetData("data-bogus"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown uuid error = %v", err)
	}
	if _, err := s.CreateData("", ""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestStoreReturnsCopies(t *testing.T) {
	s := NewStore()
	rec, _ := s.CreateData("x", "")
	s.AppendVersion(rec.UUID, Version{Checksum: "a"})
	got, _ := s.GetData(rec.UUID)
	got.Versions[0].Checksum = "tampered"
	again, _ := s.GetData(rec.UUID)
	if again.Versions[0].Checksum != "a" {
		t.Fatal("store state mutated through returned copy")
	}
}

func TestStoreFlowsAndRuns(t *testing.T) {
	s := NewStore()
	f, err := s.CreateFlow(FlowRecord{Name: "ingest-obrien", Kind: IngestionKind})
	if err != nil {
		t.Fatal(err)
	}
	if f.ID == "" {
		t.Fatal("no flow ID assigned")
	}
	now := time.Now()
	if err := s.RecordRun(f.ID, now); err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetFlow(f.ID)
	if got.Runs != 1 || !got.LastRun.Equal(now) {
		t.Fatalf("run not recorded: %+v", got)
	}
	flows, _ := s.ListFlows()
	if len(flows) != 1 {
		t.Fatal("ListFlows wrong")
	}
	if _, err := s.CreateFlow(FlowRecord{}); err == nil {
		t.Fatal("unnamed flow accepted")
	}
}

func TestStoreProvenanceAndLineage(t *testing.T) {
	s := NewStore()
	a, _ := s.CreateData("a", "")
	b, _ := s.CreateData("b", "")
	c, _ := s.CreateData("c", "")
	s.AddProvenance(ProvenanceEdge{FlowID: "f1", InputUUID: a.UUID, OutputUUID: b.UUID})
	s.AddProvenance(ProvenanceEdge{FlowID: "f2", InputUUID: b.UUID, OutputUUID: c.UUID})
	edges, _ := s.Provenance(b.UUID)
	if len(edges) != 2 {
		t.Fatalf("b touches 2 edges, got %d", len(edges))
	}
	lineage, _ := s.Lineage(c.UUID)
	if len(lineage) != 2 {
		t.Fatalf("lineage of c = %v", lineage)
	}
	want := map[string]bool{a.UUID: true, b.UUID: true}
	for _, u := range lineage {
		if !want[u] {
			t.Fatalf("unexpected ancestor %s", u)
		}
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	rec, _ := s.CreateData("x", "http://src")
	s.AppendVersion(rec.UUID, Version{Checksum: "a", Size: 1})
	s.CreateFlow(FlowRecord{Name: "f", Kind: AnalysisKind, InputUUIDs: []string{rec.UUID}})
	s.AddProvenance(ProvenanceEdge{FlowID: "f", InputUUID: rec.UUID, OutputUUID: "other"})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetData(rec.UUID)
	if err != nil || got.Latest().Checksum != "a" {
		t.Fatalf("loaded store wrong: %+v, %v", got, err)
	}
	// IDs must keep incrementing without collision after load.
	rec2, _ := s2.CreateData("y", "")
	if rec2.UUID == rec.UUID {
		t.Fatal("ID collision after load")
	}
}

func TestServerClientImplementsMetadata(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	c := NewClient(srv.URL)

	rec, err := c.CreateData("ww", "http://src")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendVersion(rec.UUID, Version{Checksum: "abc", Size: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetData(rec.UUID)
	if err != nil || got.Latest().Checksum != "abc" {
		t.Fatalf("client GetData = %+v, %v", got, err)
	}
	if _, err := c.GetData("data-bogus"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("client 404 mapping: %v", err)
	}
	all, err := c.ListData()
	if err != nil || len(all) != 1 {
		t.Fatalf("ListData = %v, %v", all, err)
	}
	flow, err := c.CreateFlow(FlowRecord{Name: "an", Kind: AnalysisKind, InputUUIDs: []string{rec.UUID}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RecordRun(flow.ID, time.Now()); err != nil {
		t.Fatal(err)
	}
	gotFlow, err := c.GetFlow(flow.ID)
	if err != nil || gotFlow.Runs != 1 {
		t.Fatalf("GetFlow = %+v, %v", gotFlow, err)
	}
	flows, err := c.ListFlows()
	if err != nil || len(flows) != 1 {
		t.Fatalf("ListFlows = %v, %v", flows, err)
	}
	if err := c.AddProvenance(ProvenanceEdge{FlowID: flow.ID, InputUUID: rec.UUID, OutputUUID: "o"}); err != nil {
		t.Fatal(err)
	}
	edges, err := c.Provenance(rec.UUID)
	if err != nil || len(edges) != 1 {
		t.Fatalf("Provenance = %v, %v", edges, err)
	}
}

// testRig assembles a full local platform: auth, storage, login-node
// compute, timers, metadata.
type testRig struct {
	platform *Platform
	endpoint *globus.Endpoint
	compute  *globus.ComputeEndpoint
	token    *globus.Token
	auth     *globus.Auth
}

func newRig(t *testing.T, meta Metadata) *testRig {
	t.Helper()
	auth := globus.NewAuth()
	tok := auth.Issue("alice", 0, globus.ScopeTransfer, globus.ScopeCompute, globus.ScopeTimers, globus.ScopeFlows)
	ep := globus.NewEndpoint("eagle")
	if err := ep.CreateCollection("osprey", "alice"); err != nil {
		t.Fatal(err)
	}
	comp := globus.NewComputeEndpoint("bebop-login", auth, globus.LoginNodeEngine{})
	if meta == nil {
		meta = NewStore()
	}
	p, err := NewPlatform(Config{
		Meta:     meta,
		Transfer: globus.NewTransferService(auth),
		Timers:   globus.NewTimerService(auth),
		Identity: "alice",
		TokenID:  tok.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{platform: p, endpoint: ep, compute: comp, token: tok, auth: auth}
}

// mutableSource is an HTTP source whose body can be swapped.
type mutableSource struct {
	mu   sync.Mutex
	body string
}

func (m *mutableSource) set(s string) {
	m.mu.Lock()
	m.body = s
	m.mu.Unlock()
}

// httpBody adapts a mutableSource to http.Handler.
func httpBody(m *mutableSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.mu.Lock()
		defer m.mu.Unlock()
		w.Write([]byte(m.body))
	})
}

func TestIngestionPollVersioningAndTriggers(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform

	src := &mutableSource{}
	src.set("day,conc\n1,5\n")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()

	upper, err := rig.compute.RegisterFunction(rig.token.ID, "upper", func(ctx context.Context, b []byte) ([]byte, error) {
		return bytes.ToUpper(b), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := p.RegisterIngestion(IngestionSpec{
		Name: "obrien", URL: srv.URL,
		Compute: rig.compute, TransformID: upper,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First poll: update.
	updated, err := flow.Poll()
	if err != nil || !updated {
		t.Fatalf("first poll: updated=%v err=%v", updated, err)
	}
	// Second poll with same content: no-op.
	updated, err = flow.Poll()
	if err != nil || updated {
		t.Fatalf("no-change poll: updated=%v err=%v", updated, err)
	}
	// Content changes: new version.
	src.set("day,conc\n1,5\n2,6\n")
	updated, err = flow.Poll()
	if err != nil || !updated {
		t.Fatalf("changed poll: updated=%v err=%v", updated, err)
	}

	raw, _ := p.Meta.GetData(flow.RawUUID)
	out, _ := p.Meta.GetData(flow.OutputUUID)
	if len(raw.Versions) != 2 || len(out.Versions) != 2 {
		t.Fatalf("versions: raw %d out %d, want 2/2", len(raw.Versions), len(out.Versions))
	}
	// Transformed data is stored on the endpoint, uppercased.
	data, _, err := p.FetchLatest(flow.OutputUUID, rig.endpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "DAY,CONC") {
		t.Fatalf("transform not applied: %q", data)
	}
	// Provenance edge raw->output exists.
	edges, _ := p.Meta.Provenance(flow.OutputUUID)
	if len(edges) != 2 {
		t.Fatalf("want 2 provenance edges, got %d", len(edges))
	}
}

func TestAnalysisTriggerAnyAndChaining(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform

	src := &mutableSource{}
	src.set("v1")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()

	ident, _ := rig.compute.RegisterFunction(rig.token.ID, "id", func(ctx context.Context, b []byte) ([]byte, error) {
		return b, nil
	})
	ing, err := p.RegisterIngestion(IngestionSpec{
		Name: "plantA", URL: srv.URL, Compute: rig.compute, TransformID: ident,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Analysis 1 consumes the ingestion output.
	analyze, _ := rig.compute.RegisterFunction(rig.token.ID, "rt", func(ctx context.Context, payload []byte) ([]byte, error) {
		var req AnalysisRequest
		if err := jsonUnmarshal(payload, &req); err != nil {
			return nil, err
		}
		return EncodeOutputs(map[string][]byte{
			"table": append([]byte("rt:"), req.Inputs[0].Data...),
			"plot":  []byte("png"),
		})
	})
	a1, err := p.RegisterAnalysis(AnalysisSpec{
		Name: "rt-plantA", InputUUIDs: []string{ing.OutputUUID}, Policy: TriggerAny,
		Compute: rig.compute, AnalyzeID: analyze,
		OutputNames: []string{"table", "plot"},
		Storage:     StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Analysis 2 chains off analysis 1's "table" output.
	agg, _ := rig.compute.RegisterFunction(rig.token.ID, "agg", func(ctx context.Context, payload []byte) ([]byte, error) {
		var req AnalysisRequest
		if err := jsonUnmarshal(payload, &req); err != nil {
			return nil, err
		}
		return EncodeOutputs(map[string][]byte{"summary": append([]byte("agg:"), req.Inputs[0].Data...)})
	})
	a2, err := p.RegisterAnalysis(AnalysisSpec{
		Name: "aggregate", InputUUIDs: []string{a1.OutputUUIDs[0]}, Policy: TriggerAny,
		Compute: rig.compute, AnalyzeID: agg,
		OutputNames: []string{"summary"},
		Storage:     StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ing.Poll(); err != nil {
		t.Fatal(err)
	}
	p.WaitIdle()

	if a1.Runs() != 1 || a2.Runs() != 1 {
		t.Fatalf("runs: a1=%d a2=%d, want 1/1", a1.Runs(), a2.Runs())
	}
	data, _, err := p.FetchLatest(a2.OutputUUIDs[0], rig.endpoint)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "agg:rt:v1" {
		t.Fatalf("chained output = %q", data)
	}
	// Lineage of the final product reaches back to the raw ingest.
	type lineager interface {
		Lineage(string) ([]string, error)
	}
	ln, err := p.Meta.(lineager).Lineage(a2.OutputUUIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range ln {
		if u == ing.RawUUID {
			found = true
		}
	}
	if !found {
		t.Fatalf("lineage %v does not reach raw data %s", ln, ing.RawUUID)
	}
}

func TestTriggerAllWaitsForEveryInput(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform

	// Two independent upstream data items, updated manually.
	d1, _ := p.Meta.CreateData("in1", "")
	d2, _ := p.Meta.CreateData("in2", "")
	put := func(uuid, path, content string) {
		if err := rig.endpoint.Put("osprey", path, "alice", []byte(content)); err != nil {
			t.Fatal(err)
		}
		rec, err := p.Meta.AppendVersion(uuid, Version{
			Checksum: content, Size: len(content),
			Endpoint: "eagle", Collection: "osprey", Path: path,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.notifyUpdate(uuid, rec.Latest().Num)
	}

	fn, _ := rig.compute.RegisterFunction(rig.token.ID, "join", func(ctx context.Context, payload []byte) ([]byte, error) {
		var req AnalysisRequest
		if err := jsonUnmarshal(payload, &req); err != nil {
			return nil, err
		}
		var sb strings.Builder
		for _, in := range req.Inputs {
			sb.Write(in.Data)
			sb.WriteByte('|')
		}
		return EncodeOutputs(map[string][]byte{"joined": []byte(sb.String())})
	})
	flow, err := p.RegisterAnalysis(AnalysisSpec{
		Name: "agg-all", InputUUIDs: []string{d1.UUID, d2.UUID}, Policy: TriggerAll,
		Compute: rig.compute, AnalyzeID: fn,
		OutputNames: []string{"joined"},
		Storage:     StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}

	put(d1.UUID, "a/v1", "A1")
	p.WaitIdle()
	if flow.Runs() != 0 {
		t.Fatal("all-policy flow ran with only one input updated")
	}
	put(d2.UUID, "b/v1", "B1")
	p.WaitIdle()
	if flow.Runs() != 1 {
		t.Fatalf("all-policy flow runs = %d after both inputs, want 1", flow.Runs())
	}
	// A second single update must not retrigger.
	put(d1.UUID, "a/v2", "A2")
	p.WaitIdle()
	if flow.Runs() != 1 {
		t.Fatal("all-policy flow retriggered on a single update")
	}
	// Completing the pair does.
	put(d2.UUID, "b/v2", "B2")
	p.WaitIdle()
	if flow.Runs() != 2 {
		t.Fatalf("runs = %d after second complete round, want 2", flow.Runs())
	}
	data, _, _ := p.FetchLatest(flow.OutputUUIDs[0], rig.endpoint)
	if string(data) != "A2|B2|" {
		t.Fatalf("joined output = %q", data)
	}
}

func TestRegisterValidation(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	st := StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"}
	if _, err := p.RegisterIngestion(IngestionSpec{URL: "http://x", Compute: rig.compute, TransformID: "f", Storage: st}); err == nil {
		t.Fatal("nameless ingestion accepted")
	}
	if _, err := p.RegisterIngestion(IngestionSpec{Name: "x", URL: "http://x", Storage: st}); err == nil {
		t.Fatal("computeless ingestion accepted")
	}
	if _, err := p.RegisterAnalysis(AnalysisSpec{Name: "a", InputUUIDs: []string{"data-bogus"}, Compute: rig.compute, AnalyzeID: "f", OutputNames: []string{"o"}, Storage: st}); err == nil {
		t.Fatal("analysis with unknown input accepted")
	}
	if _, err := p.RegisterAnalysis(AnalysisSpec{Name: "a", Compute: rig.compute, AnalyzeID: "f", OutputNames: []string{"o"}, Storage: st}); err == nil {
		t.Fatal("inputless analysis accepted")
	}
	if _, err := NewPlatform(Config{}); err == nil {
		t.Fatal("empty platform config accepted")
	}
}

func TestPlatformAgainstRemoteMetadata(t *testing.T) {
	store := NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	rig := newRig(t, NewClient(srv.URL))
	p := rig.platform

	src := &mutableSource{}
	src.set("hello")
	dataSrv := httptest.NewServer(httpBody(src))
	defer dataSrv.Close()

	ident, _ := rig.compute.RegisterFunction(rig.token.ID, "id", func(ctx context.Context, b []byte) ([]byte, error) {
		return b, nil
	})
	flow, err := p.RegisterIngestion(IngestionSpec{
		Name: "remote-meta", URL: dataSrv.URL, Compute: rig.compute, TransformID: ident,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.Poll(); err != nil {
		t.Fatal(err)
	}
	// The metadata landed in the remote store; the data did not.
	rec, err := store.GetData(flow.OutputUUID)
	if err != nil || rec.Latest() == nil {
		t.Fatalf("remote store missing version: %v", err)
	}
	if rec.Latest().Endpoint != "eagle" {
		t.Fatal("metadata should point at the user's storage endpoint")
	}
}

func TestEventsLogged(t *testing.T) {
	rig := newRig(t, nil)
	p := rig.platform
	src := &mutableSource{}
	src.set("x")
	srv := httptest.NewServer(httpBody(src))
	defer srv.Close()
	ident, _ := rig.compute.RegisterFunction(rig.token.ID, "id", func(ctx context.Context, b []byte) ([]byte, error) {
		return b, nil
	})
	flow, _ := p.RegisterIngestion(IngestionSpec{
		Name: "ev", URL: srv.URL, Compute: rig.compute, TransformID: ident,
		Storage: StorageTarget{Endpoint: rig.endpoint, Collection: "osprey"},
	})
	flow.Poll()
	flow.Poll()
	kinds := map[string]int{}
	for _, e := range p.Events() {
		kinds[e.Kind]++
	}
	if kinds["ingest.update"] != 1 || kinds["ingest.nochange"] != 1 {
		t.Fatalf("event log wrong: %v", kinds)
	}
}

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
